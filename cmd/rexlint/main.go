// Command rexlint is the project's static-analysis gate: a multichecker
// over the custom go/analysis-style suite in internal/lint. It typechecks
// the requested packages from source (module-local and standard-library
// imports only — this module has no external dependencies by policy) and
// reports determinism and correctness hazards:
//
//	noglobalrand  global math/rand use (breaks seed reproducibility)
//	maporder      order-dependent slices built from map iteration
//	floateq       exact float ==/!= in objective/metrics code
//	errignore     silently dropped error returns in internal packages
//
// Usage:
//
//	go run ./cmd/rexlint ./...
//	go run ./cmd/rexlint ./internal/core ./internal/plan
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Suppress a finding with a trailing or preceding comment:
//
//	//rexlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rexchange/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rexlint [-list] <package patterns>\nexample: go run ./cmd/rexlint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*list, flag.Args()))
}

func run(list bool, patterns []string) int {
	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	analyzers := lint.Analyzers(loader.ModPath)
	if list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	bad := false
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
		for _, d := range diags {
			bad = true
			pos := d.Pos
			if rel, err := filepath.Rel(modDir, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	}
	if bad {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command rexlint is the project's static-analysis gate: a multichecker
// over the custom go/analysis-style suite in internal/lint. It typechecks
// the requested packages from source (module-local and standard-library
// imports only — this module has no external dependencies by policy) and
// reports determinism and correctness hazards:
//
//	noglobalrand  global math/rand use (breaks seed reproducibility)
//	maporder      order-dependent slices built from map iteration
//	floateq       exact float ==/!= in objective/metrics code
//	errignore     dropped error returns, incl. sticky Close/Err/Flush results
//	metricname    Prometheus naming conventions on obs registrations
//	lockcheck     guarded-by annotations: unlocked access, lock leaks,
//	              blocking calls under a lock (CFG + dataflow)
//	statecheck    declared state-machine transitions and acquire/release
//	              pairing of declared resources along all paths
//	clockpurity   wall-clock access outside the ctl.Clock seam, including
//	              stored-then-called time functions (flow-sensitive)
//	leakcheck     goroutines with no reachable termination path
//
// Usage:
//
//	go run ./cmd/rexlint ./...
//	go run ./cmd/rexlint -tags debugasserts ./...
//	go run ./cmd/rexlint -json ./internal/core ./internal/plan
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Suppress a finding with a trailing or preceding comment:
//
//	//rexlint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rexchange/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	tags := flag.String("tags", "", "comma-separated build tags for module file selection (e.g. debugasserts)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rexlint [-list] [-json] [-tags t1,t2] <package patterns>\nexample: go run ./cmd/rexlint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*list, *jsonOut, *tags, flag.Args()))
}

// jsonDiag is the machine-readable diagnostic record emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(list, jsonOut bool, tags string, patterns []string) int {
	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	if tags != "" {
		loader.SetBuildTags(strings.Split(tags, ","))
	}
	analyzers := lint.Analyzers(loader.ModPath)
	if list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	var all []jsonDiag
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(modDir, pos.Filename); err == nil {
				pos.Filename = rel
			}
			all = append(all, jsonDiag{
				File: pos.Filename, Line: pos.Line, Column: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

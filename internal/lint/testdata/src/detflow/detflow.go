// Fixture for the detflow analyzer: a miniature journal sink plus the
// positive cases (map-ordered keys emitted unsorted, a sink called inside
// map iteration, an ordered value laundered through a forwarding helper)
// and the near-miss negatives (sorted before emit, a //rexlint:canonical
// normalizer, writes into a map that erase order).
package detflow

import "sort"

var out []string

// emit is the fixture's deterministic-output sink.
//
//rexlint:detsink journal write
func emit(line string) { out = append(out, line) }

// unsortedKeys emits map keys in iteration order.
func unsortedKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		emit(k) // want `value ordered by map iteration order flows into journal write sink`
	}
}

// sortedKeys sorts before emitting: clean.
func sortedKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k)
	}
}

// inlineEmit calls the sink from inside the range body, so the emission
// order itself is nondeterministic even though the argument is clean.
func inlineEmit(m map[string]int) {
	for k := range m {
		_ = k
		emit("entry") // want `journal write sink .*emit called inside map iteration`
	}
}

// forward launders its argument into the sink; the obligation propagates
// to forward's callers through the parameter-sink summary.
func forward(line string) { emit(line) }

// launder passes a map-ordered value through the forwarding helper.
func launder(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		forward(k) // want `value ordered by map iteration order flows into journal write sink .*emit`
	}
}

// canon normalizes order; passing through it cleans the taint.
//
//rexlint:canonical
func canon(keys []string) []string {
	sort.Strings(keys)
	return keys
}

// canonicalized launders through canon before emitting: clean.
func canonicalized(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range canon(keys) {
		emit(k)
	}
}

// selectOrder emits a value whose arrival order depends on which channel
// fires first.
func selectOrder(a, b chan string) {
	var v string
	select {
	case v = <-a:
	case v = <-b:
	}
	emit(v) // want `value ordered by select arm completion order flows into journal write sink`
}

// pingPong and pongPing are mutually recursive: the summary solver must
// reach a fixpoint on the cycle and still carry the sink obligation out to
// callers.
func pingPong(line string, depth int) {
	if depth == 0 {
		emit(line)
		return
	}
	pongPing(line, depth-1)
}

func pongPing(line string, depth int) {
	if depth > 0 {
		pingPong(line, depth-1)
	}
}

// cyclicLaunder feeds a map-ordered value into the recursive pair.
func cyclicLaunder(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		pongPing(k, 3) // want `value ordered by map iteration order flows into journal write sink .*emit`
	}
}

// mapCopy writes range output into another map: the destination has no
// order, so nothing is tainted and the final emit of a constant is clean.
func mapCopy(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	emit("copied")
	return c
}

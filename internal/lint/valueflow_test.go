package lint

import (
	"go/token"
	"testing"
)

func TestSatAddSaturates(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 1},
		{lbSat, 1, lbSat},
		{-lbSat, -1, -lbSat},
		{lbSat - 1, 5, lbSat},
		{3, -7, -4},
	}
	for _, tc := range cases {
		if got := satAdd(tc.a, tc.b); got != tc.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestJoinVFStateLowerBounds pins the min-join with missing-means-zero
// normalization: a bound only present on one branch joins against the
// other branch's implicit zero, in both directions.
func TestJoinVFStateLowerBounds(t *testing.T) {
	tr := &Trace{Pos: token.Pos(1), What: "test"}
	a := newVFState()
	a.setLB("x", 2)
	a.setLB("neg", -3)
	a.setStreams("r", streamSet{"workload": tr})
	b := newVFState()
	b.setLB("x", 1)
	b.setLB("only", -1)
	b.setOrdered("k", tr)
	b.kill("c")

	j := joinVFState(a, b)
	if got := j.getLB("x"); got != 1 {
		t.Errorf("lb(x) = %d, want min 1", got)
	}
	if got := j.getLB("neg"); got != -3 {
		t.Errorf("lb(neg) = %d, want -3 (missing in b means 0, min keeps -3)", got)
	}
	if got := j.getLB("only"); got != -1 {
		t.Errorf("lb(only) = %d, want -1 (missing in a means 0)", got)
	}
	if _, ok := j.streams["r"]["workload"]; !ok {
		t.Error("stream taint lost in join")
	}
	if j.ordered["k"] == nil {
		t.Error("order taint lost in join")
	}
	if !j.cKill["c"] {
		t.Error("counter kill lost in join")
	}

	// A positive bound present on only one side must fall to the other
	// side's implicit zero.
	c := newVFState()
	c.setLB("p", 4)
	j2 := joinVFState(c, newVFState())
	if got := j2.getLB("p"); got != 0 {
		t.Errorf("lb(p) = %d, want 0 after joining with empty state", got)
	}

	// Join is idempotent on equal states.
	if !equalVFState(joinVFState(a, a), a) {
		t.Error("join(a, a) != a")
	}
}

// TestStreamTaintFlowsDownwardOnly pins the asymmetry that keeps struct
// values holding an RNG field from being treated as streams themselves: a
// tainted ancestor taints field reads, but a tainted field does not taint
// the containing value.
func TestStreamTaintFlowsDownwardOnly(t *testing.T) {
	tr := &Trace{Pos: token.Pos(1), What: "test"}
	st := newVFState()
	st.setStreams("v1.workload", streamSet{"workload": tr})
	st.setOrdered("v2.keys", tr)

	if str, _, _ := st.taintsAt("v1"); len(str) != 0 {
		t.Errorf("container inherited stream taint from its field: %v", str)
	}
	if str, _, _ := st.taintsAt("v1.workload"); len(str) != 1 {
		t.Error("exact-key stream taint lost")
	}
	st2 := newVFState()
	st2.setStreams("v1", streamSet{"drift": tr})
	if str, _, _ := st2.taintsAt("v1.anything"); len(str) != 1 {
		t.Error("field read did not inherit ancestor stream taint")
	}
	// Order taint keeps the two-way relation: a struct holding ordered
	// data is ordered.
	if _, ord, _ := st.taintsAt("v2"); ord == nil {
		t.Error("container did not inherit order taint from its field")
	}
}

// fuzzSummary decodes a bounded valueSummary from fuzz bytes: stream
// names and sink descriptions come from fixed pools so the lattice stays
// finite the way a real program's does.
func fuzzSummary(data []byte, params int) *valueSummary {
	pool := []string{"workload", "drift", "chaos", "trace"}
	sinks := []string{"", "journal write sink emit", "report sink render"}
	fields := []string{"n", "inflight", "pending"}
	s := &valueSummary{
		paramSink:   make([]string, params),
		paramSinkTr: make([]*Trace, params),
	}
	tr := &Trace{Pos: token.Pos(1), What: "fuzz"}
	for i, b := range data {
		switch i % 4 {
		case 0:
			if b&1 == 1 {
				if s.returnStreams == nil {
					s.returnStreams = make(map[string]*Trace)
				}
				s.returnStreams[pool[int(b>>1)%len(pool)]] = tr
			}
		case 1:
			if b&1 == 1 {
				s.returnsOrdered = tr
			}
			s.returnsParam |= uint64(b >> 1)
		case 2:
			if params > 0 {
				p := int(b) % params
				if d := sinks[int(b>>2)%len(sinks)]; d != "" && s.paramSink[p] == "" {
					s.paramSink[p] = d
					s.paramSinkTr[p] = tr
				}
			}
		case 3:
			f := fields[int(b)%len(fields)]
			if s.counters == nil {
				s.counters = make(map[string]*counterEffect)
			}
			s.counters[f] = &counterEffect{
				Req:   int(b>>4) % 3,
				Known: b&8 == 0,
				Delta: int(int8(b)) % (lbSat + 1),
			}
		}
	}
	return s
}

// FuzzValueSummaryMerge pins the properties the interprocedural worklist
// depends on for termination on cyclic call graphs: merging is monotone
// (re-merging an already-folded summary reports no change), and cyclic
// merging of any finite summary set reaches a fixpoint within the lattice
// height instead of oscillating.
func FuzzValueSummaryMerge(f *testing.F) {
	f.Add([]byte{1, 3, 5, 7}, []byte{2, 4, 6, 8}, []byte{0xff, 0x0f, 0xf0, 0xaa})
	f.Add([]byte{}, []byte{1}, []byte{255, 255, 255, 255, 255, 255})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, []byte{9, 9, 9, 9}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, d1, d2, d3 []byte) {
		const params = 3
		nodes := []*valueSummary{
			fuzzSummary(d1, params), fuzzSummary(d2, params), fuzzSummary(d3, params),
		}

		// Idempotence: a second identical merge must report no change.
		for _, src := range nodes {
			dst := fuzzSummary(nil, params)
			mergeValueSummary(dst, src)
			if mergeValueSummary(dst, src) {
				t.Fatal("second merge of the same summary reported a change")
			}
		}

		// Cyclic fixpoint: fold each summary into its cycle successor
		// until a full round changes nothing. The lattice height bounds
		// the rounds: stream names, param marks, sink slots, and counter
		// entries are all drawn from finite pools and every merge moves
		// at least one of them monotonically.
		rounds := 0
		for {
			changed := false
			for i := range nodes {
				if mergeValueSummary(nodes[(i+1)%len(nodes)], nodes[i]) {
					changed = true
				}
			}
			if !changed {
				break
			}
			rounds++
			if rounds > maxVFSweeps {
				t.Fatalf("cyclic merge did not converge after %d rounds", rounds)
			}
		}

		// At the fixpoint every node absorbed the cycle's union-joined
		// content. paramSink descriptions and counter Reqs are first-wins
		// rather than joins (in the engine they are per-function constants
		// that never differ across merges of the same node), so only the
		// union-valued components must agree.
		for i := 1; i < len(nodes); i++ {
			a, b := nodes[0], nodes[i]
			if len(a.returnStreams) != len(b.returnStreams) {
				t.Fatalf("returnStreams diverge at fixpoint: %d vs %d", len(a.returnStreams), len(b.returnStreams))
			}
			for name := range a.returnStreams {
				if _, ok := b.returnStreams[name]; !ok {
					t.Fatalf("stream %q missing from node %d at fixpoint", name, i)
				}
			}
			if (a.returnsOrdered == nil) != (b.returnsOrdered == nil) || a.returnsParam != b.returnsParam {
				t.Fatal("ordered/param marks diverge at fixpoint")
			}
			for j := range a.paramSink {
				if (a.paramSink[j] == "") != (b.paramSink[j] == "") {
					t.Fatalf("sink slot %d set on one node but not the other at fixpoint", j)
				}
			}
		}
	})
}

// Fixture for the clockpurity analyzer: direct wall-clock reads and
// stored-then-called time functions are flagged; Clock implementations
// and code that merely handles time values are not.
package clockpurity

import "time"

// Clock is the injection seam for time in this fixture, mirroring
// ctl.Clock.
type Clock interface {
	Now() float64
	Sleep(d float64)
}

// WallClock is the one legitimate wall-time sink: it implements Clock.
type WallClock struct{}

func (WallClock) Now() float64 {
	return float64(time.Now().UnixNano()) // exempt: Clock implementation
}

func (WallClock) Sleep(d float64) {
	time.Sleep(time.Duration(d)) // exempt: Clock implementation
}

// NewWallClock is exempt through its result type.
func NewWallClock() Clock {
	_ = time.Now()
	return WallClock{}
}

func bad() int64 {
	return time.Now().UnixNano() // want `time\.Now bypasses the Clock seam`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep bypasses the Clock seam`
}

func badStored() int64 {
	now := time.Now
	return now().UnixNano() // want `call of now \(holds time\.Now\) bypasses the Clock seam`
}

// badBranch may still hold time.Now on the fall-through path.
func badBranch(b bool) time.Time {
	f := time.Now
	if b {
		f = func() time.Time { return time.Time{} }
	}
	return f() // want `call of f \(holds time\.Now\) bypasses the Clock seam`
}

// okReassigned overwrites the stored clock on every path before calling.
func okReassigned() time.Time {
	now := time.Now
	now = func() time.Time { return time.Time{} }
	return now()
}

// okHandlesTime manipulates time values without reading the ambient
// clock.
func okHandlesTime(d time.Duration, t time.Time) time.Time {
	return t.Add(d * 2)
}

// okClockUse reads time through the seam.
func okClockUse(c Clock) float64 {
	return c.Now()
}

// sampler mirrors the des/obs trace sampler shape: it timestamps spans
// and must do so through the injected clock, never the ambient one —
// otherwise trace emission would perturb a deterministic simulation.
type sampler struct{ clock Clock }

func (s *sampler) okSpanStart() float64 {
	return s.clock.Now()
}

func (s *sampler) badSpanStart() int64 {
	return time.Now().UnixNano() // want `time\.Now bypasses the Clock seam`
}

// badSamplerHelper hides the ambient read one call deep; the
// interprocedural pass flags the call site.
func badSamplerHelper() int64 {
	return bad() // want `call of clockpurity\.bad hides time\.Now`
}

package invindex

import "fmt"

// This file implements compressed postings lists: variable-byte (vbyte)
// encoded document-ID deltas and term frequencies, organized in blocks with
// skip entries so iterators can seek forward without decoding everything.
// Real engines store postings this way; the compressed size is the honest
// disk footprint of a shard (used by ProfileShards), and skip-based seeking
// powers the conjunctive (AND) query evaluator.

// blockSize is the number of postings per skip block.
const blockSize = 128

// vbytePut appends x to buf in variable-byte encoding (7 bits per byte,
// high bit = continuation).
func vbytePut(buf []byte, x uint32) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// vbyteGet decodes one value from buf, returning it and the bytes consumed.
// Malformed input (truncated continuation) returns n == 0.
func vbyteGet(buf []byte) (x uint32, n int) {
	var shift uint
	for i := 0; i < len(buf); i++ {
		b := buf[i]
		x |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return x, i + 1
		}
		shift += 7
		if shift > 28 {
			return 0, 0 // overflow: not a valid uint32 vbyte
		}
	}
	return 0, 0
}

// skipEntry indexes one block: the last DocID it contains, the byte offset
// where it starts, and the DocID preceding it (delta base).
type skipEntry struct {
	lastDoc DocID
	offset  int
	prevDoc DocID
	count   int // postings before this block
}

// CompressedList is an immutable compressed postings list.
type CompressedList struct {
	data  []byte
	skips []skipEntry
	n     int
}

// Compress encodes postings (sorted by DocID, as produced by Index) into a
// CompressedList.
func Compress(postings []Posting) (*CompressedList, error) {
	cl := &CompressedList{n: len(postings)}
	prev := DocID(-1)
	for i, p := range postings {
		if p.Doc <= prev && i > 0 {
			return nil, fmt.Errorf("invindex: postings out of order at %d (%d after %d)", i, p.Doc, prev)
		}
		if p.TF <= 0 {
			return nil, fmt.Errorf("invindex: non-positive TF at %d", i)
		}
		if i%blockSize == 0 {
			last := postings[min(i+blockSize, len(postings))-1].Doc
			cl.skips = append(cl.skips, skipEntry{
				lastDoc: last, offset: len(cl.data), prevDoc: prev, count: i,
			})
		}
		delta := uint32(p.Doc - prev)
		cl.data = vbytePut(cl.data, delta)
		cl.data = vbytePut(cl.data, uint32(p.TF))
		prev = p.Doc
	}
	return cl, nil
}

// Len returns the number of postings.
func (cl *CompressedList) Len() int { return cl.n }

// Bytes returns the compressed size in bytes (data plus skip index).
func (cl *CompressedList) Bytes() int {
	return len(cl.data) + len(cl.skips)*16
}

// Decompress expands the whole list (primarily for tests and round-trip
// verification).
func (cl *CompressedList) Decompress() ([]Posting, error) {
	out := make([]Posting, 0, cl.n)
	it := cl.Iterator()
	for it.Valid() {
		out = append(out, Posting{Doc: it.Doc(), TF: it.TF()})
		if err := it.Next(); err != nil {
			return nil, err
		}
	}
	return out, it.Err()
}

// Iterator walks a CompressedList with forward seeking.
type Iterator struct {
	cl    *CompressedList
	pos   int // postings consumed
	off   int // byte offset of the next encoded posting
	doc   DocID
	tf    int32
	valid bool
	err   error
}

// Iterator returns a new iterator positioned at the first posting.
func (cl *CompressedList) Iterator() *Iterator {
	it := &Iterator{cl: cl}
	if cl.n == 0 {
		return it
	}
	it.doc = cl.skips[0].prevDoc
	it.valid = true
	it.advance()
	return it
}

// advance decodes the next posting into doc/tf.
func (it *Iterator) advance() {
	if it.pos >= it.cl.n {
		it.valid = false
		return
	}
	d, n1 := vbyteGet(it.cl.data[it.off:])
	if n1 == 0 {
		it.fail("truncated delta")
		return
	}
	tf, n2 := vbyteGet(it.cl.data[it.off+n1:])
	if n2 == 0 {
		it.fail("truncated tf")
		return
	}
	it.doc += DocID(d)
	it.tf = int32(tf)
	it.off += n1 + n2
	it.pos++
}

func (it *Iterator) fail(msg string) {
	it.err = fmt.Errorf("invindex: corrupt compressed list: %s at posting %d", msg, it.pos)
	it.valid = false
}

// Valid reports whether the iterator currently points at a posting.
func (it *Iterator) Valid() bool { return it.valid }

// Err returns the decoding error that stopped the iterator, if any.
func (it *Iterator) Err() error { return it.err }

// Doc returns the current posting's document.
func (it *Iterator) Doc() DocID { return it.doc }

// TF returns the current posting's term frequency.
func (it *Iterator) TF() int32 { return it.tf }

// Next moves to the following posting.
func (it *Iterator) Next() error {
	if !it.valid {
		return it.err
	}
	it.advance()
	return it.err
}

// SeekGE positions the iterator at the first posting with Doc ≥ target,
// using the skip index to jump over whole blocks. It never moves backward.
func (it *Iterator) SeekGE(target DocID) error {
	if !it.valid || it.doc >= target {
		return it.err
	}
	// find the first block whose lastDoc ≥ target, at or after the
	// current block
	curBlock := (it.pos - 1) / blockSize
	skips := it.cl.skips
	lo, hi := curBlock, len(skips)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if skips[mid].lastDoc >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if skips[lo].lastDoc < target {
		// no posting ≥ target exists
		it.valid = false
		return nil
	}
	if lo > curBlock {
		sk := skips[lo]
		it.pos = sk.count
		it.off = sk.offset
		it.doc = sk.prevDoc
		it.advance()
		if !it.valid {
			return it.err
		}
	}
	for it.valid && it.doc < target {
		it.advance()
	}
	return it.err
}

// CompressedIndex holds every term's postings in compressed form. It is
// derived from an Index and answers conjunctive queries via skip-based
// intersection.
type CompressedIndex struct {
	src   *Index
	lists []*CompressedList // parallel to src.terms
}

// Compact compresses every postings list of ix.
func (ix *Index) Compact() (*CompressedIndex, error) {
	ci := &CompressedIndex{src: ix, lists: make([]*CompressedList, len(ix.terms))}
	for tid := range ix.terms {
		cl, err := Compress(ix.terms[tid].postings)
		if err != nil {
			return nil, fmt.Errorf("invindex: term %q: %w", ix.terms[tid].text, err)
		}
		ci.lists[tid] = cl
	}
	return ci, nil
}

// CompressedBytes returns the total compressed postings size.
func (ci *CompressedIndex) CompressedBytes() int {
	t := 0
	for _, cl := range ci.lists {
		t += cl.Bytes()
	}
	return t
}

// UncompressedBytes returns the raw postings size (8 bytes per posting),
// for compression-ratio reporting.
func (ci *CompressedIndex) UncompressedBytes() int {
	t := 0
	for _, cl := range ci.lists {
		t += cl.Len() * 8
	}
	return t
}

// SearchConjunctive evaluates an AND query: documents containing every
// query term, BM25-ranked, top k. Lists are intersected rarest-first with
// skip-based seeking — the standard conjunctive evaluator of web engines.
func (ci *CompressedIndex) SearchConjunctive(terms []string, k int) ([]ScoredDoc, Stats) {
	var st Stats
	tids := ci.src.resolveTerms(terms)
	if len(tids) == 0 || k <= 0 {
		return nil, st
	}
	// rarest list first drives the intersection
	sortIntsBy(tids, func(a, b int) bool {
		return ci.lists[a].Len() < ci.lists[b].Len()
	})
	its := make([]*Iterator, len(tids))
	idfs := make([]float64, len(tids))
	for i, tid := range tids {
		its[i] = ci.lists[tid].Iterator()
		idfs[i] = ci.src.idf(tid)
		if !its[i].Valid() {
			return nil, st // some term has no postings
		}
	}
	var h resultHeap
	for its[0].Valid() {
		cand := its[0].Doc()
		st.PostingsScanned++
		match := true
		for i := 1; i < len(its); i++ {
			if err := its[i].SeekGE(cand); err != nil || !its[i].Valid() {
				return h.sorted(), st
			}
			st.PostingsScanned++
			if its[i].Doc() != cand {
				// advance the driver to the blocker and restart
				if err := its[0].SeekGE(its[i].Doc()); err != nil {
					return h.sorted(), st
				}
				match = false
				break
			}
		}
		if !match {
			continue
		}
		score := 0.0
		for i := range its {
			score += ci.src.bm25(idfs[i], its[i].TF(), ci.src.docLen[cand])
		}
		st.DocsScored++
		h.push(ScoredDoc{Doc: cand, Score: score}, k)
		if err := its[0].Next(); err != nil {
			break
		}
	}
	return h.sorted(), st
}

// sortIntsBy sorts xs by less (tiny helper; avoids a sort.Slice closure on
// tids aliasing).
func sortIntsBy(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

package ctl

import (
	"rexchange/internal/obs"
)

// ctlMetrics bundles every control-plane metric handle registered on the
// shared registry. The controller and executor hold a possibly-nil
// pointer; every instrumentation site guards on it, so running without a
// registry costs one nil check per event (the control plane is not a hot
// path — events happen per move, not per solver iteration).
type ctlMetrics struct {
	// Controller round/solve lifecycle.
	rounds        *obs.Counter
	solves        *obs.Counter
	supersessions *obs.Counter
	plannedMoves  *obs.Counter
	execErrors    *obs.Counter
	state         *obs.Gauge
	campaign      *obs.Gauge
	lastPlanMoves *obs.Gauge
	solveSeconds  *obs.Histogram

	// Executor migration lifecycle.
	dispatched       *obs.Counter
	retries          *obs.Counter
	completed        *obs.Counter
	failures         *obs.Counter
	aborted          *obs.Counter
	cancelled        *obs.Counter
	admissionBlocked *obs.Counter
	bytesMoved       *obs.Counter
	inFlight         *obs.Gauge
	copySeconds      *obs.Histogram
}

// newCtlMetrics registers the control-plane families on reg.
func newCtlMetrics(reg *obs.Registry) *ctlMetrics {
	return &ctlMetrics{
		rounds: reg.Counter("rex_ctl_rounds_total",
			"Control rounds completed."),
		solves: reg.Counter("rex_ctl_solves_total",
			"Solve rounds triggered."),
		supersessions: reg.Counter("rex_ctl_supersessions_total",
			"Solves that superseded a still-draining plan."),
		plannedMoves: reg.Counter("rex_ctl_planned_moves_total",
			"Moves across every installed plan."),
		execErrors: reg.Counter("rex_ctl_exec_errors_total",
			"Executor plan failures recorded in the round history."),
		state: reg.Gauge("rex_ctl_state",
			"Controller state (0=idle, 1=solving, 2=migrating)."),
		campaign: reg.Gauge("rex_ctl_campaign",
			"Whether a rebalancing campaign is active."),
		lastPlanMoves: reg.Gauge("rex_ctl_last_plan_moves",
			"Moves in the most recently installed plan."),
		solveSeconds: reg.Histogram("rex_ctl_solve_seconds",
			"Wall-clock duration of one budgeted solve round.", obs.TimeBuckets()),

		dispatched: reg.Counter("rex_exec_dispatched_total",
			"Copy attempts started by the executor (redispatches included)."),
		retries: reg.Counter("rex_exec_retries_total",
			"Redispatches of moves whose earlier copy failed."),
		completed: reg.Counter("rex_exec_completed_total",
			"Moves committed to the live placement."),
		failures: reg.Counter("rex_exec_failures_total",
			"Copy attempts that finished in failure."),
		aborted: reg.Counter("rex_moves_aborted_total",
			"In-flight copies abandoned because a newer plan superseded them."),
		cancelled: reg.Counter("rex_exec_cancelled_total",
			"Pending or retrying moves cancelled by plan supersession."),
		admissionBlocked: reg.Counter("rex_exec_admission_blocked_total",
			"Dispatch attempts deferred by the transient admission check."),
		bytesMoved: reg.Counter("rex_exec_bytes_moved_total",
			"Disk units copied by dispatched moves."),
		inFlight: reg.Gauge("rex_exec_in_flight",
			"Moves currently in flight."),
		copySeconds: reg.Histogram("rex_exec_copy_seconds",
			"Duration of individual shard copies, successful or failed.", obs.TimeBuckets()),
	}
}

// stateGauge mirrors a state change onto rex_ctl_state; nil-safe.
func (m *ctlMetrics) stateGauge(s State) {
	if m != nil {
		m.state.Set(float64(s))
	}
}

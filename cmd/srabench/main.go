// Command srabench regenerates every table and figure of the evaluation
// (DESIGN.md §4) and prints them as text tables. Pass -quick for a
// seconds-scale smoke run; default sizing matches EXPERIMENTS.md.
//
// Usage:
//
//	srabench              # all experiments at full scale
//	srabench -quick       # all experiments, small sizing
//	srabench -run F2      # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rexchange/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "srabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "small sizing (seconds instead of minutes)")
		runID = flag.String("run", "", "run one experiment (T1,T2,T3,F1..F6); empty = all")
	)
	flag.Parse()
	sc := experiments.Scale{Quick: *quick}

	if *runID != "" {
		driver := experiments.ByID(*runID)
		if driver == nil {
			return fmt.Errorf("unknown experiment %q", *runID)
		}
		start := time.Now()
		tbl, err := driver(sc)
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		fmt.Printf("(%s in %.1fs)\n", *runID, time.Since(start).Seconds())
		return nil
	}

	start := time.Now()
	tables, err := experiments.All(sc)
	for _, t := range tables {
		fmt.Print(t)
		fmt.Println()
	}
	if err != nil {
		return err
	}
	fmt.Printf("all experiments completed in %.1fs\n", time.Since(start).Seconds())
	return nil
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestCV(t *testing.T) {
	if cv := CV([]float64{5, 5, 5}); cv != 0 {
		t.Errorf("CV of constants = %v", cv)
	}
	if cv := CV([]float64{0, 0}); cv != 0 {
		t.Errorf("CV with zero mean = %v", cv)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if cv := CV(xs); !almostEq(cv, 0.4, 1e-12) {
		t.Errorf("CV = %v, want 0.4", cv)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Percentiles(xs, 0, 50, 100)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, v := range Percentiles(nil, 50, 99) {
		if !math.IsNaN(v) {
			t.Error("empty Percentiles should be NaN")
		}
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almostEq(g, 0, 1e-12) {
		t.Errorf("Gini equality = %v", g)
	}
	// One holder of everything among n: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); !almostEq(g, 0.75, 1e-12) {
		t.Errorf("Gini concentration = %v, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("Gini(nil) = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("Gini all-zero = %v", g)
	}
	// Negative values are clamped, not panicking.
	if g := Gini([]float64{-5, 5}); !almostEq(g, 0.5, 1e-12) {
		t.Errorf("Gini with negative = %v", g)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online var %v vs %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Errorf("online min/max %v/%v vs %v/%v", o.Min(), o.Max(), Min(xs), Max(xs))
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 {
		t.Error("empty Online should report zeros")
	}
	if !math.IsNaN(o.Min()) || !math.IsNaN(o.Max()) {
		t.Error("empty Online min/max should be NaN")
	}
}

func TestOnlineMerge(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	xs := make([]float64, 600)
	var a, b, whole Online
	for i := range xs {
		xs[i] = r.Float64() * 100
		whole.Add(xs[i])
		if i%2 == 0 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-9) || !almostEq(a.Variance(), whole.Variance(), 1e-6) {
		t.Errorf("merge mean/var %v/%v vs %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	// Merging into empty copies.
	var empty Online
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty should copy")
	}
	// Merging empty is a no-op.
	n := whole.N()
	var e2 Online
	whole.Merge(&e2)
	if whole.N() != n {
		t.Error("merging empty changed state")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bucket1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bucket4 = %d", h.Counts[4])
	}
	wantMean := (-1 + 0 + 1.9 + 2 + 9.999 + 10 + 42) / 7
	if !almostEq(h.Mean(), wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	q50 := h.Quantile(0.5)
	if q50 < 45 || q50 > 55 {
		t.Errorf("Quantile(0.5) = %v", q50)
	}
	if !math.IsNaN(NewHistogram(0, 1, 1).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid histogram")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(-1)
	h.Add(3)
	s := h.String()
	if s == "" {
		t.Error("String should render bars")
	}
}

func TestQuickGiniRange(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		g := Gini(xs)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := func() bool {
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		p1, p2 := r.Float64()*100, r.Float64()*100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		ps := Percentiles(xs, p1, p2)
		return ps[0] <= ps[1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},                          // exact fast path
		{0, 1e-12, 1e-9, true},                   // absolute tolerance near zero
		{0, 1e-6, 1e-9, false},                   // beyond absolute tolerance
		{1e9, 1e9 + 1, 1e-9, true},               // relative tolerance at scale
		{1e9, 1e9 + 10, 1e-9, false},             // beyond relative tolerance
		{-1, 1, 1e-9, false},                     // sign matters
		{math.Inf(1), math.Inf(1), 1e-9, true},   // infinities compare equal
		{math.Inf(1), math.Inf(-1), 1e-9, false}, // opposite infinities do not
		{math.NaN(), math.NaN(), 1e-9, false},    // NaN equals nothing
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
		if got := AlmostEqual(c.b, c.a, c.eps); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v (asymmetric)", c.b, c.a, c.eps, got, c.want)
		}
	}
}

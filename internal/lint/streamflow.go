package lint

// StreamFlow statically re-proves the RNG stream-isolation contract the
// simulator's reproducibility rests on: every value produced by a
// //rexlint:streamsource function (rng.Partitioned.Stream) carries its
// stream name as interprocedural taint, and a function may draw from or
// pass along a stream only when its doc comment declares ownership:
//
//	//rexlint:stream workload drift
//
// Function literals inherit the enclosing declaration. Stream names must be
// named constants — a string-literal or dynamic name is itself a finding,
// so ad-hoc stream keys cannot reappear. Hand-offs (passing a tainted
// *rand.Rand to another function) require the callee to declare the stream;
// violations carry the blame chain ("via a → b") of the value's journey.
var StreamFlow = &Analyzer{
	Name: "streamflow",
	Doc:  "require functions to declare (//rexlint:stream) every RNG sub-stream they draw from or pass along; stream names must be named constants",
	Run:  func(pass *Pass) error { return runValueFlow(pass, vfStream) },
}

// runValueFlow reports the engine findings of one kind for the package
// under analysis (shared by streamflow, detflow, and nonneg).
func runValueFlow(pass *Pass, kind vfKind) error {
	for _, f := range pass.Prog.valueFindings(pass.pkg(), kind) {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

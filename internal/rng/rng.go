// Package rng centralizes the module's seed-derivation discipline. Every
// deterministic subsystem (the parallel solver portfolio, the partitioned
// solver's per-round sub-solves, the discrete-event simulator's workload
// and service streams) derives decorrelated child seeds from one base seed
// with the splitmix64 finalizer, so that:
//
//   - a fixed base seed always yields the same family of child seeds,
//     independent of host, GOMAXPROCS, or scheduling;
//   - child seeds are pairwise distinct across the index patterns a
//     harness plausibly sweeps (consecutive seeds, stride-spaced seeds,
//     golden-ratio-spaced seeds) — additive strides do not survive the
//     mix, so seed sweeps never silently rerun a correlated search;
//   - adding a consumer never perturbs an existing one: each subsystem
//     draws from its own sub-stream (Partitioned), keyed by name, and the
//     key → seed map has no positional structure to collide on.
package rng

import (
	"math/rand"
	"sync"
)

// golden is the 64-bit golden-ratio constant 0x9E3779B97F4A7C15, the Weyl
// increment used by splitmix64 to space successive stream states.
const golden = 0x9E3779B97F4A7C15

// Canonical sub-stream names. Partitioned streams are keyed by name (not
// registration order), so these constants are documentation plus typo
// insurance: every consumer of a shared stream family must name the same
// stream to share it — and must NOT name these to stay isolated from them.
const (
	// StreamWorkload drives arrival times, per-query costs, and shard
	// picks. Nothing else may draw from it: the reproducibility contract
	// is that policy, chaos, and observability cannot perturb workload.
	StreamWorkload = "workload"
	// StreamDrift walks shard popularity between windows.
	StreamDrift = "drift"
	// StreamChaos feeds failure injection.
	StreamChaos = "chaos"
	// StreamTrace feeds trace sampling decisions and trace-ID minting.
	// Turning tracing on or off, or changing the sample rate, only
	// advances this stream — offered load and arrival sequences stay
	// bit-identical.
	StreamTrace = "trace"
)

// Mix64 is the splitmix64 finalizer: an avalanching bijection on uint64.
// Every derived seed in the module funnels through it so that structured
// inputs (small integers, stride sweeps) come out statistically unrelated.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// WorkerSeed derives the seed of worker/restart i from the base seed.
// Index 0 keeps the base seed unchanged so a portfolio always contains the
// single-run search (core's TestSolveParallelAtLeastAsGoodAsSingle relies
// on it). Higher indices hash the *mixed* base with a Weyl-sequence step
// and re-mix — a splitmix64-style combination of (base, i).
//
// The additive stride this construction replaced — base + i·0x9E3779B1 —
// made restart i of a run seeded S collide with restart i−1 of a run
// seeded S+0x9E3779B1, so stride-spaced seed sweeps silently ran
// correlated (duplicate) searches. Hashing the base seed before the
// stride is applied removes that structure: a collision now requires
// Mix64(S)−Mix64(S′) to land exactly on a small multiple of the 64-bit
// golden ratio, which no simple seed-sweep pattern produces.
// TestWorkerSeedsPairwiseDistinct pins both the old failure shape and
// general pairwise distinctness.
func WorkerSeed(base int64, i int) int64 {
	if i == 0 {
		return base
	}
	return int64(Mix64(Mix64(uint64(base)) + uint64(i)*golden))
}

// CellSeed derives a child seed from the base seed and a tuple of indices
// by chained splitmix64 steps — WorkerSeed extended to arbitrarily many
// indices so no two cells of a multi-dimensional sweep (e.g. the
// partitioned solver's (round, partition) grid) collide structurally.
// Each index is offset by one before mixing so that CellSeed(base) with a
// trailing zero index differs from the shorter tuple.
func CellSeed(base int64, idx ...int) int64 {
	z := Mix64(uint64(base))
	for _, i := range idx {
		z = Mix64(z + uint64(i+1)*golden)
	}
	return int64(z)
}

// streamSeed hashes a subsystem name into the Weyl step applied to the
// mixed base: FNV-1a over the name, then the splitmix64 chain. Name-keyed
// (rather than registration-order-keyed) derivation is what makes the
// split stable: adding or removing a subsystem never changes any other
// subsystem's stream.
func streamSeed(base int64, name string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return int64(Mix64(Mix64(uint64(base)) + Mix64(h)))
}

// Partitioned hands out one isolated rand.Rand per named subsystem, all
// derived from a single base seed. Draws from one stream never advance
// another, so a policy that consumes extra randomness (say, a new routing
// policy drawing from "service") cannot perturb workload generation
// drawing from "workload" — the property the discrete-event simulator's
// reproducibility contract rests on.
//
// Stream is safe for concurrent callers resolving *different* names; the
// returned *rand.Rand values are not concurrency-safe, matching math/rand.
type Partitioned struct {
	base int64

	mu      sync.Mutex
	streams map[string]*rand.Rand // guarded by: mu
}

// NewPartitioned returns a stream family over the base seed.
func NewPartitioned(base int64) *Partitioned {
	return &Partitioned{base: base, streams: make(map[string]*rand.Rand)}
}

// Stream returns the subsystem's RNG, creating it on first use. The same
// (base seed, name) pair always yields a stream with the same sequence,
// regardless of which other streams exist or how much they have drawn.
//
// rexlint's streamflow analyzer treats the returned value as tainted with
// the stream name: callers must pass a named constant and declare
// ownership with //rexlint:stream.
//
//rexlint:streamsource
func (p *Partitioned) Stream(name string) *rand.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.streams[name]
	if !ok {
		r = rand.New(rand.NewSource(streamSeed(p.base, name)))
		p.streams[name] = r
	}
	return r
}

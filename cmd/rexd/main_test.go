package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rexchange/internal/workload"
)

// buildBinaries compiles rexd and rebalance into dir and returns their
// paths. The test drives the real binaries end to end: generated placement
// → offline plan (-plan-out) → online replay (-plan-in), and the virtual
// controller loop that the CI smoke step runs.
func buildBinaries(t *testing.T, dir string) (rexd, rebalance string) {
	t.Helper()
	rexd = filepath.Join(dir, "rexd")
	rebalance = filepath.Join(dir, "rebalance")
	for bin, pkg := range map[string]string{rexd: "rexchange/cmd/rexd", rebalance: "rexchange/cmd/rebalance"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return rexd, rebalance
}

// writeInstance saves a small generated placement and trace for the CLI.
func writeInstance(t *testing.T, dir string) (placement, trace string) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = 30
	cfg.Shards = 300
	cfg.Seed = 4
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placement = filepath.Join(dir, "placement.json")
	if err := inst.Placement.SaveFile(placement); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 30, BaseRate: 50, DiurnalAmp: 0.5, Period: 30, CostSigma: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace = filepath.Join(dir, "trace.csv")
	if err := tr.SaveFile(trace); err != nil {
		t.Fatal(err)
	}
	return placement, trace
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestRexdVirtualReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, _ := buildBinaries(t, dir)
	placement, trace := writeInstance(t, dir)

	out := runCmd(t, rexd,
		"-in", placement, "-virtual", "-replay", trace,
		"-rounds", "3", "-window", "10", "-iters", "200", "-restarts", "1")
	if !strings.Contains(out, "final imbalance=") {
		t.Fatalf("missing final imbalance line:\n%s", out)
	}
	if !strings.Contains(out, "round   0") {
		t.Fatalf("missing per-round progress:\n%s", out)
	}
}

func TestRexdPlanReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, rebalance := buildBinaries(t, dir)
	placement, _ := writeInstance(t, dir)
	planPath := filepath.Join(dir, "plan.json")

	out := runCmd(t, rebalance,
		"-in", placement, "-k", "0", "-iters", "300", "-plan-out", planPath)
	if !strings.Contains(out, "plan → ") {
		t.Fatalf("rebalance did not report the plan file:\n%s", out)
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatal(err)
	}

	out = runCmd(t, rexd,
		"-in", placement, "-plan-in", planPath, "-virtual", "-bandwidth", "500", "-inflight", "8")
	if !strings.Contains(out, "plan executed:") || !strings.Contains(out, "final imbalance=") {
		t.Fatalf("plan replay output unexpected:\n%s", out)
	}
}

func TestRexdInjectedFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, _ := buildBinaries(t, dir)
	placement, trace := writeInstance(t, dir)

	out := runCmd(t, rexd,
		"-in", placement, "-virtual", "-replay", trace,
		"-rounds", "3", "-iters", "200", "-restarts", "1", "-fail-rate", "0.2")
	if !strings.Contains(out, "final imbalance=") {
		t.Fatalf("run with failures did not complete:\n%s", out)
	}
}

package lint

// DetFlow upgrades the syntactic maporder check into an interprocedural
// output-determinism proof for the observability, simulator, and control
// packages: values whose order derives from map iteration (range, maps.Keys/
// Values/All) or multi-arm select receives carry order taint until they are
// sorted (any sort./slices. call) or pass through a //rexlint:canonical
// function. Order-tainted values must not reach a //rexlint:detsink
// function — journal writes, Prometheus exposition, fixed-format reports —
// directly or through a callee whose parameter reaches a sink (the summary
// layer propagates that obligation with a blame chain). Calling a sink
// inside a map-range body is flagged even with clean arguments: the call
// order itself is nondeterministic.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "forbid map/select-ordered values from reaching journal, exposition, or report sinks (//rexlint:detsink) unless sorted or canonicalized",
	Run:  func(pass *Pass) error { return runValueFlow(pass, vfDet) },
}

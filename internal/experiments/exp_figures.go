package experiments

import (
	"fmt"
	"time"

	"rexchange/internal/baseline"
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
)

// F1ExchangeSweep sweeps the number of borrowed exchange machines K in the
// stringent regime (95% fill). Two effects are measured: final balance,
// and — the paper's core claim — the executability and cost of the
// migration itself. Without exchange machines the planner must stage and
// displace heavily through whatever slack exists (or fail outright when
// displacement is forbidden); borrowed vacancy collapses that overhead.
func F1ExchangeSweep(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F1",
		Title:   "Balance and migration overhead vs exchange machines K",
		Columns: []string{"K", "method", "maxU", "moves", "staged", "displaced", "mig-sec", "fallbacks"},
	}
	p, err := genInstance(sc.sel(16, 80), sc.sel(200, 1200), 0.95, 401)
	if err != nil {
		return nil, err
	}
	before := metrics.Compute(p)
	tbl.AddRow("-", "initial", before.MaxUtil, 0, 0, 0, 0, 0)

	ls := baseline.LocalSearch(p, baseline.Config{AllowSwaps: true})
	tbl.AddRow("-", "local-search", ls.After.MaxUtil, ls.MovedShards, 0, 0, migSeconds(p, ls.Plan), 0)

	ks := []int{0, 1, 2, 4, 6, 8}
	ks = ks[:sc.sel(3, len(ks))]
	iters := sc.sel(300, 3000)
	for _, k := range ks {
		pk, err := withExchange(p, k)
		if err != nil {
			return nil, err
		}
		res, err := core.New(solverConfig(iters, 11)).Solve(pk)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(k, "sra", res.After.MaxUtil, res.MovedShards,
			res.Plan.Staged, res.Plan.Displaced, migSeconds(pk, res.Plan), res.PlanFallbacks)
	}
	return tbl, nil
}

// migSeconds simulates executing the plan at the default bandwidth with 4
// parallel streams and returns its wall-clock duration.
func migSeconds(from *cluster.Placement, p *plan.Plan) float64 {
	if p.NumMoves() == 0 {
		return 0
	}
	rep, err := sim.SimulateMigration(from, p, sim.MigrationConfig{Bandwidth: 100, Concurrency: 4})
	if err != nil {
		return -1 // signal an unexecutable schedule in the table
	}
	return rep.Duration
}

// F2TightnessSweep plots every method's achieved imbalance against cluster
// fill — the stringency of the transient-resource environment. The SRA
// advantage should widen as fill rises.
func F2TightnessSweep(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F2",
		Title:   "Imbalance vs cluster fill (transient tightness)",
		Columns: []string{"fill", "method", "maxU-before", "maxU-after", "imbalance"},
	}
	fills := []float64{0.60, 0.70, 0.80, 0.85, 0.90, 0.93, 0.95}
	fills = fills[:sc.sel(3, len(fills))]
	machines := sc.sel(16, 80)
	shards := sc.sel(200, 1200)
	iters := sc.sel(300, 3000)
	k := 2
	for fi, fill := range fills {
		p, err := genInstance(machines, shards, fill, int64(500+fi))
		if err != nil {
			return nil, err
		}
		before := metrics.Compute(p)

		g := baseline.Greedy(p, baseline.Config{})
		tbl.AddRow(fill, "greedy", before.MaxUtil, g.After.MaxUtil, g.After.Imbalance)

		ls := baseline.LocalSearch(p, baseline.Config{AllowSwaps: true})
		tbl.AddRow(fill, "local-search", before.MaxUtil, ls.After.MaxUtil, ls.After.Imbalance)

		pk, err := withExchange(p, k)
		if err != nil {
			return nil, err
		}
		res, err := core.New(solverConfig(iters, 13)).Solve(pk)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fill, fmt.Sprintf("sra-k%d", k), before.MaxUtil, res.After.MaxUtil, res.After.Imbalance)
	}
	return tbl, nil
}

// F3Scalability measures SRA wall-clock time as the fleet grows at a fixed
// iteration budget.
func F3Scalability(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F3",
		Title:   "SRA runtime vs cluster size",
		Columns: []string{"machines", "shards", "iterations", "seconds", "maxU-before", "maxU-after"},
	}
	type size struct{ m, s int }
	sizes := []size{{50, 750}, {100, 1500}, {200, 3000}, {400, 6000}, {800, 12000}}
	sizes = sizes[:sc.sel(2, len(sizes))]
	iters := sc.sel(150, 1500)
	for i, sz := range sizes {
		p0, err := genInstance(sz.m, sz.s, 0.82, int64(600+i))
		if err != nil {
			return nil, err
		}
		p, err := withExchange(p0, 4)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.New(solverConfig(iters, 17)).Solve(p)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		tbl.AddRow(sz.m, sz.s, iters, elapsed, res.Before.MaxUtil, res.After.MaxUtil)
	}
	return tbl, nil
}

// F4Convergence records the best-objective trajectory of one LNS run at
// logarithmic checkpoints.
func F4Convergence(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F4",
		Title:   "LNS convergence (best objective vs iteration)",
		Columns: []string{"iteration", "best-objective", "vs-initial"},
	}
	p0, err := genInstance(sc.sel(20, 80), sc.sel(240, 1200), 0.85, 701)
	if err != nil {
		return nil, err
	}
	p, err := withExchange(p0, 3)
	if err != nil {
		return nil, err
	}
	cfg := solverConfig(sc.sel(400, 4000), 19)
	cfg.KeepTrajectory = true
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		return nil, err
	}
	initial := res.Trajectory[0]
	for _, it := range []int{1, 2, 5, 10, 20, 50, 100, 200, 400, 800, 1600, 3200} {
		if it > len(res.Trajectory) {
			break
		}
		v := res.Trajectory[it-1]
		tbl.AddRow(it, v, fmt.Sprintf("%.1f%%", 100*v/initial))
	}
	tbl.AddRow(len(res.Trajectory), res.Trajectory[len(res.Trajectory)-1],
		fmt.Sprintf("%.1f%%", 100*res.Trajectory[len(res.Trajectory)-1]/initial))
	return tbl, nil
}

package invindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary index persistence. The on-disk layout is:
//
//	magic "RXIX" | version u32 | k1 f64 | b f64
//	numDocs u32 | docLen u32 × numDocs
//	numTerms u32
//	per term: textLen u32 | text | maxTF u32 | postingCount u32 |
//	          dataLen u32 | vbyte-compressed postings data
//
// Postings are stored vbyte-compressed (the same encoding as
// CompressedList), so the file size reflects a realistic index footprint.

const (
	indexMagic   = "RXIX"
	indexVersion = 1
)

// Save writes the index in binary form.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	if err := writeU32(bw, indexVersion); err != nil {
		return err
	}
	if err := writeF64(bw, ix.K1); err != nil {
		return err
	}
	if err := writeF64(bw, ix.B); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(ix.docLen))); err != nil {
		return err
	}
	for _, dl := range ix.docLen {
		if err := writeU32(bw, uint32(dl)); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(ix.terms))); err != nil {
		return err
	}
	for ti := range ix.terms {
		term := &ix.terms[ti]
		if err := writeU32(bw, uint32(len(term.text))); err != nil {
			return err
		}
		if _, err := bw.WriteString(term.text); err != nil {
			return fmt.Errorf("invindex: save: %w", err)
		}
		if err := writeU32(bw, uint32(term.maxTF)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(term.postings))); err != nil {
			return err
		}
		// compress the postings (deltas + tf in vbyte)
		var data []byte
		prev := DocID(-1)
		for _, p := range term.postings {
			data = vbytePut(data, uint32(p.Doc-prev))
			data = vbytePut(data, uint32(p.TF))
			prev = p.Doc
		}
		if err := writeU32(bw, uint32(len(data))); err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return fmt.Errorf("invindex: save: %w", err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	defer f.Close()
	if err := ix.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadIndex reads an index written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("invindex: load: bad magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("invindex: load: unsupported version %d", version)
	}
	ix := NewIndex()
	if ix.K1, err = readF64(br); err != nil {
		return nil, err
	}
	if ix.B, err = readF64(br); err != nil {
		return nil, err
	}
	numDocs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	ix.docLen = make([]int32, numDocs)
	for i := range ix.docLen {
		dl, err := readU32(br)
		if err != nil {
			return nil, err
		}
		ix.docLen[i] = int32(dl)
		ix.totalLen += int64(dl)
	}
	numTerms, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for ti := 0; ti < int(numTerms); ti++ {
		textLen, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if textLen > 1<<20 {
			return nil, fmt.Errorf("invindex: load: absurd term length %d", textLen)
		}
		text := make([]byte, textLen)
		if _, err := io.ReadFull(br, text); err != nil {
			return nil, fmt.Errorf("invindex: load: term text: %w", err)
		}
		maxTF, err := readU32(br)
		if err != nil {
			return nil, err
		}
		count, err := readU32(br)
		if err != nil {
			return nil, err
		}
		dataLen, err := readU32(br)
		if err != nil {
			return nil, err
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("invindex: load: postings data: %w", err)
		}
		postings := make([]Posting, 0, count)
		prev := DocID(-1)
		off := 0
		for i := 0; i < int(count); i++ {
			d, n1 := vbyteGet(data[off:])
			if n1 == 0 {
				return nil, fmt.Errorf("invindex: load: term %q: corrupt delta", text)
			}
			tf, n2 := vbyteGet(data[off+n1:])
			if n2 == 0 {
				return nil, fmt.Errorf("invindex: load: term %q: corrupt tf", text)
			}
			prev += DocID(d)
			if int(prev) >= int(numDocs) {
				return nil, fmt.Errorf("invindex: load: term %q: doc %d out of range", text, prev)
			}
			postings = append(postings, Posting{Doc: prev, TF: int32(tf)})
			off += n1 + n2
		}
		if off != len(data) {
			return nil, fmt.Errorf("invindex: load: term %q: %d trailing bytes", text, len(data)-off)
		}
		ix.dict[string(text)] = len(ix.terms)
		ix.terms = append(ix.terms, termInfo{
			text: string(text), postings: postings, maxTF: int32(maxTF),
		})
	}
	return ix, nil
}

// LoadIndexFile reads an index from path.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("invindex: load: %w", err)
	}
	defer f.Close()
	return LoadIndex(f)
}

func writeU32(w io.Writer, x uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], x)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("invindex: load: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeF64(w io.Writer, x float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("invindex: save: %w", err)
	}
	return nil
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("invindex: load: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Package lint implements rexlint, the project's custom static-analysis
// suite. It mirrors the shape of golang.org/x/tools/go/analysis — analyzers
// receive a typed, parsed package ("pass") and report position-tagged
// diagnostics — but is built entirely on the standard library (go/ast,
// go/parser, go/types) so the repository carries no external dependencies.
//
// The suite encodes the solver's correctness contracts as machine-checked
// rules:
//
//   - noglobalrand: all randomness must flow from an explicit seed
//     (Config.Seed); global math/rand calls break run-for-run
//     reproducibility.
//   - maporder: map iteration order is randomized in Go; ranging over a map
//     while appending to a slice silently injects nondeterminism into
//     solver and planner state.
//   - floateq: ==/!= between floats in objective/metrics code is almost
//     always a bug; use an epsilon helper.
//   - errignore: silently dropped error returns in internal packages.
//
// A diagnostic can be suppressed by a comment on the same line or the line
// directly above it:
//
//	//rexlint:ignore <analyzer> <reason>
//
// The reason is mandatory by convention (the analyzers do not parse it, but
// reviewers should reject bare ignores).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name is the short identifier used in output and ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package with
	// the given import path. nil means every package. The test harness
	// ignores this field and always runs the analyzer on its fixtures.
	AppliesTo func(pkgPath string) bool
	// Run performs the analysis, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding: a position and a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the interprocedural context: the module-local call graph
	// and function summaries over every package of the run (summary.go).
	// Never nil inside Run.
	Prog *Program

	diags   *[]Diagnostic
	ignores *ignoreSet
	pkgRef  *Package
}

// pkg returns the loaded package under analysis (the *Package behind the
// exported Fset/Files/Pkg/TypesInfo fields), for analyzers that consult
// the interprocedural program.
func (p *Pass) pkg() *Package { return p.pkgRef }

// Reportf records a diagnostic at pos unless an ignore comment suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the comment prefix that suppresses diagnostics.
const ignoreDirective = "rexlint:ignore"

// ignoreEntry is one parsed rexlint:ignore directive naming one analyzer.
// The same entry backs the directive's own line and the line below, so a
// suppression on either marks it used.
type ignoreEntry struct {
	name string // analyzer name or "all"
	pos  token.Position
	used bool
}

// ignoreSet indexes a package's ignore directives by file and line.
type ignoreSet struct {
	lines map[string]map[int][]*ignoreEntry // filename → line → entries
	all   []*ignoreEntry                    // in directive order
}

// suppressed reports whether an ignore entry covers a diagnostic from the
// named analyzer at pos, marking the entry used.
func (s *ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	if s == nil {
		return false
	}
	hit := false
	for _, e := range s.lines[pos.Filename][pos.Line] {
		if e.name == analyzer || e.name == "all" {
			e.used = true
			hit = true
		}
	}
	return hit
}

// buildIgnores scans the package's comments for rexlint:ignore directives.
// A directive suppresses the named analyzers on its own line and on the
// line immediately below (for whole-line comments placed above the code).
func buildIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	out := &ignoreSet{lines: make(map[string]map[int][]*ignoreEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out.lines[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreEntry)
					out.lines[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					e := &ignoreEntry{name: name, pos: pos}
					out.all = append(out.all, e)
					lines[pos.Line] = append(lines[pos.Line], e)
					lines[pos.Line+1] = append(lines[pos.Line+1], e)
				}
			}
		}
	}
	return out
}

// unusedIgnores reports directives that suppressed nothing as diagnostics
// under the pseudo-analyzer name "rexlint". Only directives naming an
// analyzer that actually ran on the package are checked: an ignore for an
// out-of-scope analyzer cannot prove itself either way.
func (s *ignoreSet) unusedIgnores(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.all {
		if e.used || (e.name != "all" && !ran[e.name]) {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "rexlint",
			Pos:      e.pos,
			Message:  fmt.Sprintf("unused rexlint:ignore for %s: no diagnostic here to suppress", e.name),
		})
	}
	return out
}

// RunAnalyzers executes every analyzer that applies to pkg and returns the
// diagnostics sorted by position. The interprocedural program is built
// over pkg alone; whole-module runs should build one Program over every
// loaded package and use RunAnalyzersIn so summaries cross package
// boundaries.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersIn(NewProgram([]*Package{pkg}), pkg, analyzers)
}

// RunAnalyzersIn executes every analyzer that applies to pkg with prog as
// the interprocedural context, appends unused-suppression diagnostics, and
// returns everything sorted by position.
func RunAnalyzersIn(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := prog.ignoresFor(pkg)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
			diags:     &diags,
			ignores:   ignores,
			pkgRef:    pkg,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = append(diags, ignores.unusedIgnores(ran)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

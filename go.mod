module rexchange

go 1.22

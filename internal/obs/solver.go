package obs

// SolverRecorder implements core.Recorder on top of a Registry: one
// counter per (destroy operator, repair operator, outcome) triple, run
// totals, and an iteration-throughput gauge. The outcome label values
// ("repair_failed", "rejected", "accepted", "improved", "new_best") are
// defined by the core LNS loop, which batches counts locally and flushes
// once per run, so no per-iteration call crosses the package boundary.
// Safe for concurrent use by parallel restarts.
type SolverRecorder struct {
	iters      *CounterVec
	runs       *Counter
	runSeconds *Histogram
	rate       *Gauge

	// Partitioned-solve families (core.PartitionRecorder). Partition
	// sub-solves flush through the plain Recorder methods like any run;
	// these add the per-round partitioned topology and exchange volume.
	partitionRounds *Counter
	partitionSolves *Counter
	partitionObj    *Gauge
	exchangeShards  *Counter
	exchangeVacant  *Counter
}

// NewSolverRecorder registers the solver metric families on reg.
func NewSolverRecorder(reg *Registry) *SolverRecorder {
	return &SolverRecorder{
		iters: reg.CounterVec("rex_solver_iterations_total",
			"LNS iterations by destroy operator, repair operator, and outcome.",
			"destroy", "repair", "outcome"),
		runs: reg.Counter("rex_solver_runs_total",
			"Completed SRA runs (each parallel restart counts once)."),
		runSeconds: reg.Histogram("rex_solver_run_seconds",
			"Wall-clock duration of one SRA run.", TimeBuckets()),
		rate: reg.Gauge("rex_solver_iterations_per_second",
			"Iteration throughput of the most recently completed run."),
		partitionRounds: reg.Counter("rex_solver_partition_rounds_total",
			"Partitioned-solve rounds (each round solves the dirty partitions once)."),
		partitionSolves: reg.Counter("rex_solver_partition_solves_total",
			"Partition sub-solves completed across partitioned rounds."),
		partitionObj: reg.Gauge("rex_solver_partition_round_objective",
			"Global objective after the most recent partitioned round."),
		exchangeShards: reg.Counter("rex_solver_exchange_shard_moves_total",
			"Shards traded hot-to-cool by the cross-partition exchange phase."),
		exchangeVacant: reg.Counter("rex_solver_exchange_vacant_trades_total",
			"Vacant machines re-homed into the hottest partition by the exchange phase."),
	}
}

// RecordPartitionRound records one partitioned solve round's topology and
// the global objective after applying the partition results.
func (s *SolverRecorder) RecordPartitionRound(partitions, solved int, objective float64) {
	s.partitionRounds.Inc()
	s.partitionSolves.Add(float64(solved))
	s.partitionObj.Set(objective)
}

// RecordExchange records one cross-partition exchange phase's trades.
func (s *SolverRecorder) RecordExchange(shardMoves, vacantTrades int) {
	s.exchangeShards.Add(float64(shardMoves))
	s.exchangeVacant.Add(float64(vacantTrades))
}

// RecordIterations counts n LNS iterations that hit one (destroy, repair,
// outcome) combination. Called at most once per combination per run.
func (s *SolverRecorder) RecordIterations(destroyOp, repairOp, outcome string, n int) {
	s.iters.With(destroyOp, repairOp, outcome).Add(float64(n))
}

// RecordRun records one completed run's totals and throughput.
func (s *SolverRecorder) RecordRun(iterations, accepted, repairFailures int, seconds float64) {
	s.runs.Inc()
	s.runSeconds.Observe(seconds)
	if seconds > 0 {
		s.rate.Set(float64(iterations) / seconds)
	}
}

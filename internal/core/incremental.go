package core

import (
	"math"

	"rexchange/internal/cluster"
)

// This file maintains the solver objective incrementally across LNS
// iterations. Together with the placement undo journal
// (cluster.Placement.BeginTxn/Rollback) it forms the delta kernel: an
// iteration no longer clones the placement or rescans every shard and
// machine — it journals the neighborhood's mutations, refreshes derived
// state for exactly the entities touched, and rolls both back on
// rejection.
//
// Equivalence contract: evalIncremental must return the *same bits* as the
// reference implementation (objective, objective.go) on every evaluation,
// so that the delta kernel cannot change search trajectories. That rules
// out maintaining the sum-of-squares accumulator itself as a running float
// delta (float addition is not associative; drift would eventually flip an
// annealing acceptance). Instead the kernel maintains the per-machine
// utilization *terms* as deltas — each u[m] holds exactly the bits
// objective would compute, zeroed while the machine is vacant — and reduces
// them with the same left-to-right addition order the reference uses. The
// reduction is a division-free, branch-free array sum (adding a vacant
// machine's +0.0 term is bit-neutral because every partial sum is ≥ +0.0),
// which is an order of magnitude cheaper than the reference scan; the
// moved-shard count is an integer maintained in O(1); and maxU is tracked
// lazily, rescanned only after the machine attaining it lost load. Under
// -tags debugasserts the solver cross-checks the bits against the
// reference on every accepted evaluation.
type objState struct {
	// u[m] is machine m's utilization term, bit-equal to the
	// load/speed the reference objective computes, and exactly 0 while
	// m is vacant (the reference skips vacant machines).
	u []float64

	// maxU is the maximum of u (floored at 0, matching the reference
	// accumulator's zero start) and maxM a machine attaining it, valid
	// only while !maxDirty. A drop on the attaining machine marks the
	// maximum dirty; the next evaluation rescans.
	maxU     float64
	maxM     int
	maxDirty bool

	// moved[s] records whether shard s currently sits away from its
	// initial machine; movedN is the count of set entries.
	moved  []bool
	movedN int
}

// initIncremental builds the objective state from the current placement.
func (st *state) initIncremental() {
	c := st.cur.Cluster()
	o := &st.obj
	o.u = make([]float64, c.NumMachines())
	o.moved = make([]bool, c.NumShards())
	o.movedN = 0
	for m := range o.u {
		id := cluster.MachineID(m)
		if !st.cur.IsVacant(id) {
			o.u[m] = st.cur.Load(id) / c.Machines[m].Speed
		}
	}
	o.rescanMax()
	for s := range o.moved {
		if st.cur.Home(cluster.ShardID(s)) != st.initial[s] {
			o.moved[s] = true
			o.movedN++
		}
	}
}

// rescanMax recomputes the lazy maximum with the same comparison sequence
// as the reference objective (zero start, strict greater-than).
//
//rexlint:noalloc
func (o *objState) rescanMax() {
	maxU, maxM := 0.0, -1
	for m, v := range o.u {
		if v > maxU {
			maxU, maxM = v, m
		}
	}
	o.maxU, o.maxM, o.maxDirty = maxU, maxM, false
}

// refreshMachine re-derives machine m's utilization term from the placement
// and folds it into the lazy maximum. Idempotent: refreshing a machine
// twice with unchanged load is a no-op, so callers may replay a journal
// with duplicate machine entries.
//
//rexlint:noalloc
func (st *state) refreshMachine(m cluster.MachineID) {
	var u float64
	if !st.cur.IsVacant(m) {
		u = st.cur.Load(m) / st.cur.Cluster().Machines[m].Speed
	}
	o := &st.obj
	old := o.u[m]
	o.u[m] = u
	if u > o.maxU {
		// strictly above every term (maxU is an upper bound even while
		// dirty): m is the new argmax and the maximum is clean again
		o.maxU, o.maxM, o.maxDirty = u, int(m), false
	} else if int(m) == o.maxM && u < old {
		o.maxDirty = true
	}
}

// refreshShard re-derives shard s's moved flag, adjusting the count.
// Idempotent like refreshMachine.
//
//rexlint:noalloc
func (st *state) refreshShard(s cluster.ShardID) {
	now := st.cur.Home(s) != st.initial[s]
	o := &st.obj
	if now != o.moved[s] {
		o.moved[s] = now
		if now {
			o.movedN++
		} else {
			o.movedN--
		}
	}
}

// syncTouched snapshots the active journal's (shard, machine) pairs into
// st.touched and refreshes the derived state for each. Called after a
// successful repair, before evaluating the neighborhood.
//
//rexlint:noalloc
func (st *state) syncTouched() {
	st.touched = st.touched[:0]
	for i, n := 0, st.cur.TxnLen(); i < n; i++ {
		s, m := st.cur.TxnOp(i)
		//rexlint:ignore alloccheck amortized growth of a reused buffer; steady state stays within capacity
		st.touched = append(st.touched, touchRec{s: s, m: m})
	}
	for _, t := range st.touched {
		st.refreshShard(t.s)
		st.refreshMachine(t.m)
	}
}

// saveObjState snapshots the lazy-maximum triple at transaction start; the
// remaining objective state is restored by replaying st.touched against the
// rolled-back placement (the refresh helpers are pure functions of it).
func (st *state) saveObjState() {
	st.savedMaxU, st.savedMaxM, st.savedMaxDirty = st.obj.maxU, st.obj.maxM, st.obj.maxDirty
}

// rollbackIncremental undoes a synced-but-rejected neighborhood: the
// placement journal is rolled back, the lazy maximum restored from its
// transaction-start snapshot, and every touched entity re-derived from the
// (bit-exactly restored) placement.
//
//rexlint:noalloc
func (st *state) rollbackIncremental() {
	st.cur.Rollback()
	st.obj.maxU, st.obj.maxM, st.obj.maxDirty = st.savedMaxU, st.savedMaxM, st.savedMaxDirty
	for _, t := range st.touched {
		st.refreshShard(t.s)
		st.refreshMachine(t.m)
	}
}

// evalIncremental returns the solver objective of the current placement,
// bit-identical to objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty,
// st.initial) but without rescanning shards or dividing per machine.
//
//rexlint:noalloc
func (st *state) evalIncremental() float64 {
	o := &st.obj
	if o.maxDirty {
		o.rescanMax()
	}
	sumSq := 0.0
	for _, v := range o.u {
		sumSq += v * v
	}
	obj := o.maxU
	c := st.cur.Cluster()
	if serving := c.NumMachines() - st.cur.NumVacant(); serving > 0 {
		obj += st.cfg.SpreadWeight * math.Sqrt(sumSq/float64(serving))
	}
	if st.initial != nil && st.cfg.MovePenalty > 0 && c.NumShards() > 0 {
		obj += st.cfg.MovePenalty * float64(o.movedN) / float64(c.NumShards())
	}
	return obj
}

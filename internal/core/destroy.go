package core

import (
	"math"
	"sort"

	"rexchange/internal/cluster"
)

// errIdentityPlan is a defensive sentinel; see state.finish.
var errIdentityPlan = errorString("core: internal error: identity reassignment failed to plan")

type errorString string

func (e errorString) Error() string { return string(e) }

// destroyRandom removes q uniformly random shards via a partial
// Fisher-Yates shuffle over a persistent scratch permutation. The buffer is
// reset to the identity each call — same cost as the allocation it replaces
// and it keeps the sampled prefix identical draw-for-draw to a fresh array —
// so the hot loop allocates nothing without perturbing the trajectory.
func (st *state) destroyRandom(q int) {
	n := st.cur.Cluster().NumShards()
	if len(st.shardPerm) != n {
		st.shardPerm = make([]cluster.ShardID, n)
	}
	for i := range st.shardPerm {
		st.shardPerm[i] = cluster.ShardID(i)
	}
	ids := st.shardPerm
	for i := 0; i < q && i < n; i++ {
		j := i + st.rng.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
		st.removeToPool(ids[i])
	}
}

// destroyWorst repeatedly removes the highest-load shard from the machine
// with the highest utilization — directly attacking the objective.
func (st *state) destroyWorst(q int) {
	c := st.cur.Cluster()
	for i := 0; i < q; i++ {
		worst := cluster.Unassigned
		worstU := -1.0
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if st.cur.IsVacant(id) {
				continue
			}
			if u := st.cur.Utilization(id); u > worstU {
				worst, worstU = id, u
			}
		}
		if worst == cluster.Unassigned {
			return
		}
		var hot cluster.ShardID = -1
		hotLoad := -1.0
		st.cur.EachShardOn(worst, func(s cluster.ShardID) {
			if c.Shards[s].Load > hotLoad {
				hot, hotLoad = s, c.Shards[s].Load
			}
		})
		if hot < 0 {
			return
		}
		st.removeToPool(hot)
	}
}

// destroyRelated is Shaw removal: a random seed shard plus the q−1 shards
// most similar to it in (load, static footprint), with a bonus for sharing
// the seed's machine. Removing related shards together lets repair
// recombine them more freely than unrelated random picks.
func (st *state) destroyRelated(q int) {
	c := st.cur.Cluster()
	n := c.NumShards()
	if n == 0 || q <= 0 {
		return
	}
	seed := cluster.ShardID(st.rng.Intn(n))
	seedSh := &c.Shards[seed]
	seedHome := st.cur.Home(seed)

	loadScale := maxShardLoad(c)
	staticScale := maxShardStatic(c)

	all := st.relScratch[:0]
	for i := 0; i < n; i++ {
		s := cluster.ShardID(i)
		if s == seed {
			continue
		}
		sh := &c.Shards[i]
		d := 0.0
		if loadScale > 0 {
			d += math.Abs(sh.Load-seedSh.Load) / loadScale
		}
		if staticScale > 0 {
			d += sh.Static.Dist2(seedSh.Static) / staticScale
		}
		if st.cur.Home(s) != seedHome {
			d += 0.3
		}
		all = append(all, relScored{s, d})
	}
	st.relScratch = all
	st.relSorter.a = all
	sort.Sort(&st.relSorter)
	st.removeToPool(seed)
	for i := 0; i < q-1 && i < len(all); i++ {
		st.removeToPool(all[i].s)
	}
}

// relScored pairs a shard with its Shaw-relatedness distance to the seed.
type relScored struct {
	s    cluster.ShardID
	dist float64
}

// relSorter orders relScored ascending by (dist, shard ID). The state holds
// one instance and sorts through a pointer receiver, so the hot loop pays
// no sort.Slice closure allocation.
type relSorter struct{ a []relScored }

func (r *relSorter) Len() int      { return len(r.a) }
func (r *relSorter) Swap(i, j int) { r.a[i], r.a[j] = r.a[j], r.a[i] }
func (r *relSorter) Less(i, j int) bool {
	if r.a[i].dist < r.a[j].dist {
		return true
	}
	if r.a[i].dist > r.a[j].dist {
		return false
	}
	return r.a[i].s < r.a[j].s
}

// destroyDrain empties one machine entirely, making it returnable as
// compensation. It targets lightly loaded machines with few shards; if no
// machine qualifies (all host more than q+4 shards), it falls back to
// random removal so the iteration still perturbs something.
func (st *state) destroyDrain(q int) {
	c := st.cur.Cluster()
	limit := q + 4
	cands := st.drainScratch[:0]
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		cnt := st.cur.Count(id)
		if cnt == 0 || cnt > limit {
			continue
		}
		cands = append(cands, drainCand{id, st.cur.Utilization(id)})
	}
	st.drainScratch = cands
	if len(cands) == 0 {
		st.destroyRandom(q)
		return
	}
	st.drainSorter.a = cands
	sort.Sort(&st.drainSorter)
	// pick among the 4 easiest-to-drain machines for diversification
	pick := cands[st.rng.Intn(min(4, len(cands)))]
	ids := st.drainIDScratch[:0]
	for i, n := 0, st.cur.Count(pick.m); i < n; i++ {
		ids = append(ids, st.cur.ShardAt(pick.m, i))
	}
	st.drainIDScratch = ids
	for _, s := range ids {
		st.removeToPool(s)
	}
}

// drainCand is a drainable machine and its utilization.
type drainCand struct {
	m    cluster.MachineID
	util float64
}

// drainSorter orders drainCand ascending by (utilization, machine ID);
// pointer receiver for the same zero-allocation reason as relSorter.
type drainSorter struct{ a []drainCand }

func (d *drainSorter) Len() int      { return len(d.a) }
func (d *drainSorter) Swap(i, j int) { d.a[i], d.a[j] = d.a[j], d.a[i] }
func (d *drainSorter) Less(i, j int) bool {
	if d.a[i].util < d.a[j].util {
		return true
	}
	if d.a[i].util > d.a[j].util {
		return false
	}
	return d.a[i].m < d.a[j].m
}

// removeToPool unassigns s and records it for repair.
func (st *state) removeToPool(s cluster.ShardID) {
	if st.cur.Home(s) == cluster.Unassigned {
		return
	}
	if err := st.cur.Remove(s); err == nil {
		st.pool = append(st.pool, s)
	}
}

func maxShardLoad(c *cluster.Cluster) float64 {
	m := 0.0
	for i := range c.Shards {
		if c.Shards[i].Load > m {
			m = c.Shards[i].Load
		}
	}
	return m
}

func maxShardStatic(c *cluster.Cluster) float64 {
	m := 0.0
	for i := range c.Shards {
		if d := c.Shards[i].Static.Norm2(); d > m {
			m = d
		}
	}
	return m
}

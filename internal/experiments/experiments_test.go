package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Scale{Quick: true}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float", s)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bee"}}
	tbl.AddRow(1, 2.34567)
	tbl.AddRow("long-cell", "x")
	s := tbl.String()
	for _, want := range []string{"== X: demo ==", "a", "bee", "2.3457", "long-cell"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestT1GapNonNegative(t *testing.T) {
	tbl, err := T1OptimalityGap(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tbl.Rows {
		if r[8] != "optimal" && r[8] != "certified" {
			continue // node-limited runs have no certified optimum
		}
		gap := parseF(t, r[6])
		if gap < -0.5 { // small numeric slack: SRA cannot beat the optimum
			t.Errorf("negative optimality gap %v%% in row %v", gap, r)
		}
	}
}

func TestT2SRABeatsInitial(t *testing.T) {
	tbl, err := T2EndToEnd(quick)
	if err != nil {
		t.Fatal(err)
	}
	// index rows by dataset+method
	get := func(ds, m string) []string {
		for _, r := range tbl.Rows {
			if r[0] == ds && strings.HasPrefix(r[1], m) {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", ds, m)
		return nil
	}
	for _, ds := range []string{"synthetic", "realistic"} {
		init := parseF(t, get(ds, "initial")[2])
		sra := parseF(t, get(ds, "sra-k")[2])
		if sra >= init {
			t.Errorf("%s: SRA maxU %v did not improve on initial %v", ds, sra, init)
		}
		// SRA with exchange should beat or roughly match greedy (quick runs
		// are under-converged; allow small slack)
		greedy := parseF(t, get(ds, "greedy")[2])
		if sra > greedy*1.05 {
			t.Errorf("%s: SRA (%v) worse than greedy (%v)", ds, sra, greedy)
		}
	}
}

func TestT3MoreExchangeNeverHurts(t *testing.T) {
	tbl, err := T3PlanFeasibility(quick)
	if err != nil {
		t.Fatal(err)
	}
	// group rows by (fill, displace); planned count must be non-decreasing
	// in K within each group
	byKey := map[string][]int{}
	order := []string{}
	for _, r := range tbl.Rows {
		key := r[0] + "/" + r[1]
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], int(parseF(t, r[3])))
	}
	for _, key := range order {
		counts := byKey[key]
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Errorf("%s: planning success dropped with more exchange machines: %v",
					key, counts)
			}
		}
	}
}

func TestF1MoreKNeverHurts(t *testing.T) {
	tbl, err := F1ExchangeSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	var sraMax, overhead []float64
	for _, r := range tbl.Rows {
		if r[1] == "sra" {
			sraMax = append(sraMax, parseF(t, r[2]))
			overhead = append(overhead, parseF(t, r[4])+parseF(t, r[5]))
		}
	}
	if len(sraMax) < 2 {
		t.Fatal("need at least two K points")
	}
	// K=hi should not be (much) worse than K=0: allow stochastic slack
	if sraMax[len(sraMax)-1] > sraMax[0]*1.05 {
		t.Errorf("more exchange machines hurt balance: %v", sraMax)
	}
	// migration overhead (staged + displaced moves) must not grow with K
	if overhead[len(overhead)-1] > overhead[0] {
		t.Errorf("more exchange machines raised migration overhead: %v", overhead)
	}
	// every sra schedule must have been executable
	for _, r := range tbl.Rows {
		if r[1] == "sra" && parseF(t, r[6]) < 0 {
			t.Errorf("unexecutable schedule at K=%s", r[0])
		}
	}
}

func TestF2SRAWinsAtHighFill(t *testing.T) {
	tbl, err := F2TightnessSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	// at the highest fill in the sweep, SRA must be at least as good as
	// greedy
	var lastFill string
	for _, r := range tbl.Rows {
		lastFill = r[0]
	}
	var sra, greedy float64
	for _, r := range tbl.Rows {
		if r[0] != lastFill {
			continue
		}
		switch {
		case strings.HasPrefix(r[1], "sra"):
			sra = parseF(t, r[3])
		case r[1] == "greedy":
			greedy = parseF(t, r[3])
		}
	}
	if sra > greedy+1e-9 {
		t.Errorf("at fill %s SRA (%v) worse than greedy (%v)", lastFill, sra, greedy)
	}
}

func TestF3ProducesTimings(t *testing.T) {
	tbl, err := F3Scalability(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if parseF(t, r[3]) < 0 {
			t.Errorf("negative runtime in %v", r)
		}
		if parseF(t, r[5]) > parseF(t, r[4]) {
			t.Errorf("max utilization rose during solve: %v", r)
		}
	}
}

func TestF4TrajectoryDecreases(t *testing.T) {
	tbl, err := F4Convergence(quick)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i, r := range tbl.Rows {
		v := parseF(t, r[1])
		if i > 0 && v > prev+1e-9 {
			t.Errorf("objective rose between checkpoints: %v → %v", prev, v)
		}
		prev = v
	}
}

func TestF5LatencyImproves(t *testing.T) {
	tbl, err := F5LatencySim(quick)
	if err != nil {
		t.Fatal(err)
	}
	var before, after []string
	for _, r := range tbl.Rows {
		switch r[0] {
		case "initial":
			before = r
		case "rebalanced":
			after = r
		}
	}
	if before == nil || after == nil {
		t.Fatal("missing before/after rows")
	}
	// max busy fraction must drop after rebalancing
	if parseF(t, after[1]) > parseF(t, before[1])+1e-9 {
		t.Errorf("max busy did not drop: %s → %s", before[1], after[1])
	}
	// p99 should improve (allow small slack: queues are stochastic)
	if parseF(t, after[5]) > parseF(t, before[5])*1.05 {
		t.Errorf("p99 did not improve: %s → %s", before[5], after[5])
	}
}

func TestF6FullVariantCompetitive(t *testing.T) {
	tbl, err := F6OperatorAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	var full, worst float64
	for _, r := range tbl.Rows {
		if r[0] == "initial" {
			continue
		}
		v := parseF(t, r[1])
		if r[0] == "full" {
			full = v
		}
		if v > worst {
			worst = v
		}
	}
	if full == 0 {
		t.Fatal("full variant missing")
	}
	if full > worst+1e-9 {
		t.Errorf("full variant (%v) is the worst ablation (%v)", full, worst)
	}
}

func TestT4AffinityAlwaysHolds(t *testing.T) {
	tbl, err := T4Replicated(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[5] != "yes" {
			t.Errorf("anti-affinity violated in row %v", r)
		}
		if parseF(t, r[3]) > parseF(t, r[2]) {
			t.Errorf("rebalance worsened maxU in row %v", r)
		}
	}
}

func TestF7RebalancingBeatsDrift(t *testing.T) {
	tbl, err := F7ContinuousRebalance(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// In every round the rebalanced series must end at or below the
	// drifting static series, and each round's rebalance must not worsen
	// its own starting point.
	last := tbl.Rows[len(tbl.Rows)-1]
	if parseF(t, last[3]) > parseF(t, last[1]) {
		t.Errorf("final rebalanced maxU %s above static %s", last[3], last[1])
	}
	for _, r := range tbl.Rows {
		if parseF(t, r[3]) > parseF(t, r[2])+1e-9 {
			t.Errorf("round %s: rebalance worsened maxU", r[0])
		}
	}
}

func TestF8RoutingAndRebalanceBothHelp(t *testing.T) {
	tbl, err := F8ReplicaRouting(quick)
	if err != nil {
		t.Fatal(err)
	}
	get := func(placement, routing string) []string {
		for _, r := range tbl.Rows {
			if r[0] == placement && r[1] == routing {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", placement, routing)
		return nil
	}
	// rebalancing helps under static routing
	if parseF(t, get("rebalanced", "static")[5]) > parseF(t, get("initial", "static")[5])*1.05 {
		t.Error("rebalance did not improve p99 under static routing")
	}
	// least-loaded routing should not be worse than round-robin on the
	// initial (imbalanced) placement
	if parseF(t, get("initial", "least-loaded")[5]) > parseF(t, get("initial", "round-robin")[5])*1.10 {
		t.Errorf("least-loaded (%s) much worse than round-robin (%s)",
			get("initial", "least-loaded")[5], get("initial", "round-robin")[5])
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8"} {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown ID should be nil")
	}
}

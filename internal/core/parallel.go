package core

import (
	"fmt"
	"runtime"
	"sync"

	"rexchange/internal/cluster"
)

// SolveParallel runs `restarts` independent LNS searches concurrently —
// same configuration, decorrelated seeds — and returns the best result by
// solver objective. LNS is embarrassingly parallel across restarts and the
// placement state is cloned per worker, so speedup is near-linear until
// memory bandwidth binds. The input placement is shared read-only and
// never modified.
//
// Determinism: for a fixed (Config.Seed, restarts) the set of searches and
// the returned result are reproducible regardless of scheduling, because
// selection uses the objective with the restart index as tie-breaker.
//
// Individual restart failures do not abort the portfolio: the best
// successful result is returned with Result.FailedRestarts counting the
// losses, and an error is returned only when every restart failed.
func (sv *Solver) SolveParallel(p *cluster.Placement, restarts int) (*Result, error) {
	if restarts <= 0 {
		restarts = runtime.GOMAXPROCS(0)
	}
	if restarts == 1 {
		return sv.Solve(p)
	}

	outcomes := make([]outcome, restarts)
	var wg sync.WaitGroup
	// Cap concurrent workers at GOMAXPROCS: each clones the placement and
	// more parallelism than cores only adds memory pressure.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < restarts; i++ {
		wg.Add(1)
		//rexlint:transfer workers read p only; Solve clones before mutating (newState)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := sv.cfg
			// decorrelate: large odd stride over the seed space
			cfg.Seed = sv.cfg.Seed + int64(i)*0x9E3779B1
			res, err := New(cfg).Solve(p)
			outcomes[i] = outcome{res, err}
		}(i)
	}
	wg.Wait()
	return reduceOutcomes(outcomes)
}

// outcome is one restart's result in the portfolio.
type outcome struct {
	res *Result
	err error
}

// reduceOutcomes selects the best successful restart by objective (ties
// resolved by restart index, never completion order, preserving the
// determinism contract). Partially failed portfolios are not silent: the
// number of failed restarts is recorded in the winner's FailedRestarts so
// callers can detect a degraded portfolio. Only when every restart fails
// does the reduction return an error (wrapping the first, by index).
func reduceOutcomes(outcomes []outcome) (*Result, error) {
	var best *Result
	var firstErr error
	failed := 0
	for i := range outcomes {
		o := outcomes[i]
		if o.err != nil {
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if best == nil || o.res.Objective < best.Objective {
			best = o.res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: all %d restarts failed: %w", len(outcomes), firstErr)
	}
	best.FailedRestarts = failed
	return best, nil
}

package sim

import (
	"testing"

	"rexchange/internal/workload"
)

// TestBusyFractionBounded is the regression test for the busy-fraction
// denominator: a trace with no declared Duration used to be normalized by
// the last *arrival* time, so a backlog of expensive queries pushed the
// "fraction" past 1.0. Busy must be a true fraction of observable server
// time, whatever the trace declares.
func TestBusyFractionBounded(t *testing.T) {
	p := mkPlacement(t, []float64{10, 10})

	// All arrivals land in the first second, each query costing far more
	// than one second of service: the queues drain long after the last
	// arrival.
	tr := &workload.Trace{}
	for i := 0; i < 40; i++ {
		tr.Queries = append(tr.Queries, workload.Query{
			At:   float64(i) * 0.025,
			Cost: 500,
		})
	}

	for _, dur := range []float64{0, 0.5} {
		tr.Duration = dur
		rep, err := Run(p, tr, DefaultConfig())
		if err != nil {
			t.Fatalf("Duration=%v: %v", dur, err)
		}
		for m, frac := range rep.MachineBusy {
			if frac < 0 || frac > 1 {
				t.Errorf("Duration=%v: machine %d busy fraction %v outside [0,1]", dur, m, frac)
			}
		}
		if rep.MaxBusy < 0 || rep.MaxBusy > 1 {
			t.Errorf("Duration=%v: MaxBusy = %v outside [0,1]", dur, rep.MaxBusy)
		}
		// The scenario saturates the machines: the fix must not collapse the
		// fraction toward zero either.
		if rep.MaxBusy < 0.5 {
			t.Errorf("Duration=%v: MaxBusy = %v, want near-saturated", dur, rep.MaxBusy)
		}
	}
}

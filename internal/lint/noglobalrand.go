package lint

import (
	"go/ast"
	"go/types"
)

// NoGlobalRand forbids package-level math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, …) in non-test code. The solver promises
// bit-identical results for a fixed Config.Seed, including across parallel
// restarts; the global generator is shared mutable state whose consumption
// order depends on goroutine scheduling, so a single stray rand.Intn breaks
// the reproducibility contract silently. Constructors (rand.New,
// rand.NewSource, rand.NewZipf, rand.NewPCG, rand.NewChaCha8) remain
// allowed: they are exactly how a seeded *rand.Rand is built.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid global math/rand functions; thread a seeded *rand.Rand from Config.Seed",
	Run:  runNoGlobalRand,
}

// randConstructors are the math/rand(/v2) package-level names that build
// explicit generators rather than consuming the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNoGlobalRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			name := sel.Sel.Name
			if randConstructors[name] {
				return true
			}
			// Only flag functions: types (rand.Rand, rand.Source, rand.Zipf)
			// are legitimate references.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global %s.%s draws from shared scheduler-dependent state; thread a seeded *rand.Rand (from Config.Seed) instead",
				path, name)
			return true
		})
	}
	return nil
}

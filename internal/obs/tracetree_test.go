package obs

import (
	"strings"
	"testing"
)

// traceEv builds one SpanTrace journal record.
func traceEv(t float64, round int, te TraceEvent) Event {
	return Event{T: t, Span: SpanTrace, Phase: PhaseEnd, Round: round, Trace: &te}
}

// testTraceEvents is a tiny synthetic journal: one query trace with two
// legs (one blamed on move r0#3), its merge span, plus the move's own
// span in the round trace, with the move span emitted twice (a retry) to
// exercise last-record-wins dedup.
func testTraceEvents() []Event {
	q := TraceID(0xabc)
	root := DeriveSpan(q, 0).String()
	merge := DeriveSpan(q, 1).String()
	leg0 := DeriveSpan(q, 2, 0).String()
	leg1 := DeriveSpan(q, 2, 1).String()
	rt := RoundTraceID(0)
	return []Event{
		traceEv(1.5, 0, TraceEvent{ // fast leg
			ID: q.String(), Span: leg0, Parent: root, Op: OpLeg,
			Start: 1.0, Machine: 2, Shard: 7, Seq: -1,
		}),
		traceEv(4.0, 0, TraceEvent{ // slow leg, blamed
			ID: q.String(), Span: leg1, Parent: root, Op: OpLeg,
			Start: 1.0, Machine: 5, Shard: 9, Seq: -1,
			Blocked: &BlameRef{Round: 0, Seq: 3, Machine: 5, Kind: BlameQueue, Delay: 1.25},
		}),
		traceEv(4.0, 0, TraceEvent{
			ID: q.String(), Span: merge, Parent: root, Op: OpMerge,
			Start: 1.5, Machine: 5, Shard: -1, Seq: -1,
		}),
		traceEv(4.0, 0, TraceEvent{
			ID: q.String(), Span: root, Op: OpQuery,
			Start: 1.0, Machine: -1, Shard: -1, Seq: -1, Mig: "during",
		}),
		traceEv(2.0, 0, TraceEvent{ // first attempt, superseded by retry below
			ID: rt.String(), Span: MoveSpanID(0, 3).String(), Parent: RoundSpanID(0).String(),
			Op: OpMove, Start: 0.5, Machine: 4, Shard: 9, Seq: 3,
		}),
		traceEv(3.0, 0, TraceEvent{ // retry record wins
			ID: rt.String(), Span: MoveSpanID(0, 3).String(), Parent: RoundSpanID(0).String(),
			Op: OpMove, Start: 2.0, Machine: 6, Shard: 9, Seq: 3,
		}),
	}
}

func TestBuildTracesShape(t *testing.T) {
	traces := BuildTraces(testTraceEvents())
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	q := traces[0]
	if q.Root == nil || q.Root.Op != OpQuery {
		t.Fatalf("first trace root = %+v, want query span", q.Root)
	}
	if got := q.Root.Duration(); got != 3.0 {
		t.Fatalf("query duration %v, want 3.0", got)
	}
	if n := len(q.Root.Children); n != 3 {
		t.Fatalf("query root has %d children, want 3 (2 legs + merge)", n)
	}
	// Children sorted by (Start, span ID): both legs start at 1.0, merge
	// at 1.5, so the merge is last.
	if q.Root.Children[2].Op != OpMerge {
		t.Fatalf("last child op %q, want merge", q.Root.Children[2].Op)
	}

	rt := traces[1]
	if rt.Root != nil {
		t.Fatalf("round trace has root %+v; no round span was journaled", rt.Root)
	}
	if len(rt.Spans) != 1 {
		t.Fatalf("round trace has %d spans, want 1 (move deduped)", len(rt.Spans))
	}
	mv := rt.Spans[0]
	if mv.Start != 2.0 || mv.Machine != 6 {
		t.Fatalf("dedup kept first move record: %+v, want the retry (start 2, machine 6)", mv.TraceEvent)
	}
	if mv.Round != 0 {
		t.Fatalf("move span round %d, want 0", mv.Round)
	}
}

func TestTraceReportsPinned(t *testing.T) {
	traces := BuildTraces(testTraceEvents())

	wantCritical := "phase before  no sampled queries\n" +
		"phase during  trace 0000000000000abc  latency 3.000000  arrive 1.000000\n" +
		"  slowest leg: machine 5 shard 9  span 3.000000\n" +
		"    blocked_by move r0#3  machine 5  queue 1.250000\n" +
		"  merge wait 2.500000 behind machine 5\n" +
		"phase after   no sampled queries\n"
	if got := CriticalPath(traces); got != wantCritical {
		t.Fatalf("critical path:\n%s\nwant:\n%s", got, wantCritical)
	}

	wantBlame := "blame by move:\n" +
		"  move r0#3     delay 1.250000  legs 1 (drag 0, queue 1)  shard 9 -> machine 6\n" +
		"blame by machine:\n" +
		"  machine 5    delay 1.250000  legs 1\n" +
		"total attributed delay 1.250000 over 1 delayed legs, 1 sampled queries\n"
	if got := Blame(traces); got != wantBlame {
		t.Fatalf("blame:\n%s\nwant:\n%s", got, wantBlame)
	}

	wantTop := "top 1 of 1 sampled queries:\n" +
		"  1. 0000000000000abc  phase during  latency 3.000000  legs 2  blamed 1.250000\n"
	if got := Top(traces, 5); got != wantTop {
		t.Fatalf("top:\n%s\nwant:\n%s", got, wantTop)
	}
}

// TestTraceReportsStable: repeated reconstruction and rendering of the
// same events is byte-identical — the renderers never iterate a map
// without sorting.
func TestTraceReportsStable(t *testing.T) {
	events := testTraceEvents()
	render := func() string {
		traces := BuildTraces(events)
		return CriticalPath(traces) + Blame(traces) + Top(traces, 10)
	}
	first := render()
	for i := 0; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs:\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, "move r0#3") {
		t.Fatalf("reports never name the blamed move:\n%s", first)
	}
}

package ctl

import (
	"fmt"
	"strings"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
	"rexchange/internal/vec"
)

// mkCluster builds a uniform-resource cluster from per-machine capacities
// and per-shard static sizes (unit loads, speed 1).
func mkCluster(caps []float64, statics []float64) *cluster.Cluster {
	c := &cluster.Cluster{}
	for i, cp := range caps {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(i), Capacity: vec.Uniform(cp), Speed: 1,
		})
	}
	for i, st := range statics {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(i), Static: vec.Uniform(st), Load: 1,
		})
	}
	return c
}

func mustPlacement(t *testing.T, c *cluster.Cluster, assign []cluster.MachineID) *cluster.Placement {
	t.Helper()
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newExec(t *testing.T, c *cluster.Cluster, cfg ExecConfig) *Executor {
	t.Helper()
	ex, err := NewExecutor(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// checkTransient verifies, from the executor's externally visible state,
// that resident usage plus in-flight destination reservations fits every
// machine — the paper's transient constraint.
func checkTransient(t *testing.T, ex *Executor, live *cluster.Placement) {
	t.Helper()
	c := live.Cluster()
	extra := make([]vec.Vec, c.NumMachines())
	for _, mv := range ex.MoveStates() {
		if mv.Status == MoveInFlight.String() {
			extra[mv.To] = extra[mv.To].Add(c.Shards[mv.Shard].Static)
		}
	}
	for m := 0; m < c.NumMachines(); m++ {
		total := live.Used(cluster.MachineID(m)).Add(extra[m])
		if !total.LEQ(c.Machines[m].Capacity.Add(vec.Uniform(1e-9))) {
			t.Fatalf("machine %d transient usage %v exceeds capacity %v",
				m, total, c.Machines[m].Capacity)
		}
	}
}

// drive runs the executor to completion on the virtual clock, checking the
// transient constraint after every event.
func drive(t *testing.T, ex *Executor, live *cluster.Placement, clock *VirtualClock) {
	t.Helper()
	if err := ex.Tick(live, clock.Now()); err != nil {
		t.Fatal(err)
	}
	checkTransient(t, ex, live)
	for !ex.Done() {
		next, ok := ex.NextEvent(clock.Now())
		if !ok {
			t.Fatalf("executor stalled: %+v", ex.Counters())
		}
		clock.Sleep(next - clock.Now())
		if err := ex.Tick(live, clock.Now()); err != nil {
			t.Fatal(err)
		}
		checkTransient(t, ex, live)
	}
}

func execCfg(conc int) ExecConfig {
	return ExecConfig{Migration: sim.MigrationConfig{Bandwidth: 1, Concurrency: conc}}
}

func TestExecutorRunsPlanToCompletion(t *testing.T) {
	c := mkCluster([]float64{10, 10, 10}, []float64{2, 3, 4})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0, 0})
	target := mustPlacement(t, c, []cluster.MachineID{0, 1, 2})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	ex := newExec(t, c, execCfg(1))
	ex.SetPlan(pl)
	clock := NewVirtualClock()
	drive(t, ex, live, clock)

	for s := 0; s < c.NumShards(); s++ {
		if live.Home(cluster.ShardID(s)) != target.Home(cluster.ShardID(s)) {
			t.Fatalf("shard %d on %d, want %d", s, live.Home(cluster.ShardID(s)), target.Home(cluster.ShardID(s)))
		}
	}
	ctr := ex.Counters()
	if ctr.Completed != pl.NumMoves() || ctr.Failures != 0 {
		t.Fatalf("counters = %+v, want %d completions", ctr, pl.NumMoves())
	}
	// concurrency 1 at bandwidth 1: makespan is the summed move volume
	want := pl.BytesMoved(c)
	if diff := clock.Now() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("makespan %g, want %g", clock.Now(), want)
	}
	if err := live.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorBoundsInFlight(t *testing.T) {
	// Six independent moves; concurrency 2 must cap the overlap.
	c := mkCluster([]float64{30, 30}, []float64{2, 2, 2, 2, 2, 2})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0, 0, 0, 0, 0})
	target := mustPlacement(t, c, []cluster.MachineID{1, 1, 1, 1, 1, 1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	ex := newExec(t, c, execCfg(2))
	ex.SetPlan(pl)
	drive(t, ex, live, NewVirtualClock())
	ctr := ex.Counters()
	if ctr.PeakParallel != 2 {
		t.Fatalf("peak parallel = %d, want 2", ctr.PeakParallel)
	}
}

// TestExecutorAdmissionBlocks drives the canonical swap-with-staging plan:
// admission must delay dependent moves until space frees, and the final
// placement must realize the target.
func TestExecutorAdmissionBlocks(t *testing.T) {
	c := mkCluster([]float64{10, 10, 8}, []float64{7, 7})
	live := mustPlacement(t, c, []cluster.MachineID{0, 1})
	target := mustPlacement(t, c, []cluster.MachineID{1, 0})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Staged == 0 {
		t.Fatalf("expected a staged plan, got %+v", pl)
	}
	ex := newExec(t, c, execCfg(4))
	ex.SetPlan(pl)
	drive(t, ex, live, NewVirtualClock())
	if live.Home(0) != 1 || live.Home(1) != 0 {
		t.Fatalf("swap not realized: homes %d,%d", live.Home(0), live.Home(1))
	}
}

func TestExecutorRetryWithBackoff(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{4})
	live := mustPlacement(t, c, []cluster.MachineID{0})
	target := mustPlacement(t, c, []cluster.MachineID{1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := execCfg(1)
	cfg.BackoffBase = 2
	cfg.BackoffMax = 3
	fails := 0
	cfg.Failure = func(mv plan.Move, attempt int) bool {
		if attempt <= 3 {
			fails++
			return true
		}
		return false
	}
	ex := newExec(t, c, cfg)
	ex.SetPlan(pl)
	clock := NewVirtualClock()
	drive(t, ex, live, clock)
	if live.Home(0) != 1 {
		t.Fatalf("move not committed after retries")
	}
	ctr := ex.Counters()
	if ctr.Failures != 3 || fails != 3 || ctr.Completed != 1 {
		t.Fatalf("counters = %+v (fails=%d), want 3 failures 1 completion", ctr, fails)
	}
	// 4 copies of duration 4 plus backoffs 2, 3 (capped), 3 (capped).
	want := 4*4.0 + 2 + 3 + 3
	if diff := clock.Now() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("makespan %g, want %g", clock.Now(), want)
	}
}

func TestExecutorAbandonsAfterMaxAttempts(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{4, 2})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0})
	target := mustPlacement(t, c, []cluster.MachineID{1, 1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := execCfg(1)
	cfg.MaxAttempts = 2
	cfg.BackoffBase = 0.1
	cfg.Failure = func(plan.Move, int) bool { return true }
	ex := newExec(t, c, cfg)
	ex.SetPlan(pl)
	clock := NewVirtualClock()

	var tickErr error
	if tickErr = ex.Tick(live, clock.Now()); tickErr != nil {
		t.Fatal(tickErr)
	}
	for tickErr == nil {
		next, ok := ex.NextEvent(clock.Now())
		if !ok {
			break
		}
		clock.Sleep(next - clock.Now())
		tickErr = ex.Tick(live, clock.Now())
	}
	if tickErr == nil || !strings.Contains(tickErr.Error(), "abandoning plan") {
		t.Fatalf("expected abandonment error, got %v", tickErr)
	}
	if !ex.Done() {
		t.Fatal("executor should be quiescent after abandoning the plan")
	}
	// the shard never moved and nothing stays reserved
	if live.Home(0) != 0 || live.Home(1) != 0 {
		t.Fatalf("placement mutated by failed plan: homes %d,%d", live.Home(0), live.Home(1))
	}
	checkTransient(t, ex, live)
	if err := live.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorSupersededPlanAborts(t *testing.T) {
	c := mkCluster([]float64{10, 10, 10}, []float64{4, 4})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0})
	target := mustPlacement(t, c, []cluster.MachineID{1, 1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	ex := newExec(t, c, execCfg(1))
	ex.SetPlan(pl)
	clock := NewVirtualClock()
	if err := ex.Tick(live, clock.Now()); err != nil {
		t.Fatal(err)
	}
	if ex.Counters().InFlight != 1 {
		t.Fatalf("expected one in-flight move, got %+v", ex.Counters())
	}

	// Supersede mid-flight: the in-flight copy is aborted, the pending one
	// cancelled, and the shard stays on its source.
	ex.SetPlan(nil)
	ctr := ex.Counters()
	if ctr.Aborted != 1 || ctr.Cancelled != 1 || !ex.Done() {
		t.Fatalf("counters after supersede = %+v", ctr)
	}
	if live.Home(0) != 0 {
		t.Fatalf("aborted shard moved to %d", live.Home(0))
	}

	// A fresh plan over the same shards must run to completion: the old
	// reservations are gone.
	pl2, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetPlan(pl2)
	drive(t, ex, live, clock)
	if live.Home(0) != 1 || live.Home(1) != 1 {
		t.Fatalf("replacement plan not realized: homes %d,%d", live.Home(0), live.Home(1))
	}
}

func TestExecutorZeroPlanIsDone(t *testing.T) {
	c := mkCluster([]float64{10}, []float64{1})
	live := mustPlacement(t, c, []cluster.MachineID{0})
	ex := newExec(t, c, execCfg(1))
	if !ex.Done() {
		t.Fatal("fresh executor should be done")
	}
	ex.SetPlan(&plan.Plan{})
	if !ex.Done() {
		t.Fatal("empty plan should be done")
	}
	if err := ex.Tick(live, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.NextEvent(0); ok {
		t.Fatal("no events expected")
	}
}

// obsLog records MoveObserver callbacks for inspection.
type obsLog struct {
	events []string
	open   map[cluster.ShardID]int // shards with a started-but-unfinished copy
}

func newObsLog() *obsLog { return &obsLog{open: map[cluster.ShardID]int{}} }

func (o *obsLog) MoveStarted(mv plan.Move, ref MoveRef, at, eta float64) {
	if eta <= at {
		panic("eta not after start")
	}
	o.open[mv.S]++
	o.events = append(o.events, fmt.Sprintf("start s%d %g", mv.S, at))
}

func (o *obsLog) MoveFinished(mv plan.Move, ref MoveRef, at float64, committed bool) {
	if o.open[mv.S] <= 0 {
		panic("finish without matching start")
	}
	o.open[mv.S]--
	o.events = append(o.events, fmt.Sprintf("finish s%d %g %v", mv.S, at, committed))
}

// TestExecutorObserverLifecycle: every dispatch pairs with exactly one
// finish; failed attempts and aborted copies report committed=false,
// landed copies committed=true.
func TestExecutorObserverLifecycle(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{4})
	live := mustPlacement(t, c, []cluster.MachineID{0})
	target := mustPlacement(t, c, []cluster.MachineID{1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	log := newObsLog()
	cfg := execCfg(1)
	cfg.BackoffBase = 1
	cfg.Observer = log
	cfg.Failure = func(mv plan.Move, attempt int) bool { return attempt == 1 }
	ex := newExec(t, c, cfg)
	ex.SetPlan(pl)
	clock := NewVirtualClock()
	drive(t, ex, live, clock)

	// copy 4s fails at t=4, retries at t=5, commits at t=9
	want := []string{"start s0 0", "finish s0 4 false", "start s0 5", "finish s0 9 true"}
	if len(log.events) != len(want) {
		t.Fatalf("events = %v, want %v", log.events, want)
	}
	for i := range want {
		if log.events[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, log.events[i], want[i])
		}
	}

	// Supersession aborts an in-flight copy with committed=false.
	live2 := mustPlacement(t, c, []cluster.MachineID{0})
	target2 := mustPlacement(t, c, []cluster.MachineID{1})
	pl2, err := plan.DefaultPlanner().Build(live2, target2)
	if err != nil {
		t.Fatal(err)
	}
	log2 := newObsLog()
	cfg2 := execCfg(1)
	cfg2.Observer = log2
	ex2 := newExec(t, c, cfg2)
	ex2.SetPlan(pl2)
	if err := ex2.Tick(live2, 0); err != nil {
		t.Fatal(err)
	}
	ex2.SetPlan(nil) // abort mid-flight
	want2 := []string{"start s0 0", "finish s0 0 false"}
	if len(log2.events) != 2 || log2.events[0] != want2[0] || log2.events[1] != want2[1] {
		t.Fatalf("abort events = %v, want %v", log2.events, want2)
	}
	for s, n := range log2.open {
		if n != 0 {
			t.Fatalf("shard %d left with %d unmatched starts", s, n)
		}
	}
}

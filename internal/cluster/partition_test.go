package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"rexchange/internal/vec"
)

// tieredCluster builds machines in three hardware shapes interleaved by ID,
// with a few shards placed pseudo-randomly.
func tieredCluster(t *testing.T, machines, shards int, seed int64) *Placement {
	t.Helper()
	c := &Cluster{}
	shapes := []Machine{
		{Capacity: vec.New(64, 512, 10), Speed: 1},
		{Capacity: vec.New(128, 1024, 25), Speed: 1.8},
		{Capacity: vec.New(256, 2048, 40), Speed: 3},
	}
	for m := 0; m < machines; m++ {
		mm := shapes[m%len(shapes)]
		mm.ID = MachineID(m)
		c.Machines = append(c.Machines, mm)
	}
	r := rand.New(rand.NewSource(seed))
	for s := 0; s < shards; s++ {
		c.Shards = append(c.Shards, Shard{
			ID:     ShardID(s),
			Static: vec.New(1+r.Float64(), 4+r.Float64(), 0.1),
			Load:   r.Float64(),
		})
	}
	p := NewPlacement(c)
	for s := 0; s < shards; s++ {
		for {
			m := MachineID(r.Intn(machines))
			if p.PlaceChecked(ShardID(s), m) {
				break
			}
		}
	}
	return p
}

func TestPartitionByShapeClasses(t *testing.T) {
	p := tieredCluster(t, 30, 60, 1)
	c := p.Cluster()
	parts := PartitionByShape(c, PartitionOptions{Target: 3})
	if err := CheckPartition(c, parts); err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3 shape classes", len(parts))
	}
	// Each partition must be shape-pure here: three classes, target 3.
	for pi, part := range parts {
		k := shapeOf(&c.Machines[part[0]])
		for _, m := range part {
			if shapeOf(&c.Machines[m]) != k {
				t.Fatalf("partition %d mixes shapes at machine %d", pi, m)
			}
		}
	}
}

func TestPartitionByShapeSplitsHomogeneous(t *testing.T) {
	c := &Cluster{}
	for m := 0; m < 40; m++ {
		c.Machines = append(c.Machines, Machine{ID: MachineID(m), Capacity: vec.Uniform(100), Speed: 1})
	}
	c.Shards = []Shard{{ID: 0, Static: vec.Uniform(1), Load: 1}}
	parts := PartitionByShape(c, PartitionOptions{Target: 4})
	if err := CheckPartition(c, parts); err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("homogeneous fleet: got %d partitions, want 4", len(parts))
	}
	for _, part := range parts {
		if len(part) != 10 {
			t.Fatalf("uneven split: partition size %d, want 10", len(part))
		}
	}
}

func TestPartitionByShapeMergesTinyClasses(t *testing.T) {
	c := &Cluster{}
	for m := 0; m < 12; m++ {
		c.Machines = append(c.Machines, Machine{ID: MachineID(m), Capacity: vec.Uniform(100), Speed: 1})
	}
	// One odd machine: its singleton class must be merged, not emitted.
	c.Machines[11].Speed = 9
	c.Shards = []Shard{{ID: 0, Static: vec.Uniform(1), Load: 1}}
	parts := PartitionByShape(c, PartitionOptions{Target: 3, MinMachines: 2})
	if err := CheckPartition(c, parts); err != nil {
		t.Fatal(err)
	}
	for pi, part := range parts {
		if len(part) < 2 {
			t.Fatalf("partition %d has %d machines, floor is 2", pi, len(part))
		}
	}
}

func TestPartitionByShapeDeterministicAndDegenerate(t *testing.T) {
	p := tieredCluster(t, 24, 40, 2)
	c := p.Cluster()
	a := PartitionByShape(c, PartitionOptions{Target: 5})
	b := PartitionByShape(c, PartitionOptions{Target: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PartitionByShape is not deterministic")
	}
	single := PartitionByShape(c, PartitionOptions{Target: 1})
	if len(single) != 1 || len(single[0]) != c.NumMachines() {
		t.Fatalf("Target=1 must yield one all-machine partition, got %d parts", len(single))
	}
}

package lint

// Interprocedural half of the value-flow engine: the bottom-up summary
// fixpoint over the call graph, the reporting pass, and the finding store
// the streamflow/detflow/nonneg analyzers read. Built lazily per Program
// so fixture runs of unrelated analyzers pay nothing.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// maxVFSweeps is a termination backstop: every lattice is finite and every
// merge monotone, so real programs converge in a handful of sweeps; the cap
// bounds the engine even against adversarial (fuzzed) inputs.
const maxVFSweeps = 32

// valueFlowInfo is the solved value-flow context of one Program.
type valueFlowInfo struct {
	prog      *Program
	dirs      *vfDirectives
	ctxs      map[*FuncNode]*vfCtx
	summaries map[*FuncNode]*valueSummary
	findings  map[*FuncNode][]vfFinding
	declMemo  map[*FuncNode][]string
}

// valueFlow builds (once) and returns the program's value-flow context.
func (p *Program) valueFlow() *valueFlowInfo {
	if p.vflow != nil {
		return p.vflow
	}
	vf := &valueFlowInfo{
		prog:      p,
		summaries: make(map[*FuncNode]*valueSummary),
		findings:  make(map[*FuncNode][]vfFinding),
		ctxs:      make(map[*FuncNode]*vfCtx),
		declMemo:  make(map[*FuncNode][]string),
	}
	vf.dirs = collectVFDirectives(p)
	for _, n := range p.graph.nodes {
		vf.summaries[n] = &valueSummary{
			paramSink:   make([]string, len(n.Params)),
			paramSinkTr: make([]*Trace, len(n.Params)),
		}
	}
	for _, n := range p.graph.nodes {
		vf.ctxs[n] = buildVFCtx(vf, n)
	}
	vf.solve()
	for _, n := range p.graph.nodes {
		vf.check(n)
	}
	p.vflow = vf
	return vf
}

// valueFindings returns the engine findings of one kind for one package,
// in deterministic (node, source) order.
func (p *Program) valueFindings(pkg *Package, kind vfKind) []vfFinding {
	vf := p.valueFlow()
	var out []vfFinding
	for _, f := range vf.dirs.pkgFind[pkg] {
		if f.kind == kind {
			out = append(out, f)
		}
	}
	for _, n := range p.NodesOf(pkg) {
		for _, f := range vf.findings[n] {
			if f.kind == kind {
				out = append(out, f)
			}
		}
	}
	return out
}

// declaredOf resolves a node's effective //rexlint:stream declaration;
// literals inherit the lexically enclosing declared function's set.
func (vf *valueFlowInfo) declaredOf(n *FuncNode) []string {
	if d, ok := vf.declMemo[n]; ok {
		return d
	}
	d := vf.dirs.declared[n]
	if d == nil && n.Enclosing != nil {
		d = vf.declaredOf(n.Enclosing)
	}
	vf.declMemo[n] = d
	return d
}

// solve runs delta-mode local passes to a fixpoint with a caller-driven
// worklist: every node is analyzed once, and a node is re-analyzed only
// when one of its callees' summaries grew. Merges are monotone over finite
// lattices, so each node re-enters the list a bounded number of times;
// maxVFSweeps bounds the per-node revisits as a backstop, not a budget.
func (vf *valueFlowInfo) solve() {
	nodes := vf.prog.graph.nodes
	callers := make(map[*FuncNode][]*FuncNode)
	for _, n := range nodes {
		for i := range n.Calls {
			for _, callee := range n.Calls[i].Callees {
				callers[callee] = append(callers[callee], n)
			}
		}
	}
	work := make([]*FuncNode, len(nodes))
	copy(work, nodes)
	queued := make(map[*FuncNode]bool, len(nodes))
	rounds := make(map[*FuncNode]int, len(nodes))
	for _, n := range nodes {
		queued[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		if rounds[n] >= maxVFSweeps {
			continue
		}
		rounds[n]++
		if !vf.update(n) {
			continue
		}
		for _, caller := range callers[n] {
			if !queued[caller] {
				queued[caller] = true
				work = append(work, caller)
			}
		}
	}
}

// update recomputes one node's summary from the current callee summaries
// and merges it in; reports whether anything grew.
func (vf *valueFlowInfo) update(n *FuncNode) bool {
	ctx := vf.ctxs[n]
	fl := &vfFlow{vf: vf, ctx: ctx, mode: vfDelta}
	facts := Forward(ctx.cfg, fl)
	return mergeValueSummary(vf.summaries[n], vf.extractSummary(ctx, fl, facts))
}

// walkFacts replays the converged facts through each reachable block,
// visiting every straight-line node with its exact pre-state.
func (vf *valueFlowInfo) walkFacts(ctx *vfCtx, fl *vfFlow, facts Facts[*vfState], visit func(ast.Node, *vfState)) {
	for _, b := range ctx.cfg.Blocks {
		st, ok := facts.In[b]
		if !ok {
			continue
		}
		st = st.clone()
		for _, node := range b.Nodes {
			visit(node, st)
			fl.apply(node, st)
		}
	}
}

// extractSummary reads one node's summary facts out of a converged
// delta-mode pass: return taints, parameter-to-sink flows, and the net
// counter deltas at function exit.
func (vf *valueFlowInfo) extractSummary(ctx *vfCtx, fl *vfFlow, facts Facts[*vfState]) *valueSummary {
	n := ctx.n
	sum := &valueSummary{
		paramSink:   make([]string, len(n.Params)),
		paramSinkTr: make([]*Trace, len(n.Params)),
	}
	vf.walkFacts(ctx, fl, facts, func(node ast.Node, st *vfState) {
		if ret, ok := node.(*ast.ReturnStmt); ok {
			vf.recordReturn(ctx, fl, ret, st, sum)
		}
		inspectShallow(node, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				_, _, marks := fl.taintOf(arg, st)
				if marks == 0 {
					continue
				}
				desc, _ := vf.sinkDescAt(ctx, call, i)
				if desc == "" {
					continue
				}
				for bit := 0; bit < len(sum.paramSink) && bit < 64; bit++ {
					if marks&(1<<uint(bit)) != 0 && sum.paramSink[bit] == "" {
						sum.paramSink[bit] = desc
						sum.paramSinkTr[bit] = &Trace{Pos: call.Pos(), What: desc, EntryPos: call.Pos()}
					}
				}
			}
			return true
		})
	})
	if len(ctx.recvFields) > 0 {
		if exitIn, ok := facts.In[ctx.cfg.Exit]; ok {
			req := vf.dirs.requires[n]
			for _, f := range ctx.recvFields {
				key := ctx.recvKey + "." + f
				ce := &counterEffect{
					Req:   req[f],
					Known: !exitIn.cKill[key],
					Delta: exitIn.getLB(key),
				}
				if ce.Known && ce.Delta == 0 && ce.Req == 0 {
					continue // no caller-visible effect
				}
				if sum.counters == nil {
					sum.counters = make(map[string]*counterEffect)
				}
				sum.counters[f] = ce
			}
		}
	}
	return sum
}

// recordReturn folds the taint of each returned value into the summary.
func (vf *valueFlowInfo) recordReturn(ctx *vfCtx, fl *vfFlow, ret *ast.ReturnStmt, st *vfState, sum *valueSummary) {
	record := func(str streamSet, ord *Trace, marks uint64) {
		for name, tr := range str {
			if _, ok := sum.returnStreams[name]; !ok {
				if sum.returnStreams == nil {
					sum.returnStreams = make(map[string]*Trace)
				}
				sum.returnStreams[name] = tr
			}
		}
		if ord != nil && sum.returnsOrdered == nil {
			sum.returnsOrdered = ord
		}
		sum.returnsParam |= marks
	}
	if len(ret.Results) > 0 {
		for _, res := range ret.Results {
			record(fl.taintOf(res, st))
		}
		return
	}
	for _, obj := range namedResultObjs(ctx.n) {
		if obj != nil {
			record(st.taintsAt(fmt.Sprintf("v%p", obj)))
		}
	}
}

// namedResultObjs returns the named result objects of a function, if any.
func namedResultObjs(n *FuncNode) []types.Object {
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	}
	if ft == nil || ft.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			out = append(out, n.Pkg.Info.Defs[name])
		}
	}
	return out
}

// sinkDescAt reports whether passing argument i of the call hands the
// value to a deterministic-output sink, directly (//rexlint:detsink) or
// through a callee whose parameter reaches one; the trace carries the
// blame chain.
func (vf *valueFlowInfo) sinkDescAt(ctx *vfCtx, call *ast.CallExpr, argIdx int) (string, *Trace) {
	site := ctx.siteOf[call]
	if site == nil {
		return "", nil
	}
	for _, callee := range site.Callees {
		if vf.dirs.canonical[callee] || vf.dirs.sources[callee] {
			continue
		}
		if desc, ok := vf.dirs.sinks[callee]; ok {
			d := fmt.Sprintf("%s sink %s", desc, callee.Name())
			return d, &Trace{Pos: call.Pos(), What: d, EntryPos: call.Pos()}
		}
		sum := vf.summaries[callee]
		if len(sum.paramSink) == 0 {
			continue
		}
		i := min(argIdx, len(sum.paramSink)-1) // variadic tail shares the last param
		if d := sum.paramSink[i]; d != "" {
			return d, wrapVia(sum.paramSinkTr[i], callee.Name(), call.Pos())
		}
	}
	return "", nil
}

// check runs the absolute-mode reporting pass over one node and stores its
// findings.
func (vf *valueFlowInfo) check(n *FuncNode) {
	ctx := vf.ctxs[n]
	fl := &vfFlow{vf: vf, ctx: ctx, mode: vfAbs}
	facts := Forward(ctx.cfg, fl)
	var finds []vfFinding
	report := func(kind vfKind, pos token.Pos, format string, args ...any) {
		finds = append(finds, vfFinding{kind: kind, pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	vf.walkFacts(ctx, fl, facts, func(node ast.Node, st *vfState) {
		vf.checkNode(ctx, fl, node, st, report)
	})
	vf.findings[n] = finds
}

// checkNode applies every diagnostic rule to one straight-line node with
// its pre-state.
func (vf *valueFlowInfo) checkNode(ctx *vfCtx, fl *vfFlow, node ast.Node, st *vfState, report func(vfKind, token.Pos, string, ...any)) {
	switch s := node.(type) {
	case *ast.IncDecStmt:
		if key, ok := ctx.counterKeyOf(vf, s.X); ok && s.Tok == token.DEC && st.getLB(key) <= 0 {
			report(vfNonneg, s.Pos(), "%s may go negative: decrement of //rexlint:nonneg counter at proven lower bound %d",
				renderPath(s.X), st.getLB(key))
		}
	case *ast.AssignStmt:
		vf.checkCounterAssign(ctx, s, st, report)
	}
	inspectHeader(node, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			vf.checkCall(ctx, fl, call, st, report)
		}
		return true
	})
}

// checkCounterAssign reports counter assignments that cannot keep the
// non-negativity invariant.
func (vf *valueFlowInfo) checkCounterAssign(ctx *vfCtx, s *ast.AssignStmt, st *vfState, report func(vfKind, token.Pos, string, ...any)) {
	info := ctx.n.Pkg.Info
	for i, lhs := range s.Lhs {
		key, ok := ctx.counterKeyOf(vf, lhs)
		if !ok {
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else {
			continue
		}
		switch s.Tok {
		case token.SUB_ASSIGN:
			c, isConst := constIntOf(info, rhs)
			switch {
			case !isConst:
				report(vfNonneg, s.Pos(), "%s may go negative: decrement of //rexlint:nonneg counter by a non-constant amount cannot be proven",
					renderPath(lhs))
			case c > 0 && st.getLB(key) < c:
				report(vfNonneg, s.Pos(), "%s may go negative: decrement by %d at proven lower bound %d",
					renderPath(lhs), c, st.getLB(key))
			}
		case token.ADD_ASSIGN:
			if c, isConst := constIntOf(info, rhs); isConst && c < 0 && st.getLB(key) < -c {
				report(vfNonneg, s.Pos(), "%s may go negative: increment by negative constant %d at proven lower bound %d",
					renderPath(lhs), c, st.getLB(key))
			}
		case token.ASSIGN, token.DEFINE:
			if c, isConst := constIntOf(info, rhs); isConst && c < 0 {
				report(vfNonneg, s.Pos(), "//rexlint:nonneg counter %s assigned negative constant %d", renderPath(lhs), c)
			}
		}
	}
}

// checkCall applies the stream, determinism, and precondition rules to one
// call expression.
func (vf *valueFlowInfo) checkCall(ctx *vfCtx, fl *vfFlow, call *ast.CallExpr, st *vfState, report func(vfKind, token.Pos, string, ...any)) {
	info := ctx.n.Pkg.Info
	site := ctx.siteOf[call]
	if site == nil {
		return
	}
	n := ctx.n

	// Rule 1: streamsource calls — constant name, declared ownership.
	isSource := false
	for _, callee := range site.Callees {
		if !vf.dirs.sources[callee] {
			continue
		}
		isSource = true
		name, okName := streamNameArg(info, call)
		switch {
		case !okName:
			report(vfStream, call.Pos(), "stream name passed to %s must be a named constant, not a dynamic expression", callee.Name())
		case isBasicStringLit(call.Args[0]):
			report(vfStream, call.Args[0].Pos(), "stream name %q is a string literal; use the exported stream-name constant", name)
		}
		if okName && !containsStr(ctx.declared, name) {
			report(vfStream, call.Pos(), "%s draws from RNG stream %q but declares %s; add //rexlint:stream %s to its doc comment",
				n.Name(), name, declList(ctx.declared), name)
		}
	}
	if isSource {
		return // the name argument is not a hand-off
	}

	// Rule 2: drawing through a stream-tainted receiver (stdlib method
	// call, e.g. r.Intn on a *rand.Rand obtained from Stream).
	if site.RecvExpr != nil && len(site.Callees) == 0 && len(site.Std) > 0 {
		if key, ok := exprKey(info, site.RecvExpr); ok {
			str, _, _ := st.taintsAt(key)
			for _, name := range sortedStreamNames(str) {
				if !containsStr(ctx.declared, name) {
					report(vfStream, call.Pos(), "%s draws from RNG stream %q but declares %s%s; add //rexlint:stream %s to its doc comment",
						n.Name(), name, declList(ctx.declared), str[name].Chain(), name)
				}
			}
		}
	}

	// Rules 3–5: per-argument hand-off, sink, and precondition checks.
	for i, arg := range call.Args {
		str, ord, _ := fl.taintOf(arg, st)
		if len(str) > 0 {
			for _, name := range sortedStreamNames(str) {
				tr := str[name]
				if len(site.Callees) > 0 {
					for _, callee := range site.Callees {
						if !containsStr(vf.declaredOf(callee), name) {
							report(vfStream, arg.Pos(), "%s passes RNG stream %q to %s, which does not declare it (//rexlint:stream)%s",
								n.Name(), name, callee.Name(), tr.Chain())
						}
					}
				} else if !containsStr(ctx.declared, name) {
					report(vfStream, arg.Pos(), "%s passes RNG stream %q to %s but declares %s%s; add //rexlint:stream %s to its doc comment",
						n.Name(), name, calleeLabel(site), declList(ctx.declared), tr.Chain(), name)
				}
			}
		}
		if ord != nil {
			if desc, _ := vf.sinkDescAt(ctx, call, i); desc != "" {
				report(vfDet, arg.Pos(), "value ordered by %s flows into %s without sort or canonicalization%s",
					ord.What, desc, ord.Chain())
			}
		}
	}

	// Rule 6: sinks invoked inside map iteration emit in nondeterministic
	// order even with clean arguments.
	if ctx.inMapRange(call.Pos()) {
		for _, callee := range site.Callees {
			if desc, ok := vf.dirs.sinks[callee]; ok {
				report(vfDet, call.Pos(), "%s sink %s called inside map iteration: emission order is nondeterministic",
					desc, callee.Name())
			}
		}
	}

	// Rule 7: callee entry preconditions (//rexlint:requires).
	if site.RecvExpr != nil {
		if recvKey, ok := exprKey(info, site.RecvExpr); ok {
			for _, callee := range site.Callees {
				sum := vf.summaries[callee]
				for _, f := range sortedCounterFields(sum.counters) {
					ce := sum.counters[f]
					if ce.Req <= 0 {
						continue
					}
					if lb := st.getLB(recvKey + "." + f); lb < ce.Req {
						report(vfNonneg, call.Pos(), "call to %s requires %s >= %d (//rexlint:requires); caller's proven lower bound is %d",
							callee.Name(), f, ce.Req, lb)
					}
				}
			}
		}
	}
}

func isBasicStringLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func declList(declared []string) string {
	if len(declared) == 0 {
		return "no streams"
	}
	quoted := make([]string, len(declared))
	for i, d := range declared {
		quoted[i] = fmt.Sprintf("%q", d)
	}
	return strings.Join(quoted, ", ")
}

func sortedStreamNames(set streamSet) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedCounterFields(counters map[string]*counterEffect) []string {
	fields := make([]string, 0, len(counters))
	for f := range counters {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}

// calleeLabel renders the target of a non-local call for diagnostics.
func calleeLabel(site *CallSite) string {
	if len(site.Std) > 0 {
		return site.Std[0]
	}
	return "a dynamic call"
}

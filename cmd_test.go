package rexchange

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// runTool executes a built binary and returns combined output.
func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	clustergen := buildTool(t, dir, "clustergen")
	rebalance := buildTool(t, dir, "rebalance")

	// 1. generate a placement JSON, a CSV snapshot, and a trace
	placement := filepath.Join(dir, "p.json")
	snapPrefix := filepath.Join(dir, "snap")
	trace := filepath.Join(dir, "t.csv")
	out := runTool(t, clustergen,
		"-machines", "12", "-shards", "120", "-fill", "0.8",
		"-placement", placement, "-snapshot", snapPrefix,
		"-trace", trace, "-rate", "50", "-duration", "10")
	for _, want := range []string{"instance:", "placement →", "snapshot →", "trace:"} {
		if !strings.Contains(out, want) {
			t.Errorf("clustergen output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{placement, snapPrefix + "-machines.csv", snapPrefix + "-shards.csv", trace} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("expected output file %s: %v", f, err)
		}
	}

	// 2. rebalance from JSON with SRA
	out = runTool(t, rebalance, "-in", placement, "-k", "2", "-iters", "300", "-simulate")
	for _, want := range []string{"before:", "after:", "returned machines:", "migration:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rebalance output missing %q:\n%s", want, out)
		}
	}

	// 3. rebalance from the CSV snapshot with a baseline
	out = runTool(t, rebalance,
		"-machines-csv", snapPrefix+"-machines.csv",
		"-shards-csv", snapPrefix+"-shards.csv",
		"-method", "local-search", "-k", "0")
	if !strings.Contains(out, "after:") {
		t.Errorf("snapshot rebalance output:\n%s", out)
	}
}

func TestCLISrabenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	srabench := buildTool(t, dir, "srabench")
	out := runTool(t, srabench, "-quick", "-run", "F4")
	if !strings.Contains(out, "== F4:") || !strings.Contains(out, "best-objective") {
		t.Errorf("srabench output:\n%s", out)
	}
}

func TestCLIIndextool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	indextool := buildTool(t, dir, "indextool")
	idx := filepath.Join(dir, "idx.rxix")
	out := runTool(t, indextool, "-build", "-docs", "500", "-vocab", "800", "-out", idx)
	if !strings.Contains(out, "saved →") {
		t.Errorf("indextool build output:\n%s", out)
	}
	out = runTool(t, indextool, "-in", idx, "-stats", "-query", "t1 t3", "-mode", "and")
	for _, want := range []string{"loaded", "compressed", "results"} {
		if !strings.Contains(out, want) {
			t.Errorf("indextool query output missing %q:\n%s", want, out)
		}
	}
	// or-mode and taat-mode also work
	out = runTool(t, indextool, "-in", idx, "-query", "t1", "-mode", "taat")
	if !strings.Contains(out, "results") {
		t.Errorf("taat output:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rebalance := buildTool(t, dir, "rebalance")
	// missing inputs must fail with a message, not panic
	cmd := exec.Command(rebalance)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("rebalance with no input should fail:\n%s", out)
	}
	if !strings.Contains(string(out), "rebalance:") {
		t.Errorf("error output should be prefixed:\n%s", out)
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: cumulative bucket counts, a sum,
// and a total count, all updated atomically. Bucket bounds are fixed at
// registration; the +Inf bucket is implicit. Observe is lock-free and
// allocation-free — a linear scan over the (typically ≤ 20) bounds is
// cheaper than a branch-mispredicted binary search at these sizes.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // per-bucket (non-cumulative) observation counts
	sum    atomicFloat
	count  atomic.Uint64

	// exemplars holds the last traced observation per bucket (index
	// len(bounds) is the +Inf bucket), written by ObserveTraced and
	// rendered only by the exemplar-enabled exposition path.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one bucket of a histogram to the trace that last landed
// in it, OpenMetrics-style: the rendered bucket line gains a
// `# {trace_id="…"} value` suffix.
type Exemplar struct {
	TraceID string
	Value   float64
}

// newHistogram builds a histogram over validated bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// checkBuckets validates bucket upper bounds at registration time.
func checkBuckets(name string, bounds []float64) []float64 {
	out := append([]float64(nil), bounds...)
	for i, b := range out {
		if math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %s has NaN bucket bound", name))
		}
		if i > 0 && b <= out[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bucket bounds not strictly increasing at %g", name, b))
		}
	}
	// A trailing +Inf is implicit; drop an explicit one.
	if n := len(out); n > 0 && math.IsInf(out[n-1], +1) {
		out = out[:n-1]
	}
	return out
}

// Observe records one value. The total count is incremented before the
// bucket so a concurrent render (which reads buckets first, count last)
// never sees a finite cumulative bucket exceed the +Inf bucket.
func (h *Histogram) Observe(v float64) {
	h.sum.Add(v)
	h.count.Add(1)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
}

// ObserveTraced records one value and remembers (trace, v) as the
// exemplar of the bucket v lands in, replacing any previous one. The
// observation itself is identical to Observe.
func (h *Histogram) ObserveTraced(v float64, trace string) {
	h.sum.Add(v)
	h.count.Add(1)
	idx := len(h.bounds) // +Inf
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			idx = i
			break
		}
	}
	h.exemplars[idx].Store(&Exemplar{TraceID: trace, Value: v})
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// write renders the histogram exposition: cumulative _bucket series with
// le labels (ending in +Inf), then _sum and _count. With exemplars set,
// buckets that hold a traced observation append its
// `# {trace_id="…"} value` suffix.
func (h *Histogram) write(w io.Writer, name string, labels, vals []string, exemplars bool) error {
	ex := func(i int) *Exemplar {
		if !exemplars {
			return nil
		}
		return h.exemplars[i].Load()
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeSample(w, name, labels, vals, "_bucket", FormatFloat(b), float64(cum), ex(i)); err != nil {
			return err
		}
	}
	total := h.count.Load()
	if err := writeSample(w, name, labels, vals, "_bucket", "+Inf", float64(total), ex(len(h.bounds))); err != nil {
		return err
	}
	if err := writeSample(w, name, labels, vals, "_sum", "", h.sum.Load(), nil); err != nil {
		return err
	}
	return writeSample(w, name, labels, vals, "_count", "", float64(total), nil)
}

// TimeBuckets returns the default bucket bounds for durations in seconds,
// spanning sub-millisecond copies on the virtual clock up to multi-minute
// wall-clock migrations.
func TimeBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// SizeBuckets returns exponential bucket bounds for plan sizes and other
// small counts.
func SizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}

package invindex

import (
	"math"
	"sort"
)

// SearchTAAT evaluates a disjunctive BM25 query term-at-a-time: every
// posting of every query term is accumulated into a score table, then the
// top k documents are selected. Simple and exhaustive — the cost baseline
// that DAAT/MaxScore improves on.
func (ix *Index) SearchTAAT(terms []string, k int) ([]ScoredDoc, Stats) {
	var st Stats
	tids := ix.resolveTerms(terms)
	if len(tids) == 0 || k <= 0 {
		return nil, st
	}
	acc := make(map[DocID]float64)
	for _, tid := range tids {
		idf := ix.idf(tid)
		for _, p := range ix.terms[tid].postings {
			acc[p.Doc] += ix.bm25(idf, p.TF, ix.docLen[p.Doc])
			st.PostingsScanned++
		}
	}
	st.DocsScored = len(acc)
	var h resultHeap
	for doc, score := range acc {
		h.push(ScoredDoc{doc, score}, k)
	}
	return h.sorted(), st
}

// SearchDAAT evaluates a disjunctive BM25 query document-at-a-time with
// MaxScore pruning: terms are ordered by their score upper bounds, and once
// the top-k threshold exceeds the combined bound of the low-impact
// ("non-essential") terms, documents appearing only in those lists are
// skipped entirely.
func (ix *Index) SearchDAAT(terms []string, k int) ([]ScoredDoc, Stats) {
	var st Stats
	tids := ix.resolveTerms(terms)
	if len(tids) == 0 || k <= 0 {
		return nil, st
	}

	// cursor per term, ordered by ascending max score (non-essential first)
	type cursor struct {
		postings []Posting
		pos      int
		idf      float64
		bound    float64
	}
	curs := make([]*cursor, len(tids))
	for i, tid := range tids {
		curs[i] = &cursor{
			postings: ix.terms[tid].postings,
			idf:      ix.idf(tid),
			bound:    ix.maxScore(tid),
		}
	}
	sort.Slice(curs, func(i, j int) bool { return curs[i].bound < curs[j].bound })

	// prefix[i] = sum of bounds of curs[0..i]
	prefix := make([]float64, len(curs))
	sum := 0.0
	for i, c := range curs {
		sum += c.bound
		prefix[i] = sum
	}

	var h resultHeap
	threshold := 0.0
	// first essential list index: lists below it cannot alone beat the
	// threshold; updated as the threshold grows.
	firstEss := 0
	for {
		for firstEss < len(curs) && prefix[firstEss] <= threshold {
			firstEss++
		}
		if firstEss >= len(curs) {
			break // even all lists together cannot beat the threshold
		}
		// next candidate: min current doc among essential lists
		next := DocID(math.MaxInt32)
		for _, c := range curs[firstEss:] {
			if c.pos < len(c.postings) && c.postings[c.pos].Doc < next {
				next = c.postings[c.pos].Doc
			}
		}
		if next == DocID(math.MaxInt32) {
			break // essential lists exhausted
		}
		// Score essential lists first (sequential advance), then probe
		// non-essential lists from the highest bound down, abandoning the
		// document as soon as its remaining potential cannot beat the
		// threshold.
		score := 0.0
		for _, c := range curs[firstEss:] {
			if c.pos < len(c.postings) && c.postings[c.pos].Doc == next {
				score += ix.bm25(c.idf, c.postings[c.pos].TF, ix.docLen[next])
				c.pos++
				st.PostingsScanned++
			}
		}
		pruned := false
		for i := firstEss - 1; i >= 0; i-- {
			if score+prefix[i] <= threshold {
				pruned = true // even all remaining bounds cannot catch up
				break
			}
			c := curs[i]
			c.pos += sort.Search(len(c.postings)-c.pos, func(j int) bool {
				return c.postings[c.pos+j].Doc >= next
			})
			st.PostingsScanned++ // one seek charged per list probe
			if c.pos < len(c.postings) && c.postings[c.pos].Doc == next {
				score += ix.bm25(c.idf, c.postings[c.pos].TF, ix.docLen[next])
			}
		}
		st.DocsScored++
		if !pruned {
			threshold = h.push(ScoredDoc{next, score}, k)
		}
	}
	return h.sorted(), st
}

package cluster

import (
	"fmt"

	"rexchange/internal/vec"
)

// CheckInvariants verifies every structural invariant a Placement must hold
// at any quiescent point, including mid-solve states where shards are
// unassigned (a partially destroyed LNS neighborhood is legal; an
// inconsistent one is not):
//
//   - the incrementally maintained aggregates (used, load, on, pos,
//     unassigned, vacant, groups) agree with a from-scratch recomputation;
//   - every machine's resource usage is non-negative and within capacity
//     (plus the shared floating-point drift tolerance);
//   - no machine hosts two replicas of the same anti-affinity group.
//
// Unlike Feasible, which answers "is this a complete, servable placement",
// CheckInvariants answers "has the bookkeeping been corrupted" — it is the
// predicate behind the debugasserts hooks in the solver, the planner, and
// the simulator.
func (p *Placement) CheckInvariants() error {
	if err := p.Validate(); err != nil {
		return err
	}
	for m := range p.used {
		if !p.used[m].NonNegative() {
			return fmt.Errorf("cluster: machine %d used %v has a negative dimension", m, p.used[m])
		}
		limit := p.c.Machines[m].Capacity.Add(vec.Uniform(fitTolerance))
		if !p.used[m].LEQ(limit) {
			return fmt.Errorf("cluster: machine %d used %v exceeds capacity %v",
				m, p.used[m], p.c.Machines[m].Capacity)
		}
		for g, n := range p.groups[m] {
			if n > 1 {
				return fmt.Errorf("cluster: machine %d hosts %d replicas of group %d", m, n, g)
			}
		}
	}
	return nil
}

// fitTolerance mirrors vec's internal fitEps: incremental Add/Sub chains on
// usage vectors accumulate drift on the order of 1e-12; anything past this
// bound is a real overflow, not rounding.
const fitTolerance = 1e-9

// MustInvariants panics if CheckInvariants fails, prefixing the panic with
// context (typically the operator that just ran). It is intended to be
// called behind the DebugAsserts flag:
//
//	if cluster.DebugAsserts {
//		p.MustInvariants("repair swapGreedy")
//	}
func (p *Placement) MustInvariants(context string) {
	if err := p.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("invariant violation after %s: %v", context, err))
	}
}

package plan_test

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/plan"
	"rexchange/internal/vec"
)

// Example shows the canonical deadlock the planner solves: two full
// machines must exchange their shards, which is impossible directly under
// the transient constraint but schedulable through a vacant third machine.
func Example() {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(4), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(4), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(4), Speed: 1, Exchange: true},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(4), Load: 1},
			{ID: 1, Static: vec.Uniform(4), Load: 1},
		},
	}
	from, err := cluster.FromAssignment(c, []cluster.MachineID{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	to, err := cluster.FromAssignment(c, []cluster.MachineID{1, 0})
	if err != nil {
		log.Fatal(err)
	}
	p, err := plan.DefaultPlanner().Build(from, to)
	if err != nil {
		log.Fatal(err)
	}
	for i, mv := range p.Moves {
		fmt.Printf("%d. shard %d: machine %d → %d\n", i+1, mv.S, mv.From, mv.To)
	}
	// Output:
	// 1. shard 1: machine 1 → 2
	// 2. shard 0: machine 0 → 1
	// 3. shard 1: machine 2 → 0
}

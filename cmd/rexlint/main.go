// Command rexlint is the project's static-analysis gate: a multichecker
// over the custom go/analysis-style suite in internal/lint. It typechecks
// the requested packages from source (module-local and standard-library
// imports only — this module has no external dependencies by policy),
// builds the module-local call graph and interprocedural function
// summaries, and reports determinism and correctness hazards:
//
//	noglobalrand  global math/rand use (breaks seed reproducibility)
//	maporder      order-dependent slices built from map iteration
//	floateq       exact float ==/!= in objective/metrics code
//	errignore     dropped error returns, incl. sticky Close/Err/Flush results
//	metricname    Prometheus naming conventions on obs registrations
//	lockcheck     guarded-by annotations: unlocked access, lock leaks,
//	              blocking calls under a lock — including callees that block
//	              or unlock deeper in the call graph (CFG + dataflow)
//	statecheck    declared state-machine transitions and acquire/release
//	              pairing of declared resources along all paths
//	clockpurity   wall-clock access outside the ctl.Clock seam, including
//	              stored-then-called time functions and module-local callees
//	              that hide a clock read (flow-sensitive + summaries)
//	leakcheck     goroutines with no reachable termination path
//	sharecheck    single-owner discipline for //rexlint:owned types: an
//	              owned value may not escape to a goroutine, channel,
//	              global, or second owner without a //rexlint:transfer
//	alloccheck    //rexlint:noalloc functions proven allocation-free on
//	              every path, through every module-local callee
//	purity        //rexlint:pure functions proven free of side effects by
//	              bottom-up effect summaries
//	streamflow    RNG stream isolation: values from rng.Partitioned.Stream
//	              carry their stream name as taint; functions declare the
//	              streams they draw or pass along (//rexlint:stream) and
//	              stream names must be named constants
//	detflow       map/select-ordered values must be sorted or canonicalized
//	              before reaching a //rexlint:detsink (journal writes,
//	              Prometheus exposition, fixed-format reports)
//	nonneg        //rexlint:nonneg counters proven non-negative on every
//	              path, with //rexlint:requires preconditions checked at
//	              call sites and callee deltas folded through summaries
//
// Unused //rexlint:ignore and //rexlint:transfer directives are themselves
// errors (pseudo-analyzers "rexlint" and "sharecheck"), so stale waivers
// cannot outlive the finding they excused.
//
// Usage:
//
//	go run ./cmd/rexlint ./...
//	go run ./cmd/rexlint -tags debugasserts ./...
//	go run ./cmd/rexlint -json ./internal/core ./internal/plan
//	go run ./cmd/rexlint -changed            # only packages touched vs origin/main
//	go run ./cmd/rexlint -baseline lint.baseline ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Suppress a finding with a trailing or preceding comment:
//
//	//rexlint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"rexchange/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	tags := flag.String("tags", "", "comma-separated build tags for module file selection (e.g. debugasserts)")
	changed := flag.Bool("changed", false, "lint only packages with files differing from the base ref (summaries still span the whole module)")
	changedBase := flag.String("changed-base", "origin/main", "base ref for -changed")
	baselinePath := flag.String("baseline", "", "baseline file of accepted diagnostics; only findings not in it fail the run")
	writeBaseline := flag.String("write-baseline", "", "write current diagnostics to this baseline file and exit 0")
	allowNewAnalyzer := flag.Bool("baseline-allow-new-analyzer", false, "let -write-baseline absorb findings from analyzers absent from the existing baseline")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rexlint [-list] [-json] [-tags t1,t2] [-changed [-changed-base ref]] [-baseline file] [-write-baseline file] <package patterns>\nexample: go run ./cmd/rexlint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(options{
		list: *list, jsonOut: *jsonOut, tags: *tags,
		changed: *changed, changedBase: *changedBase,
		baselinePath: *baselinePath, writeBaseline: *writeBaseline,
		allowNewAnalyzer: *allowNewAnalyzer,
	}, flag.Args()))
}

type options struct {
	list, jsonOut    bool
	tags             string
	changed          bool
	changedBase      string
	baselinePath     string
	writeBaseline    string
	allowNewAnalyzer bool
}

// jsonDiag is the machine-readable diagnostic record emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(opts options, patterns []string) int {
	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}
	if opts.tags != "" {
		loader.SetBuildTags(strings.Split(opts.tags, ","))
	}
	analyzers := lint.Analyzers(loader.ModPath)
	if opts.list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if opts.changed {
		// Summaries must still span the whole module — a changed callee
		// can invalidate an unchanged caller's noalloc or purity proof —
		// so load everything and restrict only the analyzed set below.
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rexlint:", err)
		return 2
	}

	if opts.changed {
		dirs, err := changedDirs(modDir, opts.changedBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rexlint: -changed: %v; linting everything\n", err)
		} else {
			var kept []*lint.Package
			for _, pkg := range pkgs {
				if dirs[pkg.Dir] {
					kept = append(kept, pkg)
				}
			}
			pkgs = kept
			if len(pkgs) == 0 {
				fmt.Fprintf(os.Stderr, "rexlint: no packages changed vs %s\n", opts.changedBase)
				return 0
			}
		}
	}

	// One interprocedural program over every package the loader
	// typechecked (a superset of the analyzed patterns), so call-graph
	// facts cross package boundaries.
	prog := lint.NewProgram(loader.Packages())

	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzersIn(prog, pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(modDir, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			all = append(all, d)
		}
	}

	if opts.writeBaseline != "" {
		// Rewriting an existing baseline must not silently accept every
		// finding of an analyzer added in the same change: that would
		// ratchet in the new analyzer with zero enforced findings exactly
		// where it was meant to bite.
		if old, err := lint.LoadBaseline(opts.writeBaseline); err == nil && !opts.allowNewAnalyzer {
			if fresh := lint.NewAnalyzerNames(old, all); len(fresh) > 0 {
				fmt.Fprintf(os.Stderr, "rexlint: refusing to absorb findings from analyzers not in %s: %s\nrerun with -baseline-allow-new-analyzer to accept them deliberately\n",
					opts.writeBaseline, strings.Join(fresh, ", "))
				return 2
			}
		}
		f, err := os.Create(opts.writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
		werr := lint.WriteBaseline(f, all)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "rexlint: wrote %d accepted diagnostics to %s\n", len(all), opts.writeBaseline)
		return 0
	}
	if opts.baselinePath != "" {
		base, err := lint.LoadBaseline(opts.baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
		fresh, absorbed := base.Filter(all)
		if absorbed > 0 {
			fmt.Fprintf(os.Stderr, "rexlint: %d diagnostics absorbed by baseline %s\n", absorbed, opts.baselinePath)
		}
		all = fresh
	}

	out := make([]jsonDiag, 0, len(all))
	for _, d := range all {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "rexlint:", err)
			return 2
		}
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
	}
	if len(out) > 0 {
		return 1
	}
	return 0
}

// changedDirs reports the set of absolute package directories containing
// .go files that differ from base: committed changes (base...HEAD), the
// working tree, and untracked files all count.
func changedDirs(modDir, base string) (map[string]bool, error) {
	var files []string
	for _, args := range [][]string{
		{"diff", "--name-only", base, "--", "*.go"},
		{"ls-files", "--others", "--exclude-standard", "--", "*.go"},
	} {
		cmd := exec.Command("git", append([]string{"-C", modDir}, args...)...)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("git %s: %v", strings.Join(args, " "), err)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				files = append(files, line)
			}
		}
	}
	dirs := make(map[string]bool)
	for _, f := range files {
		dirs[filepath.Join(modDir, filepath.Dir(f))] = true
	}
	return dirs, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

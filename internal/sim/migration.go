package sim

import (
	"container/heap"
	"fmt"

	"rexchange/internal/cluster"
	"rexchange/internal/plan"
	"rexchange/internal/vec"
)

// MigrationConfig parameterizes migration execution.
type MigrationConfig struct {
	// Bandwidth is copy throughput in disk units per second per move.
	Bandwidth float64
	// Concurrency is the maximum number of simultaneously in-flight
	// moves.
	Concurrency int
}

// DefaultMigrationConfig returns a single-stream migration at 100 disk
// units/second.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{Bandwidth: 100, Concurrency: 1}
}

// MigrationReport summarizes one simulated migration.
type MigrationReport struct {
	// Duration is the wall-clock makespan of the migration.
	Duration float64
	// Bytes is the total disk volume copied.
	Bytes float64
	// Steps is the number of executed moves.
	Steps int
	// PeakParallel is the highest number of simultaneously in-flight
	// moves observed.
	PeakParallel int
}

// completionHeap orders in-flight moves by completion time.
type completionHeap []inflight

type inflight struct {
	at   float64
	move plan.Move
}

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(inflight)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateMigration executes the plan against the starting placement with
// bandwidth-limited, possibly concurrent copies. During a move the shard's
// static resources are reserved on both endpoints (the paper's transient
// constraint). Moves start strictly in plan order — a later move never
// overtakes a blocked earlier one — which preserves the plan's serial
// feasibility proof and makes the schedule deadlock-free.
func SimulateMigration(from *cluster.Placement, p *plan.Plan, cfg MigrationConfig) (*MigrationReport, error) {
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("sim: Bandwidth must be positive, got %g", cfg.Bandwidth)
	}
	if cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("sim: Concurrency must be positive, got %d", cfg.Concurrency)
	}
	c := from.Cluster()

	// Working occupancy: resident shards plus in-flight reservations.
	used := make([]vec.Vec, c.NumMachines())
	loc := make([]cluster.MachineID, c.NumShards())
	for s := 0; s < c.NumShards(); s++ {
		m := from.Home(cluster.ShardID(s))
		loc[s] = m
		if m != cluster.Unassigned {
			used[m] = used[m].Add(c.Shards[s].Static)
		}
	}
	canReserve := func(s cluster.ShardID, m cluster.MachineID) bool {
		return c.Shards[s].Static.FitsWithin(used[m], c.Machines[m].Capacity)
	}

	rep := &MigrationReport{}
	var active completionHeap
	inFlight := make(map[cluster.ShardID]bool)
	now := 0.0
	next := 0 // next plan move to start

	// assertTransient recomputes transient occupancy from shard locations
	// plus in-flight destination reservations and compares it with the
	// incrementally maintained used vectors, also checking capacity. Only
	// called under -tags debugasserts.
	assertTransient := func(context string) {
		want := make([]vec.Vec, c.NumMachines())
		for s := 0; s < c.NumShards(); s++ {
			if m := loc[s]; m != cluster.Unassigned {
				want[m] = want[m].Add(c.Shards[s].Static)
			}
		}
		for _, f := range active {
			want[f.move.To] = want[f.move.To].Add(c.Shards[f.move.S].Static)
		}
		for m := range want {
			if !want[m].AlmostEqual(used[m], 1e-6) {
				panic(fmt.Sprintf("sim: invariant violation after %s: machine %d used %v, recomputed %v",
					context, m, used[m], want[m]))
			}
			if !used[m].LEQ(c.Machines[m].Capacity.Add(vec.Uniform(1e-9))) {
				panic(fmt.Sprintf("sim: invariant violation after %s: machine %d used %v exceeds capacity %v",
					context, m, used[m], c.Machines[m].Capacity))
			}
		}
	}

	for next < len(p.Moves) || active.Len() > 0 {
		// start as many in-order moves as possible
		for next < len(p.Moves) && active.Len() < cfg.Concurrency {
			mv := p.Moves[next]
			if inFlight[mv.S] {
				break // the shard's previous hop has not landed yet
			}
			if loc[mv.S] != mv.From {
				return nil, fmt.Errorf("sim: move %d expects shard %d on machine %d, found %d",
					next, mv.S, mv.From, loc[mv.S])
			}
			if !canReserve(mv.S, mv.To) {
				break // head-of-line blocks until a completion frees space
			}
			used[mv.To] = used[mv.To].Add(c.Shards[mv.S].Static)
			inFlight[mv.S] = true
			size := c.Shards[mv.S].Static[vec.Disk]
			duration := size / cfg.Bandwidth
			heap.Push(&active, inflight{at: now + duration, move: mv})
			if active.Len() > rep.PeakParallel {
				rep.PeakParallel = active.Len()
			}
			rep.Bytes += size
			rep.Steps++
			next++
			if cluster.DebugAsserts {
				assertTransient("reserving move")
			}
		}
		if active.Len() == 0 {
			if next < len(p.Moves) {
				// Nothing in flight and the head move still does not fit:
				// the plan was not serially feasible.
				return nil, fmt.Errorf("sim: move %d (shard %d → machine %d) never fits",
					next, p.Moves[next].S, p.Moves[next].To)
			}
			break
		}
		// advance to the next completion
		fin := heap.Pop(&active).(inflight)
		now = fin.at
		mv := fin.move
		used[mv.From] = used[mv.From].Sub(c.Shards[mv.S].Static)
		loc[mv.S] = mv.To
		delete(inFlight, mv.S)
		if cluster.DebugAsserts {
			assertTransient("completing move")
		}
	}
	rep.Duration = now
	return rep, nil
}

package lint

// Interprocedural function summaries. A Program owns the call graph of
// callgraph.go plus one Summary per function node: a monotone effect mask
// (allocates / reads the wall clock / blocks / mutates receiver or
// parameter state / global effect / unresolvable call) with provenance
// traces, receiver-mutex unlock facts for lockcheck, and per-parameter
// escape facts for sharecheck.
//
// Summaries are computed bottom-up in two stages. The local stage runs the
// existing Flow[F] worklist solver (dataflow.go) over each function's CFG
// with an effect-mask lattice — so effects in unreachable code (after
// return/panic, or pruned by the CFG builder) never enter a summary — and
// collects provenance sites from the reachable blocks in source order. The
// interprocedural stage then iterates the sorted node list to a fixpoint,
// folding callee summaries into callers at each reachable call site; the
// mask lattice is finite and the transfer is monotone, so recursion and
// mutual recursion converge deterministically.
//
// Two deliberate scope decisions, shared by every consumer:
//
//   - Debug-assertion blocks guarded by a named boolean constant
//     (`if cluster.DebugAsserts { ... }`) are folded away regardless of
//     the constant's build-tag value: production builds compile them out,
//     and folding keeps default and -tags debugasserts lint runs in
//     agreement.
//   - A `//rexlint:ignore <analyzer> <reason>` on a leaf site blesses the
//     whole call chain: the waived effect is kept out of the summary, so
//     callers are not re-flagged for a site a reviewer already accepted.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Effect bits of a summary mask.
const (
	// EffAlloc: some reachable path allocates (make, literal, append
	// growth, closure or interface boxing, goroutine spawn, ...).
	EffAlloc uint16 = 1 << iota
	// EffClock: reads or waits on the ambient wall clock.
	EffClock
	// EffBlock: may block the calling goroutine (channel op, select
	// without default, WaitGroup.Wait, time.Sleep). Mutex Lock is policed
	// by lockcheck's ordering rules instead and deliberately excluded.
	EffBlock
	// EffGlobal: observable effect beyond receiver/parameters — writes
	// package-level state, spawns goroutines, captured-variable writes,
	// or calls into stdlib with unknown effects.
	EffGlobal
	// EffReadsRecv / EffMutatesRecv: receiver access classification.
	EffReadsRecv
	EffMutatesRecv
	// EffMutatesParam: writes through a pointer/slice/map parameter.
	EffMutatesParam
	// EffUnknown: contains a dynamic call with no resolvable target, so
	// nothing can be proven about it.
	EffUnknown
)

// Trace is the provenance of one effect bit: the root site that produced
// it, the call chain it arrived through, and where that chain enters the
// summarized function.
type Trace struct {
	// Pos is the root site (the actual allocation / clock read / ...).
	Pos token.Pos
	// What describes the root site ("make([]int, n)", "time.Now", ...).
	What string
	// Via is the callee chain from the summarized function down to the
	// root site's function; empty for a local site.
	Via []string
	// EntryPos is where the effect enters this function: the root site
	// itself when local, otherwise the call site of Via[0].
	EntryPos token.Pos
}

// Chain renders "via a → b" for diagnostics, or "" for local sites.
func (t *Trace) Chain() string {
	if t == nil || len(t.Via) == 0 {
		return ""
	}
	return " (via " + strings.Join(t.Via, " → ") + ")"
}

// Summary is the interprocedural fact set of one function node.
type Summary struct {
	Mask uint16

	// Provenance for the caller-visible effect bits; nil when the bit is
	// unset.
	Alloc   *Trace
	Clock   *Trace
	Block   *Trace
	Unknown *Trace

	// UnlockFields are receiver mutex field paths ("mu") the function may
	// unlock on some path, directly or through callees. Sorted.
	UnlockFields []string

	// ParamEscape describes, per parameter (parallel to FuncNode.Params),
	// how the parameter value may escape its caller's ownership ("" = does
	// not escape): stored into non-local state, sent on a channel,
	// captured by a goroutine, or passed onward to an escaping parameter.
	ParamEscape []string
	// RecvEscape is the same fact for the receiver.
	RecvEscape string
}

// Purity maps the mask onto the four-level classification used by the
// purity analyzer: "pure" < "reads-receiver" < "mutates-receiver" <
// "global-effect". Parameter mutation classifies with receiver mutation
// (both are caller-visible writes through the signature).
func (s *Summary) Purity() string {
	switch {
	case s.Mask&(EffGlobal|EffUnknown|EffClock|EffBlock) != 0:
		return "global-effect"
	case s.Mask&(EffMutatesRecv|EffMutatesParam) != 0:
		return "mutates-receiver"
	case s.Mask&EffReadsRecv != 0:
		return "reads-receiver"
	default:
		return "pure"
	}
}

// impureBits are the effects a //rexlint:pure function must not have.
// Allocation alone is allowed: a pure function may build and return a
// fresh value.
const impureBits = EffClock | EffBlock | EffGlobal | EffMutatesRecv | EffMutatesParam | EffUnknown

// Program is the interprocedural context of one lint run: every loaded
// package, the call graph over them, and the summary of every function,
// memoized for the life of the run.
type Program struct {
	Pkgs []*Package

	graph     *callGraph
	summaries map[*FuncNode]*Summary
	local     map[*FuncNode]*localFacts
	nodesExpr map[*Package][]*FuncNode
	ignores   map[*Package]*ignoreSet
	transfers map[*Package]*transferSet
	owned     map[*types.TypeName]bool
	// vflow is the lazily built value-flow context (valuesolve.go), shared
	// by the streamflow/detflow/nonneg analyzers.
	vflow *valueFlowInfo
}

// NewProgram builds the call graph and computes every function summary to
// fixpoint. Analyzer scope does not matter here: summaries cover the whole
// package set so facts can cross package boundaries.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		graph:     buildCallGraph(pkgs),
		summaries: make(map[*FuncNode]*Summary),
		local:     make(map[*FuncNode]*localFacts),
		nodesExpr: make(map[*Package][]*FuncNode),
		ignores:   make(map[*Package]*ignoreSet),
		transfers: make(map[*Package]*transferSet),
		owned:     make(map[*types.TypeName]bool),
	}
	for _, pkg := range pkgs {
		p.ignores[pkg] = buildIgnores(pkg.Fset, pkg.Files)
		p.transfers[pkg] = buildTransfers(pkg.Fset, pkg.Files)
		collectOwnedTypes(pkg, p.owned)
	}
	for _, n := range p.graph.nodes {
		p.nodesExpr[n.Pkg] = append(p.nodesExpr[n.Pkg], n)
		p.local[n] = computeLocalFacts(p, n)
		p.summaries[n] = &Summary{}
	}
	p.solve()
	return p
}

// ignoresFor returns the package's suppression set (building it on demand
// for packages outside the program, which should not happen in practice).
func (p *Program) ignoresFor(pkg *Package) *ignoreSet {
	if s, ok := p.ignores[pkg]; ok {
		return s
	}
	s := buildIgnores(pkg.Fset, pkg.Files)
	p.ignores[pkg] = s
	return s
}

// transfersFor returns the package's //rexlint:transfer directive set.
func (p *Program) transfersFor(pkg *Package) *transferSet {
	if s, ok := p.transfers[pkg]; ok {
		return s
	}
	s := buildTransfers(pkg.Fset, pkg.Files)
	p.transfers[pkg] = s
	return s
}

// NodesOf returns pkg's function nodes in source order.
func (p *Program) NodesOf(pkg *Package) []*FuncNode {
	return p.nodesExpr[pkg]
}

// NodeOf returns the node of a declared function, or nil.
func (p *Program) NodeOf(fn *types.Func) *FuncNode { return p.graph.byFunc[fn] }

// LitNodeOf returns the node of a function literal, or nil.
func (p *Program) LitNodeOf(lit *ast.FuncLit) *FuncNode { return p.graph.byLit[lit] }

// CalleesAt returns the module-local callee candidates of a call
// expression, or nil for stdlib/unknown calls.
func (p *Program) CalleesAt(call *ast.CallExpr) []*FuncNode { return p.graph.calleesAt[call] }

// EffectiveCalls returns n's call sites that survive CFG reachability and
// debug-guard folding — the sites its summary was computed from.
func (p *Program) EffectiveCalls(n *FuncNode) []CallSite {
	if lf, ok := p.local[n]; ok {
		return lf.calls
	}
	return n.Calls
}

// SummaryOf returns the node's summary (never nil for graph nodes).
func (p *Program) SummaryOf(n *FuncNode) *Summary {
	if s, ok := p.summaries[n]; ok {
		return s
	}
	return &Summary{}
}

// OwnedTypeName reports the qualified name of t's named type when it is
// declared //rexlint:owned (pointers are dereferenced), or "".
func (p *Program) OwnedTypeName(t types.Type) string {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	tn := named.Obj()
	if !p.owned[tn] {
		return ""
	}
	if tn.Pkg() != nil {
		return tn.Pkg().Name() + "." + tn.Name()
	}
	return tn.Name()
}

// collectOwnedTypes records named types whose declaration doc carries
// //rexlint:owned.
func collectOwnedTypes(pkg *Package, out map[*types.TypeName]bool) {
	hasOwned := func(doc *ast.CommentGroup) bool {
		if doc == nil {
			return false
		}
		for _, c := range doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "rexlint:owned" || strings.HasPrefix(text, "rexlint:owned ") {
				return true
			}
		}
		return false
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasOwned(ts.Doc) && !(len(gd.Specs) == 1 && hasOwned(gd.Doc)) {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Local stage: per-function effect facts via the Flow solver.

// localFacts is the intraprocedural part of a node's summary: its own
// effect events plus the call sites that survive reachability and
// debug-guard folding.
type localFacts struct {
	mask   uint16
	events []effectEvent
	calls  []CallSite
	// unlocks are receiver mutex fields unlocked directly in this body.
	unlocks []string
	// locked are receiver mutex fields the body also acquires itself; an
	// unlock balanced by a local acquisition is not a net unlock and must
	// not surface in UnlockFields (callers' held facts survive the call).
	locked map[string]bool
	// paramEscape/recvEscape are direct (non-call) escape facts.
	paramEscape []string
	recvEscape  string
	// closures are literal creations whose allocation verdict depends on
	// callee escape summaries, decided during the fixpoint.
	closures []closureUse
}

// effectEvent is one local effect site.
type effectEvent struct {
	bit  uint16
	pos  token.Pos
	what string
}

// closureUse is a capturing function literal whose escape — and therefore
// heap allocation — depends on where it flows.
type closureUse struct {
	lit      *ast.FuncLit
	node     *FuncNode
	captures bool
	// escaped, when already decided locally (go statement, stored, sent,
	// passed to stdlib), short-circuits the summary consultation.
	escaped bool
	// call/argIndex identify a module-local call the literal is passed to;
	// the callee's parameter escape summary decides.
	call     *ast.CallExpr
	argIndex int
}

// effectFlow is the Flow[F] instance of the local stage: the fact is the
// mask of effects that occurred on some path to this point. Join is union,
// so the solver computes may-effects over exactly the CFG-reachable paths.
type effectFlow struct {
	lf    *nodeClassifier
	cache map[ast.Node]uint16
}

func (ef *effectFlow) Entry() uint16           { return 0 }
func (ef *effectFlow) Join(a, b uint16) uint16 { return a | b }
func (ef *effectFlow) Equal(a, b uint16) bool  { return a == b }
func (ef *effectFlow) Transfer(n ast.Node, in uint16) uint16 {
	m, ok := ef.cache[n]
	if !ok {
		m = ef.lf.maskOf(n)
		ef.cache[n] = m
	}
	return in | m
}

// computeLocalFacts builds one node's local facts: solve the effect mask
// over the CFG, then harvest provenance events and surviving call sites
// from the reachable blocks in source order.
func computeLocalFacts(p *Program, n *FuncNode) *localFacts {
	lf := &localFacts{}
	cls := newNodeClassifier(p, n)
	g := BuildCFG(n.Body, n.Pkg.Info)
	flow := &effectFlow{lf: cls, cache: make(map[ast.Node]uint16)}
	facts := Forward[uint16](g, flow)

	// The summary mask is the union of every computed block's output: any
	// effect on any reachable path, and nothing from unreachable code.
	var reachSpans []posRange
	for _, b := range g.Blocks {
		out, ok := facts.Out[b]
		if !ok {
			continue
		}
		lf.mask |= out
		for _, node := range b.Nodes {
			reachSpans = append(reachSpans, posRange{node.Pos(), node.End()})
		}
	}
	inSpan := func(pos token.Pos) bool {
		for _, r := range reachSpans {
			if pos >= r.lo && pos < r.hi {
				return true
			}
		}
		return false
	}

	// Harvest provenance events from reachable statements, in source order.
	for _, b := range g.Blocks {
		if _, ok := facts.In[b]; !ok {
			continue
		}
		for _, node := range b.Nodes {
			cls.collect(node, lf)
		}
	}
	sort.Slice(lf.events, func(i, j int) bool { return lf.events[i].pos < lf.events[j].pos })
	sort.Strings(lf.unlocks)
	lf.unlocks = dedupStrings(lf.unlocks)

	// Call sites survive if reachable and not inside a folded debug guard.
	for _, site := range n.Calls {
		if !inSpan(site.Pos) || cls.guarded(site.Pos) {
			continue
		}
		lf.calls = append(lf.calls, site)
	}

	// Direct escape facts for receiver and parameters.
	lf.paramEscape = make([]string, len(n.Params))
	cls.collectEscapes(lf)
	return lf
}

type posRange struct{ lo, hi token.Pos }

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Node-level effect classification.

// nodeClassifier computes the effect mask and provenance events of single
// straight-line CFG nodes for one function, honoring debug-guard folding
// and leaf-site ignore waivers.
type nodeClassifier struct {
	prog *Program
	node *FuncNode
	info *types.Info
	// guards are if-bodies controlled by a named boolean constant.
	guards []posRange
	// litParents maps each directly nested literal to its syntactic use.
	litUse map[*ast.FuncLit]closureUse
}

func newNodeClassifier(p *Program, n *FuncNode) *nodeClassifier {
	c := &nodeClassifier{prog: p, node: n, info: n.Pkg.Info, litUse: map[*ast.FuncLit]closureUse{}}
	inspectShallow(n.Body, func(x ast.Node) bool {
		ifs, ok := x.(*ast.IfStmt)
		if !ok {
			return true
		}
		if constBoolGuard(c.info, ifs.Cond) {
			c.guards = append(c.guards, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	c.classifyLits()
	return c
}

// constBoolGuard reports whether cond is a plain named boolean constant
// (`DebugAsserts`, `cluster.DebugAsserts`): the debug-assertion idiom whose
// body is folded out of summaries.
func constBoolGuard(info *types.Info, cond ast.Expr) bool {
	switch x := ast.Unparen(cond).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		tv, ok := info.Types[x.(ast.Expr)]
		return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool
	}
	return false
}

// guarded reports whether pos lies inside a folded debug-assertion block.
func (c *nodeClassifier) guarded(pos token.Pos) bool {
	for _, r := range c.guards {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// waived reports whether an effect at pos was accepted by a reviewer via a
// line-level ignore for the given analyzer; the waiver then blesses the
// whole call chain. Marking the entry used here is deliberate: a waiver
// consumed by the summary layer is doing work even if the analyzer itself
// never fires at that line.
func (c *nodeClassifier) waived(analyzer string, pos token.Pos) bool {
	return c.prog.ignoresFor(c.node.Pkg).suppressed(analyzer, c.node.Pkg.Fset.Position(pos))
}

// maskOf computes the effect bits of one straight-line node (no
// provenance); used by the Flow transfer.
func (c *nodeClassifier) maskOf(n ast.Node) uint16 {
	var mask uint16
	c.walkEffects(n, func(bit uint16, _ token.Pos, _ string) { mask |= bit })
	return mask
}

// collect appends provenance events (and unlock facts) for one node.
func (c *nodeClassifier) collect(n ast.Node, lf *localFacts) {
	c.walkEffects(n, func(bit uint16, pos token.Pos, what string) {
		lf.events = append(lf.events, effectEvent{bit: bit, pos: pos, what: what})
	})
	c.collectUnlocks(n, lf)
	c.collectClosures(n, lf)
}

// walkEffects visits one straight-line node and emits its local effects.
func (c *nodeClassifier) walkEffects(n ast.Node, emit func(bit uint16, pos token.Pos, what string)) {
	info := c.info
	writes := c.writeTargets(n)
	inspectShallow(n, func(x ast.Node) bool {
		if x == nil || c.guarded(x.Pos()) {
			return x == nil
		}
		switch s := x.(type) {
		case *ast.CallExpr:
			c.callEffects(s, emit)
		case *ast.CompositeLit:
			switch info.TypeOf(s).Underlying().(type) {
			case *types.Slice:
				c.alloc(emit, s.Pos(), "slice literal")
			case *types.Map:
				c.alloc(emit, s.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			switch s.Op {
			case token.AND:
				if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
					c.alloc(emit, s.Pos(), "&composite literal")
				}
			case token.ARROW:
				c.block(emit, s.Pos(), "channel receive")
			}
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isNonConstString(info, s) {
				c.alloc(emit, s.Pos(), "string concatenation")
			}
		case *ast.SendStmt:
			c.block(emit, s.Pos(), "channel send")
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				c.block(emit, s.Select, "select without default")
			}
			return true
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(s.X).Underlying().(*types.Chan); ok {
				c.block(emit, s.For, "range over channel")
			}
		case *ast.GoStmt:
			c.alloc(emit, s.Pos(), "go statement (goroutine spawn)")
			emit(EffGlobal, s.Pos(), "go statement")
		}
		return true
	})
	// Writes: classify each written root object.
	for _, w := range writes {
		if c.guarded(w.pos) {
			continue
		}
		switch c.classifyObject(w.root) {
		case rootGlobal:
			emit(EffGlobal, w.pos, "writes package-level "+w.root.Name())
		case rootCaptured:
			emit(EffGlobal, w.pos, "writes captured variable "+w.root.Name())
		case rootRecv:
			if w.deep {
				emit(EffMutatesRecv, w.pos, "writes receiver state")
			}
		case rootParam:
			if w.deep {
				emit(EffMutatesParam, w.pos, "writes through parameter "+w.root.Name())
			}
		}
	}
	// Receiver reads.
	if c.node.Recv != nil {
		inspectShallow(n, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || c.guarded(sel.Pos()) {
				return true
			}
			if rootObject(info, sel) == c.node.Recv {
				emit(EffReadsRecv, sel.Pos(), "reads receiver state")
			}
			return true
		})
	}
}

func (c *nodeClassifier) alloc(emit func(uint16, token.Pos, string), pos token.Pos, what string) {
	if c.waived("alloccheck", pos) {
		return
	}
	emit(EffAlloc, pos, what)
}

func (c *nodeClassifier) block(emit func(uint16, token.Pos, string), pos token.Pos, what string) {
	if c.waived("lockcheck", pos) {
		return
	}
	emit(EffBlock, pos, what)
}

// callEffects classifies one call expression: builtins, conversions,
// clock reads, and interface-boxing argument passing. Module-local callee
// effects arrive later through the summary fixpoint; stdlib callees are
// classified there too (stdEffect), so this handles only syntax-local
// effects.
func (c *nodeClassifier) callEffects(call *ast.CallExpr, emit func(uint16, token.Pos, string)) {
	info := c.info
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				c.alloc(emit, call.Pos(), "make")
			case "new":
				c.alloc(emit, call.Pos(), "new")
			case "append":
				c.alloc(emit, call.Pos(), "append may grow its backing array")
			}
			return
		}
		if _, isT := info.Uses[id].(*types.TypeName); isT {
			c.conversionEffects(call, emit)
			return
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, isT := info.Uses[sel.Sel].(*types.TypeName); isT {
			c.conversionEffects(call, emit)
			return
		}
		if name := bannedTimeFunc(info, sel); name != "" && !c.node.ClockExempt && !c.waived("clockpurity", call.Pos()) {
			emit(EffClock, call.Pos(), name)
		}
	}
	c.boxingEffects(call, emit)
}

// conversionEffects flags converting between string and byte/rune slices —
// the conversions that copy.
func (c *nodeClassifier) conversionEffects(call *ast.CallExpr, emit func(uint16, token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	info := c.info
	dst := info.TypeOf(call.Fun)
	if dst == nil {
		return
	}
	// Conversion type expressions carry the *type* as their TypeOf.
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isString(dstU) && isByteOrRuneSlice(srcU) {
		c.alloc(emit, call.Pos(), "string(...) conversion copies")
	}
	if isByteOrRuneSlice(dstU) && isString(srcU) {
		c.alloc(emit, call.Pos(), "[]byte/[]rune(...) conversion copies")
	}
	if _, isIface := dstU.(*types.Interface); isIface && boxes(info, call.Args[0]) {
		c.alloc(emit, call.Pos(), "interface conversion boxes "+src.String())
	}
}

// boxingEffects flags concrete non-pointer-shaped values passed to
// interface-typed parameters: the conversion heap-allocates the box.
func (c *nodeClassifier) boxingEffects(call *ast.CallExpr, emit func(uint16, token.Pos, string)) {
	sig, ok := c.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				continue
			}
			slice, okS := params.At(params.Len() - 1).Type().(*types.Slice)
			if !okS {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(c.info, arg) {
			c.alloc(emit, arg.Pos(), "interface argument boxes "+c.info.TypeOf(arg).String())
		}
	}
}

// boxes reports whether passing e into an interface heap-allocates: its
// static type is concrete and not pointer-shaped, and it is not nil, not a
// small-integer constant (runtime-cached), and not zero-sized.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.IsNil() {
		return false
	}
	if tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && v >= 0 && v <= 255 {
			return false // runtime staticuint64s cache
		}
	}
	t := tv.Type
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface: no new box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	case *types.Struct:
		if u.NumFields() == 0 {
			return false // zero-sized
		}
	case *types.Array:
		if u.Len() == 0 {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isNonConstString(info *types.Info, b *ast.BinaryExpr) bool {
	tv, ok := info.Types[b]
	if !ok || !isString(tv.Type.Underlying()) {
		return false
	}
	return tv.Value == nil // constant concatenation folds at compile time
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// writeTarget is one written lvalue: its root object and whether the write
// goes through a deref/field/index (deep — visible to the caller for
// pointer-shaped roots) or rebinds the name itself.
type writeTarget struct {
	root types.Object
	pos  token.Pos
	deep bool
}

// writeTargets collects the written roots of one straight-line node.
func (c *nodeClassifier) writeTargets(n ast.Node) []writeTarget {
	var out []writeTarget
	record := func(e ast.Expr) {
		e = ast.Unparen(e)
		deep := false
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				// Selecting through a pointer or naming a field both count
				// as deep writes; writing a plain local struct var's field
				// is caller-invisible, filtered by classifyObject+deep
				// rules below (value receivers/params are copies, but a
				// deep write through them is still conservatively deep —
				// pointer receivers are the norm in this module).
				e, deep = x.X, true
				continue
			case *ast.StarExpr:
				e, deep = x.X, true
				continue
			case *ast.IndexExpr:
				e, deep = x.X, true
				continue
			}
			break
		}
		if id, ok := e.(*ast.Ident); ok {
			obj := c.info.Uses[id]
			if obj == nil {
				obj = c.info.Defs[id]
			}
			if obj != nil {
				out = append(out, writeTarget{root: obj, pos: id.Pos(), deep: deep})
			}
		}
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(s.X)
		}
		return true
	})
	return out
}

type rootClass int

const (
	rootLocal rootClass = iota
	rootRecv
	rootParam
	rootGlobal
	rootCaptured
)

// classifyObject places a root object relative to the summarized function:
// its receiver, one of its parameters, a package-level variable, a
// variable captured from an enclosing function, or a plain local.
func (c *nodeClassifier) classifyObject(obj types.Object) rootClass {
	if obj == nil {
		return rootLocal
	}
	if obj == c.node.Recv {
		return rootRecv
	}
	for _, p := range c.node.Params {
		if p != nil && obj == p {
			return rootParam
		}
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return rootLocal
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return rootGlobal
	}
	// Declared outside this node's body (and not receiver/param): a
	// captured variable of an enclosing function.
	if c.node.Lit != nil && (v.Pos() < c.node.Lit.Pos() || v.Pos() >= c.node.Lit.End()) {
		return rootCaptured
	}
	return rootLocal
}

// collectUnlocks records receiver mutex fields unlocked in this node, and
// the ones the node acquires itself (to net the two out later).
func (c *nodeClassifier) collectUnlocks(n ast.Node, lf *localFacts) {
	if c.node.Recv == nil {
		return
	}
	inspectShallow(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || c.guarded(call.Pos()) {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		unlock := name == "Unlock" || name == "RUnlock"
		lock := name == "Lock" || name == "RLock"
		if !unlock && !lock {
			return true
		}
		if rootObject(c.info, sel.X) != c.node.Recv {
			return true
		}
		path := renderPath(sel.X)
		field := "" // receiver itself is the mutex
		if i := strings.IndexByte(path, '.'); i >= 0 {
			field = path[i+1:]
		}
		if unlock {
			lf.unlocks = append(lf.unlocks, field)
		} else {
			if lf.locked == nil {
				lf.locked = make(map[string]bool)
			}
			lf.locked[field] = true
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Closure allocation classification.

// classifyLits decides, for each literal directly nested in the node, how
// it is used — the part of the closure-allocation verdict that is pure
// syntax. A literal heap-allocates only when it captures variables AND
// escapes; non-capturing literals compile to static functions.
func (c *nodeClassifier) classifyLits() {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	inspectShallow(c.node.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[x] = stack[len(stack)-1]
		}
		stack = append(stack, x)
		return true
	})

	inspectShallow(c.node.Body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		ln := c.prog.graph.byLit[lit]
		use := closureUse{lit: lit, node: ln, captures: c.litCaptures(lit), argIndex: -1}
		switch p := parents[lit].(type) {
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == ast.Expr(lit) {
				// Directly invoked: never escapes.
			} else if gp, isGo := parents[p].(*ast.GoStmt); isGo && gp.Call == p {
				use.escaped = true // goroutine body
			} else {
				// Passed as an argument: the callee's parameter escape
				// summary decides (stdlib/unknown default to escaping).
				for i, arg := range p.Args {
					if ast.Unparen(arg) == ast.Expr(lit) {
						use.call, use.argIndex = p, i
						break
					}
				}
				if use.argIndex < 0 {
					use.escaped = true
				}
			}
		case *ast.GoStmt:
			use.escaped = true
		case *ast.DeferStmt:
			// Deferred closures in non-loop position stay on the stack.
		case *ast.AssignStmt:
			// Bound to a single-assignment local used only in call
			// position: non-escaping. Anything else escapes.
			if !c.litOnlyCalled(p, lit) {
				use.escaped = true
			}
		default:
			use.escaped = true // returned, stored in a struct, sent, ...
		}
		c.litUse[lit] = use
		return false
	})
}

// litCaptures reports whether lit references variables declared outside
// itself (its free variables force a heap closure when it escapes).
func (c *nodeClassifier) litCaptures(lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// litOnlyCalled reports whether the literal assigned in as is bound to a
// local whose every other use is as a call's Fun.
func (c *nodeClassifier) litOnlyCalled(as *ast.AssignStmt, lit *ast.FuncLit) bool {
	var obj types.Object
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == ast.Expr(lit) && i < len(as.Lhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				obj = c.info.Defs[id]
				if obj == nil {
					obj = c.info.Uses[id]
				}
			}
		}
	}
	if obj == nil {
		return false
	}
	onlyCalls := true
	callFun := map[ast.Expr]bool{}
	inspectShallow(c.node.Body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callFun[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	inspectShallow(c.node.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || !onlyCalls {
			return onlyCalls
		}
		if c.info.Uses[id] == obj && !callFun[ast.Expr(id)] {
			onlyCalls = false
		}
		return true
	})
	return onlyCalls
}

// collectClosures registers the node's closure uses for fixpoint-time
// allocation verdicts.
func (c *nodeClassifier) collectClosures(n ast.Node, lf *localFacts) {
	inspectShallow(n, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		if c.guarded(lit.Pos()) || c.waived("alloccheck", lit.Pos()) {
			return false
		}
		if use, okU := c.litUse[lit]; okU && use.captures {
			lf.closures = append(lf.closures, use)
		}
		return false
	})
}

// collectEscapes records direct (non-call) parameter and receiver escapes:
// channel sends, stores into package-level or non-local structures, and
// goroutine captures.
func (c *nodeClassifier) collectEscapes(lf *localFacts) {
	node := c.node
	info := c.info
	mark := func(obj types.Object, how string) {
		if obj == nil {
			return
		}
		if obj == node.Recv && lf.recvEscape == "" {
			lf.recvEscape = how
			return
		}
		for i, p := range node.Params {
			if p != nil && obj == p && lf.paramEscape[i] == "" {
				lf.paramEscape[i] = how
			}
		}
	}
	markExpr := func(e ast.Expr, how string) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			mark(obj, how)
		}
	}
	inspectShallow(node.Body, func(x ast.Node) bool {
		if x == nil || c.guarded(x.Pos()) {
			return x == nil
		}
		switch s := x.(type) {
		case *ast.SendStmt:
			markExpr(s.Value, "sent on a channel")
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				root := rootObject(info, lhs)
				deepStore := false
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					deepStore = true
				}
				class := c.classifyObject(root)
				if !deepStore && class != rootGlobal {
					continue
				}
				switch class {
				case rootGlobal:
					markExpr(s.Rhs[i], "stored in package-level state")
				case rootRecv, rootParam, rootCaptured:
					markExpr(s.Rhs[i], "stored into "+renderPath(lhs))
				}
			}
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				markExpr(arg, "passed to a goroutine")
			}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				// Captured free variables escape to the goroutine.
				ast.Inspect(lit.Body, func(y ast.Node) bool {
					if id, okI := y.(*ast.Ident); okI {
						if v, okV := info.Uses[id].(*types.Var); okV && !v.IsField() {
							mark(v, "captured by a goroutine")
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(s.Args) >= 2 {
					if c.classifyObject(rootObject(info, s.Args[0])) != rootLocal {
						for _, arg := range s.Args[1:] {
							markExpr(arg, "appended to "+renderPath(s.Args[0]))
						}
					}
				}
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Interprocedural stage: fixpoint over sorted nodes.

// stdEffects maps qualified stdlib callees to effect masks. Entries absent
// from the table and not matched by a prefix rule default to
// EffAlloc|EffGlobal: safe for noalloc/purity, and deliberately free of
// Clock/Block so stdlib use does not trip the clock or lock analyzers
// without evidence.
var stdEffects = map[string]uint16{
	"time.Now":   EffClock,
	"time.Since": EffClock,
	"time.Until": EffClock,
	"time.Sleep": EffClock | EffBlock,

	"time.After":     EffClock | EffAlloc | EffGlobal,
	"time.Tick":      EffClock | EffAlloc | EffGlobal,
	"time.NewTimer":  EffClock | EffAlloc | EffGlobal,
	"time.NewTicker": EffClock | EffAlloc | EffGlobal,
	"time.AfterFunc": EffClock | EffAlloc | EffGlobal,

	"(sync.Mutex).Lock":      0,
	"(sync.Mutex).Unlock":    0,
	"(sync.Mutex).TryLock":   0,
	"(sync.RWMutex).Lock":    0,
	"(sync.RWMutex).Unlock":  0,
	"(sync.RWMutex).RLock":   0,
	"(sync.RWMutex).RUnlock": 0,
	"(sync.WaitGroup).Add":   0,
	"(sync.WaitGroup).Done":  0,
	"(sync.WaitGroup).Wait":  EffBlock,

	"sort.Search": 0,

	"errors.New":  EffAlloc,
	"fmt.Errorf":  EffAlloc,
	"fmt.Sprintf": EffAlloc,
}

// stdEffect classifies one stdlib callee. sortDriver reports the in-place
// sort.Sort/Stable special case, whose effects are its argument's method
// set (handled by the caller).
func stdEffect(name string) (mask uint16, sortDriver bool) {
	if name == "sort.Sort" || name == "sort.Stable" {
		return 0, true
	}
	if m, ok := stdEffects[name]; ok {
		return m, false
	}
	switch {
	case strings.HasPrefix(name, "math."): // math only; math/rand has its own prefix
		return 0, false
	case strings.HasPrefix(name, "sync/atomic."):
		return EffMutatesParam, false
	case strings.HasPrefix(name, "(time.Time)."),
		strings.HasPrefix(name, "(time.Duration)."):
		return 0, false
	}
	return EffAlloc | EffGlobal, false
}

// callerBits are the effect bits that flow from callee to caller verbatim.
const callerBits = EffAlloc | EffClock | EffBlock | EffGlobal | EffUnknown

// solve iterates the interprocedural transfer over the sorted node list
// until no summary changes. Masks, unlock sets, and escape descriptions
// only grow, so the fixpoint is reached in at most a few rounds even
// through recursion; iteration order is deterministic, so provenance
// (first trace wins) is too.
func (p *Program) solve() {
	for changed := true; changed; {
		changed = false
		for _, n := range p.graph.nodes {
			if p.update(n) {
				changed = true
			}
		}
	}
}

// update recomputes one node's summary from its local facts and current
// callee summaries; reports whether anything grew.
func (p *Program) update(n *FuncNode) bool {
	s := p.summaries[n]
	lf := p.local[n]
	changed := false

	setBit := func(bit uint16, tr *Trace) {
		if s.Mask&bit != 0 {
			return
		}
		s.Mask |= bit
		changed = true
		switch bit {
		case EffAlloc:
			s.Alloc = tr
		case EffClock:
			s.Clock = tr
		case EffBlock:
			s.Block = tr
		case EffUnknown:
			s.Unknown = tr
		}
	}

	// Local events.
	for _, ev := range lf.events {
		setBit(ev.bit, &Trace{Pos: ev.pos, What: ev.what, EntryPos: ev.pos})
	}
	if s.ParamEscape == nil {
		s.ParamEscape = make([]string, len(lf.paramEscape))
	}
	for i, e := range lf.paramEscape {
		if e != "" && s.ParamEscape[i] == "" {
			s.ParamEscape[i] = e
			changed = true
		}
	}
	if lf.recvEscape != "" && s.RecvEscape == "" {
		s.RecvEscape = lf.recvEscape
		changed = true
	}
	for _, u := range lf.unlocks {
		if lf.locked[u] {
			continue // balanced by a local acquisition: not a net unlock
		}
		if !containsString(s.UnlockFields, u) {
			s.UnlockFields = append(s.UnlockFields, u)
			sort.Strings(s.UnlockFields)
			changed = true
		}
	}

	// Closure allocations whose verdict depends on escape summaries.
	for _, use := range lf.closures {
		if s.Mask&EffAlloc != 0 {
			break
		}
		if p.closureEscapes(use) {
			setBit(EffAlloc, &Trace{Pos: use.lit.Pos(), What: "func literal captures variables and escapes", EntryPos: use.lit.Pos()})
		}
	}

	// Call sites.
	for _, site := range lf.calls {
		if site.Unknown {
			setBit(EffUnknown, &Trace{Pos: site.Pos, What: "dynamic call with no resolvable target", EntryPos: site.Pos})
			setBit(EffGlobal, nil)
		}
		for _, name := range site.Std {
			mask, sortDriver := stdEffect(name)
			if sortDriver && site.Call != nil && len(site.Call.Args) > 0 {
				p.mergeSortArg(n, s, site, setBit)
			}
			if mask&EffClock != 0 && (n.ClockExempt || p.waivedAt(n, "clockpurity", site.Pos)) {
				mask &^= EffClock
			}
			if mask&EffAlloc != 0 && p.waivedAt(n, "alloccheck", site.Pos) {
				mask &^= EffAlloc &^ 0 // keep expression simple
				mask &^= EffAlloc
			}
			if site.Async {
				mask &^= EffBlock
			}
			for _, bit := range []uint16{EffAlloc, EffClock, EffBlock, EffGlobal, EffMutatesParam} {
				if mask&bit != 0 {
					setBit(bit, &Trace{Pos: site.Pos, What: name, EntryPos: site.Pos})
				}
			}
		}
		for _, callee := range site.Callees {
			p.mergeCallee(n, s, lf, site, callee, setBit, &changed)
		}
	}
	return changed
}

// waivedAt checks a line-level ignore without going through a classifier.
func (p *Program) waivedAt(n *FuncNode, analyzer string, pos token.Pos) bool {
	return p.ignoresFor(n.Pkg).suppressed(analyzer, n.Pkg.Fset.Position(pos))
}

// mergeCallee folds one callee summary into the caller at one site.
func (p *Program) mergeCallee(n *FuncNode, s *Summary, lf *localFacts, site CallSite, callee *FuncNode, setBit func(uint16, *Trace), changed *bool) {
	cs := p.summaries[callee]
	lift := func(bit uint16, tr *Trace) {
		if cs.Mask&bit == 0 {
			return
		}
		var root Trace
		if tr != nil {
			root = *tr
		}
		via := append([]string{callee.Name()}, root.Via...)
		setBit(bit, &Trace{Pos: root.Pos, What: root.What, Via: via, EntryPos: site.Pos})
	}
	if cs.Mask&EffAlloc != 0 && !p.waivedAt(n, "alloccheck", site.Pos) {
		lift(EffAlloc, cs.Alloc)
	}
	if cs.Mask&EffClock != 0 && !n.ClockExempt && !p.waivedAt(n, "clockpurity", site.Pos) {
		lift(EffClock, cs.Clock)
	}
	if cs.Mask&EffBlock != 0 && !site.Async && !p.waivedAt(n, "lockcheck", site.Pos) {
		lift(EffBlock, cs.Block)
	}
	lift(EffUnknown, cs.Unknown)
	if cs.Mask&EffGlobal != 0 {
		setBit(EffGlobal, nil)
	}

	// Receiver effects map through the call's receiver operand.
	if cs.Mask&(EffReadsRecv|EffMutatesRecv) != 0 || len(cs.UnlockFields) > 0 || cs.RecvEscape != "" {
		root := rootObject(n.Pkg.Info, siteRecv(site))
		class := classifyForNode(n, root)
		if cs.Mask&EffMutatesRecv != 0 {
			switch class {
			case rootRecv:
				setBit(EffMutatesRecv, nil)
			case rootParam:
				setBit(EffMutatesParam, nil)
			case rootGlobal, rootCaptured:
				setBit(EffGlobal, nil)
			}
		}
		if cs.Mask&EffReadsRecv != 0 && class == rootRecv {
			setBit(EffReadsRecv, nil)
		}
		if class == rootRecv && !site.Async {
			for _, u := range cs.UnlockFields {
				if lf.locked[u] {
					continue // caller re-balances what the callee releases
				}
				if !containsString(s.UnlockFields, u) {
					s.UnlockFields = append(s.UnlockFields, u)
					sort.Strings(s.UnlockFields)
					*changed = true
				}
			}
		}
	}

	// Parameter mutation: a callee that writes through its pointer
	// parameters mutates whatever the caller passed.
	if cs.Mask&EffMutatesParam != 0 && site.Call != nil {
		for i := range callee.Params {
			if i >= len(site.Call.Args) {
				break
			}
			switch classifyForNode(n, rootObject(n.Pkg.Info, site.Call.Args[i])) {
			case rootRecv:
				setBit(EffMutatesRecv, nil)
			case rootParam:
				setBit(EffMutatesParam, nil)
			case rootGlobal, rootCaptured:
				setBit(EffGlobal, nil)
			}
		}
	}

	// Escape propagation: caller values passed to escaping callee
	// parameters escape too (unless the callee is a declared transfer
	// sink — sharecheck honors that annotation at report time, but the
	// summary still records the flow for non-owned reasoning).
	if site.Call != nil {
		for i, esc := range cs.ParamEscape {
			if esc == "" || i >= len(site.Call.Args) {
				continue
			}
			how := "passed to " + callee.Name() + ", which " + escVerb(esc)
			p.markEscape(n, s, rootObject(n.Pkg.Info, site.Call.Args[i]), how, changed)
		}
	}
	if cs.RecvEscape != "" && siteRecv(site) != nil {
		how := "receiver passed to " + callee.Name() + ", which " + escVerb(cs.RecvEscape)
		p.markEscape(n, s, rootObject(n.Pkg.Info, siteRecv(site)), how, changed)
	}
}

// escVerb turns an escape description into a clause ("stores it ...").
func escVerb(desc string) string {
	return "lets it escape (" + desc + ")"
}

// markEscape records an escape fact for a caller receiver/param object.
func (p *Program) markEscape(n *FuncNode, s *Summary, obj types.Object, how string, changed *bool) {
	if obj == nil {
		return
	}
	if obj == n.Recv && s.RecvEscape == "" {
		s.RecvEscape = how
		*changed = true
		return
	}
	for i, pr := range n.Params {
		if pr != nil && obj == pr {
			if s.ParamEscape == nil {
				s.ParamEscape = make([]string, len(n.Params))
			}
			if s.ParamEscape[i] == "" {
				s.ParamEscape[i] = how
				*changed = true
			}
		}
	}
}

// siteRecv returns the receiver operand of a method call site, or nil.
func siteRecv(site CallSite) ast.Expr { return site.RecvExpr }

// classifyForNode is classifyObject without a classifier instance.
func classifyForNode(n *FuncNode, obj types.Object) rootClass {
	if obj == nil {
		return rootLocal
	}
	if obj == n.Recv {
		return rootRecv
	}
	for _, p := range n.Params {
		if p != nil && obj == p {
			return rootParam
		}
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return rootLocal
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return rootGlobal
	}
	if n.Lit != nil && (v.Pos() < n.Lit.Pos() || v.Pos() >= n.Lit.End()) {
		return rootCaptured
	}
	return rootLocal
}

// mergeSortArg charges the caller with the Len/Less/Swap methods of the
// value passed to sort.Sort/sort.Stable — the in-place sorters invoke the
// argument's own methods and allocate nothing themselves.
func (p *Program) mergeSortArg(n *FuncNode, s *Summary, site CallSite, setBit func(uint16, *Trace)) {
	argType := n.Pkg.Info.TypeOf(site.Call.Args[0])
	if argType == nil {
		return
	}
	for _, m := range []string{"Len", "Less", "Swap"} {
		obj, _, _ := types.LookupFieldOrMethod(argType, true, n.Pkg.Types, m)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		callee := p.graph.byFunc[fn]
		if callee == nil {
			continue
		}
		cs := p.summaries[callee]
		for _, bit := range []uint16{EffAlloc, EffClock, EffBlock, EffGlobal, EffUnknown} {
			if cs.Mask&bit == 0 {
				continue
			}
			if bit == EffAlloc && p.waivedAt(n, "alloccheck", site.Pos) {
				continue
			}
			var root Trace
			switch bit {
			case EffAlloc:
				if cs.Alloc != nil {
					root = *cs.Alloc
				}
			case EffClock:
				if cs.Clock != nil {
					root = *cs.Clock
				}
			case EffBlock:
				if cs.Block != nil {
					root = *cs.Block
				}
			case EffUnknown:
				if cs.Unknown != nil {
					root = *cs.Unknown
				}
			}
			setBit(bit, &Trace{Pos: root.Pos, What: root.What, Via: append([]string{callee.Name()}, root.Via...), EntryPos: site.Pos})
		}
	}
}

// closureEscapes decides whether a capturing literal escapes, consulting
// the current escape summaries for callback arguments. Monotone: escape
// facts only grow during the fixpoint.
func (p *Program) closureEscapes(use closureUse) bool {
	if use.escaped {
		return true
	}
	if use.call == nil {
		return false
	}
	callees := p.graph.calleesAt[use.call]
	if callees == nil {
		// Stdlib or unknown callee: assume the callback is retained.
		return true
	}
	for _, callee := range callees {
		i := use.argIndex
		if callee.Recv == nil {
			// plain function: arg index aligns with params
		}
		cs := p.summaries[callee]
		if cs.ParamEscape != nil && i < len(cs.ParamEscape) && cs.ParamEscape[i] != "" {
			return true
		}
	}
	return false
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// //rexlint:transfer directive set (sharecheck's ownership hand-off).

// transferEntry is one line-level transfer directive.
type transferEntry struct {
	pos  token.Position
	used bool
}

// transferSet indexes a package's transfer directives by file and line,
// with the same own-line-or-next coverage as ignores.
type transferSet struct {
	lines map[string]map[int][]*transferEntry
	all   []*transferEntry
}

// buildTransfers scans for line-level `//rexlint:transfer <reason>`
// directives. Directives inside function doc comments declare the function
// a transfer sink instead (FuncNode.TransferSink) and are excluded here.
func buildTransfers(fset *token.FileSet, files []*ast.File) *transferSet {
	out := &transferSet{lines: make(map[string]map[int][]*transferEntry)}
	docGroups := map[*ast.CommentGroup]bool{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docGroups[fd.Doc] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			if docGroups[cg] {
				continue
			}
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "rexlint:transfer")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out.lines[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*transferEntry)
					out.lines[pos.Filename] = lines
				}
				e := &transferEntry{pos: pos}
				out.all = append(out.all, e)
				lines[pos.Line] = append(lines[pos.Line], e)
				lines[pos.Line+1] = append(lines[pos.Line+1], e)
			}
		}
	}
	return out
}

// sanctioned reports whether a transfer directive covers pos, marking it
// used.
func (s *transferSet) sanctioned(pos token.Position) bool {
	if s == nil {
		return false
	}
	hit := false
	for _, e := range s.lines[pos.Filename][pos.Line] {
		e.used = true
		hit = true
	}
	return hit
}

// unusedTransfers reports directives that sanctioned nothing.
func (s *transferSet) unusedTransfers() []Diagnostic {
	var out []Diagnostic
	for _, e := range s.all {
		if e.used {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "sharecheck",
			Pos:      e.pos,
			Message:  fmt.Sprintf("unused rexlint:transfer: no ownership hand-off here to sanction"),
		})
	}
	return out
}

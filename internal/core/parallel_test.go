package core

import (
	"testing"
)

func TestSolveParallelAtLeastAsGoodAsSingle(t *testing.T) {
	p := smallInstance(t, 55, 2)
	cfg := quickConfig()
	cfg.Iterations = 200
	single, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(cfg).SolveParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// restart 0 uses the base seed, so the portfolio includes the single
	// run: the best of the portfolio cannot be worse.
	if multi.Objective > single.Objective+1e-12 {
		t.Errorf("parallel best %v worse than single %v", multi.Objective, single.Objective)
	}
	if !multi.Final.Feasible() {
		t.Error("parallel result infeasible")
	}
	if _, err := multi.Plan.Validate(p); err != nil {
		t.Errorf("parallel result plan invalid: %v", err)
	}
}

func TestSolveParallelDeterministic(t *testing.T) {
	cfg := quickConfig()
	cfg.Iterations = 150
	a, err := New(cfg).SolveParallel(smallInstance(t, 56, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).SolveParallel(smallInstance(t, 56, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.MovedShards != b.MovedShards {
		t.Errorf("non-deterministic: %v/%d vs %v/%d",
			a.Objective, a.MovedShards, b.Objective, b.MovedShards)
	}
}

func TestSolveParallelInputUntouched(t *testing.T) {
	p := smallInstance(t, 57, 1)
	before := p.Assignment()
	cfg := quickConfig()
	cfg.Iterations = 100
	if _, err := New(cfg).SolveParallel(p, 4); err != nil {
		t.Fatal(err)
	}
	for s, m := range p.Assignment() {
		if before[s] != m {
			t.Fatal("parallel solve mutated input")
		}
	}
}

func TestSolveParallelSingleRestartDelegates(t *testing.T) {
	p := smallInstance(t, 58, 1)
	cfg := quickConfig()
	cfg.Iterations = 100
	a, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).SolveParallel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Errorf("restarts=1 should equal Solve: %v vs %v", a.Objective, b.Objective)
	}
}

// TestWorkerSeedsPairwiseDistinct pins the seed-decorrelation fix. The old
// additive stride (Seed + i*0x9E3779B1) made restart i of a run seeded S
// reuse the seed of restart i-1 of a run seeded S+0x9E3779B1, so stride-
// spaced seed sweeps ran duplicate searches. The splitmix64-style mix must
// produce pairwise-distinct worker seeds across a sweep of base seeds in
// every pattern a harness plausibly uses: consecutive, stride-spaced (the
// old collision), and golden-ratio-spaced.
func TestWorkerSeedsPairwiseDistinct(t *testing.T) {
	const restarts = 64
	bases := []int64{1, 2, 3, 42}
	goldenGamma := int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	for _, step := range []int64{1, 0x9E3779B1, -0x9E3779B1, goldenGamma} {
		for i := int64(1); i <= 4; i++ {
			bases = append(bases, 7+i*step)
		}
	}
	seen := make(map[int64][2]int64, len(bases)*restarts)
	for _, base := range bases {
		for i := 0; i < restarts; i++ {
			s := workerSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("worker seed collision: (base=%d, i=%d) and (base=%d, i=%d) both map to %d",
					base, int64(i), prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(i)}
		}
	}

	// The exact pre-fix failure shape, spelled out: restart i of seed S
	// must not equal restart i-1 of seed S+0x9E3779B1.
	const oldStride = 0x9E3779B1
	for i := 1; i < restarts; i++ {
		if workerSeed(100, i) == workerSeed(100+oldStride, i-1) {
			t.Fatalf("stride-shifted runs still share worker seeds at i=%d", i)
		}
	}

	// Restart 0 must keep the base seed so the portfolio contains the
	// plain single run.
	if workerSeed(1234, 0) != 1234 {
		t.Fatalf("workerSeed(base, 0) = %d, want the base seed", workerSeed(1234, 0))
	}
}

func TestSolveParallelPropagatesErrors(t *testing.T) {
	p := smallInstance(t, 59, 1)
	q := p.Clone()
	if err := q.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, err := New(quickConfig()).SolveParallel(q, 3); err == nil {
		t.Error("expected error for partial placement")
	}
}

// Package lp is a self-contained dense linear programming solver (two-phase
// primal simplex, stdlib only). It exists to power internal/ip's
// branch-and-bound, which computes exact reference optima for the paper's
// integer programming formulation on small instances (experiment T1).
//
// Problems are stated as
//
//	minimize  cᵀx   subject to   aᵢᵀx {≤,=,≥} bᵢ,  x ≥ 0.
//
// The implementation keeps the full tableau explicitly: problem sizes in
// this repository are tiny (tens of variables), so clarity wins over
// revised-simplex machinery.
package lp

import (
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// Constraint is one linear constraint over the problem's variables.
// Coefs may be shorter than NumVars; missing entries are zero.
type Constraint struct {
	Coefs []float64
	Sense Sense
	RHS   float64
}

// Problem is a minimization LP. Variables are implicitly ≥ 0.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// NewProblem creates a problem with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// AddConstraint appends a constraint.
func (p *Problem) AddConstraint(coefs []float64, sense Sense, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coefs: coefs, Sense: sense, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // primal values (valid when Status == Optimal)
	Obj    float64   // objective value (valid when Status == Optimal)
}

const (
	eps     = 1e-9
	maxIter = 20000
)

// Solve runs two-phase primal simplex on p.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("lp: problem has no variables")
	}
	if len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables",
			len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coefs) > p.NumVars {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables",
				i, len(c.Coefs), p.NumVars)
		}
	}

	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.numArt > 0 {
		t.installCosts(t.phase1Costs())
		st := t.iterate()
		if st != Optimal {
			return &Solution{Status: st}, nil
		}
		if t.objValue() > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		t.expelArtificials()
	}
	// Phase 2: minimize the real objective, artificials barred.
	t.banArtificials()
	t.installCosts(t.phase2Costs(p))
	st := t.iterate()
	if st != Optimal {
		return &Solution{Status: st}, nil
	}
	x := t.extract(p.NumVars)
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}, nil
}

// tableau is the dense simplex tableau: rows[0..m) are constraints, cost is
// the reduced-cost row, rhs the right-hand sides, basis the basic variable
// of each row.
type tableau struct {
	m, n    int // constraints, total columns (vars + slacks + artificials)
	numVars int
	numArt  int
	artFrom int // first artificial column index
	rows    [][]float64
	rhs     []float64
	cost    []float64
	costRHS float64
	basis   []int
	banned  []bool // columns barred from entering (artificials in phase 2)
}

// newTableau standardizes the problem: negative RHS rows are flipped,
// slack/surplus columns added, artificials introduced for GE/EQ rows, and
// an initial basis of slacks/artificials installed.
func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// count extra columns
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		sense, rhs := c.Sense, c.RHS
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	n := p.NumVars + numSlack + numArt
	t := &tableau{
		m: m, n: n,
		numVars: p.NumVars,
		numArt:  numArt,
		artFrom: p.NumVars + numSlack,
		rows:    make([][]float64, m),
		rhs:     make([]float64, m),
		cost:    make([]float64, n),
		basis:   make([]int, m),
		banned:  make([]bool, n),
	}
	slackCol := p.NumVars
	artCol := t.artFrom
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			sense = flip(sense)
		}
		for j, v := range c.Coefs {
			row[j] = sign * v
		}
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
		t.rhs[i] = rhs
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// phase1Costs returns the cost vector charging 1 per artificial.
func (t *tableau) phase1Costs() []float64 {
	c := make([]float64, t.n)
	for j := t.artFrom; j < t.n; j++ {
		c[j] = 1
	}
	return c
}

// phase2Costs embeds the real objective in the tableau's column space.
func (t *tableau) phase2Costs(p *Problem) []float64 {
	c := make([]float64, t.n)
	copy(c, p.Objective)
	return c
}

// installCosts sets the reduced-cost row for the given costs, making the
// reduced costs of basic variables zero.
func (t *tableau) installCosts(c []float64) {
	copy(t.cost, c)
	t.costRHS = 0
	for i, b := range t.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.cost[j] -= cb * t.rows[i][j]
		}
		t.costRHS -= cb * t.rhs[i]
	}
}

// objValue returns the current objective value (phase-dependent).
func (t *tableau) objValue() float64 { return -t.costRHS }

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration limit. Dantzig's rule is used initially; Bland's rule takes
// over after n+m degenerate-looking iterations to guarantee termination.
func (t *tableau) iterate() Status {
	blandAfter := 4 * (t.n + t.m + 8)
	for it := 0; it < maxIter; it++ {
		bland := it > blandAfter
		col := t.entering(bland)
		if col < 0 {
			return Optimal
		}
		row := t.leaving(col)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
	return IterLimit
}

// entering picks the entering column: most negative reduced cost
// (Dantzig), or the lowest-index negative one (Bland).
func (t *tableau) entering(bland bool) int {
	best := -1
	bestVal := -eps
	for j := 0; j < t.n; j++ {
		if t.banned[j] {
			continue
		}
		if t.cost[j] < bestVal {
			if bland {
				return j
			}
			best = j
			bestVal = t.cost[j]
		}
	}
	return best
}

// leaving runs the minimum-ratio test for the entering column, breaking
// ties toward the smallest basis index (a lexicographic anti-cycling aid).
func (t *tableau) leaving(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= eps {
			continue
		}
		r := t.rhs[i] / a
		if r < bestRatio-eps || (r < bestRatio+eps && (best < 0 || t.basis[i] < t.basis[best])) {
			best = i
			bestRatio = r
		}
	}
	return best
}

// pivot performs a full Gauss-Jordan pivot at (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	pr[col] = 1 // exactness
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	if f := t.cost[col]; f != 0 {
		for j := 0; j < t.n; j++ {
			t.cost[j] -= f * pr[j]
		}
		t.cost[col] = 0
		t.costRHS -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// expelArtificials pivots artificial variables out of the basis after
// phase 1 where possible; rows where no real column is available are
// redundant and keep a zero-valued artificial basic.
func (t *tableau) expelArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artFrom {
			continue
		}
		for j := 0; j < t.artFrom; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

// banArtificials bars artificial columns from re-entering in phase 2.
func (t *tableau) banArtificials() {
	for j := t.artFrom; j < t.n; j++ {
		t.banned[j] = true
	}
}

// extract reads the primal values of the first n variables.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rhs[i]
		}
	}
	// clean tiny negatives from roundoff
	for j := range x {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
	}
	return x
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StateCheck verifies declared state machines and paired resources
// against every intraprocedural path. A package opts in with comment
// directives (anywhere in the package):
//
//	//rexlint:transition MovePending -> MoveInFlight MoveCancelled
//	//rexlint:transition MoveDone ->
//	//rexlint:resource reservation held=MoveInFlight acquire=reserve release=release
//
// The transition directives declare the allowed successor states of each
// state constant; the resource directive declares that `reserve(x)` takes
// a unit of the reservation resource for x's owner and `release(x)` gives
// it back, and that the resource is held exactly while the owner's status
// field is MoveInFlight.
//
// The analysis is a forward may-analysis over sets of possible states
// (absent = unknown), with branch refinement: `if st.status ==
// MoveInFlight` narrows the set on the then-edge. It reports:
//
//   - T1: a status assignment `x.status = B` when every state x may be in
//     disallows a transition to B (state skipping);
//   - R2: a release while the owner's status provably excludes the held
//     state;
//   - R4: a second release for the same owner on one path with no
//     intervening acquire (the PR-4 double-release);
//   - R3: returning with the resource released but the status possibly
//     still the held state — the caller will observe a held status and
//     release again (the PR-4 root cause). Releasing when the status is
//     unknown infers status = held, so the check works even when the
//     held-ness was established through a different variable.
//
// Packages with no directives are skipped entirely.
var StateCheck = &Analyzer{
	Name: "statecheck",
	Doc:  "check declared state-machine transitions and acquire/release pairing of declared resources along all paths",
	Run:  runStateCheck,
}

// stateSet is a set of state constant names the status may hold.
type stateSet map[string]bool

func (s stateSet) clone() stateSet {
	out := stateSet{}
	for k := range s {
		out[k] = true
	}
	return out
}

func (s stateSet) names() string {
	var all []string
	for k := range s {
		all = append(all, k)
	}
	sort.Strings(all)
	return strings.Join(all, "|")
}

// resource lifecycle values.
type resState int

const (
	resHeld resState = iota + 1
	resReleased
)

// stateFact carries, per path: the may-set of each tracked status field
// (absent key = unknown), the lifecycle of each owner's resource, and
// value provenance (`mv := st.mv` records alias[mv] = st) used to map
// release arguments back to status owners.
type stateFact struct {
	status map[string]stateSet
	res    map[string]resState
	alias  map[string]string
}

func emptyStateFact() stateFact {
	return stateFact{status: map[string]stateSet{}, res: map[string]resState{}, alias: map[string]string{}}
}

func (f stateFact) clone() stateFact {
	out := emptyStateFact()
	for k, v := range f.status {
		out.status[k] = v.clone()
	}
	for k, v := range f.res {
		out.res[k] = v
	}
	for k, v := range f.alias {
		out.alias[k] = v
	}
	return out
}

// stateSpec is the resolved package configuration.
type stateSpec struct {
	// allowed maps a state name to its permitted successor states; a state
	// present with an empty set is terminal.
	allowed map[string]stateSet
	// consts maps the state constant objects back to their names.
	consts map[types.Object]string
	// statusField is the struct field name holding the state (the unique
	// field whose type matches the state constants).
	statusField string
	resources   []resourceSpec
}

type resourceSpec struct {
	name    string
	held    string
	acquire string
	release string
}

type stateFlow struct {
	info *types.Info
	spec *stateSpec
}

func (sf *stateFlow) Entry() stateFact { return emptyStateFact() }

func (sf *stateFlow) Join(a, b stateFact) stateFact {
	out := emptyStateFact()
	// Status: known on both paths -> union; known on one -> unknown.
	for k, av := range a.status {
		bv, ok := b.status[k]
		if !ok {
			continue
		}
		u := av.clone()
		for s := range bv {
			u[s] = true
		}
		out.status[k] = u
	}
	// Resource + alias: keep only facts both paths agree on.
	for k, av := range a.res {
		if bv, ok := b.res[k]; ok && av == bv {
			out.res[k] = av
		}
	}
	for k, av := range a.alias {
		if bv, ok := b.alias[k]; ok && av == bv {
			out.alias[k] = av
		}
	}
	return out
}

func (sf *stateFlow) Equal(a, b stateFact) bool {
	if len(a.status) != len(b.status) || len(a.res) != len(b.res) || len(a.alias) != len(b.alias) {
		return false
	}
	for k, av := range a.status {
		bv, ok := b.status[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for s := range av {
			if !bv[s] {
				return false
			}
		}
	}
	for k, av := range a.res {
		if b.res[k] != av {
			return false
		}
	}
	for k, av := range a.alias {
		if b.alias[k] != av {
			return false
		}
	}
	return true
}

// Refine narrows status sets along `status == Const` / `status != Const`
// edges (real if/for conditions and the synthesized switch-case
// equalities).
func (sf *stateFlow) Refine(e Edge, f stateFact) stateFact {
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	var pathExpr, constExpr ast.Expr
	if sf.stateConst(bin.Y) != "" {
		pathExpr, constExpr = bin.X, bin.Y
	} else if sf.stateConst(bin.X) != "" {
		pathExpr, constExpr = bin.Y, bin.X
	} else {
		return f
	}
	state := sf.stateConst(constExpr)
	key, okKey := sf.statusKey(pathExpr)
	if !okKey {
		return f
	}
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return f
	}
	eq := bin.Op == token.EQL
	if e.Neg {
		eq = !eq
	}
	out := f.clone()
	if eq {
		out.status[key] = stateSet{state: true}
		return out
	}
	// status != Const: remove from a known set; stays unknown otherwise.
	if cur, known := out.status[key]; known {
		nu := cur.clone()
		delete(nu, state)
		out.status[key] = nu
	}
	return out
}

// stateConst returns the state name e references, or "".
func (sf *stateFlow) stateConst(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return sf.spec.consts[sf.info.Uses[x]]
	case *ast.SelectorExpr:
		return sf.spec.consts[sf.info.Uses[x.Sel]]
	}
	return ""
}

// statusKey returns the fact key for a status-field path like `st.status`.
func (sf *stateFlow) statusKey(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != sf.spec.statusField {
		return "", false
	}
	base, okBase := exprKey(sf.info, sel.X)
	if !okBase {
		return "", false
	}
	return base + "." + sf.spec.statusField, true
}

func (sf *stateFlow) Transfer(n ast.Node, in stateFact) stateFact {
	out := in
	copied := false
	ensure := func() stateFact {
		if !copied {
			out, copied = out.clone(), true
		}
		return out
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			sf.transferAssign(s, ensure, &out)
		case *ast.CallExpr:
			if spec, owner, ok := sf.resourceCall(s, out); ok {
				f := ensure()
				rk := owner + "#" + spec.res.name
				if spec.isAcquire {
					f.res[rk] = resHeld
				} else {
					f.res[rk] = resReleased
					// Releasing is only legal while held: infer the status
					// when it is unknown so the at-return check can fire even
					// if held-ness was established through another variable.
					sk := owner + "." + sf.spec.statusField
					if _, known := f.status[sk]; !known {
						f.status[sk] = stateSet{spec.res.held: true}
					}
				}
			}
		}
		return true
	})
	return out
}

// transferAssign updates status sets and provenance for one assignment.
func (sf *stateFlow) transferAssign(as *ast.AssignStmt, ensure func() stateFact, out *stateFact) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		// st.status = Const
		if key, ok := sf.statusKey(lhs); ok {
			f := ensure()
			if state := sf.stateConst(rhs); state != "" {
				f.status[key] = stateSet{state: true}
			} else {
				delete(f.status, key) // unknown value assigned
			}
			continue
		}
		lk, okL := exprKey(sf.info, lhs)
		if !okL {
			continue
		}
		// Reassignment kills every fact derived from the old value: its
		// provenance, its status set, and its resource lifecycle (a loop
		// re-binding `st := &e.moves[i]` starts a fresh owner).
		f := ensure()
		delete(f.alias, lk)
		delete(f.status, lk+"."+sf.spec.statusField)
		for _, r := range sf.spec.resources {
			delete(f.res, lk+"#"+r.name)
		}
		// mv := st.mv  — remember the owner for release(mv).
		if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
			if base, okB := exprKey(sf.info, sel.X); okB {
				f.alias[lk] = base
				continue
			}
		}
		// st := moveState{status: Const, ...} (or &T{...}) seeds the set.
		if state := sf.compositeStatus(rhs); state != "" {
			f.status[lk+"."+sf.spec.statusField] = stateSet{state: true}
		}
	}
}

// compositeStatus extracts the status field's state from a composite
// literal RHS, if present.
func (sf *stateFlow) compositeStatus(e ast.Expr) string {
	x := ast.Unparen(e)
	if u, ok := x.(*ast.UnaryExpr); ok {
		x = ast.Unparen(u.X)
	}
	lit, ok := x.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == sf.spec.statusField {
			return sf.stateConst(kv.Value)
		}
	}
	return ""
}

// resourceCallInfo describes a matched acquire/release call.
type resourceCallInfo struct {
	res       resourceSpec
	isAcquire bool
}

// resourceCall matches a call against the declared acquire/release
// functions and resolves the owner key of its first argument.
func (sf *stateFlow) resourceCall(call *ast.CallExpr, f stateFact) (resourceCallInfo, string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return resourceCallInfo{}, "", false
	}
	for _, r := range sf.spec.resources {
		isAcq := name == r.acquire
		if !isAcq && name != r.release {
			continue
		}
		if len(call.Args) == 0 {
			return resourceCallInfo{}, "", false
		}
		owner, ok := sf.ownerOf(call.Args[0], f)
		if !ok {
			return resourceCallInfo{}, "", false
		}
		return resourceCallInfo{res: r, isAcquire: isAcq}, owner, true
	}
	return resourceCallInfo{}, "", false
}

// ownerOf maps a resource-call argument to its owner key: for `st.mv` the
// owner is st; for a plain `mv` the recorded provenance (alias) wins, and
// the value itself is the owner otherwise.
func (sf *stateFlow) ownerOf(arg ast.Expr, f stateFact) (string, bool) {
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if base, okB := exprKey(sf.info, sel.X); okB {
			return base, true
		}
		return "", false
	}
	k, ok := exprKey(sf.info, arg)
	if !ok {
		return "", false
	}
	if owner, aliased := f.alias[k]; aliased {
		return owner, true
	}
	return k, true
}

func runStateCheck(pass *Pass) error {
	spec := resolveStateSpec(pass)
	if spec == nil {
		return nil // package declares no state machine
	}
	for _, file := range pass.Files {
		funcBodies(file, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			checkStateFunc(pass, spec, body)
		})
	}
	return nil
}

// resolveStateSpec parses the package's transition/resource directives and
// resolves state constants and the status field. Returns nil when the
// package has no directives.
func resolveStateSpec(pass *Pass) *stateSpec {
	trans := directives(pass.Files, "transition")
	ress := directives(pass.Files, "resource")
	if len(trans) == 0 && len(ress) == 0 {
		return nil
	}
	spec := &stateSpec{allowed: map[string]stateSet{}, consts: map[types.Object]string{}}
	names := map[string]bool{}
	for _, fields := range trans {
		// FROM -> TO1 TO2 ...
		arrow := -1
		for i, f := range fields {
			if f == "->" {
				arrow = i
				break
			}
		}
		if arrow != 1 || len(fields) < 2 {
			pass.Reportf(pass.Files[0].Pos(), "malformed rexlint:transition directive: want `STATE -> STATE...`, got %q", strings.Join(fields, " "))
			continue
		}
		from := fields[0]
		names[from] = true
		set := spec.allowed[from]
		if set == nil {
			set = stateSet{}
			spec.allowed[from] = set
		}
		for _, to := range fields[arrow+1:] {
			names[to] = true
			set[to] = true
		}
	}
	for _, fields := range ress {
		r := resourceSpec{}
		if len(fields) >= 1 {
			r.name = fields[0]
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				continue
			}
			switch k {
			case "held":
				r.held = v
			case "acquire":
				r.acquire = v
			case "release":
				r.release = v
			}
		}
		if r.name == "" || r.held == "" || r.acquire == "" || r.release == "" {
			pass.Reportf(pass.Files[0].Pos(), "malformed rexlint:resource directive: want `name held=S acquire=fn release=fn`")
			continue
		}
		names[r.held] = true
		spec.resources = append(spec.resources, r)
	}
	// Resolve the state constants in package scope.
	var stateType types.Type
	for name := range names {
		obj := pass.Pkg.Scope().Lookup(name)
		if obj == nil {
			pass.Reportf(pass.Files[0].Pos(), "rexlint state directive names unknown constant %s", name)
			continue
		}
		spec.consts[obj] = name
		if stateType == nil {
			stateType = obj.Type()
		}
	}
	if stateType == nil {
		return nil
	}
	// The status field: the unique field of the state type among package
	// structs.
	fieldNames := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if t := pass.TypesInfo.TypeOf(f.Type); t != nil && types.Identical(t, stateType) {
					for _, nm := range f.Names {
						fieldNames[nm.Name] = true
					}
				}
			}
			return true
		})
	}
	if len(fieldNames) != 1 {
		pass.Reportf(pass.Files[0].Pos(), "statecheck: cannot determine the status field: found %d candidate fields of type %s", len(fieldNames), stateType)
		return nil
	}
	for n := range fieldNames {
		spec.statusField = n
	}
	return spec
}

// checkStateFunc solves the state facts over one body and applies the
// T1/R2/R3/R4 checks.
func checkStateFunc(pass *Pass, spec *stateSpec, body *ast.BlockStmt) {
	info := pass.TypesInfo
	flow := &stateFlow{info: info, spec: spec}
	g := BuildCFG(body, info)
	facts := Forward[stateFact](g, flow)

	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		f, ok := facts.In[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			checkStateNode(pass, flow, n, f)
			f = flow.Transfer(n, f)
		}
		if blockFallsToExit(g, b, info) {
			reportReleasedButHeld(pass, flow, f, lastPos(b, body))
		}
	}
}

// checkStateNode applies the per-node checks BEFORE n's own transfer.
func checkStateNode(pass *Pass, flow *stateFlow, n ast.Node, f stateFact) {
	spec := flow.spec
	inspectShallow(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				key, ok := flow.statusKey(lhs)
				if !ok {
					continue
				}
				to := flow.stateConst(s.Rhs[i])
				if to == "" {
					continue
				}
				cur, known := f.status[key]
				if !known || len(cur) == 0 {
					continue
				}
				// T1: flag only when EVERY possible current state disallows
				// the target — a superset state stays silent.
				allBad := true
				for from := range cur {
					allowed, declared := spec.allowed[from]
					if !declared || allowed[to] {
						allBad = false
						break
					}
				}
				if allBad {
					pass.Reportf(s.Pos(), "invalid transition %s -> %s (allowed: %s)", cur.names(), to, allowedStr(spec, cur))
				}
			}
		case *ast.CallExpr:
			ci, owner, ok := flow.resourceCall(s, f)
			if !ok {
				return true
			}
			rk := owner + "#" + ci.res.name
			if ci.isAcquire {
				if f.res[rk] == resHeld {
					pass.Reportf(s.Pos(), "%s acquired again without an intervening %s (double acquire)", ci.res.name, ci.res.release)
				}
				return true
			}
			// R4: double release on one path.
			if f.res[rk] == resReleased {
				pass.Reportf(s.Pos(), "%s released twice on this path without an intervening %s (double release)", ci.res.name, ci.res.acquire)
				return true
			}
			// R2: release while the status provably excludes the held state.
			sk := owner + "." + spec.statusField
			if cur, known := f.status[sk]; known && !cur[ci.res.held] {
				pass.Reportf(s.Pos(), "%s released while %s is %s (release is only legal in %s)", ci.res.name, spec.statusField, cur.names(), ci.res.held)
			}
		}
		return true
	})
	if isFlowExit(pass.TypesInfo, n) {
		reportReleasedButHeld(pass, flow, f, n.Pos())
	}
}

// reportReleasedButHeld is the R3 / PR-4 check: at a flow exit, a released
// resource whose owner's status may still be the held state means a later
// observer will release again.
func reportReleasedButHeld(pass *Pass, flow *stateFlow, f stateFact, pos token.Pos) {
	spec := flow.spec
	for rk, st := range f.res {
		if st != resReleased {
			continue
		}
		owner, resName, okc := cutLast(rk, '#')
		if !okc {
			continue
		}
		var held string
		for _, r := range spec.resources {
			if r.name == resName {
				held = r.held
			}
		}
		if held == "" {
			continue
		}
		sk := owner + "." + spec.statusField
		if cur, known := f.status[sk]; known && cur[held] {
			pass.Reportf(pos, "returning with %s released but %s possibly still %s: a later pass over this status will release again (double-release shape)", resName, spec.statusField, held)
		}
	}
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s string, sep byte) (string, string, bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// allowedStr renders the union of allowed successors of all states in cur.
func allowedStr(spec *stateSpec, cur stateSet) string {
	u := stateSet{}
	for from := range cur {
		for to := range spec.allowed[from] {
			u[to] = true
		}
	}
	if len(u) == 0 {
		return "none"
	}
	return u.names()
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in objective and
// metrics code. After long chains of incremental adds and subtracts (the
// placement aggregates) two mathematically equal quantities rarely compare
// equal bit-for-bit, so exact comparison encodes a latent heisenbug; use an
// epsilon helper (stats.AlmostEqual, vec.AlmostEqual) instead.
//
// Two idioms are deliberately exempt:
//
//   - comparison against a constant (x == 0 checks an exact sentinel that
//     was assigned, not computed);
//   - comparisons inside a function literal passed as a call argument —
//     sort comparators break ties with exact != on purpose, and an epsilon
//     there would destroy the strict weak ordering sort requires.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag exact ==/!= between floats; use an epsilon comparison",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		// Collect comparator-style function literals: literals passed
		// directly as call arguments (sort.Slice less functions and the
		// solver's local sort helpers).
		comparators := comparatorRanges(file)
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if bin.Op != token.EQL && bin.Op != token.NEQ {
				return true
			}
			if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
				return true
			}
			if isConstant(pass, bin.X) || isConstant(pass, bin.Y) {
				return true
			}
			for _, r := range comparators {
				if bin.Pos() >= r[0] && bin.End() <= r[1] {
					return true
				}
			}
			pass.Reportf(bin.OpPos,
				"exact floating-point %s on computed values; use an epsilon helper (stats.AlmostEqual / vec.AlmostEqual)",
				bin.Op)
			return true
		})
	}
	return nil
}

// comparatorRanges returns the position spans of function literals passed
// directly as arguments to calls.
func comparatorRanges(file *ast.File) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return out
}

// isFloat reports whether e has floating-point type.
func isFloat(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstant reports whether e is a compile-time constant.
func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

package metrics

import (
	"io"
	"sync"

	"rexchange/internal/obs"
	"rexchange/internal/vec"
)

// Collector publishes balance Reports as gauge families on an obs.Registry.
// Register once, then call Set after every recomputation; the registry's
// renderer (obs.Registry.WritePrometheus) takes care of the exposition
// format. The rex_serving indicator lets dashboards distinguish an empty
// cluster (every utilization gauge pinned to 0) from a perfectly balanced
// one: a zero-serving placement scrapes as 0s, never as NaN.
type Collector struct {
	machines  *obs.Gauge
	vacant    *obs.Gauge
	serving   *obs.Gauge
	maxUtil   *obs.Gauge
	minUtil   *obs.Gauge
	meanUtil  *obs.Gauge
	imbalance *obs.Gauge
	stddev    *obs.Gauge
	cv        *obs.Gauge
	gini      *obs.Gauge
	pressure  *obs.GaugeVec

	mu   sync.Mutex
	last Report // guarded by: mu
}

// NewCollector registers the balance-report families on reg.
func NewCollector(reg *obs.Registry) *Collector {
	return &Collector{
		machines:  reg.Gauge("rex_machines", "Number of serving (non-vacant) machines."),
		vacant:    reg.Gauge("rex_vacant_machines", "Number of machines hosting no shards."),
		serving:   reg.Gauge("rex_serving", "1 when at least one machine serves shards; utilization gauges are meaningful only then."),
		maxUtil:   reg.Gauge("rex_max_util", "Highest load/speed among serving machines."),
		minUtil:   reg.Gauge("rex_min_util", "Lowest load/speed among serving machines."),
		meanUtil:  reg.Gauge("rex_mean_util", "Capacity-weighted ideal utilization."),
		imbalance: reg.Gauge("rex_imbalance", "MaxUtil/MeanUtil; 1.0 is perfect balance."),
		stddev:    reg.Gauge("rex_util_stddev", "Standard deviation of per-machine utilization."),
		cv:        reg.Gauge("rex_util_cv", "Coefficient of variation of per-machine utilization."),
		gini:      reg.Gauge("rex_util_gini", "Gini coefficient of per-machine utilization."),
		pressure:  reg.GaugeVec("rex_static_pressure", "Max used/capacity over machines, per static resource.", "resource"),
	}
}

// Set republishes r onto the registered gauges. Safe for concurrent use
// with renders; each gauge updates atomically, and the full report is
// retained for Last.
func (c *Collector) Set(r Report) {
	c.mu.Lock()
	c.last = r
	c.mu.Unlock()
	c.machines.Set(float64(r.Machines))
	c.vacant.Set(float64(r.Vacant))
	if r.Machines > 0 {
		c.serving.Set(1)
	} else {
		// Compute already zeroes every statistic for an empty placement;
		// Set again anyway so a collector reused across snapshots can
		// never hold stale (or NaN) utilization values for a drained
		// cluster.
		c.serving.Set(0)
	}
	c.maxUtil.Set(r.MaxUtil)
	c.minUtil.Set(r.MinUtil)
	c.meanUtil.Set(r.MeanUtil)
	c.imbalance.Set(r.Imbalance)
	c.stddev.Set(r.StdDev)
	c.cv.Set(r.CV)
	c.gini.Set(r.Gini)
	for res := 0; res < vec.NumResources; res++ {
		c.pressure.With(vec.Resource(res).String()).Set(r.StaticPressure[res])
	}
}

// Last returns the most recent report passed to Set — the typed
// counterpart of scraping the gauges, useful for handlers that want the
// structured Report without recomputing it.
func (c *Collector) Last() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// WritePrometheus emits the report in the Prometheus text exposition format
// (version 0.0.4): every Report field as a #-annotated gauge, with the
// per-resource static pressure as one labelled family. It is a one-shot
// renderer over a throwaway registry — long-lived servers should register a
// Collector on their shared registry instead so balance gauges interleave
// with the control-plane families.
func WritePrometheus(w io.Writer, r Report) error {
	reg := obs.NewRegistry()
	NewCollector(reg).Set(r)
	return reg.WritePrometheus(w)
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trip representation; NaN/+Inf/-Inf in their canonical spellings).
func promFloat(x float64) string {
	return obs.FormatFloat(x)
}

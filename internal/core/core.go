// Package core implements SRA — the Shard Reassignment Algorithm of
// "Improving Load Balance via Resource Exchange in Large-Scale Search
// Engines" (ICPP 2020) — a large neighborhood search (LNS) that rebalances
// query load across a shard-per-machine placement under static capacity
// constraints, a transient-resource move model, and the paper's resource
// exchange contract: K borrowed, initially vacant machines may be used
// freely, but K completely vacant machines must be handed back afterwards
// (not necessarily the borrowed ones).
//
// The solver keeps a complete placement at all times and enforces a
// vacancy budget: a shard may be placed on a vacant machine only while at
// least K other machines remain vacant. Destroy operators remove a batch of
// shards (randomly, from the hottest machines, by similarity, or by
// draining whole machines to free them for return); repair operators
// reinsert them (greedy best-fit or regret-2); simulated annealing governs
// acceptance. The final reassignment is compiled into a transiently
// feasible move schedule by internal/plan.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"rexchange/internal/cluster"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
)

// OperatorSet toggles individual LNS operators, primarily for the F6
// ablation experiment. The zero value disables everything; use
// AllOperators for the full algorithm.
type OperatorSet struct {
	RandomRemove  bool // uniform random shard removal
	WorstRemove   bool // remove hot shards from the most utilized machines
	RelatedRemove bool // Shaw removal: similar load/static profiles
	DrainRemove   bool // empty a whole machine (enables returning it)

	GreedyRepair bool // best-fit insertion, hardest shard first
	RegretRepair bool // regret-2 insertion
}

// AllOperators enables the complete operator portfolio.
func AllOperators() OperatorSet {
	return OperatorSet{
		RandomRemove: true, WorstRemove: true, RelatedRemove: true, DrainRemove: true,
		GreedyRepair: true, RegretRepair: true,
	}
}

// anyDestroy reports whether at least one destroy operator is enabled.
func (o OperatorSet) anyDestroy() bool {
	return o.RandomRemove || o.WorstRemove || o.RelatedRemove || o.DrainRemove
}

// anyRepair reports whether at least one repair operator is enabled.
func (o OperatorSet) anyRepair() bool { return o.GreedyRepair || o.RegretRepair }

// Config parameterizes the solver.
type Config struct {
	// Iterations is the LNS iteration budget.
	Iterations int
	// Seed drives all solver randomness.
	Seed int64

	// DestroyFrac is the fraction of the shard population removed per
	// iteration, clamped to [MinDestroy, MaxDestroy].
	DestroyFrac            float64
	MinDestroy, MaxDestroy int

	// TempFrac sets the initial simulated-annealing temperature as a
	// fraction of the starting objective; EndTempFrac the final one.
	// HillClimb disables annealing entirely (accept only improvements).
	TempFrac, EndTempFrac float64
	HillClimb             bool

	// SpreadWeight weights the RMS-utilization term that breaks ties below
	// the maximum; MovePenalty charges (scaled) reassignment volume so the
	// solver prefers cheaper rebalances among equals.
	SpreadWeight, MovePenalty float64

	// ReturnCount is K, the number of vacant machines to hand back.
	// Negative means "infer": the number of Exchange-flagged machines in
	// the cluster.
	ReturnCount int

	// Operators selects the LNS operator portfolio.
	Operators OperatorSet
	// Adaptive enables ALNS-style roulette selection with learned operator
	// weights; otherwise operators are drawn uniformly.
	Adaptive bool

	// Planner builds the final move schedule.
	Planner plan.Planner
	// KeepTrajectory records the best objective after every iteration
	// (experiment F4).
	KeepTrajectory bool

	// Recorder, when non-nil, receives solver telemetry: per-operator
	// iteration outcome counts (batched locally and flushed once per run,
	// so the hot loop only pays an array increment) and per-run totals
	// with wall-clock duration. Telemetry never influences the search —
	// results remain bit-identical with or without a Recorder — and a nil
	// Recorder costs a single pointer check per iteration.
	Recorder Recorder

	// refKernel (tests only) runs the retained clone-and-rescan reference
	// kernel instead of the delta kernel. Both must produce bit-identical
	// results for a fixed seed; see TestKernelEquivalence.
	refKernel bool
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Iterations:   2500,
		Seed:         1,
		DestroyFrac:  0.06,
		MinDestroy:   4,
		MaxDestroy:   80,
		TempFrac:     0.03,
		EndTempFrac:  0.0005,
		SpreadWeight: 0.10,
		MovePenalty:  0.02,
		ReturnCount:  -1,
		Operators:    AllOperators(),
		Adaptive:     true,
		Planner:      plan.DefaultPlanner(),
	}
}

// Recorder observes solver progress. Implementations must be safe for
// concurrent use: SolveParallel restarts flush their counts from worker
// goroutines. internal/obs.SolverRecorder is the standard implementation;
// the interface lives here (with string-typed labels) so the solver stays
// free of telemetry dependencies.
type Recorder interface {
	// RecordIterations reports that n LNS iterations paired destroyOp
	// with repairOp and ended with the given outcome — one of
	// "repair_failed", "rejected", "accepted", "improved", "new_best".
	// Called at most once per combination at the end of each run.
	RecordIterations(destroyOp, repairOp, outcome string, n int)
	// RecordRun reports one completed run's totals and wall-clock
	// duration in seconds.
	RecordRun(iterations, accepted, repairFailures int, seconds float64)
}

// Iteration outcome labels passed to Recorder.RecordIterations, in
// severity order: the repair failed outright; the candidate was evaluated
// but rejected; accepted without improving; improved the current
// solution; or set a new best-so-far.
const (
	IterRepairFailed = "repair_failed"
	IterRejected     = "rejected"
	IterAccepted     = "accepted"
	IterImproved     = "improved"
	IterNewBest      = "new_best"
)

// iterOutcomes indexes the outcome labels for the solver's local batch
// counters; the iterIdx* constants below are positions in this array.
var iterOutcomes = [...]string{IterRepairFailed, IterRejected, IterAccepted, IterImproved, IterNewBest}

// Outcome indices into iterOutcomes, used by the hot loop.
const (
	iterIdxRepairFailed = iota
	iterIdxRejected
	iterIdxAccepted
	iterIdxImproved
	iterIdxNewBest
)

// numIterOutcomes is the size of the outcome dimension.
const numIterOutcomes = len(iterOutcomes)

// Result is the outcome of one SRA run.
type Result struct {
	// Final is the chosen placement (the best found whose move schedule
	// is transiently feasible).
	Final *cluster.Placement
	// Plan is the transiently feasible move schedule realizing Final from
	// the initial placement.
	Plan *plan.Plan
	// Returned lists the K machines handed back as compensation; they are
	// vacant in Final.
	Returned []cluster.MachineID
	// Before/After summarize balance quality.
	Before, After metrics.Report
	// Objective is the solver objective of Final.
	Objective float64
	// MovedShards counts shards whose final machine differs from the
	// initial one.
	MovedShards int
	// Iterations, Accepted, RepairFailures, PlanFallbacks report search
	// behaviour.
	Iterations     int
	Accepted       int
	RepairFailures int
	PlanFallbacks  int
	// FailedRestarts counts portfolio restarts that returned an error in
	// SolveParallel (always 0 for Solve). A non-zero value means the
	// returned best came from a degraded portfolio.
	FailedRestarts int
	// FailedPartitions counts partition sub-solves that returned an error
	// in SolvePartitioned (always 0 for Solve and SolveParallel). A failed
	// partition keeps its pre-round placement, so a non-zero value means
	// parts of the fleet went unoptimized this run.
	FailedPartitions int
	// Trajectory is the best objective after each iteration when
	// Config.KeepTrajectory is set.
	Trajectory []float64
}

// Solver runs SRA with a fixed configuration.
type Solver struct {
	cfg Config
}

// New creates a Solver. The configuration is validated lazily in Solve.
func New(cfg Config) *Solver { return &Solver{cfg: cfg} }

// validate checks and normalizes the configuration against an instance.
func (cfg *Config) validate(p *cluster.Placement) (int, error) {
	if p.UnassignedCount() > 0 {
		return 0, fmt.Errorf("core: initial placement has %d unassigned shards", p.UnassignedCount())
	}
	if !p.Feasible() {
		return 0, fmt.Errorf("core: initial placement violates static capacities")
	}
	if cfg.Iterations <= 0 {
		return 0, fmt.Errorf("core: Iterations must be positive")
	}
	if !cfg.Operators.anyDestroy() || !cfg.Operators.anyRepair() {
		return 0, fmt.Errorf("core: operator set needs at least one destroy and one repair operator")
	}
	k := cfg.ReturnCount
	if k < 0 {
		k = len(p.Cluster().ExchangeMachines())
	}
	if p.NumVacant() < k {
		return 0, fmt.Errorf("core: initial placement has %d vacant machines, need ≥ K=%d", p.NumVacant(), k)
	}
	if cfg.MinDestroy <= 0 {
		cfg.MinDestroy = 2
	}
	if cfg.MaxDestroy < cfg.MinDestroy {
		cfg.MaxDestroy = cfg.MinDestroy
	}
	return k, nil
}

// Solve rebalances the given placement. The input is not modified. The
// cluster referenced by p should already include any borrowed exchange
// machines (see cluster.WithExchange); K is inferred from it unless
// Config.ReturnCount overrides.
func (sv *Solver) Solve(p *cluster.Placement) (*Result, error) {
	cfg := sv.cfg
	k, err := cfg.validate(p)
	if err != nil {
		return nil, err
	}
	st := newState(cfg, p, k)
	st.run()
	return st.finish()
}

// Evaluate exposes the solver objective for a placement, for tests and the
// experiment harness. initial supplies the reference assignment for the
// move penalty; pass nil to skip it.
func Evaluate(cfg Config, p *cluster.Placement, initial []cluster.MachineID) float64 {
	return objective(p, cfg.SpreadWeight, cfg.MovePenalty, initial)
}

// pickReturned chooses the K machines to hand back: vacant machines,
// preferring the borrowed exchange machines themselves, then the vacant
// machines with the smallest serving speed (least valuable to keep).
func pickReturned(p *cluster.Placement, k int) []cluster.MachineID {
	c := p.Cluster()
	vacant := p.VacantMachines()
	// stable selection: exchange first, then ascending speed, then ID
	sortMachines(vacant, func(a, b cluster.MachineID) bool {
		ea, eb := c.Machines[a].Exchange, c.Machines[b].Exchange
		if ea != eb {
			return ea
		}
		if c.Machines[a].Speed != c.Machines[b].Speed {
			return c.Machines[a].Speed < c.Machines[b].Speed
		}
		return a < b
	})
	if k > len(vacant) {
		k = len(vacant) // guarded by the solver invariant; defensive only
	}
	return vacant[:k]
}

// sortMachines sorts ids by less (insertion sort: the slices are short and
// this avoids a sort.Slice closure allocation on the hot path).
func sortMachines(ids []cluster.MachineID, less func(a, b cluster.MachineID) bool) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// tempAt returns the SA temperature for iteration i of n, geometrically
// interpolated between t0 and tEnd.
func tempAt(t0, tEnd float64, i, n int) float64 {
	if t0 <= 0 {
		return 0
	}
	if tEnd <= 0 {
		tEnd = t0 * 1e-3
	}
	frac := float64(i) / math.Max(1, float64(n-1))
	return t0 * math.Pow(tEnd/t0, frac)
}

// rouletteIndex draws an index proportionally to weights.
func rouletteIndex(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

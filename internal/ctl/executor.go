package ctl

import (
	"fmt"
	"math"

	"rexchange/internal/cluster"
	"rexchange/internal/obs"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
	"rexchange/internal/vec"
)

// MoveStatus is the lifecycle state of one scheduled move inside the
// executor. The transition table and the reservation resource below are
// machine-checked by rexlint's statecheck analyzer on every path through
// this file: a status assignment outside the table, a double release, or
// a return that leaves a released move looking in-flight is a build
// failure.
//
//rexlint:transition MovePending -> MoveInFlight MoveCancelled
//rexlint:transition MoveInFlight -> MoveDone MoveRetrying MoveCancelled
//rexlint:transition MoveRetrying -> MoveInFlight MoveCancelled
//rexlint:transition MoveDone ->
//rexlint:transition MoveCancelled ->
//rexlint:resource reservation held=MoveInFlight acquire=reserve release=release
type MoveStatus int

// Move lifecycle states.
const (
	// MovePending: not yet dispatched.
	MovePending MoveStatus = iota
	// MoveInFlight: copy running; static resources reserved on the
	// destination while the shard still occupies the source.
	MoveInFlight
	// MoveRetrying: the copy failed and the move waits out its backoff
	// before redispatch.
	MoveRetrying
	// MoveDone: committed to the live placement.
	MoveDone
	// MoveCancelled: abandoned because a newer plan superseded this one
	// (or the controller aborted). The shard remains on its source.
	MoveCancelled
)

// String names the status for JSON/metrics output.
func (s MoveStatus) String() string {
	switch s {
	case MovePending:
		return "pending"
	case MoveInFlight:
		return "in-flight"
	case MoveRetrying:
		return "retrying"
	case MoveDone:
		return "done"
	case MoveCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// FailureFunc injects per-move copy failures for testing and chaos drills:
// it is consulted when a copy finishes, with attempt counting from 1, and
// returning true fails that attempt. A nil FailureFunc never fails.
type FailureFunc func(mv plan.Move, attempt int) bool

// MoveRef names one scheduled move globally: the control round whose
// solve installed the plan, and the move's sequence number within that
// plan. It is the causal join key of the tracing layer — a query leg's
// blocked_by link and the move's own trace span both carry it, and
// obs.MoveSpanID is a pure function of it.
type MoveRef struct {
	Round int `json:"round"`
	Seq   int `json:"seq"`
}

// MoveObserver receives copy lifecycle callbacks from the executor. The
// discrete-event simulator uses it to degrade the source machine's
// effective service capacity while a copy is streaming off it, to
// reroute queries once the move commits, and to attribute per-query
// delay to the identified move (ref); chaos tooling can use it to
// correlate failures with in-flight work.
//
// Callbacks fire synchronously on the executor's Tick path (the single
// control-loop goroutine), in deterministic order, with Clock timestamps.
// Implementations must not call back into the executor or controller.
// Every MoveStarted is paired with exactly one MoveFinished carrying the
// same ref: committed is true when the copy landed and the shard now
// lives on mv.To, false when the attempt failed (a retry may follow as a
// fresh MoveStarted) or the copy was aborted by plan supersession.
type MoveObserver interface {
	// MoveStarted reports a copy dispatch at time at, expected to finish
	// at eta (absolute Clock seconds).
	MoveStarted(mv plan.Move, ref MoveRef, at, eta float64)
	// MoveFinished reports the end of the in-flight copy started by the
	// matching MoveStarted.
	MoveFinished(mv plan.Move, ref MoveRef, at float64, committed bool)
}

// ExecConfig parameterizes the asynchronous migration executor.
type ExecConfig struct {
	// Migration supplies the per-move bandwidth model and the bound on
	// simultaneously in-flight moves (Concurrency), shared with the
	// offline simulator so both agree on migration physics.
	Migration sim.MigrationConfig
	// MaxAttempts bounds dispatch attempts per move before the executor
	// abandons the whole plan; 0 means 8.
	MaxAttempts int
	// BackoffBase is the delay before the first retry (seconds); each
	// subsequent retry doubles it, capped at BackoffMax. Zero values
	// default to 0.5s and 30s.
	BackoffBase, BackoffMax float64
	// Failure injects copy failures; nil never fails.
	Failure FailureFunc
	// Observer, when non-nil, receives copy lifecycle callbacks (see
	// MoveObserver). The discrete-event simulator installs itself here.
	Observer MoveObserver
}

// DefaultExecConfig matches the offline simulator's default bandwidth with
// four concurrent copies.
func DefaultExecConfig() ExecConfig {
	return ExecConfig{
		Migration: sim.MigrationConfig{Bandwidth: 100, Concurrency: 4},
	}
}

// normalize fills defaults and validates.
func (cfg *ExecConfig) normalize() error {
	if cfg.Migration.Bandwidth <= 0 {
		return fmt.Errorf("ctl: executor Bandwidth must be positive, got %g", cfg.Migration.Bandwidth)
	}
	if cfg.Migration.Concurrency <= 0 {
		return fmt.Errorf("ctl: executor Concurrency must be positive, got %d", cfg.Migration.Concurrency)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.MaxAttempts < 0 {
		return fmt.Errorf("ctl: negative MaxAttempts %d", cfg.MaxAttempts)
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 0.5
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30
	}
	return nil
}

// moveState tracks one move through the executor.
type moveState struct {
	mv        plan.Move
	status    MoveStatus
	attempts  int     // completed dispatches (successful or failed)
	readyAt   float64 // earliest redispatch time while retrying
	finishAt  float64 // completion time while in flight
	startedAt float64 // dispatch time of the current copy while in flight
}

// MoveView is the externally visible state of one scheduled move.
type MoveView struct {
	Seq      int               `json:"seq"`
	Shard    cluster.ShardID   `json:"s"`
	From     cluster.MachineID `json:"from"`
	To       cluster.MachineID `json:"to"`
	Status   string            `json:"status"`
	Attempts int               `json:"attempts,omitempty"`
	FinishAt float64           `json:"finish_at,omitempty"`
}

// ExecCounters are the executor's cumulative statistics across all plans it
// has run.
type ExecCounters struct {
	Dispatched   int     `json:"dispatched"`
	Completed    int     `json:"completed"`
	Failures     int     `json:"failures"`
	Aborted      int     `json:"aborted"`
	Cancelled    int     `json:"cancelled"`
	InFlight     int     `json:"in_flight"`
	Pending      int     `json:"pending"`
	PeakParallel int     `json:"peak_parallel"`
	BytesMoved   float64 `json:"bytes_moved"`
}

// Executor drives a move schedule against the live placement with bounded
// in-flight concurrency. It is event-driven: the owner (the controller
// loop, or any single goroutine) asks NextEvent for the next completion or
// retry time, advances its clock, and calls Tick. Dispatch is strictly in
// plan order — a later move never overtakes a blocked earlier one — which
// preserves the plan's serial feasibility proof, and every dispatch
// re-checks the transient both-endpoints constraint against the live
// placement plus the in-flight reservations, so a drifting or superseded
// environment can never oversubscribe a machine.
//
// Executor is not safe for concurrent use; the controller serializes access
// under its own lock.
type Executor struct {
	cfg      ExecConfig
	c        *cluster.Cluster
	moves    []moveState
	reserved []vec.Vec // per machine: static demand of in-flight moves
	airborne map[cluster.ShardID]bool
	inflight int //rexlint:nonneg
	pending  int //rexlint:nonneg — moves not yet terminal
	counters ExecCounters

	// Telemetry, attached by the controller (all may be nil). round tags
	// journal events with the current control round; planRound is the
	// round whose solve installed the running plan (they differ during a
	// supersession abort, where round is already the superseding round)
	// and keys the MoveRefs and trace span IDs of its moves; lastNow is
	// the clock value of the most recent Tick, used to timestamp aborts
	// (SetPlan carries no clock).
	m         *ctlMetrics
	journal   *obs.Journal
	tracer    *obs.Tracer
	round     int
	planRound int
	lastNow   float64
}

// AttachObs attaches a metric registry and/or event journal to a
// standalone executor (plan replay); either may be nil. Executors owned by
// a Controller are wired through Config.Registry/Journal in New instead —
// do not call both, the control-plane families register once per registry.
func (e *Executor) AttachObs(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		e.m = newCtlMetrics(reg)
	}
	e.journal = j
}

// AttachTracer wires a tracer into a standalone executor; every copy then
// emits a move trace span when it ends. Executors owned by a Controller
// are wired through Config.Tracer instead.
func (e *Executor) AttachTracer(t *obs.Tracer) { e.tracer = t }

// emitMoveTrace journals the trace span of move seq ending at time t.
// Span identity is a pure function of (planRound, seq), so the query legs
// a move delays can name it without ever talking to the executor.
func (e *Executor) emitMoveTrace(t float64, seq int, st *moveState) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(t, e.planRound, obs.TraceEvent{
		ID:      obs.RoundTraceID(e.planRound).String(),
		Span:    obs.MoveSpanID(e.planRound, seq).String(),
		Parent:  obs.RoundSpanID(e.planRound).String(),
		Op:      obs.OpMove,
		Start:   st.startedAt,
		Machine: int(st.mv.To),
		Shard:   int(st.mv.S),
		Seq:     seq,
	})
}

// emitMove journals one move-span event; no-op without a journal. Events
// carry Clock timestamps only, so a virtual-clock run journals
// bit-reproducibly.
func (e *Executor) emitMove(t float64, phase, outcome string, seq int, st *moveState, seconds float64) {
	if e.journal == nil {
		return
	}
	e.journal.Emit(obs.Event{
		T: t, Span: obs.SpanMove, Phase: phase, Round: e.round,
		Outcome: outcome, Seconds: seconds,
		Move: &obs.MoveEvent{
			Seq: seq, Shard: int(st.mv.S), From: int(st.mv.From), To: int(st.mv.To),
			Attempt: st.attempts,
		},
	})
}

// NewExecutor creates an executor for the given cluster with no plan
// installed.
func NewExecutor(c *cluster.Cluster, cfg ExecConfig) (*Executor, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Executor{
		cfg:      cfg,
		c:        c,
		reserved: make([]vec.Vec, c.NumMachines()),
		airborne: make(map[cluster.ShardID]bool),
	}, nil
}

// SetPlan installs a new schedule, superseding whatever is currently
// running: pending moves are cancelled and in-flight copies aborted (their
// destination reservations released; the shards stay on their sources).
// Passing nil just cancels the current plan.
func (e *Executor) SetPlan(p *plan.Plan) {
	e.abort()
	if p == nil {
		return
	}
	e.moves = make([]moveState, len(p.Moves))
	for i, mv := range p.Moves {
		e.moves[i] = moveState{mv: mv}
	}
	e.pending = len(p.Moves)
	e.planRound = e.round
}

// abort cancels every non-terminal move and releases reservations. The
// retry/schedule state of cancelled moves (attempts, readyAt, finishAt)
// is cleared: a cancelled move never runs again, and leaving stale
// timestamps behind would leak bogus scheduling state through MoveStates.
func (e *Executor) abort() {
	for i := range e.moves {
		st := &e.moves[i]
		switch st.status {
		case MoveInFlight:
			e.release(st.mv)
			e.counters.Aborted++
			if e.m != nil {
				e.m.aborted.Inc()
			}
			e.emitMove(e.lastNow, obs.PhaseEnd, obs.OutcomeAborted, i, st, e.lastNow-st.startedAt)
			e.emitMoveTrace(e.lastNow, i, st)
			if e.cfg.Observer != nil {
				e.cfg.Observer.MoveFinished(st.mv, MoveRef{Round: e.planRound, Seq: i}, e.lastNow, false)
			}
		case MovePending, MoveRetrying:
			e.counters.Cancelled++
			if e.m != nil {
				e.m.cancelled.Inc()
			}
		default:
			continue
		}
		st.status = MoveCancelled
		st.attempts, st.readyAt, st.finishAt, st.startedAt = 0, 0, 0, 0
	}
	e.inflight = 0
	e.pending = 0
	clear(e.airborne)
	if e.m != nil {
		e.m.inFlight.Set(0)
	}
}

// reserve holds the move's static demand on its destination while the
// copy is in flight; admission checks see it immediately.
func (e *Executor) reserve(mv plan.Move) {
	e.reserved[mv.To] = e.reserved[mv.To].Add(e.c.Shards[mv.S].Static)
}

// release frees the destination reservation of an in-flight move.
func (e *Executor) release(mv plan.Move) {
	e.reserved[mv.To] = e.reserved[mv.To].Sub(e.c.Shards[mv.S].Static)
}

// Done reports whether every scheduled move is terminal (done or
// cancelled). A fresh executor with no plan is Done.
func (e *Executor) Done() bool { return e.pending == 0 }

// NextEvent returns the earliest time after now at which Tick will make
// progress (a copy completion, or the head move's backoff expiring), or
// ok=false when nothing is scheduled. A retry timer that has already
// expired is not an event: after a Tick at `now`, such a move is
// necessarily blocked on admission or concurrency and only a completion
// can unblock it.
func (e *Executor) NextEvent(now float64) (at float64, ok bool) {
	next := math.Inf(1)
	for i := range e.moves {
		st := &e.moves[i]
		if st.status == MoveInFlight && st.finishAt < next {
			next = st.finishAt
		}
	}
	if i := e.firstActionable(); i >= 0 {
		if st := &e.moves[i]; st.status == MoveRetrying && st.readyAt > now && st.readyAt < next {
			next = st.readyAt
		}
	}
	if math.IsInf(next, 1) {
		return 0, false
	}
	return next, true
}

// Tick processes every completion due at or before now, then dispatches as
// many moves as order, concurrency, backoff, and transient admission allow.
// live is the placement moves commit into. Tick returns an error when the
// plan must be abandoned (a move exceeded MaxAttempts, or the schedule is
// inconsistent with the live placement); the executor aborts the plan
// before returning such an error.
func (e *Executor) Tick(live *cluster.Placement, now float64) error {
	e.lastNow = now
	if err := e.complete(live, now); err != nil {
		e.abort()
		return err
	}
	if err := e.dispatch(live, now); err != nil {
		e.abort()
		return err
	}
	if cluster.DebugAsserts {
		e.assertTransient(live)
	}
	if e.m != nil {
		e.m.inFlight.Set(float64(e.inflight))
	}
	return nil
}

// complete commits or fails every in-flight move whose copy has finished,
// in deterministic (finish time, plan order) order.
func (e *Executor) complete(live *cluster.Placement, now float64) error {
	for {
		// earliest due completion; plan order breaks timestamp ties
		best := -1
		for i := range e.moves {
			st := &e.moves[i]
			if st.status != MoveInFlight || st.finishAt > now {
				continue
			}
			if best < 0 || st.finishAt < e.moves[best].finishAt {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		st := &e.moves[best]
		mv := st.mv
		e.release(mv)
		//rexlint:ignore nonneg best indexes a MoveCopying entry, and statecheck proves each reaches MoveCopying via start (inflight++) exactly once
		e.inflight--
		delete(e.airborne, mv.S)
		copySecs := st.finishAt - st.startedAt
		if e.m != nil {
			e.m.copySeconds.Observe(copySecs)
		}
		if e.cfg.Failure != nil && e.cfg.Failure(mv, st.attempts) {
			e.counters.Failures++
			if e.m != nil {
				e.m.failures.Inc()
			}
			e.emitMove(st.finishAt, obs.PhaseEnd, obs.OutcomeFailed, best, st, copySecs)
			e.emitMoveTrace(st.finishAt, best, st)
			if e.cfg.Observer != nil {
				e.cfg.Observer.MoveFinished(mv, MoveRef{Round: e.planRound, Seq: best}, st.finishAt, false)
			}
			if st.attempts >= e.cfg.MaxAttempts {
				// Terminal failure. Mark the move cancelled here — its
				// reservation is already released above, so the abort()
				// the caller runs next must not see it as in-flight and
				// release it a second time (which would leave a negative
				// reservation that silently loosens later admission).
				attempts := st.attempts
				st.status = MoveCancelled
				st.attempts, st.readyAt, st.finishAt, st.startedAt = 0, 0, 0, 0
				e.counters.Cancelled++
				if e.m != nil {
					e.m.cancelled.Inc()
				}
				return fmt.Errorf("ctl: move %d (shard %d → machine %d) failed %d times; abandoning plan",
					best, mv.S, mv.To, attempts)
			}
			st.status = MoveRetrying
			st.readyAt = st.finishAt + e.backoff(st.attempts)
			continue
		}
		live.Move(mv.S, mv.To)
		if cluster.DebugAsserts {
			live.MustInvariants("ctl executor commit")
		}
		st.status = MoveDone
		//rexlint:ignore nonneg pending counts non-terminal moves and this transition to MoveDone is the move's only terminal edge (statecheck)
		e.pending--
		e.counters.Completed++
		if e.m != nil {
			e.m.completed.Inc()
		}
		e.emitMove(st.finishAt, obs.PhaseEnd, obs.OutcomeOK, best, st, copySecs)
		e.emitMoveTrace(st.finishAt, best, st)
		if e.cfg.Observer != nil {
			e.cfg.Observer.MoveFinished(mv, MoveRef{Round: e.planRound, Seq: best}, st.finishAt, true)
		}
	}
}

// backoff returns the capped exponential retry delay after `failures`
// failed attempts.
func (e *Executor) backoff(failures int) float64 {
	d := e.cfg.BackoffBase * math.Pow(2, float64(failures-1))
	if d > e.cfg.BackoffMax {
		d = e.cfg.BackoffMax
	}
	return d
}

// dispatch starts moves strictly in plan order while concurrency and
// transient admission allow.
func (e *Executor) dispatch(live *cluster.Placement, now float64) error {
	for e.inflight < e.cfg.Migration.Concurrency {
		i := e.firstActionable()
		if i < 0 {
			return nil
		}
		st := &e.moves[i]
		mv := st.mv
		if st.status == MoveRetrying && st.readyAt > now {
			return nil // head-of-line waits out its backoff
		}
		if e.airborne[mv.S] {
			return nil // the shard's previous hop has not landed yet
		}
		if live.Home(mv.S) != mv.From {
			return fmt.Errorf("ctl: move %d expects shard %d on machine %d, found %d",
				i, mv.S, mv.From, live.Home(mv.S))
		}
		if !e.canAdmit(live, mv.S, mv.To) {
			if e.m != nil {
				e.m.admissionBlocked.Inc()
			}
			if e.inflight == 0 {
				// Nothing in flight will ever free space: the plan is not
				// serially feasible against the live placement.
				return fmt.Errorf("ctl: move %d (shard %d → machine %d) never fits the live placement",
					i, mv.S, mv.To)
			}
			return nil // head-of-line blocks until a completion frees space
		}
		retry := st.status == MoveRetrying
		size := e.c.Shards[mv.S].Static[vec.Disk]
		e.reserve(mv)
		e.airborne[mv.S] = true
		st.status = MoveInFlight
		st.attempts++
		st.startedAt = now
		st.finishAt = now + size/e.cfg.Migration.Bandwidth
		e.inflight++
		e.counters.Dispatched++
		e.counters.BytesMoved += size
		if e.inflight > e.counters.PeakParallel {
			e.counters.PeakParallel = e.inflight
		}
		if e.m != nil {
			e.m.dispatched.Inc()
			e.m.bytesMoved.Add(size)
			if retry {
				e.m.retries.Inc()
			}
		}
		e.emitMove(now, obs.PhaseBegin, "", i, st, 0)
		if e.cfg.Observer != nil {
			e.cfg.Observer.MoveStarted(mv, MoveRef{Round: e.planRound, Seq: i}, now, st.finishAt)
		}
	}
	return nil
}

// firstActionable returns the index of the first move in plan order that is
// pending or retrying, or -1.
func (e *Executor) firstActionable() int {
	for i := range e.moves {
		if s := e.moves[i].status; s == MovePending || s == MoveRetrying {
			return i
		}
	}
	return -1
}

// canAdmit checks the transient both-endpoints constraint against the live
// placement: the shard still occupies its source (it has not moved yet), so
// admission only needs the destination to fit the shard on top of its
// resident usage plus every in-flight reservation, and no anti-affinity
// replica may already live there.
func (e *Executor) canAdmit(live *cluster.Placement, s cluster.ShardID, m cluster.MachineID) bool {
	sh := &e.c.Shards[s]
	if sh.Group != 0 && live.GroupCount(m, sh.Group) > 0 {
		return false
	}
	return sh.Static.FitsWithin(live.Used(m).Add(e.reserved[m]), e.c.Machines[m].Capacity)
}

// Counters returns a snapshot of the cumulative executor statistics.
func (e *Executor) Counters() ExecCounters {
	ctr := e.counters
	ctr.InFlight = e.inflight
	ctr.Pending = e.pending - e.inflight
	return ctr
}

// MoveStates returns the per-move state of the current schedule.
func (e *Executor) MoveStates() []MoveView {
	out := make([]MoveView, len(e.moves))
	for i := range e.moves {
		st := &e.moves[i]
		out[i] = MoveView{
			Seq: i, Shard: st.mv.S, From: st.mv.From, To: st.mv.To,
			Status: st.status.String(), Attempts: st.attempts,
		}
		if st.status == MoveInFlight {
			out[i].FinishAt = st.finishAt
		}
	}
	return out
}

// assertTransient recomputes in-flight reservations and verifies that every
// machine's resident usage plus reservations stays within capacity. Only
// called under -tags debugasserts.
func (e *Executor) assertTransient(live *cluster.Placement) {
	want := make([]vec.Vec, e.c.NumMachines())
	air := 0
	for i := range e.moves {
		st := &e.moves[i]
		if st.status != MoveInFlight {
			continue
		}
		air++
		want[st.mv.To] = want[st.mv.To].Add(e.c.Shards[st.mv.S].Static)
	}
	if air != e.inflight {
		panic(fmt.Sprintf("ctl: inflight count %d, recomputed %d", e.inflight, air))
	}
	for m := range want {
		if !want[m].AlmostEqual(e.reserved[m], 1e-6) {
			panic(fmt.Sprintf("ctl: machine %d reserved %v, recomputed %v", m, e.reserved[m], want[m]))
		}
		total := live.Used(cluster.MachineID(m)).Add(e.reserved[m])
		if !total.LEQ(e.c.Machines[m].Capacity.Add(vec.Uniform(1e-9))) {
			panic(fmt.Sprintf("ctl: machine %d transient usage %v exceeds capacity %v",
				m, total, e.c.Machines[m].Capacity))
		}
	}
}

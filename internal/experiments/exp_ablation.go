package experiments

import (
	"rexchange/internal/core"
	"rexchange/internal/metrics"
)

// F6OperatorAblation compares SRA variants with parts of the algorithm
// disabled, quantifying each design choice's contribution (DESIGN.md §6).
func F6OperatorAblation(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F6",
		Title:   "Operator & acceptance ablation",
		Columns: []string{"variant", "maxU", "imbalance", "moves", "accepted", "repair-fails"},
	}
	p0, err := genInstance(sc.sel(20, 80), sc.sel(240, 1200), 0.87, 901)
	if err != nil {
		return nil, err
	}
	p, err := withExchange(p0, 3)
	if err != nil {
		return nil, err
	}
	before := metrics.Compute(p)
	tbl.AddRow("initial", before.MaxUtil, before.Imbalance, 0, 0, 0)

	all := core.AllOperators()
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full", func(*core.Config) {}},
		{"no-related", func(c *core.Config) { c.Operators.RelatedRemove = false }},
		{"no-worst", func(c *core.Config) { c.Operators.WorstRemove = false }},
		{"no-drain", func(c *core.Config) { c.Operators.DrainRemove = false }},
		{"random+greedy-only", func(c *core.Config) {
			c.Operators = core.OperatorSet{RandomRemove: true, GreedyRepair: true}
		}},
		{"no-regret", func(c *core.Config) { c.Operators.RegretRepair = false }},
		{"no-greedy", func(c *core.Config) { c.Operators.GreedyRepair = false }},
		{"hill-climb", func(c *core.Config) { c.HillClimb = true }},
		{"non-adaptive", func(c *core.Config) { c.Adaptive = false }},
	}
	iters := sc.sel(250, 2500)
	for _, v := range variants {
		cfg := solverConfig(iters, 31)
		cfg.Operators = all
		v.mutate(&cfg)
		res, err := core.New(cfg).Solve(p)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(v.name, res.After.MaxUtil, res.After.Imbalance,
			res.MovedShards, res.Accepted, res.RepairFailures)
	}
	return tbl, nil
}

// All runs every experiment in order, returning the tables. It is the
// driver behind cmd/srabench.
func All(sc Scale) ([]*Table, error) {
	type driver struct {
		name string
		fn   func(Scale) (*Table, error)
	}
	drivers := []driver{
		{"T1", T1OptimalityGap},
		{"T2", T2EndToEnd},
		{"T3", T3PlanFeasibility},
		{"T4", T4Replicated},
		{"F1", F1ExchangeSweep},
		{"F2", F2TightnessSweep},
		{"F3", F3Scalability},
		{"F4", F4Convergence},
		{"F5", F5LatencySim},
		{"F6", F6OperatorAblation},
		{"F7", F7ContinuousRebalance},
		{"F8", F8ReplicaRouting},
	}
	var out []*Table
	for _, d := range drivers {
		t, err := d.fn(sc)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID returns the driver for one experiment ID, or nil.
func ByID(id string) func(Scale) (*Table, error) {
	switch id {
	case "T1":
		return T1OptimalityGap
	case "T2":
		return T2EndToEnd
	case "T3":
		return T3PlanFeasibility
	case "T4":
		return T4Replicated
	case "F1":
		return F1ExchangeSweep
	case "F2":
		return F2TightnessSweep
	case "F3":
		return F3Scalability
	case "F4":
		return F4Convergence
	case "F5":
		return F5LatencySim
	case "F6":
		return F6OperatorAblation
	case "F7":
		return F7ContinuousRebalance
	case "F8":
		return F8ReplicaRouting
	default:
		return nil
	}
}

// Quickstart: the smallest end-to-end use of the library. Build a cluster
// by hand, borrow one exchange machine, rebalance with SRA, and inspect the
// move schedule and the machine handed back.
package main

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/vec"
)

func main() {
	// Three machines near their static limits; machine 0 is overloaded.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Name: "web-a", Capacity: vec.New(16, 100, 10), Speed: 1},
			{ID: 1, Name: "web-b", Capacity: vec.New(16, 100, 10), Speed: 1},
			{ID: 2, Name: "web-c", Capacity: vec.New(16, 100, 10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Name: "news", Static: vec.New(8, 50, 4), Load: 9},
			{ID: 1, Name: "video", Static: vec.New(7, 45, 4), Load: 7},
			{ID: 2, Name: "images", Static: vec.New(8, 40, 4), Load: 3},
			{ID: 3, Name: "web-1", Static: vec.New(6, 35, 3), Load: 2},
			{ID: 4, Name: "web-2", Static: vec.New(7, 30, 3), Load: 1},
			{ID: 5, Name: "maps", Static: vec.New(5, 30, 3), Load: 2},
		},
	}
	// Current state: hot shards piled on web-a.
	initial, err := cluster.FromAssignment(c,
		[]cluster.MachineID{0, 0, 1, 1, 2, 2})
	if err != nil {
		log.Fatal(err)
	}

	// Borrow one vacant exchange machine; SRA must hand one machine back.
	ec := c.WithExchange(1, vec.New(16, 100, 10), 1)
	p, err := cluster.FromAssignment(ec, initial.Assignment())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Iterations = 500
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("before:", res.Before)
	fmt.Println("after: ", res.After)
	fmt.Println("\nmove schedule (transiently feasible):")
	for i, mv := range res.Plan.Moves {
		fmt.Printf("  %2d. move %-7s %s → %s\n", i+1,
			ec.Shards[mv.S].Name, ec.Machines[mv.From].Name, ec.Machines[mv.To].Name)
	}
	fmt.Print("\nreturned as compensation:")
	for _, m := range res.Returned {
		fmt.Printf(" %s", ec.Machines[m].Name)
	}
	fmt.Println()
}

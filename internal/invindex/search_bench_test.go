package invindex

import "testing"

// benchIndex builds a moderately sized index and query set once.
func benchIndex(b *testing.B) (*Index, [][]string) {
	b.Helper()
	docs, err := GenerateCorpus(CorpusConfig{
		Docs: 5000, Vocab: 8000, ZipfS: 1.15, MeanDocLen: 60, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	queries, err := GenerateQueries(QueryConfig{
		Queries: 200, Vocab: 8000, ZipfS: 1.05, MaxTerms: 4, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ix, queries
}

func BenchmarkSearchTAAT(b *testing.B) {
	ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ix.SearchTAAT(queries[i%len(queries)], 10)
	}
}

func BenchmarkSearchDAAT(b *testing.B) {
	ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ix.SearchDAAT(queries[i%len(queries)], 10)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	docs, err := GenerateCorpus(CorpusConfig{
		Docs: 1000, Vocab: 4000, ZipfS: 1.15, MeanDocLen: 60, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ix := NewIndex()
	for i := 0; i < b.N; i++ {
		ix.Add(docs[i%len(docs)])
	}
}

package ctl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"rexchange/internal/metrics"
)

// Handler returns the controller's HTTP surface on a fresh ServeMux:
//
//	/status        controller state machine, round history tail, executor counters
//	/placement     live placement (cluster + assignment) as JSON
//	/plan          current move schedule with per-move state
//	/metrics       Prometheus text exposition (balance report + control-plane counters)
//	/debug/pprof/  standard net/http/pprof profiling surface
//
// With Config.Registry set, /metrics renders the shared registry — every
// family the control plane, executor, solver, and balance collector
// registered. Without one it falls back to synthesizing gauges from
// Status snapshots (the pre-registry exposition).
//
// All endpoints are read-only snapshots taken under the controller lock;
// serving them concurrently with Run is race-free on any clock.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("/placement", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.SnapshotPlacement().Save(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, struct {
			Moves []MoveView `json:"moves"`
		}{Moves: c.PlanView()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if c.cfg.Registry != nil {
			_ = c.cfg.Registry.WritePrometheus(w) // write error = client went away
			return
		}
		st := c.Status()
		if err := metrics.WritePrometheus(w, c.Report()); err != nil {
			return // client went away; nothing useful to do
		}
		writeCounterGauges(w, st)
	})
	return mux
}

// writeJSON marshals v with indentation onto w.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ctlGauges renders the controller/executor counters appended to /metrics
// after the balance report.
func writeCounterGauges(w http.ResponseWriter, st Status) {
	stateVal := 0.0
	switch st.State {
	case StateSolving.String():
		stateVal = 1
	case StateMigrating.String():
		stateVal = 2
	}
	gauges := []struct {
		name, help string
		val        float64
	}{
		{"rex_ctl_state", "Controller state (0=idle, 1=solving, 2=migrating).", stateVal},
		{"rex_ctl_rounds_total", "Control rounds completed.", float64(st.Round)},
		{"rex_ctl_solves_total", "Solve rounds triggered.", float64(st.Solves)},
		{"rex_ctl_campaign", "Whether a rebalancing campaign is active.", boolGauge(st.Campaign)},
		{"rex_exec_dispatched_total", "Moves dispatched by the executor.", float64(st.Executor.Dispatched)},
		{"rex_exec_completed_total", "Moves committed to the live placement.", float64(st.Executor.Completed)},
		{"rex_exec_failures_total", "Injected/observed copy failures.", float64(st.Executor.Failures)},
		{"rex_exec_aborted_total", "In-flight moves aborted by plan supersession.", float64(st.Executor.Aborted)},
		{"rex_exec_cancelled_total", "Pending moves cancelled by plan supersession.", float64(st.Executor.Cancelled)},
		{"rex_exec_in_flight", "Moves currently in flight.", float64(st.Executor.InFlight)},
		{"rex_exec_bytes_moved_total", "Disk units copied by completed and in-flight moves.", st.Executor.BytesMoved},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			g.name, g.help, g.name, g.name, g.val); err != nil {
			return
		}
	}
}

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

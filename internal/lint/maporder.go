package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` loops over maps whose body appends to a slice
// declared outside the loop. Go randomizes map iteration order, so such a
// loop produces a differently-ordered slice on every run — which in solver
// or planner state silently breaks the determinism the paper's
// reproducibility claims rest on, and in floating-point accumulation
// changes results in the last bits. The canonical fixes — collect the keys,
// sort them, then iterate, or sort the produced slice before use — are
// recognized: a loop whose result slice is passed to sort.* or slices.Sort*
// later in the same block is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that builds slices in nondeterministic order",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmts := stmtList(n)
			if stmts == nil {
				return true
			}
			for i, stmt := range stmts {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList extracts the statement sequence held by n, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch x := n.(type) {
	case *ast.BlockStmt:
		return x.List
	case *ast.CaseClause:
		return x.Body
	case *ast.CommClause:
		return x.Body
	}
	return nil
}

// checkMapRange reports appends inside rs whose target slice outlives the
// loop, unless that slice is sorted by a following statement.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		root := rootIdent(call.Args[0])
		if root == nil {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(root)
		if obj == nil {
			return true
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return true // loop-local slice; dies with the iteration
		}
		if sortedAfter(pass, obj, following) {
			return true
		}
		pass.Reportf(call.Pos(),
			"append to %s while ranging over a map yields nondeterministic order; sort the map keys first or sort %s before use",
			root.Name, root.Name)
		return true
	})
}

// sortedAfter reports whether any of the following statements passes obj to
// a sort.* or slices.Sort* call (the sanctioned collect-then-sort idiom).
func sortedAfter(pass *Pass, obj types.Object, following []ast.Stmt) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				if root := rootIdent(arg); root != nil && pass.TypesInfo.ObjectOf(root) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdent returns the base identifier of an expression chain like
// x, x.f, x[i], (*x).f — or nil when there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Fixture for the noglobalrand analyzer: global math/rand draws are
// flagged; explicit seeded generators and type references are not.
package noglobalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func bad() int {
	n := rand.Intn(10)                 // want `global math/rand\.Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle`
	f := rand.Float64                  // want `global math/rand\.Float64`
	_ = f
	return n + randv2.IntN(3) // want `global math/rand/v2\.IntN`
}

func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are allowed
	z := rand.NewZipf(r, 1.1, 1, 100)
	var src rand.Source = rand.NewSource(seed) // type references are allowed
	_ = src
	return r.Float64() + float64(z.Uint64())
}

func ignored() int {
	return rand.Intn(2) //rexlint:ignore noglobalrand fixture demonstrates suppression
}

package core

import (
	"math"
	"runtime"
	"testing"
)

// TestSolveParallelDeterministicAcrossGOMAXPROCS pins the determinism
// contract the rexlint suite exists to protect: for a fixed seed,
// SolveParallel must produce a byte-identical assignment and bit-identical
// objective regardless of how much real parallelism the runtime provides.
// The solver's worker results are reduced by worker index, not completion
// order, so scheduling must not be observable.
func TestSolveParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	inst := smallInstance(t, 99, 2)
	cfg := quickConfig()
	cfg.Seed = 424242

	run := func(procs int) ([]int32, float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := New(cfg).SolveParallel(inst, 4)
		if err != nil {
			t.Fatalf("SolveParallel with GOMAXPROCS=%d: %v", procs, err)
		}
		assign := res.Final.Assignment()
		out := make([]int32, len(assign))
		for i, m := range assign {
			out[i] = int32(m)
		}
		return out, res.Objective
	}

	serialAssign, serialObj := run(1)
	parallelAssign, parallelObj := run(8)

	if math.Float64bits(serialObj) != math.Float64bits(parallelObj) {
		t.Errorf("objective differs across GOMAXPROCS: %v (serial) vs %v (parallel)",
			serialObj, parallelObj)
	}
	if len(serialAssign) != len(parallelAssign) {
		t.Fatalf("assignment lengths differ: %d vs %d", len(serialAssign), len(parallelAssign))
	}
	for s := range serialAssign {
		if serialAssign[s] != parallelAssign[s] {
			t.Fatalf("shard %d assigned to %d (serial) vs %d (parallel)",
				s, serialAssign[s], parallelAssign[s])
		}
	}

	// The same run repeated must also be identical to itself (guards
	// against hidden global state between invocations).
	againAssign, againObj := run(8)
	if math.Float64bits(againObj) != math.Float64bits(parallelObj) {
		t.Errorf("objective differs between identical runs: %v vs %v", againObj, parallelObj)
	}
	for s := range againAssign {
		if againAssign[s] != parallelAssign[s] {
			t.Fatalf("shard %d differs between identical runs: %d vs %d",
				s, againAssign[s], parallelAssign[s])
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockCheck enforces the `// guarded by: mu` annotation convention with a
// CFG-based must-held/may-held mutex analysis:
//
//   - a read or write of an annotated struct field is flagged unless the
//     named sibling mutex is held on EVERY path reaching the access
//     (must-held, intersection join);
//   - a Lock() that MAY still be held at a return or explicit panic, with
//     no deferred Unlock scheduled on that path, is flagged at the Lock
//     site (may-held, union join);
//   - blocking operations under a held lock are flagged: channel sends and
//     receives (unless in a select with a default clause),
//     sync.WaitGroup.Wait, and calls to same-package methods that acquire
//     the mutex already held (self-deadlock, detected via per-method lock
//     summaries).
//
// Helper functions that run with the lock already held declare their
// entry contract with a doc-comment directive:
//
//	//rexlint:holds c.mu
//
// Locals initialized from a composite literal or new() in the same
// function are exempt from the guarded-field check: nothing else can hold
// a reference yet, so constructors may fill fields lock-free.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flag guarded-field access without the mutex, lock leaks on return/panic paths, and blocking calls under a lock",
	Run:  runLockCheck,
}

var guardedRe = regexp.MustCompile(`guarded by:?\s*([A-Za-z_]\w*)`)

// lockInfo describes one held mutex on a path.
type lockInfo struct {
	pos       token.Pos // Lock() position (or func start for entry facts)
	path      string    // rendered mutex path for diagnostics
	read      bool      // held via RLock only
	deferred  bool      // an Unlock is deferred on this path
	fromEntry bool      // held per //rexlint:holds; release is the caller's duty
}

// lockFact maps mutex keys (exprKey of the mutex path) to hold info.
type lockFact map[string]lockInfo

// lockFlow solves held-mutex facts forward; must selects intersection
// (held on every path) versus union (held on some path) joins. prog, when
// set, supplies interprocedural unlock summaries: a call to a method that
// may unlock a receiver mutex drops the held fact, closing the
// hidden-unlock blind spot (the caller can no longer be assumed to still
// hold the lock after the call).
type lockFlow struct {
	info  *types.Info
	prog  *Program
	entry lockFact
	must  bool
}

func (lf *lockFlow) Entry() lockFact { return lf.entry }

func (lf *lockFlow) mergeInfo(a, b lockInfo) lockInfo {
	out := a
	if b.pos < out.pos {
		out.pos = b.pos
	}
	out.read = a.read || b.read
	out.deferred = a.deferred && b.deferred
	out.fromEntry = a.fromEntry || b.fromEntry
	return out
}

func (lf *lockFlow) Join(a, b lockFact) lockFact {
	out := lockFact{}
	for k, ai := range a {
		bi, ok := b[k]
		if ok {
			out[k] = lf.mergeInfo(ai, bi)
		} else if !lf.must {
			out[k] = ai
		}
	}
	if !lf.must {
		for k, bi := range b {
			if _, ok := a[k]; !ok {
				out[k] = bi
			}
		}
	}
	return out
}

func (lf *lockFlow) Equal(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ai := range a {
		bi, ok := b[k]
		if !ok || ai != bi {
			return false
		}
	}
	return true
}

func (lf *lockFlow) Transfer(n ast.Node, in lockFact) lockFact {
	return lockTransfer(lf.info, lf.prog, n, in)
}

// lockTransfer applies one node's Lock/Unlock/defer effects, plus
// summary-driven hidden unlocks through module-local callees.
func lockTransfer(info *types.Info, prog *Program, n ast.Node, in lockFact) lockFact {
	out := in
	copied := false
	ensure := func() {
		if !copied {
			cp := lockFact{}
			for k, v := range out {
				cp[k] = v
			}
			out, copied = cp, true
		}
	}

	if d, ok := n.(*ast.DeferStmt); ok {
		if key, _, kind := mutexCall(info, d.Call); kind == lockRelease {
			if li, held := out[key]; held {
				ensure()
				li.deferred = true
				out[key] = li
			}
		}
		return out
	}

	inspectShallow(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, path, kind := mutexCall(info, call)
		switch kind {
		case lockAcquire:
			ensure()
			out[key] = lockInfo{pos: call.Pos(), path: path}
		case lockAcquireRead:
			ensure()
			out[key] = lockInfo{pos: call.Pos(), path: path, read: true}
		case lockRelease:
			if _, held := out[key]; held {
				ensure()
				delete(out, key)
			}
		case lockNone:
			// Interprocedural: a callee that may unlock a receiver mutex
			// means the lock cannot be assumed held after the call.
			for _, k := range hiddenUnlockKeys(info, prog, call) {
				if _, held := out[k]; held {
					ensure()
					delete(out, k)
				}
			}
		}
		return true
	})
	return out
}

// hiddenUnlockKeys returns the lock-fact keys a call may release through
// its callees' unlock summaries (e.g. x.finish() where finish does
// x.mu.Unlock()).
func hiddenUnlockKeys(info *types.Info, prog *Program, call *ast.CallExpr) []string {
	if prog == nil {
		return nil
	}
	callees := prog.CalleesAt(call)
	if len(callees) == 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	baseKey, ok := exprKey(info, sel.X)
	if !ok {
		return nil
	}
	var keys []string
	for _, callee := range callees {
		for _, f := range prog.SummaryOf(callee).UnlockFields {
			if f == "" {
				keys = append(keys, baseKey)
			} else {
				keys = append(keys, baseKey+"."+f)
			}
		}
	}
	return keys
}

// mutex call kinds.
const (
	lockNone = iota
	lockAcquire
	lockAcquireRead
	lockRelease
)

// mutexCall classifies a call as Lock/RLock/Unlock/RUnlock on a keyable
// sync.Mutex or sync.RWMutex path, returning the mutex key and rendered
// path.
func mutexCall(info *types.Info, call *ast.CallExpr) (key, path string, kind int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", lockNone
	}
	var k int
	switch sel.Sel.Name {
	case "Lock":
		k = lockAcquire
	case "RLock":
		k = lockAcquireRead
	case "Unlock", "RUnlock":
		k = lockRelease
	default:
		return "", "", lockNone
	}
	if !isMutexType(info.TypeOf(sel.X)) {
		return "", "", lockNone
	}
	key, ok = exprKey(info, sel.X)
	if !ok {
		return "", "", lockNone
	}
	return key, renderPath(sel.X), k
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockCtx is the per-package context for the checks.
type lockCtx struct {
	pass *Pass
	// guarded maps annotated field objects to the sibling mutex field name.
	guarded map[types.Object]string
	// summaries maps same-package methods to the receiver mutex fields they
	// acquire (for self-deadlock detection).
	summaries map[*types.Func]map[string]bool
	// nonBlocking holds channel-op nodes inside select clauses that have a
	// default (they cannot block).
	nonBlocking map[ast.Node]bool
	// leakReported dedups lock-leak reports by Lock position.
	leakReported map[token.Pos]bool
}

func runLockCheck(pass *Pass) error {
	ctx := &lockCtx{
		pass:         pass,
		guarded:      collectGuarded(pass),
		summaries:    collectLockSummaries(pass),
		nonBlocking:  collectNonBlocking(pass),
		leakReported: map[token.Pos]bool{},
	}
	for _, file := range pass.Files {
		funcBodies(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ctx.checkFunc(fd, body)
		})
	}
	return nil
}

// collectGuarded parses `// guarded by: mu` field annotations, validating
// that the named guard is a sibling mutex field.
func collectGuarded(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Mutex fields available as guards in this struct.
			mutexFields := map[string]bool{}
			for _, f := range st.Fields.List {
				if isMutexType(pass.TypesInfo.TypeOf(f.Type)) {
					for _, name := range f.Names {
						mutexFields[name.Name] = true
					}
				}
			}
			for _, f := range st.Fields.List {
				mu := fieldGuard(f)
				if mu == "" {
					continue
				}
				if !mutexFields[mu] {
					pass.Reportf(f.Pos(), "guarded by: %s names no sibling sync.Mutex/RWMutex field", mu)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldGuard extracts the guard name from a field's doc or trailing
// comment.
func fieldGuard(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectLockSummaries records, per method, the receiver mutex fields it
// acquires anywhere in its body (receiver-qualified, not via nested
// closures).
func collectLockSummaries(pass *Pass) map[*types.Func]map[string]bool {
	out := map[*types.Func]map[string]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recvObj == nil {
				continue
			}
			var locked map[string]bool
			inspectShallow(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
					return true
				}
				// receiver-qualified mutex: recv.<field>.Lock()
				inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !ok || !isMutexType(pass.TypesInfo.TypeOf(inner)) {
					return true
				}
				if rootObject(pass.TypesInfo, inner.X) != recvObj {
					return true
				}
				if locked == nil {
					locked = map[string]bool{}
				}
				locked[inner.Sel.Name] = true
				return true
			})
			if locked != nil {
				out[fn] = locked
			}
		}
	}
	return out
}

// collectNonBlocking marks channel operations inside select clauses whose
// select carries a default clause (they never block).
func collectNonBlocking(pass *Pass) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(x ast.Node) bool {
					switch x.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						out[x] = true
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

// freshLocals returns the objects of locals bound to freshly constructed
// values (&T{...}, T{...}, new(T)): no other goroutine can reference them,
// so their guarded fields may be touched lock-free.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			fresh := false
			switch r := rhs.(type) {
			case *ast.CompositeLit:
				fresh = true
			case *ast.UnaryExpr:
				if r.Op == token.AND {
					_, isLit := ast.Unparen(r.X).(*ast.CompositeLit)
					fresh = isLit
				}
			case *ast.CallExpr:
				if fn, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && fn.Name == "new" {
					if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
						fresh = true
					}
				}
			}
			if fresh {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// entryLocks builds the entry fact from //rexlint:holds directives on the
// function's doc comment.
func (ctx *lockCtx) entryLocks(fd *ast.FuncDecl) lockFact {
	entry := lockFact{}
	for _, fields := range funcDirective(fd, "holds") {
		for _, pathStr := range fields {
			key, ok := ctx.resolveHolds(fd, pathStr)
			if !ok {
				ctx.pass.Reportf(fd.Pos(), "rexlint:holds %s does not name a mutex path on a receiver or parameter", pathStr)
				continue
			}
			entry[key] = lockInfo{pos: fd.Pos(), path: pathStr, fromEntry: true}
		}
	}
	return entry
}

// resolveHolds maps a textual path like "c.mu" onto the receiver/parameter
// objects of fd.
func (ctx *lockCtx) resolveHolds(fd *ast.FuncDecl, path string) (string, bool) {
	dot := -1
	for i, r := range path {
		if r == '.' {
			dot = i
			break
		}
	}
	root, rest := path, ""
	if dot >= 0 {
		root, rest = path[:dot], path[dot:]
	}
	var fieldLists []*ast.FieldList
	if fd.Recv != nil {
		fieldLists = append(fieldLists, fd.Recv)
	}
	if fd.Type.Params != nil {
		fieldLists = append(fieldLists, fd.Type.Params)
	}
	for _, fl := range fieldLists {
		for _, f := range fl.List {
			for _, name := range f.Names {
				if name.Name != root {
					continue
				}
				obj := ctx.pass.TypesInfo.Defs[name]
				if obj == nil {
					return "", false
				}
				return exprKeyForObject(obj) + rest, true
			}
		}
	}
	return "", false
}

// exprKeyForObject renders the key root used by exprKey for obj.
func exprKeyForObject(obj types.Object) string {
	return fmt.Sprintf("v%p", obj)
}

// checkFunc runs the lock analysis over one function body.
func (ctx *lockCtx) checkFunc(fd *ast.FuncDecl, body *ast.BlockStmt) {
	info := ctx.pass.TypesInfo
	g := BuildCFG(body, info)
	entry := lockFact{}
	if fd != nil {
		entry = ctx.entryLocks(fd)
	}
	prog := ctx.pass.Prog
	must := Forward[lockFact](g, &lockFlow{info: info, prog: prog, entry: entry, must: true})
	may := Forward[lockFact](g, &lockFlow{info: info, prog: prog, entry: entry, must: false})
	fresh := freshLocals(info, body)

	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		fMust, okMust := must.In[b]
		fMay, okMay := may.In[b]
		if !okMust || !okMay {
			continue
		}
		for _, n := range b.Nodes {
			ctx.checkNode(n, fMust, fMay, fresh)
			fMust = lockTransfer(info, prog, n, fMust)
			fMay = lockTransfer(info, prog, n, fMay)
		}
		// Fall-off-the-end exit: the block reaches Exit without a return
		// statement, so the leak check above never saw a flow-exit node.
		if blockFallsToExit(g, b, info) {
			ctx.reportLeaks(fMay)
		}
	}
}

// reportLeaks flags every may-held, non-deferred, non-entry lock once.
func (ctx *lockCtx) reportLeaks(fMay lockFact) {
	for _, li := range fMay {
		if li.deferred || li.fromEntry || ctx.leakReported[li.pos] {
			continue
		}
		ctx.leakReported[li.pos] = true
		ctx.pass.Reportf(li.pos, "%s.Lock() may still be held at a return or panic (missing Unlock or defer on some path)", li.path)
	}
}

// checkNode applies the three lock checks at one straight-line node.
func (ctx *lockCtx) checkNode(n ast.Node, fMust, fMay lockFact, fresh map[types.Object]bool) {
	info := ctx.pass.TypesInfo

	// 1. Guarded-field accesses need the mutex must-held.
	forEachAccess(n, func(sel *ast.SelectorExpr, write bool) {
		selection := info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		mu, guarded := ctx.guarded[selection.Obj()]
		if !guarded {
			return
		}
		baseKey, ok := exprKey(info, sel.X)
		if !ok {
			return
		}
		if fresh[rootObject(info, sel.X)] {
			return // freshly constructed: not yet shared
		}
		required := baseKey + "." + mu
		li, held := fMust[required]
		lockPath := renderPath(sel.X) + "." + mu
		if !held {
			ctx.pass.Reportf(sel.Pos(), "access to %s.%s (guarded by %s) without holding %s on every path",
				renderPath(sel.X), sel.Sel.Name, mu, lockPath)
			return
		}
		if write && li.read {
			ctx.pass.Reportf(sel.Pos(), "write to %s.%s while %s is only read-locked (RLock)",
				renderPath(sel.X), sel.Sel.Name, lockPath)
		}
	})

	// 2. Lock leaks: a return/panic reached while a lock may be held with
	// no deferred release.
	if isFlowExit(info, n) {
		ctx.reportLeaks(fMay)
	}

	// 3. Blocking operations while a lock is must-held.
	if len(fMust) == 0 {
		return
	}
	anyLock := func() string {
		for _, li := range fMust {
			return li.path
		}
		return "a lock"
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch op := x.(type) {
		case *ast.SendStmt:
			if !ctx.nonBlocking[x] {
				ctx.pass.Reportf(op.Arrow, "channel send while holding %s may block under the lock", anyLock())
			}
		case *ast.UnaryExpr:
			if op.Op == token.ARROW && !ctx.nonBlocking[x] {
				ctx.pass.Reportf(op.OpPos, "channel receive while holding %s may block under the lock", anyLock())
			}
		case *ast.CallExpr:
			ctx.checkBlockingCall(op, fMust)
		}
		return true
	})
}

// checkBlockingCall flags WaitGroup.Wait and self-deadlocking method calls
// under a held lock.
func (ctx *lockCtx) checkBlockingCall(call *ast.CallExpr, fMust lockFact) {
	info := ctx.pass.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sel.Sel.Name == "Wait" {
		if t := info.TypeOf(sel.X); t != nil {
			if p, okp := t.(*types.Pointer); okp {
				t = p.Elem()
			}
			if named, okn := t.(*types.Named); okn && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
				var anyPath string
				for _, li := range fMust {
					anyPath = li.path
					break
				}
				ctx.pass.Reportf(call.Pos(), "sync.WaitGroup.Wait while holding %s blocks under the lock", anyPath)
				return
			}
		}
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	if lockedFields := ctx.summaries[fn]; lockedFields != nil {
		if baseKey, okKey := exprKey(info, sel.X); okKey {
			for mf := range lockedFields {
				required := baseKey + "." + mf
				if li, held := fMust[required]; held && !li.read {
					ctx.pass.Reportf(call.Pos(), "call to %s while holding %s: the callee locks the same mutex (self-deadlock)",
						sel.Sel.Name, li.path)
				}
			}
		}
	}
	ctx.checkBlockingCallee(call, fMust)
}

// checkBlockingCallee is the interprocedural half of the blocking check: a
// module-local callee whose summary says it may block (channel op, select
// without default, WaitGroup.Wait, time.Sleep — directly or deeper in the
// call graph) is flagged when a lock is must-held at the call, with the
// chain to the root blocking site. A callee that first unlocks the held
// mutex drops the fact in the transfer before this check fires, so
// unlock-then-block helpers stay silent.
func (ctx *lockCtx) checkBlockingCallee(call *ast.CallExpr, fMust lockFact) {
	prog := ctx.pass.Prog
	if prog == nil || len(fMust) == 0 {
		return
	}
	for _, callee := range prog.CalleesAt(call) {
		sum := prog.SummaryOf(callee)
		if sum.Mask&EffBlock == 0 {
			continue
		}
		var anyPath string
		for _, li := range fMust {
			anyPath = li.path
			break
		}
		what := "a blocking operation"
		if sum.Block != nil && sum.Block.What != "" {
			what = sum.Block.What
		}
		ctx.pass.Reportf(call.Pos(), "call to %s while holding %s may block under the lock: %s%s",
			callee.Name(), anyPath, what, sum.Block.Chain())
		return
	}
}

// isFlowExit reports whether node n terminates the function's flow: a
// return statement or a call that never returns (panic, os.Exit, ...).
func isFlowExit(info *types.Info, n ast.Node) bool {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			b := &builder{info: info}
			return b.neverReturns(call)
		}
	}
	return false
}

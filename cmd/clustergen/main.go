// Command clustergen generates synthetic or realistic cluster instances
// (cluster + initial placement JSON) and query traces (CSV) for use with
// cmd/rebalance and the examples.
//
// Usage:
//
//	clustergen -machines 100 -shards 1500 -fill 0.85 -placement out.json
//	clustergen -realistic -placement real.json
//	clustergen -trace trace.csv -rate 200 -duration 120
package main

import (
	"flag"
	"fmt"
	"os"

	"rexchange/internal/metrics"
	"rexchange/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clustergen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machines  = flag.Int("machines", 100, "fleet size")
		shards    = flag.Int("shards", 1500, "shard population")
		fill      = flag.Float64("fill", 0.8, "static fill fraction (0,1)")
		skew      = flag.Float64("skew", 0.9, "Zipf exponent of shard loads")
		seed      = flag.Int64("seed", 1, "random seed")
		replicas  = flag.Int("replicas", 1, "replicas per logical shard (anti-affinity groups)")
		realistic = flag.Bool("realistic", false, "use the realistic datacenter profile")
		placement = flag.String("placement", "", "write cluster+placement JSON here")
		clusterF  = flag.String("cluster", "", "write cluster-only JSON here")
		snapshot  = flag.String("snapshot", "", "write a CSV snapshot to <prefix>-machines.csv / <prefix>-shards.csv")

		trace    = flag.String("trace", "", "write a query trace CSV here")
		rate     = flag.Float64("rate", 100, "trace mean arrival rate (qps)")
		duration = flag.Float64("duration", 60, "trace duration (seconds)")
		diurnal  = flag.Float64("diurnal", 0.0, "diurnal amplitude [0,1)")
		period   = flag.Float64("period", 86400, "diurnal period (seconds)")
	)
	flag.Parse()

	if *trace != "" {
		tr, err := workload.GenerateTrace(workload.TraceConfig{
			Duration: *duration, BaseRate: *rate,
			DiurnalAmp: *diurnal, Period: *period,
			CostMu: 0, CostSigma: 0.5, Seed: *seed,
		})
		if err != nil {
			return err
		}
		if err := tr.SaveFile(*trace); err != nil {
			return err
		}
		fmt.Printf("trace: %d queries over %.0fs (%.1f qps) → %s\n",
			len(tr.Queries), tr.Duration, tr.Rate(), *trace)
	}

	if *placement == "" && *clusterF == "" && *snapshot == "" {
		if *trace == "" {
			return fmt.Errorf("nothing to do: pass -placement, -cluster, -snapshot, and/or -trace")
		}
		return nil
	}

	cfg := workload.DefaultConfig()
	if *realistic {
		cfg = workload.RealisticConfig()
	}
	cfg.Machines = *machines
	cfg.Shards = *shards
	cfg.TargetFill = *fill
	cfg.LoadSkew = *skew
	cfg.Seed = *seed
	cfg.Replicas = *replicas
	inst, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	rep := metrics.Compute(inst.Placement)
	fmt.Printf("instance: %d machines, %d shards, fill %.2f → %s\n",
		cfg.Machines, cfg.Shards, cfg.TargetFill, rep)

	if *clusterF != "" {
		if err := inst.Cluster.SaveFile(*clusterF); err != nil {
			return err
		}
		fmt.Println("cluster →", *clusterF)
	}
	if *placement != "" {
		if err := inst.Placement.SaveFile(*placement); err != nil {
			return err
		}
		fmt.Println("placement →", *placement)
	}
	if *snapshot != "" {
		mp, sp := *snapshot+"-machines.csv", *snapshot+"-shards.csv"
		if err := workload.SaveSnapshotFiles(inst.Placement, mp, sp); err != nil {
			return err
		}
		fmt.Printf("snapshot → %s, %s\n", mp, sp)
	}
	return nil
}

// Package baseline implements the comparison load balancers used in the
// experiments: a classic greedy rebalancer and a swap-capable local search,
// both operating without the paper's resource-exchange mechanism. Both
// execute moves directly against a working placement, so every schedule
// they produce is transiently feasible by construction — which is precisely
// their limitation in stringent environments: any relocation that would
// need staging space is simply unavailable to them.
package baseline

import (
	"sort"

	"rexchange/internal/cluster"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
)

// Result is the outcome of a baseline rebalancing run.
type Result struct {
	// Final is the resulting placement.
	Final *cluster.Placement
	// Plan is the executed move sequence (transiently feasible by
	// construction).
	Plan *plan.Plan
	// Before/After summarize balance quality.
	Before, After metrics.Report
	// MovedShards counts shards that changed machines.
	MovedShards int
}

// Config bounds a baseline run.
type Config struct {
	// MaxMoves caps executed migration steps; 0 means 4×shards.
	MaxMoves int
	// Keep is the vacancy budget: the run must leave at least Keep
	// machines vacant (0 for the standard no-exchange setting).
	Keep int
	// AllowSwaps enables pairwise shard exchanges in LocalSearch.
	AllowSwaps bool
}

// eps guards strict-improvement comparisons against float drift.
const eps = 1e-12

// Greedy repeatedly moves the most beneficial shard off the currently
// hottest machine onto the machine that minimizes the resulting pair
// utilization, until no strictly improving move exists or the move budget
// is exhausted. This is the textbook shard rebalancer used as the weakest
// baseline.
func Greedy(p *cluster.Placement, cfg Config) *Result {
	w := p.Clone()
	before := metrics.Compute(p)
	maxMoves := cfg.MaxMoves
	if maxMoves == 0 {
		maxMoves = 4 * w.Cluster().NumShards()
	}
	sched := &plan.Plan{}
	for len(sched.Moves) < maxMoves {
		if !greedyStep(w, cfg.Keep, sched) {
			break
		}
	}
	return &Result{
		Final:       w,
		Plan:        sched,
		Before:      before,
		After:       metrics.Compute(w),
		MovedShards: countMoved(p, w),
	}
}

// greedyStep performs one improving move off the hottest machine,
// reporting whether it moved anything.
func greedyStep(w *cluster.Placement, keep int, sched *plan.Plan) bool {
	c := w.Cluster()
	hot := hottest(w)
	if hot == cluster.Unassigned {
		return false
	}
	hotUtil := w.Utilization(hot)

	// shards on the hot machine, heaviest first
	shards := w.ShardsOn(hot)
	sort.Slice(shards, func(i, j int) bool {
		if c.Shards[shards[i]].Load != c.Shards[shards[j]].Load {
			return c.Shards[shards[i]].Load > c.Shards[shards[j]].Load
		}
		return shards[i] < shards[j]
	})

	bestS := cluster.ShardID(-1)
	bestM := cluster.Unassigned
	bestPeak := hotUtil
	for _, s := range shards {
		ls := c.Shards[s].Load
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if id == hot || !canHost(w, s, id, keep) {
				continue
			}
			newTarget := (w.Load(id) + ls) / c.Machines[m].Speed
			newHot := (w.Load(hot) - ls) / c.Machines[hot].Speed
			peak := newTarget
			if newHot > peak {
				peak = newHot
			}
			if peak < bestPeak-eps {
				bestS, bestM, bestPeak = s, id, peak
			}
		}
	}
	if bestM == cluster.Unassigned {
		return false
	}
	sched.Moves = append(sched.Moves, plan.Move{S: bestS, From: hot, To: bestM})
	w.Move(bestS, bestM)
	return true
}

// LocalSearch is the stronger state-of-the-art stand-in: hill climbing
// with single-shard moves plus (optionally) pairwise swaps between the
// hottest machine and any other, executed only when a transiently feasible
// serial order exists. It strictly decreases the hottest pairwise peak at
// every step and stops at a local optimum.
func LocalSearch(p *cluster.Placement, cfg Config) *Result {
	w := p.Clone()
	before := metrics.Compute(p)
	maxMoves := cfg.MaxMoves
	if maxMoves == 0 {
		maxMoves = 4 * w.Cluster().NumShards()
	}
	sched := &plan.Plan{}
	for len(sched.Moves) < maxMoves {
		if greedyStep(w, cfg.Keep, sched) {
			continue
		}
		if cfg.AllowSwaps && swapStep(w, cfg.Keep, sched) {
			continue
		}
		break
	}
	return &Result{
		Final:       w,
		Plan:        sched,
		Before:      before,
		After:       metrics.Compute(w),
		MovedShards: countMoved(p, w),
	}
}

// swapStep exchanges one shard on the hottest machine with a lighter shard
// elsewhere when that strictly lowers the pair's peak utilization and a
// serial execution order fits. Reports whether a swap was executed.
func swapStep(w *cluster.Placement, keep int, sched *plan.Plan) bool {
	c := w.Cluster()
	hot := hottest(w)
	if hot == cluster.Unassigned {
		return false
	}
	hotUtil := w.Utilization(hot)
	hotShards := w.ShardsOn(hot)

	type swap struct {
		s, t cluster.ShardID
		b    cluster.MachineID
		peak float64
	}
	best := swap{peak: hotUtil}
	found := false
	for m := 0; m < c.NumMachines(); m++ {
		b := cluster.MachineID(m)
		if b == hot || w.IsVacant(b) {
			continue
		}
		ub := w.Utilization(b)
		for _, s := range hotShards {
			ls := c.Shards[s].Load
			for _, t := range w.ShardsOn(b) {
				lt := c.Shards[t].Load
				if lt >= ls {
					continue // swapping equal/heavier in makes hot hotter
				}
				newHot := hotUtil + (lt-ls)/c.Machines[hot].Speed
				newB := ub + (ls-lt)/c.Machines[b].Speed
				peak := newHot
				if newB > peak {
					peak = newB
				}
				if peak < best.peak-eps {
					best = swap{s, t, b, peak}
					found = true
				}
			}
		}
	}
	if !found {
		return false
	}
	return executeSwap(w, best.s, best.t, hot, best.b, keep, sched)
}

// executeSwap tries both serial orders of the two moves, applying the first
// transiently feasible one; it reports whether the swap happened.
func executeSwap(w *cluster.Placement, s, t cluster.ShardID, a, b cluster.MachineID, keep int, sched *plan.Plan) bool {
	// order 1: s a→b, then t b→a
	if canHost(w, s, b, keep) {
		w.Move(s, b)
		if canHost(w, t, a, keep) {
			w.Move(t, a)
			sched.Moves = append(sched.Moves,
				plan.Move{S: s, From: a, To: b}, plan.Move{S: t, From: b, To: a})
			return true
		}
		w.Move(s, a) // roll back
	}
	// order 2: t b→a, then s a→b
	if canHost(w, t, a, keep) {
		w.Move(t, a)
		if canHost(w, s, b, keep) {
			w.Move(s, b)
			sched.Moves = append(sched.Moves,
				plan.Move{S: t, From: b, To: a}, plan.Move{S: s, From: a, To: b})
			return true
		}
		w.Move(t, b) // roll back
	}
	return false
}

// canHost combines the static fit test with the vacancy budget.
func canHost(w *cluster.Placement, s cluster.ShardID, m cluster.MachineID, keep int) bool {
	if w.IsVacant(m) && w.NumVacant() <= keep {
		return false
	}
	return w.CanPlace(s, m)
}

// hottest returns the serving machine with the highest utilization.
func hottest(w *cluster.Placement) cluster.MachineID {
	c := w.Cluster()
	best := cluster.Unassigned
	bestU := -1.0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if w.IsVacant(id) {
			continue
		}
		if u := w.Utilization(id); u > bestU {
			best, bestU = id, u
		}
	}
	return best
}

func countMoved(from, to *cluster.Placement) int {
	n := 0
	for s := 0; s < from.Cluster().NumShards(); s++ {
		if from.Home(cluster.ShardID(s)) != to.Home(cluster.ShardID(s)) {
			n++
		}
	}
	return n
}

package lint

import (
	"go/ast"
	"go/types"
)

// ErrIgnore flags statements that call a function returning an error and
// drop the result on the floor. An explicit `_ =` assignment is accepted as
// a reviewed decision; a bare call statement is treated as an oversight.
// Deferred and go-routine calls are out of scope (defer f.Close() on a
// read-only file is the dominant, harmless idiom), as are writers that are
// documented never to fail: fmt printing to standard output,
// strings.Builder, and bytes.Buffer.
var ErrIgnore = &Analyzer{
	Name: "errignore",
	Doc:  "flag call statements whose error result is silently dropped",
	Run:  runErrIgnore,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrIgnore(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently dropped; handle it or assign to _ explicitly",
				calleeName(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's (last) result is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, errorType)
}

// exemptCall reports whether the call belongs to the never-fails allowlist.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	// Methods on writers that never return a non-nil error.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return neverFailingWriter(sig.Recv().Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true // best-effort CLI output to stdout
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if neverFailingWriter(pass.TypesInfo.TypeOf(call.Args[0])) {
			return true
		}
		return isStdStream(pass, call.Args[0])
	}
	return false
}

// calleeFunc resolves the called *types.Func, or nil for indirect calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders the callee for the diagnostic message.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

// neverFailingWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer, whose Write methods are documented to always succeed.
func neverFailingWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is the selector os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

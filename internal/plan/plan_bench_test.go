package plan

import (
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// BenchmarkBuild measures planning a rotation-style reassignment on a
// tight 40-machine cluster with one exchange machine.
func BenchmarkBuild(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Machines = 40
	cfg.Shards = 600
	cfg.TargetFill = 0.85
	cfg.Seed = 9
	inst, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ec := inst.Cluster.WithExchange(2, vec.Uniform(100), 1)
	from, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		b.Fatal(err)
	}
	// rotate every shard one machine over (mod the original fleet)
	toAssign := from.Assignment()
	for s, m := range toAssign {
		toAssign[s] = (m + 1) % cluster.MachineID(cfg.Machines)
	}
	to, err := cluster.FromAssignment(ec, toAssign)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DefaultPlanner().Build(from, to); err != nil {
			b.Fatal(err)
		}
	}
}

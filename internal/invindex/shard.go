package invindex

import (
	"fmt"
	"math/rand"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// ShardedIndex is a document-partitioned index: every query fans out to
// all shards and results are merged — the architecture of large-scale
// search engines that the paper's load-balancing problem lives in.
type ShardedIndex struct {
	Shards []*Index
}

// BuildSharded partitions a corpus round-robin across n shards.
// Round-robin (rather than contiguous ranges) keeps shard content
// statistically similar while still letting sizes differ through document
// length variance, matching how engines spread crawl output.
func BuildSharded(docs [][]string, n int) (*ShardedIndex, error) {
	if n <= 0 {
		return nil, fmt.Errorf("invindex: shard count must be positive, got %d", n)
	}
	if len(docs) < n {
		return nil, fmt.Errorf("invindex: %d documents cannot fill %d shards", len(docs), n)
	}
	si := &ShardedIndex{Shards: make([]*Index, n)}
	for i := range si.Shards {
		si.Shards[i] = NewIndex()
	}
	for d, doc := range docs {
		si.Shards[d%n].Add(doc)
	}
	return si, nil
}

// Search evaluates a query on every shard (DAAT) and merges the per-shard
// top-k into a global top-k. The per-shard stats are returned for load
// accounting; entry i corresponds to shard i.
func (si *ShardedIndex) Search(terms []string, k int) ([]ScoredDoc, []Stats) {
	stats := make([]Stats, len(si.Shards))
	var h resultHeap
	for i, ix := range si.Shards {
		res, st := ix.SearchDAAT(terms, k)
		stats[i] = st
		for _, d := range res {
			// Re-key doc ids into a global space (shard-major) so merged
			// results stay unambiguous.
			h.push(ScoredDoc{Doc: DocID(i)*1_000_000 + d.Doc, Score: d.Score}, k)
		}
	}
	return h.sorted(), stats
}

// ProfileConfig controls how shard resource profiles are measured.
type ProfileConfig struct {
	// Queries is the sample workload used to measure per-shard query cost.
	Queries [][]string
	// TopK is the result depth per query.
	TopK int
	// BytesPerPosting scales postings into disk units; MemPerTerm scales
	// vocabulary into memory units.
	BytesPerPosting, MemPerTerm float64
	// LoadScale converts scanned postings per query into load units.
	LoadScale float64
	// UseCompressedSize derives the disk footprint from the vbyte-
	// compressed postings (how engines actually store them) instead of
	// the raw posting count.
	UseCompressedSize bool
}

// DefaultProfileConfig returns sensible measurement parameters.
func DefaultProfileConfig(queries [][]string) ProfileConfig {
	return ProfileConfig{
		Queries:           queries,
		TopK:              10,
		BytesPerPosting:   1.0 / 1024, // ~1KiB per 1024 postings
		MemPerTerm:        1.0 / 512,
		LoadScale:         1.0 / 1000,
		UseCompressedSize: true,
	}
}

// ProfileShards measures each shard's static footprint (disk from postings
// volume, memory from dictionary size) and dynamic load (postings scanned
// answering the sample workload) and returns cluster.Shard descriptors.
// This is the bridge between the search substrate and the rebalancing
// problem: shard profiles come from real index mechanics rather than
// synthetic draws.
func (si *ShardedIndex) ProfileShards(cfg ProfileConfig) ([]cluster.Shard, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("invindex: profile needs a sample workload")
	}
	if cfg.TopK <= 0 {
		return nil, fmt.Errorf("invindex: TopK must be positive")
	}
	scanned := make([]int, len(si.Shards))
	for _, q := range cfg.Queries {
		for i, ix := range si.Shards {
			_, st := ix.SearchDAAT(q, cfg.TopK)
			scanned[i] += st.PostingsScanned
		}
	}
	shards := make([]cluster.Shard, len(si.Shards))
	for i, ix := range si.Shards {
		disk := float64(ix.NumPostings()) * cfg.BytesPerPosting
		if cfg.UseCompressedSize {
			ci, err := ix.Compact()
			if err != nil {
				return nil, fmt.Errorf("invindex: shard %d: %w", i, err)
			}
			// same unit scale: compressed bytes vs 8 raw bytes/posting
			disk = float64(ci.CompressedBytes()) / 8 * cfg.BytesPerPosting
		}
		mem := float64(ix.NumTerms())*cfg.MemPerTerm + disk*0.25 // hot postings cached
		shards[i] = cluster.Shard{
			ID:     cluster.ShardID(i),
			Name:   fmt.Sprintf("idx-shard-%03d", i),
			Static: vec.New(mem, disk, disk*0.1),
			Load:   float64(scanned[i]) * cfg.LoadScale,
		}
	}
	return shards, nil
}

// ClusterFromProfiles builds a cluster and an initial placement that packs
// the profiled shards onto machines sized so that fill ≈ targetFill, using
// a random best-fit like production growth would. It is used by the
// searchcluster example and the F5 experiment.
func ClusterFromProfiles(shards []cluster.Shard, machines int, targetFill float64, seed int64) (*cluster.Placement, error) {
	if machines <= 0 || targetFill <= 0 || targetFill >= 1 {
		return nil, fmt.Errorf("invindex: need positive machines and fill in (0,1)")
	}
	var total vec.Vec
	for i := range shards {
		total = total.Add(shards[i].Static)
	}
	capPer := total.Scale(1 / (targetFill * float64(machines)))
	c := &cluster.Cluster{Shards: shards}
	for m := 0; m < machines; m++ {
		c.Machines = append(c.Machines, cluster.Machine{
			ID:       cluster.MachineID(m),
			Name:     fmt.Sprintf("srch-m%03d", m),
			Capacity: capPer,
			Speed:    1,
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// random-order first-fit: feasible but load-oblivious
	r := rand.New(rand.NewSource(seed))
	p := cluster.NewPlacement(c)
	order := r.Perm(len(shards))
	for _, si := range order {
		s := cluster.ShardID(si)
		placed := false
		for _, mi := range r.Perm(machines) {
			if p.PlaceChecked(s, cluster.MachineID(mi)) {
				placed = true
				break
			}
		}
		if !placed {
			// fall back to the emptiest machine even if order was unlucky
			best, bestFree := cluster.Unassigned, -1.0
			for m := 0; m < machines; m++ {
				id := cluster.MachineID(m)
				if !p.CanPlace(s, id) {
					continue
				}
				if free := p.Free(id).MaxDim(); free > bestFree {
					best, bestFree = id, free
				}
			}
			if best == cluster.Unassigned {
				return nil, fmt.Errorf("invindex: shard %d does not fit; lower targetFill", si)
			}
			if err := p.Place(s, best); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

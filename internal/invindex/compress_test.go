package invindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randPostings produces a sorted random postings list.
func randPostings(r *rand.Rand, n int) []Posting {
	out := make([]Posting, n)
	doc := DocID(0)
	for i := range out {
		doc += DocID(1 + r.Intn(50))
		out[i] = Posting{Doc: doc, TF: int32(1 + r.Intn(9))}
	}
	return out
}

func TestVByteRoundTrip(t *testing.T) {
	cases := []uint32{0, 1, 127, 128, 129, 16383, 16384, 1 << 20, 1<<32 - 1}
	for _, x := range cases {
		buf := vbytePut(nil, x)
		got, n := vbyteGet(buf)
		if n != len(buf) || got != x {
			t.Errorf("vbyte(%d) round trip = %d (consumed %d of %d)", x, got, n, len(buf))
		}
	}
	if _, n := vbyteGet([]byte{0x80, 0x80}); n != 0 {
		t.Error("truncated vbyte should fail")
	}
	if _, n := vbyteGet(nil); n != 0 {
		t.Error("empty vbyte should fail")
	}
	// 5-byte overflow (> 32 bits of shifts)
	if _, n := vbyteGet([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}); n != 0 {
		t.Error("overlong vbyte should fail")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, blockSize - 1, blockSize, blockSize + 1, 3*blockSize + 7, 1000} {
		ps := randPostings(r, n)
		cl, err := Compress(ps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cl.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, cl.Len())
		}
		got, err := cl.Decompress()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decompressed %d", n, len(got))
		}
		for i := range got {
			if got[i] != ps[i] {
				t.Fatalf("n=%d: posting %d = %v, want %v", n, i, got[i], ps[i])
			}
		}
	}
}

func TestCompressRejectsBadInput(t *testing.T) {
	if _, err := Compress([]Posting{{Doc: 5, TF: 1}, {Doc: 5, TF: 1}}); err == nil {
		t.Error("duplicate docs should fail")
	}
	if _, err := Compress([]Posting{{Doc: 5, TF: 1}, {Doc: 3, TF: 1}}); err == nil {
		t.Error("out-of-order docs should fail")
	}
	if _, err := Compress([]Posting{{Doc: 5, TF: 0}}); err == nil {
		t.Error("zero TF should fail")
	}
}

func TestCompressionShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ps := randPostings(r, 10000)
	cl, err := Compress(ps)
	if err != nil {
		t.Fatal(err)
	}
	raw := len(ps) * 8
	if cl.Bytes() >= raw {
		t.Errorf("compressed %d ≥ raw %d", cl.Bytes(), raw)
	}
}

func TestSeekGEMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ps := randPostings(r, 5*blockSize+17)
	cl, err := Compress(ps)
	if err != nil {
		t.Fatal(err)
	}
	// reference: linear search over raw postings
	linear := func(target DocID) (DocID, bool) {
		for _, p := range ps {
			if p.Doc >= target {
				return p.Doc, true
			}
		}
		return 0, false
	}
	maxDoc := ps[len(ps)-1].Doc
	for trial := 0; trial < 400; trial++ {
		target := DocID(r.Intn(int(maxDoc) + 10))
		it := cl.Iterator()
		// random warm-up: advance or seek part way first
		if r.Intn(2) == 0 {
			mid := DocID(r.Intn(int(target) + 1))
			if err := it.SeekGE(mid); err != nil {
				t.Fatal(err)
			}
		}
		if err := it.SeekGE(target); err != nil {
			t.Fatal(err)
		}
		want, ok := linear(target)
		if ok != it.Valid() {
			t.Fatalf("target %d: valid=%v want %v", target, it.Valid(), ok)
		}
		if ok && it.Doc() != want {
			t.Fatalf("target %d: doc=%d want %d", target, it.Doc(), want)
		}
	}
}

func TestSeekGENeverMovesBackward(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ps := randPostings(r, 3*blockSize)
	cl, _ := Compress(ps)
	it := cl.Iterator()
	if err := it.SeekGE(ps[blockSize].Doc); err != nil {
		t.Fatal(err)
	}
	at := it.Doc()
	// seeking to an earlier target is a no-op
	if err := it.SeekGE(ps[0].Doc); err != nil {
		t.Fatal(err)
	}
	if it.Doc() != at {
		t.Errorf("backward seek moved iterator: %d → %d", at, it.Doc())
	}
}

func TestIteratorCorruptData(t *testing.T) {
	cl, _ := Compress([]Posting{{Doc: 1, TF: 2}, {Doc: 9, TF: 3}})
	cl.data = cl.data[:len(cl.data)-1] // truncate
	it := cl.Iterator()
	for it.Valid() {
		if err := it.Next(); err != nil {
			break
		}
	}
	if it.Err() == nil {
		t.Error("expected corruption error")
	}
	if _, err := cl.Decompress(); err == nil {
		t.Error("Decompress should surface corruption")
	}
}

func TestCompactAndConjunctive(t *testing.T) {
	docs, err := GenerateCorpus(CorpusConfig{Docs: 1200, Vocab: 500, ZipfS: 1.2, MeanDocLen: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	ci, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if ci.CompressedBytes() >= ci.UncompressedBytes() {
		t.Errorf("no compression: %d vs %d", ci.CompressedBytes(), ci.UncompressedBytes())
	}
	// brute-force AND reference via TAAT accumulation
	bruteAND := func(terms []string, k int) []ScoredDoc {
		tids := ix.resolveTerms(terms)
		if len(tids) == 0 {
			return nil
		}
		count := map[DocID]int{}
		score := map[DocID]float64{}
		for _, tid := range tids {
			idf := ix.idf(tid)
			for _, p := range ix.terms[tid].postings {
				count[p.Doc]++
				score[p.Doc] += ix.bm25(idf, p.TF, ix.docLen[p.Doc])
			}
		}
		var h resultHeap
		for doc, cnt := range count {
			if cnt == len(tids) {
				h.push(ScoredDoc{doc, score[doc]}, k)
			}
		}
		return h.sorted()
	}
	queries, _ := GenerateQueries(QueryConfig{Queries: 50, Vocab: 500, ZipfS: 1.05, MaxTerms: 3, Seed: 6})
	for qi, q := range queries {
		got, _ := ci.SearchConjunctive(q, 10)
		want := bruteAND(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d (%v): %d results, want %d", qi, q, len(got), len(want))
		}
		for i := range got {
			if got[i].Doc != want[i].Doc || !almostEqF(got[i].Score, want[i].Score) {
				t.Fatalf("query %d pos %d: %v vs %v", qi, i, got[i], want[i])
			}
		}
	}
	// empty / unknown / k=0
	if res, _ := ci.SearchConjunctive([]string{"zzz-unknown"}, 10); res != nil {
		t.Error("unknown term should return nothing")
	}
	if res, _ := ci.SearchConjunctive([]string{termName(1)}, 0); res != nil {
		t.Error("k=0 should return nothing")
	}
}

func almostEqF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := randPostings(r, r.Intn(600))
		cl, err := Compress(ps)
		if err != nil {
			return false
		}
		got, err := cl.Decompress()
		if err != nil || len(got) != len(ps) {
			return false
		}
		for i := range got {
			if got[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

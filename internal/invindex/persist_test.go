package invindex

import (
	"bytes"
	"testing"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	docs, err := GenerateCorpus(CorpusConfig{Docs: 500, Vocab: 400, ZipfS: 1.2, MeanDocLen: 25, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != ix.NumDocs() || got.NumTerms() != ix.NumTerms() ||
		got.NumPostings() != ix.NumPostings() {
		t.Fatalf("shape changed: docs %d/%d terms %d/%d postings %d/%d",
			got.NumDocs(), ix.NumDocs(), got.NumTerms(), ix.NumTerms(),
			got.NumPostings(), ix.NumPostings())
	}
	if got.AvgDocLen() != ix.AvgDocLen() {
		t.Errorf("avg doc len %v vs %v", got.AvgDocLen(), ix.AvgDocLen())
	}
	// query results identical
	queries, _ := GenerateQueries(QueryConfig{Queries: 30, Vocab: 400, ZipfS: 1.05, MaxTerms: 3, Seed: 22})
	for qi, q := range queries {
		a, _ := ix.SearchDAAT(q, 10)
		b, _ := got.SearchDAAT(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d pos %d: %v vs %v", qi, i, a[i], b[i])
			}
		}
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	ix := tinyIndex()
	path := t.TempDir() + "/index.rxix"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 3 {
		t.Error("file round trip lost docs")
	}
	if _, err := LoadIndexFile(path + ".missing"); err == nil {
		t.Error("expected missing-file error")
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	ix := tinyIndex()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("NOPE"), good[4:]...)},
		{"bad version", append(append([]byte{}, good[:4]...), 0xff, 0xff, 0xff, 0xff)},
		{"truncated mid-file", good[:len(good)/2]},
		{"truncated tail", good[:len(good)-1]},
	}
	for _, tc := range cases {
		if _, err := LoadIndex(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLoadIndexRejectsCorruptPostings(t *testing.T) {
	ix := tinyIndex()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// flip a byte near the end (inside some postings data) and expect a
	// structured error rather than a panic
	data[len(data)-2] ^= 0x55
	if _, err := LoadIndex(bytes.NewReader(data)); err == nil {
		t.Log("byte flip happened to decode cleanly; acceptable but rare")
	}
}

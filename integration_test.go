// Integration tests: full pipelines across packages, as a downstream user
// would wire them — generate → borrow exchange machines → solve → plan →
// simulate → persist/reload.
package rexchange

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"rexchange/internal/baseline"
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/invindex"
	"rexchange/internal/metrics"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

// TestEndToEndSyntheticPipeline runs the complete rebalancing pipeline on
// a generated instance and checks every cross-module contract.
func TestEndToEndSyntheticPipeline(t *testing.T) {
	gen := workload.DefaultConfig()
	gen.Machines = 24
	gen.Shards = 300
	gen.TargetFill = 0.85
	gen.Seed = 99
	inst, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	// borrow 3 exchange machines
	c := inst.Cluster
	ec := c.WithExchange(3, c.TotalCapacity().Scale(1/float64(c.NumMachines())), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Iterations = 600
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	// contract 1: balance improved
	if res.After.MaxUtil >= res.Before.MaxUtil {
		t.Errorf("no improvement: %.4f → %.4f", res.Before.MaxUtil, res.After.MaxUtil)
	}
	// contract 2: plan replays exactly onto the final placement
	got, err := res.Plan.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < ec.NumShards(); s++ {
		if got.Home(cluster.ShardID(s)) != res.Final.Home(cluster.ShardID(s)) {
			t.Fatalf("plan diverges at shard %d", s)
		}
	}
	// contract 3: compensation honored
	if len(res.Returned) != 3 {
		t.Fatalf("returned %d machines", len(res.Returned))
	}
	// contract 4: the schedule executes in the migration simulator
	mig, err := sim.SimulateMigration(p, res.Plan, sim.MigrationConfig{
		Bandwidth: 100, Concurrency: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mig.Steps != res.Plan.NumMoves() {
		t.Errorf("migration executed %d of %d moves", mig.Steps, res.Plan.NumMoves())
	}
	// contract 5: serving simulation sees the better balance
	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 20, BaseRate: 50, CostSigma: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{Cores: 2, WorkScale: 1.0 / (50 * res.Before.MaxUtil)}
	before, err := sim.Run(p, trace, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.Run(res.Final, trace, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if after.MaxBusy >= before.MaxBusy {
		t.Errorf("max busy did not drop: %.3f → %.3f", before.MaxBusy, after.MaxBusy)
	}
}

// TestPersistenceRoundTripPipeline saves a solved placement and reloads it
// into a second solve, as operators do between rebalancing rounds.
func TestPersistenceRoundTripPipeline(t *testing.T) {
	gen := workload.DefaultConfig()
	gen.Machines = 10
	gen.Shards = 100
	gen.Seed = 5
	inst, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "placement.json")
	if err := inst.Placement.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := cluster.LoadPlacementFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.Compute(inst.Placement)
	b := metrics.Compute(loaded)
	if math.Abs(a.MaxUtil-b.MaxUtil) > 1e-9 || a.Vacant != b.Vacant {
		t.Fatalf("metrics changed over round trip: %+v vs %+v", a, b)
	}
	cfg := core.DefaultConfig()
	cfg.Iterations = 200
	if _, err := core.New(cfg).Solve(loaded); err != nil {
		t.Fatal(err)
	}
}

// TestSearchToBalancePipeline goes from raw documents to a balanced
// cluster: index → profiles → placement → rebalance.
func TestSearchToBalancePipeline(t *testing.T) {
	docs, err := invindex.GenerateCorpus(invindex.CorpusConfig{
		Docs: 600, Vocab: 800, ZipfS: 1.2, MeanDocLen: 30, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	si, err := invindex.BuildSharded(docs, 24)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := invindex.GenerateQueries(invindex.QueryConfig{
		Queries: 60, Vocab: 800, ZipfS: 1.05, MaxTerms: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := si.ProfileShards(invindex.DefaultProfileConfig(queries))
	if err != nil {
		t.Fatal(err)
	}
	p, err := invindex.ClusterFromProfiles(shards, 6, 0.75, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Iterations = 300
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Error("profiled-cluster rebalance worsened balance")
	}
}

// TestBaselineAndSRAOnSameInstance checks the headline comparison holds on
// a tight instance with a generous SRA budget.
func TestBaselineAndSRAOnSameInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison needs a non-trivial solver budget")
	}
	gen := workload.DefaultConfig()
	gen.Machines = 30
	gen.Shards = 450
	gen.TargetFill = 0.9
	gen.Seed = 31
	inst, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	ls := baseline.LocalSearch(inst.Placement, baseline.Config{AllowSwaps: true})

	c := inst.Cluster
	ec := c.WithExchange(2, c.TotalCapacity().Scale(1/float64(c.NumMachines())), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Iterations = 1500
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MaxUtil > ls.After.MaxUtil*1.02 {
		t.Errorf("SRA (%.4f) worse than local search (%.4f) on a tight instance",
			res.After.MaxUtil, ls.After.MaxUtil)
	}
}

// TestMain keeps the environment deterministic for the benches that read
// REXCHANGE_FULL.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

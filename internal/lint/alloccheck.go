package lint

// AllocCheck certifies the zero-alloc hot path. A function declared
//
//	//rexlint:noalloc
//
// in its doc comment must be provably allocation-free on every reachable
// path, through every module-local callee. The summary engine (summary.go)
// supplies the proof obligations: allocation sites are make/new, slice and
// map literals, &composite literals, append (potential growth), string
// concatenation and copying conversions, capturing closures that escape,
// interface boxing, and goroutine spawns; stdlib callees allocate unless
// allowlisted; dynamic calls with no resolvable target are unprovable and
// reported as such. Violations name the allocating call chain
// ("via a → b") and the root site.
//
// Two sanctioned outs: `//rexlint:ignore alloccheck <reason>` on a leaf
// site waives it for the whole chain (amortized append growth into a
// pre-sized scratch buffer is the intended use), and debug-assertion
// blocks guarded by a named boolean constant are folded away entirely.
var AllocCheck = &Analyzer{
	Name: "alloccheck",
	Doc:  "require //rexlint:noalloc functions to be allocation-free on every path, callees included; name the allocating chain",
	Run:  runAllocCheck,
}

func runAllocCheck(pass *Pass) error {
	for _, node := range pass.Prog.NodesOf(pass.pkg()) {
		if !node.NoAlloc {
			continue
		}
		sum := pass.Prog.SummaryOf(node)
		if sum.Mask&EffAlloc != 0 {
			tr := sum.Alloc
			if tr == nil {
				tr = &Trace{Pos: node.Pos(), What: "allocation", EntryPos: node.Pos()}
			}
			if len(tr.Via) == 0 {
				pass.Reportf(tr.EntryPos, "%s is declared //rexlint:noalloc but allocates: %s", node.Name(), tr.What)
			} else {
				pass.Reportf(tr.EntryPos, "%s is declared //rexlint:noalloc but allocates: %s at %s%s",
					node.Name(), tr.What, pass.Fset.Position(tr.Pos), tr.Chain())
			}
		}
		if sum.Mask&EffUnknown != 0 {
			tr := sum.Unknown
			if tr == nil {
				tr = &Trace{Pos: node.Pos(), What: "dynamic call", EntryPos: node.Pos()}
			}
			pass.Reportf(tr.EntryPos, "%s is declared //rexlint:noalloc but cannot be proven: %s%s",
				node.Name(), tr.What, tr.Chain())
		}
	}
	return nil
}

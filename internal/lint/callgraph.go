package lint

// Module-local call graph over every package of a Program. Nodes are
// function bodies — declared functions, methods, and function literals —
// and edges are the call sites that can reach them:
//
//   - direct calls of package-level functions and methods resolve through
//     types.Info (static dispatch);
//   - calls through an interface method resolve to every module-local
//     named type whose method set implements the interface (go/types
//     method sets). The module is dependency-free by policy, so treating
//     module-local types as the universe of implementations is sound for
//     module-declared interfaces; calls through interfaces declared
//     outside the module stay conservative (unknown);
//   - a function literal is an edge target wherever it appears: invoked
//     directly, passed as a callback, launched with go, or deferred — the
//     caller is charged with its effects either way;
//   - method values (x.M used as a value) and method expressions (T.M)
//     edge to the method, again assuming the value is eventually invoked;
//   - `f := func() {...}; f()` resolves through a local single-assignment
//     binding; any other call through a function-typed value is recorded
//     as unknown, which the summary layer treats pessimistically.
//
// Standard-library callees are not graph nodes; call sites record their
// qualified names and the summary layer classifies them from a fixed
// effect table (summary.go).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// FuncNode is one function body in the call graph.
type FuncNode struct {
	// Fn is the declared *types.Func; nil for function literals.
	Fn *types.Func
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package

	// Recv is the named receiver object, nil for functions and literals.
	Recv types.Object
	// Params are the named parameter objects in signature order (blank
	// and unnamed parameters appear as nil).
	Params []types.Object
	// Enclosing is the node lexically containing a literal, nil otherwise.
	Enclosing *FuncNode
	// ClockExempt marks Clock-seam implementations (clockpurity's
	// exemption): their wall-clock reads do not taint callers.
	ClockExempt bool
	// NoAlloc marks functions declared `//rexlint:noalloc` in their doc
	// comment: alloccheck requires them allocation-free, callees included.
	NoAlloc bool
	// DeclaredPure marks functions declared `//rexlint:pure`: the purity
	// analyzer requires their summary free of observable side effects.
	DeclaredPure bool
	// TransferSink marks functions declared `//rexlint:transfer <reason>`
	// in their doc comment: passing an owned value to them is a sanctioned
	// ownership hand-off, not an escape.
	TransferSink bool

	// Calls are the node's resolved outgoing call sites in source order.
	Calls []CallSite
}

// Name renders the node for diagnostics: "pkg.Func", "(pkg.T).Method", or
// "func literal (line N)" for literals.
func (n *FuncNode) Name() string {
	if n.Fn != nil {
		if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + n.Pkg.Types.Name() + "." + recvTypeName(sig.Recv().Type()) + ")." + n.Fn.Name()
		}
		return n.Pkg.Types.Name() + "." + n.Fn.Name()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return "func literal (line " + strconv.Itoa(pos.Line) + ")"
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// recvTypeName strips pointers down to the named receiver type's name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// CallSite is one outgoing edge bundle: a call expression (or value use of
// a function) and every callee it can statically reach.
type CallSite struct {
	Pos token.Pos
	// Call is the call expression; nil when the edge comes from a value
	// use (callback argument, method value) assumed to be invoked later,
	// or from a function literal charged to its creator.
	Call *ast.CallExpr
	// RecvExpr is the receiver operand for method calls and method values
	// (the x of x.M), used to map callee receiver effects onto the
	// caller's own receiver, parameters, or globals.
	RecvExpr ast.Expr
	// Callees are the module-local candidate targets (several for
	// interface dispatch).
	Callees []*FuncNode
	// Std holds qualified standard-library callees, e.g. "time.Now" or
	// "(sync.Mutex).Unlock".
	Std []string
	// Unknown marks a dynamic call with no resolvable target; summaries
	// treat it as an arbitrary effect.
	Unknown bool
	// Async marks calls launched by a go statement: their effects happen
	// on another goroutine, so blocking does not block the caller.
	Async bool
}

// callGraph is the built graph plus its lookup indexes.
type callGraph struct {
	nodes     []*FuncNode // deterministic: package path, then file, then offset
	byFunc    map[*types.Func]*FuncNode
	byLit     map[*ast.FuncLit]*FuncNode
	calleesAt map[*ast.CallExpr][]*FuncNode
	named     []*types.TypeName // module-local non-interface named types
	modPkgs   map[*types.Package]bool
}

// buildCallGraph creates the nodes and edges for every function in pkgs.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		byFunc:    make(map[*types.Func]*FuncNode),
		byLit:     make(map[*ast.FuncLit]*FuncNode),
		calleesAt: make(map[*ast.CallExpr][]*FuncNode),
		modPkgs:   make(map[*types.Package]bool),
	}
	// Pass 1: nodes for every declared function, then every literal.
	for _, pkg := range pkgs {
		g.modPkgs[pkg.Types] = true
		clockIface := findClockInterface(pkg.Types)
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Body: fd.Body, Pkg: pkg}
				node.ClockExempt = clockExempt(pkg.Info, fd, clockIface)
				node.NoAlloc = len(funcDirective(fd, "noalloc")) > 0
				node.DeclaredPure = len(funcDirective(fd, "pure")) > 0
				node.TransferSink = len(funcDirective(fd, "transfer")) > 0
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					node.Recv = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
				}
				node.Params = paramObjects(pkg.Info, fd.Type)
				g.byFunc[fn] = node
				g.nodes = append(g.nodes, node)
				g.addLits(node, fd.Body)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			g.named = append(g.named, tn)
		}
	}
	// Pass 2: resolve edges, every node (declared or literal) uniformly.
	for _, n := range g.nodes {
		g.resolveCalls(n)
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		a, b := g.nodes[i], g.nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa, pb := a.Pkg.Fset.Position(a.Pos()), b.Pkg.Fset.Position(b.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	return g
}

// addLits registers a node for every function literal nested in body,
// recording lexical enclosure. A literal nested inside another literal
// encloses to the inner one.
func (g *callGraph) addLits(encl *FuncNode, block *ast.BlockStmt) {
	var walk func(owner *FuncNode, n ast.Node)
	walk = func(owner *FuncNode, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			node := &FuncNode{Lit: lit, Body: lit.Body, Pkg: owner.Pkg, Enclosing: owner}
			node.Params = paramObjects(owner.Pkg.Info, lit.Type)
			g.byLit[lit] = node
			g.nodes = append(g.nodes, node)
			walk(node, lit.Body)
			return false
		})
	}
	walk(encl, block)
}

// paramObjects returns the named parameter objects of a signature's field
// list, nil-padded for unnamed parameters.
func paramObjects(info *types.Info, ft *ast.FuncType) []types.Object {
	if ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// resolveCalls walks n's own statements (stopping at nested literals,
// which are their own nodes) and records call sites.
func (g *callGraph) resolveCalls(n *FuncNode) {
	info := n.Pkg.Info
	binds := localFuncBindings(info, n.Body, g.byLit)

	// Pre-collect context: which call expressions sit under a go statement,
	// and which selector expressions are the Fun of some call.
	async := map[*ast.CallExpr]bool{}
	callFun := map[ast.Expr]bool{}
	inspectShallow(n.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.GoStmt:
			async[s.Call] = true
		case *ast.CallExpr:
			callFun[ast.Unparen(s.Fun)] = true
		}
		return true
	})

	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			// The literal's body belongs to its own node; its creation is
			// an edge on the creator.
			if ln := g.byLit[s]; ln != nil {
				n.Calls = append(n.Calls, CallSite{Pos: s.Pos(), Callees: []*FuncNode{ln}})
			}
			return false
		case *ast.CallExpr:
			g.callSite(n, s, binds, async[s])
		case *ast.SelectorExpr:
			if !callFun[ast.Expr(s)] {
				g.methodValue(n, s)
			}
		}
		return true
	})
}

// localFuncBindings maps local objects bound exactly once as
// `f := func(){...}` (and never reassigned) to their literal's node, so a
// later f() resolves statically.
func localFuncBindings(info *types.Info, body *ast.BlockStmt, byLit map[*ast.FuncLit]*FuncNode) map[types.Object]*FuncNode {
	out := map[types.Object]*FuncNode{}
	dead := map[types.Object]bool{}
	inspectShallow(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			lit, isLit := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
			switch {
			case dead[obj]:
			case isLit && out[obj] == nil:
				if ln := byLit[lit]; ln != nil {
					out[obj] = ln
				}
			default: // reassigned, or non-literal value: ambiguous
				delete(out, obj)
				dead[obj] = true
			}
		}
		return true
	})
	return out
}

// callSite resolves one call expression into a CallSite on n.
func (g *callGraph) callSite(n *FuncNode, call *ast.CallExpr, binds map[types.Object]*FuncNode, async bool) {
	info := n.Pkg.Info
	site := CallSite{Pos: call.Pos(), Call: call, Async: async}
	fun := ast.Unparen(call.Fun)

	switch f := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[f].(type) {
		case *types.Func:
			g.addCallee(&site, o)
		case *types.Var:
			if ln, ok := binds[o]; ok {
				site.Callees = append(site.Callees, ln)
			} else {
				site.Unknown = true
			}
		default:
			// Builtin, conversion, or unresolved: builtins and conversions
			// are classified as local effects by the summary layer.
			return
		}
	case *ast.FuncLit:
		if ln := g.byLit[f]; ln != nil {
			site.Callees = append(site.Callees, ln)
		}
	case *ast.SelectorExpr:
		if _, isType := info.Uses[f.Sel].(*types.TypeName); isType {
			return // conversion pkg.T(x)
		}
		sel := info.Selections[f]
		if sel == nil {
			// Package-qualified function.
			if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
				g.addCallee(&site, fn)
			} else {
				return
			}
			break
		}
		site.RecvExpr = f.X
		switch sel.Kind() {
		case types.MethodVal:
			recv := sel.Recv()
			if iface, isIface := recv.Underlying().(*types.Interface); isIface {
				g.resolveInterface(&site, recv, iface, f.Sel.Name)
			} else if fn, ok := sel.Obj().(*types.Func); ok {
				g.addCallee(&site, fn)
			}
		case types.MethodExpr:
			if fn, ok := sel.Obj().(*types.Func); ok {
				g.addCallee(&site, fn)
			}
		default:
			site.Unknown = true // struct field of function type
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation, or indexing into a function table.
		if id, ok := indexeeIdent(fun); ok {
			if fn, okF := info.Uses[id].(*types.Func); okF {
				g.addCallee(&site, fn)
				break
			}
		}
		site.Unknown = true
	default:
		site.Unknown = true
	}

	if len(site.Callees) == 0 && len(site.Std) == 0 && !site.Unknown {
		return
	}
	if len(site.Callees) > 0 {
		g.calleesAt[call] = site.Callees
	}
	n.Calls = append(n.Calls, site)
}

// indexeeIdent unwraps X[...] to its base identifier when there is one.
func indexeeIdent(e ast.Expr) (*ast.Ident, bool) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		id, ok := ast.Unparen(x.X).(*ast.Ident)
		return id, ok
	case *ast.IndexListExpr:
		id, ok := ast.Unparen(x.X).(*ast.Ident)
		return id, ok
	}
	return nil, false
}

// addCallee attaches a resolved *types.Func: module-local functions become
// node edges, everything else is recorded by qualified name.
func (g *callGraph) addCallee(site *CallSite, fn *types.Func) {
	if node, ok := g.byFunc[fn]; ok {
		site.Callees = append(site.Callees, node)
		return
	}
	if fn.Pkg() == nil {
		return // error.Error and friends from the universe scope
	}
	site.Std = append(site.Std, qualifiedFuncName(fn))
}

// qualifiedFuncName renders fn as "path.F" or "(path.T).M" using the full
// import path, the key format of the stdlib effect table.
func qualifiedFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + fn.Pkg().Path() + "." + recvTypeName(sig.Recv().Type()) + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// resolveInterface finds every module-local named type implementing the
// interface and edges to its method. Interfaces declared outside the
// module may be satisfied by types we cannot see, so those calls stay
// unknown even when local candidates exist.
func (g *callGraph) resolveInterface(site *CallSite, recv types.Type, iface *types.Interface, method string) {
	moduleDeclared := false
	if named, ok := recv.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			moduleDeclared = g.modPkgs[pkg]
		}
	}
	for _, tn := range g.named {
		t := tn.Type()
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, tn.Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if node, okN := g.byFunc[fn]; okN {
				site.Callees = append(site.Callees, node)
			}
		}
	}
	if !moduleDeclared || len(site.Callees) == 0 {
		site.Unknown = true
	}
	sort.Slice(site.Callees, func(i, j int) bool {
		a, b := site.Callees[i], site.Callees[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Pos() < b.Pos()
	})
}

// methodValue records edges for method values and method expressions used
// outside call position (x.M passed as a callback): the method is assumed
// to be invoked eventually.
func (g *callGraph) methodValue(n *FuncNode, sel *ast.SelectorExpr) {
	s := n.Pkg.Info.Selections[sel]
	if s == nil || (s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr) {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	if node, okN := g.byFunc[fn]; okN {
		n.Calls = append(n.Calls, CallSite{Pos: sel.Pos(), RecvExpr: sel.X, Callees: []*FuncNode{node}})
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path    string // import path
	ModPath string // module path of the loader that produced it
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File // non-test files matching the build context
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and typechecks packages from source with no external
// dependencies and no network: module-local import paths resolve to
// directories under the module root, and everything else resolves to
// $GOROOT/src. This restricts rexlint to dependency-free modules — which
// this repository is, by policy — in exchange for a fully hermetic,
// offline driver.
//
// Standard-library imports are typechecked once per process, not once per
// Loader: every Loader shares the stdCache below, so a whole-repo
// `rexlint ./...` run (and equally the fixture test harness, which builds
// one Loader per fixture) pays for a single GOROOT pass. Imported
// packages are checked without a types.Info — analyzers only inspect the
// syntax of target packages, and skipping the Defs/Uses/Selections maps
// for the (much larger) import closure is the bulk of the loader's
// speedup.
type Loader struct {
	ModPath string // module path from go.mod
	ModDir  string // module root directory

	fset   *token.FileSet
	ctx    build.Context
	std    *stdCache
	pkgs   map[string]*Package
	parsed map[string][]*ast.File // dir → parsed files (expand + load share one parse)
}

// stdCache is one process-wide cache of typechecked standard-library (and
// $GOROOT/src/vendor) packages for one build-tag set. It uses its own
// FileSet (positions inside imported packages are never rendered in
// diagnostics). One coarse mutex serializes stdlib typechecking; recursive
// imports go through loadStdLocked directly so the lock is taken only at
// the outermost entry.
type stdCache struct {
	mu   sync.Mutex
	fset *token.FileSet
	ctx  build.Context
	pkgs map[string]*types.Package
}

// stdCaches holds one stdCache per build-tag key. Caches are keyed by the
// tags they were typechecked under: a `rexlint -tags debugasserts ./...`
// run after a default run must not reuse facts selected without the tag
// (stdlib file selection honors build constraints — netgo, purego, and
// friends — so sharing a cache across tag sets would be unsound even
// though this module's own tags never appear in GOROOT sources). Loaders
// with the same tag set still share one cache, so a whole-repo run pays
// for a single GOROOT pass per build mode.
var stdCaches = struct {
	mu    sync.Mutex
	byKey map[string]*stdCache
}{byKey: make(map[string]*stdCache)}

// stdCacheFor returns the shared stdlib cache for the given build tags,
// creating it on first use. The key is order-insensitive.
func stdCacheFor(tags []string) *stdCache {
	sorted := append([]string(nil), tags...)
	sort.Strings(sorted)
	key := strings.Join(sorted, ",")
	stdCaches.mu.Lock()
	defer stdCaches.mu.Unlock()
	if c, ok := stdCaches.byKey[key]; ok {
		return c
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	ctx.BuildTags = append([]string(nil), sorted...)
	c := &stdCache{
		fset: token.NewFileSet(),
		ctx:  ctx,
		pkgs: make(map[string]*types.Package),
	}
	stdCaches.byKey[key] = c
	return c
}

// NewLoader creates a Loader for the module rooted at modDir. The module
// path is read from go.mod.
func NewLoader(modDir string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		fset:    token.NewFileSet(),
		ctx:     ctx,
		std:     stdCacheFor(nil),
		pkgs:    make(map[string]*Package),
		parsed:  make(map[string][]*ast.File),
	}, nil
}

// SetBuildTags sets the build tags honored when selecting module files
// (e.g. "debugasserts"). Must be called before the first Load. The loader
// also switches to the shared stdlib cache keyed by the same tags, so
// facts typechecked under one tag set are never reused under another.
func (l *Loader) SetBuildTags(tags []string) {
	l.ctx.BuildTags = append([]string(nil), tags...)
	l.std = stdCacheFor(tags)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: read module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// moduleLocal reports whether path names this module or a package inside
// it.
func (l *Loader) moduleLocal(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// moduleDir resolves a module-local import path to its source directory.
func (l *Loader) moduleDir(path string) string {
	if path == l.ModPath {
		return l.ModDir
	}
	rest := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModDir, filepath.FromSlash(rest))
}

// stdDir resolves an import path under $GOROOT/src (or its vendor tree).
func (c *stdCache) stdDir(path string) (string, error) {
	dir := filepath.Join(c.ctx.GOROOT, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	// Dependencies vendored into the standard library (net/http pulls in
	// golang.org/x/... this way) live under $GOROOT/src/vendor.
	vdir := filepath.Join(c.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if st, err := os.Stat(vdir); err == nil && st.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (only module-local and standard-library imports are supported)", path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.moduleLocal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.loadStd(path)
}

// loadStd returns the cache's typechecked stdlib package for path.
func (c *stdCache) loadStd(path string) (*types.Package, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//rexlint:ignore lockcheck the parse fan-out under the lock is a bounded wait: parser goroutines never block and always terminate
	return c.loadStdLocked(path)
}

// loadStdLocked parses and typechecks one stdlib package (and, through the
// stdImporter, its import closure) under the cache lock. Imported
// packages are checked without a types.Info and with IgnoreFuncBodies:
// analyzers never inspect stdlib syntax or effects — call sites into the
// standard library are classified by name against known tables, not by
// analyzing stdlib bodies — so only the exported API shape matters, and
// skipping body checking cuts the dominant cost of a cold whole-module
// run. With bodies ignored go/types can no longer see body-only uses of
// imports and variables, so it raises spurious "imported and not used"
// diagnostics; those are soft errors by definition, and the handler below
// keeps only hard ones.
func (c *stdCache) loadStdLocked(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	dir, err := c.stdDir(path)
	if err != nil {
		return nil, err
	}
	files, err := parseGoDir(c.fset, &c.ctx, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var hard error
	conf := types.Config{
		Importer:         stdImporter{c},
		Sizes:            types.SizesFor(c.ctx.Compiler, c.ctx.GOARCH),
		IgnoreFuncBodies: true,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && te.Soft {
				return
			}
			if hard == nil {
				hard = err
			}
		},
	}
	tpkg, _ := conf.Check(path, c.fset, files, nil)
	if hard != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, hard)
	}
	c.pkgs[path] = tpkg
	return tpkg, nil
}

// stdImporter resolves the imports of stdlib packages while the cache lock
// is already held (stdlib only ever imports stdlib).
type stdImporter struct{ c *stdCache }

// Import implements types.Importer for the stdlib closure.
func (i stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.c.loadStdLocked(path)
}

// load parses and typechecks the module-local package at the given import
// path, memoizing the result.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if !l.moduleLocal(path) {
		return nil, fmt.Errorf("lint: %q is not a module-local package", path)
	}
	dir := l.moduleDir(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir typechecks a single directory under the given synthetic import
// path, without registering it for import by other packages. It is used by
// the analyzer test harness on testdata fixtures.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	return l.check(asPath, dir, files)
}

// check typechecks parsed files as one target package, with the full
// types.Info analyzers need.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(l.ctx.Compiler, l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path: path, ModPath: l.ModPath, Dir: dir,
		Fset: l.fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// parseDir parses the buildable non-test Go files of dir under the
// loader's build context, memoized so pattern expansion and loading share
// one parse.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	if files, ok := l.parsed[dir]; ok {
		return files, nil
	}
	files, err := parseGoDir(l.fset, &l.ctx, dir)
	if err != nil {
		return nil, err
	}
	l.parsed[dir] = files
	return files, nil
}

// parseGoDir parses the buildable non-test Go files of dir, honoring build
// constraints under the given build context. Files are parsed concurrently:
// token.FileSet is documented as safe for concurrent use, and parsing is
// the dominant cost of a cold stdlib pass once body typechecking is
// skipped. Results keep directory order so positions and declaration order
// stay deterministic run to run.
func parseGoDir(fset *token.FileSet, ctx *build.Context, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	return files, nil
}

// Packages returns every module-local package this loader has typechecked
// so far — the requested targets plus their module-local import closure —
// sorted by import path. The interprocedural engine builds its program
// over this set so call edges can cross package boundaries.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// Load resolves the given package patterns (import paths relative to the
// module root; a trailing "/..." matches the whole subtree) and returns the
// loaded packages in deterministic order. Directories named testdata or
// vendor and hidden directories are skipped.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns patterns into a sorted list of import paths that contain
// buildable Go files.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(importPath, dir string) error {
		if seen[importPath] {
			return nil
		}
		files, err := l.parseDir(dir)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil // test-only or empty directory
		}
		seen[importPath] = true
		out = append(out, importPath)
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		root := filepath.Join(l.ModDir, filepath.FromSlash(pat))
		if !recursive {
			importPath := l.ModPath
			if pat != "" {
				importPath += "/" + pat
			}
			if err := add(importPath, root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			rel, err := filepath.Rel(l.ModDir, p)
			if err != nil {
				return err
			}
			importPath := l.ModPath
			if rel != "." {
				importPath += "/" + filepath.ToSlash(rel)
			}
			return add(importPath, p)
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expand %q: %w", pat, err)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Command rextrace reconstructs causal traces from a JSONL event journal
// and analyzes them: per-phase critical paths, migration blame, and the
// slowest sampled queries.
//
// Usage:
//
//	rexsim -trace-sample 0.1 -events ev.jsonl ...    # produce a journal
//	rextrace -critical-path ev.jsonl.solve           # slowest chain per phase
//	rextrace -blame ev.jsonl.solve                   # delay per move / machine
//	rextrace -top 10 ev.jsonl.solve                  # worst sampled queries
//	rextrace ev.jsonl.solve                          # summary counts
//
// With no file argument the journal is read from stdin. All reports use
// fixed-format rendering and sorted iteration only, so for a
// deterministic journal the output is byte-identical across runs and
// GOMAXPROCS values — CI exploits this by diffing double runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rexchange/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rextrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		critical = flag.Bool("critical-path", false, "print the slowest sampled query's critical chain per migration phase")
		blame    = flag.Bool("blame", false, "aggregate query delay attributed to migration moves and machines")
		top      = flag.Int("top", 0, "print the N slowest sampled query traces")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close() //rexlint:ignore errignore read-only file; parse errors already surfaced
		in = f
	default:
		return fmt.Errorf("expected at most one journal path, got %d", flag.NArg())
	}

	events, err := obs.ReadJournal(in)
	if err != nil {
		return err
	}
	traces := obs.BuildTraces(events)

	ran := false
	if *critical {
		fmt.Print(obs.CriticalPath(traces))
		ran = true
	}
	if *blame {
		fmt.Print(obs.Blame(traces))
		ran = true
	}
	if *top > 0 {
		fmt.Print(obs.Top(traces, *top))
		ran = true
	}
	if !ran {
		spans, queries := 0, 0
		for _, tr := range traces {
			spans += len(tr.Spans)
			if tr.Root != nil && tr.Root.Op == obs.OpQuery {
				queries++
			}
		}
		fmt.Printf("%d events, %d traces (%d queries), %d spans\n",
			len(events), len(traces), queries, spans)
	}
	return nil
}

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// MachineTier describes one hardware generation in a heterogeneous fleet.
type MachineTier struct {
	Capacity vec.Vec // static capacity per machine of this tier
	Speed    float64 // load-serving speed
	Weight   float64 // relative share of the fleet
}

// Config parameterizes instance generation.
type Config struct {
	// Machines is the fleet size (excluding exchange machines, which are
	// added later via Cluster.WithExchange).
	Machines int
	// Tiers describes the hardware mix. Empty means one homogeneous tier
	// with capacity {100,100,100} and speed 1.
	Tiers []MachineTier

	// Shards is the shard population size.
	Shards int
	// SizeMu/SizeSigma parameterize lognormal shard memory size before
	// rescaling. Disk is DiskPerMem × memory; net is NetPerMem × memory.
	SizeMu, SizeSigma float64
	DiskPerMem        float64
	NetPerMem         float64
	// LoadSkew is the Zipf exponent of shard query loads (0 = uniform,
	// ~0.8-1.2 = realistic search-traffic skew).
	LoadSkew float64
	// LoadSizeCorr in [0,1] mixes size-proportional load with pure
	// popularity: load_i = corr·sizeShare_i + (1−corr)·zipfShare_i.
	LoadSizeCorr float64
	// MaxShardLoadFrac caps one shard's load at this fraction of an
	// average machine's speed (production engines replica-split hotter
	// shards; this model is single-copy). ≤0 defaults to 0.4; set very
	// large to disable.
	MaxShardLoadFrac float64
	// MaxShardSizeFrac caps one shard's static footprint at this fraction
	// of the smallest machine's capacity (engines split oversized shards
	// when indexes grow). ≤0 defaults to 0.25. Without the cap, heavy
	// lognormal tails make high-fill instances unpackable.
	MaxShardSizeFrac float64
	// Replicas expands every logical shard into this many replicas in one
	// anti-affinity group (distinct machines required), each carrying an
	// equal split of the logical shard's load and the full static
	// footprint. ≤1 means unreplicated. Shards counts logical shards;
	// the generated cluster has Shards×Replicas physical shards.
	Replicas int

	// TargetFill is the fraction of total static capacity occupied by
	// shards (the "stringency" of the environment; the paper's regime is
	// high fill, ≥ 0.8).
	TargetFill float64
	// TotalLoad is the cluster-wide query load; MeanUtil ends up at
	// TotalLoad / ΣSpeed. Zero defaults to 0.6 × ΣSpeed.
	TotalLoad float64

	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a medium synthetic instance configuration.
func DefaultConfig() Config {
	return Config{
		Machines:     100,
		Shards:       1500,
		SizeMu:       0,
		SizeSigma:    0.8,
		DiskPerMem:   2.0,
		NetPerMem:    0.5,
		LoadSkew:     0.9,
		LoadSizeCorr: 0.4,
		TargetFill:   0.8,
		Seed:         1,
	}
}

// RealisticConfig returns a configuration modeled on the stylized facts of
// production search clusters: three hardware generations, heavier size
// tails, stronger popularity skew, and very high fill. It is the stand-in
// for the paper's "real data from actual datacenters".
func RealisticConfig() Config {
	cfg := DefaultConfig()
	cfg.Machines = 200
	cfg.Shards = 4000
	cfg.SizeSigma = 1.1
	cfg.LoadSkew = 1.1
	cfg.LoadSizeCorr = 0.6
	cfg.TargetFill = 0.88
	cfg.Tiers = []MachineTier{
		{Capacity: vec.New(64, 512, 10), Speed: 1.0, Weight: 0.5},   // old gen
		{Capacity: vec.New(128, 1024, 25), Speed: 1.8, Weight: 0.3}, // mid gen
		{Capacity: vec.New(256, 2048, 40), Speed: 3.0, Weight: 0.2}, // new gen
	}
	return cfg
}

// validate normalizes and sanity-checks the configuration.
func (cfg *Config) validate() error {
	if cfg.Machines <= 0 {
		return fmt.Errorf("workload: Machines must be positive, got %d", cfg.Machines)
	}
	if cfg.Shards <= 0 {
		return fmt.Errorf("workload: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.TargetFill <= 0 || cfg.TargetFill >= 1 {
		return fmt.Errorf("workload: TargetFill must be in (0,1), got %g", cfg.TargetFill)
	}
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = []MachineTier{{Capacity: vec.New(100, 100, 100), Speed: 1, Weight: 1}}
	}
	for i, t := range cfg.Tiers {
		if t.Speed <= 0 || t.Weight <= 0 {
			return fmt.Errorf("workload: tier %d has non-positive speed/weight", i)
		}
	}
	if cfg.DiskPerMem <= 0 {
		cfg.DiskPerMem = 1
	}
	if cfg.NetPerMem <= 0 {
		cfg.NetPerMem = 1
	}
	return nil
}

// Instance is a generated problem: the cluster and an initial feasible (but
// load-imbalanced) placement, as a rebalancer would observe it.
type Instance struct {
	Cluster   *cluster.Cluster
	Placement *cluster.Placement
	Config    Config
}

// Generate builds an instance from cfg. The initial placement is produced
// by a static-space best-fit that ignores load — mimicking incremental
// index growth — so it is statically feasible yet load-imbalanced, which is
// exactly the state the paper's rebalancer starts from.
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	c := &cluster.Cluster{}
	// --- machines: deal tiers proportionally, then shuffle identities.
	tierOf := dealTiers(r, cfg.Machines, cfg.Tiers)
	for m := 0; m < cfg.Machines; m++ {
		t := cfg.Tiers[tierOf[m]]
		c.Machines = append(c.Machines, cluster.Machine{
			ID:       cluster.MachineID(m),
			Name:     fmt.Sprintf("m%03d", m),
			Capacity: t.Capacity,
			Speed:    t.Speed,
		})
	}

	// --- shard sizes: lognormal memory, correlated disk/net, rescaled so
	// the total static demand hits TargetFill of total capacity in the
	// tightest dimension.
	rawMem := make([]float64, cfg.Shards)
	for i := range rawMem {
		rawMem[i] = LogNormal(r, cfg.SizeMu, cfg.SizeSigma)
	}
	totCap := c.TotalCapacity()
	// per-dimension multiplier on memory units
	dimMul := vec.New(1, cfg.DiskPerMem, cfg.NetPerMem)
	var rawTotal vec.Vec
	for _, m := range rawMem {
		rawTotal = rawTotal.Add(dimMul.Scale(m))
	}
	// scale so that max_d rawTotal[d]*scale / totCap[d] == TargetFill,
	// accounting for each logical shard being materialized Replicas times.
	repScale := 1.0
	if cfg.Replicas > 1 {
		repScale = float64(cfg.Replicas)
	}
	scale := cfg.TargetFill / (repScale * rawTotal.MaxRatio(totCap))
	for i := range rawMem {
		rawMem[i] *= scale
	}
	// cap oversized shards (in memory units; all dims scale together via
	// dimMul), water-filling the excess to preserve total fill.
	sizeFrac := cfg.MaxShardSizeFrac
	if sizeFrac <= 0 {
		sizeFrac = 0.25
	}
	memCap := math.Inf(1)
	for m := range c.Machines {
		for d := 0; d < vec.NumResources; d++ {
			if dimMul[d] <= 0 {
				continue
			}
			if lim := c.Machines[m].Capacity[d] / dimMul[d]; lim < memCap {
				memCap = lim
			}
		}
	}
	if err := capLoads(rawMem, sizeFrac*memCap); err != nil {
		return nil, fmt.Errorf("workload: shard sizes cannot fit under cap: %w", err)
	}

	// --- shard loads: Zipf popularity blended with size share.
	zipf := ZipfWeights(cfg.Shards, cfg.LoadSkew)
	// Popularity rank should not align with generation order; permute.
	perm := Shuffled(r, cfg.Shards)
	memTotal := 0.0
	for _, m := range rawMem {
		memTotal += m
	}
	totalLoad := cfg.TotalLoad
	if totalLoad <= 0 {
		totalLoad = 0.6 * c.TotalSpeed()
	}
	corr := clamp(cfg.LoadSizeCorr, 0, 1)
	loads := make([]float64, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		share := corr*(rawMem[i]/memTotal) + (1-corr)*zipf[perm[i]]
		loads[i] = share * totalLoad
	}
	maxFrac := cfg.MaxShardLoadFrac
	if maxFrac <= 0 {
		maxFrac = 0.4
	}
	if err := capLoads(loads, maxFrac*c.TotalSpeed()/float64(cfg.Machines)); err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	if replicas > cfg.Machines {
		return nil, fmt.Errorf("workload: %d replicas cannot be spread over %d machines",
			replicas, cfg.Machines)
	}
	for i := 0; i < cfg.Shards; i++ {
		for rep := 0; rep < replicas; rep++ {
			id := cluster.ShardID(len(c.Shards))
			sh := cluster.Shard{
				ID:     id,
				Name:   fmt.Sprintf("s%05d", i),
				Static: dimMul.Scale(rawMem[i]),
				Load:   loads[i] / float64(replicas),
			}
			if replicas > 1 {
				sh.Name = fmt.Sprintf("s%05d-r%d", i, rep)
				sh.Group = i + 1
			}
			c.Shards = append(c.Shards, sh)
		}
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid cluster: %w", err)
	}

	p, err := initialPlacement(r, c)
	if err != nil {
		return nil, err
	}
	return &Instance{Cluster: c, Placement: p, Config: cfg}, nil
}

// capLoads water-fills loads under a per-shard cap, preserving the total:
// excess above the cap is redistributed proportionally onto shards with
// headroom, iterating until it drains. Production shards are replica-split
// before they dominate a whole machine; this reproduces that invariant.
// When the population is too small for the cap to be satisfiable (tiny
// instances), the cap is relaxed to the minimum feasible level.
func capLoads(loads []float64, cap float64) error {
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if minCap := total / (0.98 * float64(len(loads))); cap < minCap {
		cap = minCap
	}
	for iter := 0; iter < 50; iter++ {
		excess := 0.0
		headroom := 0.0
		for _, l := range loads {
			if l > cap {
				excess += l - cap
			} else {
				headroom += cap - l
			}
		}
		if excess < 1e-12*total {
			return nil
		}
		for i, l := range loads {
			if l > cap {
				loads[i] = cap
			} else {
				loads[i] = l + excess*(cap-l)/headroom
			}
		}
	}
	return nil
}

// PerturbLoads returns a copy of c whose shard loads are multiplied by
// lognormal noise (popularity drift between rebalancing rounds) and
// renormalized so the cluster-wide total load is unchanged. Replica groups
// drift together: all replicas of a logical shard keep equal loads.
func PerturbLoads(c *cluster.Cluster, sigma float64, seed int64) *cluster.Cluster {
	r := rand.New(rand.NewSource(seed))
	nc := &cluster.Cluster{
		Machines: c.Machines,
		Shards:   append([]cluster.Shard(nil), c.Shards...),
	}
	// one multiplier per group (or per shard when ungrouped)
	mult := map[int]float64{}
	oldTotal, newTotal := 0.0, 0.0
	for i := range nc.Shards {
		sh := &nc.Shards[i]
		oldTotal += sh.Load
		m := 0.0
		if sh.Group != 0 {
			var ok bool
			if m, ok = mult[sh.Group]; !ok {
				m = LogNormal(r, 0, sigma)
				mult[sh.Group] = m
			}
		} else {
			m = LogNormal(r, 0, sigma)
		}
		sh.Load *= m
		newTotal += sh.Load
	}
	if newTotal > 0 {
		k := oldTotal / newTotal
		for i := range nc.Shards {
			nc.Shards[i].Load *= k
		}
	}
	// Re-apply the per-shard load cap: engines split shards whose
	// popularity outgrows a machine, so compounding drift must not create
	// un-placeable hot shards. Per-group equality survives because equal
	// loads receive equal water-fill adjustments.
	loads := make([]float64, len(nc.Shards))
	for i := range nc.Shards {
		loads[i] = nc.Shards[i].Load
	}
	if err := capLoads(loads, 0.4*nc.TotalSpeed()/float64(len(nc.Machines))); err == nil {
		for i := range nc.Shards {
			nc.Shards[i].Load = loads[i]
		}
	}
	return nc
}

// dealTiers assigns a tier index to each machine, proportional to weights,
// with a random shuffle.
func dealTiers(r *rand.Rand, n int, tiers []MachineTier) []int {
	wsum := 0.0
	for _, t := range tiers {
		wsum += t.Weight
	}
	out := make([]int, 0, n)
	for ti := range tiers {
		cnt := int(float64(n) * tiers[ti].Weight / wsum)
		for i := 0; i < cnt; i++ {
			out = append(out, ti)
		}
	}
	for len(out) < n { // rounding remainder goes to the first tier
		out = append(out, 0)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[:n]
}

// initialPlacement packs shards by static best-fit in random arrival order,
// ignoring load. Mimics organic index growth: feasible statically,
// imbalanced in load.
func initialPlacement(r *rand.Rand, c *cluster.Cluster) (*cluster.Placement, error) {
	p := cluster.NewPlacement(c)
	order := Shuffled(r, c.NumShards())
	// Pre-sort a machine index by capacity so ties break deterministically.
	machs := make([]cluster.MachineID, c.NumMachines())
	for i := range machs {
		machs[i] = cluster.MachineID(i)
	}
	for _, si := range order {
		s := cluster.ShardID(si)
		static := c.Shards[si].Static
		// best-fit: machine with minimal remaining slack (in the max
		// dimension) that still fits.
		best := cluster.Unassigned
		bestSlack := -1.0
		for _, m := range machs {
			if !p.CanPlace(s, m) {
				continue
			}
			free := p.Free(m).Sub(static)
			slack := free.MaxRatio(c.Machines[m].Capacity)
			if best == cluster.Unassigned || slack < bestSlack {
				best, bestSlack = m, slack
			}
		}
		if best == cluster.Unassigned {
			return nil, fmt.Errorf("workload: shard %d (static %v) does not fit anywhere; lower TargetFill", si, static)
		}
		if err := p.Place(s, best); err != nil {
			return nil, err
		}
	}
	// Randomized best-fit is *too* good at spreading load when loads are
	// near-uniform; shuffle some load-heavy shards together to recreate the
	// organic hotspot pattern rebalancers see in practice.
	injectHotspots(r, p)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// injectHotspots concentrates some of the hottest shards onto a few
// machines (subject to static feasibility), creating the load skew the
// rebalancer must fix.
func injectHotspots(r *rand.Rand, p *cluster.Placement) {
	c := p.Cluster()
	n := c.NumShards()
	if n < 4 || c.NumMachines() < 4 {
		return
	}
	// hottest 10% of shards
	hot := make([]cluster.ShardID, n)
	for i := range hot {
		hot[i] = cluster.ShardID(i)
	}
	sort.Slice(hot, func(i, j int) bool { return c.Shards[hot[i]].Load > c.Shards[hot[j]].Load })
	hot = hot[:n/10+1]
	// target machines: a random 15% of the fleet
	nTargets := c.NumMachines()/7 + 1
	targets := Shuffled(r, c.NumMachines())[:nTargets]
	for i, s := range hot {
		m := cluster.MachineID(targets[i%len(targets)])
		if p.Home(s) == m {
			continue
		}
		p.MoveChecked(s, m) // best-effort: skip if it doesn't fit
	}
}

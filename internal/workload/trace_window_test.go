package workload

import "testing"

func TestTraceWindow(t *testing.T) {
	tr := &Trace{
		Duration: 10,
		Queries: []Query{
			{At: 0, Cost: 1},
			{At: 2, Cost: 2},
			{At: 5, Cost: 3},
			{At: 5, Cost: 4}, // duplicate timestamp
			{At: 9.5, Cost: 5},
		},
	}

	w := tr.Window(2, 5)
	// the start boundary is inclusive, the end boundary exclusive
	if len(w.Queries) != 1 || w.Queries[0].Cost != 2 {
		t.Fatalf("Window(2,5) = %+v, want only the query at t=2", w.Queries)
	}
	if w.Queries[0].At != 0 {
		t.Fatalf("Window(2,5) query rebased to %g, want 0", w.Queries[0].At)
	}
	if w.Duration != 3 {
		t.Fatalf("Window(2,5) duration %g, want 3", w.Duration)
	}

	// both duplicates at the inclusive boundary are kept
	w = tr.Window(5, 10)
	if len(w.Queries) != 3 {
		t.Fatalf("Window(5,10) has %d queries, want 3", len(w.Queries))
	}
	if w.Queries[0].At != 0 || w.Queries[2].At != 4.5 {
		t.Fatalf("Window(5,10) not rebased: %+v", w.Queries)
	}

	// the whole trace, and windows past either end
	if w = tr.Window(0, 10); len(w.Queries) != 5 || w.Duration != 10 {
		t.Fatalf("Window(0,10) = %+v", w)
	}
	if w = tr.Window(-5, 0); len(w.Queries) != 0 || w.Duration != 5 {
		t.Fatalf("Window(-5,0) = %+v", w)
	}
	if w = tr.Window(10, 20); len(w.Queries) != 0 {
		t.Fatalf("Window(10,20) = %+v", w)
	}

	// empty and inverted windows yield an empty trace
	if w = tr.Window(3, 3); len(w.Queries) != 0 || w.Duration != 0 {
		t.Fatalf("Window(3,3) = %+v", w)
	}
	if w = tr.Window(7, 2); len(w.Queries) != 0 || w.Duration != 0 {
		t.Fatalf("Window(7,2) = %+v", w)
	}
}

func TestTraceWindowDoesNotAliasParent(t *testing.T) {
	tr := &Trace{Duration: 4, Queries: []Query{{At: 1, Cost: 1}, {At: 2, Cost: 2}}}
	w := tr.Window(1, 3)
	w.Queries[0].Cost = 99
	if tr.Queries[0].Cost != 1 {
		t.Fatal("Window mutated the parent trace")
	}
}

package invindex_test

import (
	"fmt"

	"rexchange/internal/invindex"
)

// Example indexes three documents and runs a BM25 disjunctive query with
// the DAAT/MaxScore evaluator.
func Example() {
	ix := invindex.NewIndex()
	ix.Add([]string{"shard", "load", "balance"})
	ix.Add([]string{"resource", "exchange", "machine"})
	ix.Add([]string{"shard", "exchange", "shard"})

	results, stats := ix.SearchDAAT([]string{"shard", "exchange"}, 2)
	for i, r := range results {
		fmt.Printf("%d. doc %d (%.3f)\n", i+1, r.Doc, r.Score)
	}
	fmt.Printf("docs scored: %d\n", stats.DocsScored)
	// Output:
	// 1. doc 2 (1.116)
	// 2. doc 0 (0.470)
	// docs scored: 3
}

// Package linttest is a miniature analysistest: it runs one lint.Analyzer
// over a fixture package in testdata/src and checks the reported
// diagnostics against `// want "regexp"` comments in the fixture source.
//
// Every line carrying a want comment must produce a matching diagnostic,
// every diagnostic must be claimed by a want comment, and multiple want
// comments on one line demand multiple diagnostics. Fixture packages must
// typecheck (with stdlib-only imports); rexlint's own suppression
// directives work inside fixtures, so the harness also covers them.
package linttest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rexchange/internal/lint"
)

// wantRe extracts the expectation patterns from a // want "..." comment.
// Several backquote- or quote-delimited patterns may follow one want.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one want pattern at a line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> as a package and checks analyzer a
// against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader := NewLoader(t)
	pkg, err := loader.LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}

	// Strip the driver-policy scope: fixtures always run the analyzer.
	unscoped := *a
	unscoped.AppliesTo = nil
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}

	wants := collectWants(t, dir)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// NewLoader builds a loader rooted at the repository's module (found by
// walking up from the package directory to go.mod).
func NewLoader(t *testing.T) *lint.Loader {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above working directory")
		}
		dir = parent
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// collectWants parses every fixture file's comments for want expectations.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: path, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation on the diagnostic's line that
// matches its message, reporting success.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line {
			continue
		}
		if filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

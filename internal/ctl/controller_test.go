package ctl

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

func TestPolicyShouldSolve(t *testing.T) {
	p := Policy{HighWater: 1.25, LowWater: 1.10, Cooldown: 30}
	cases := []struct {
		name                string
		imb                 float64
		campaign, migrating bool
		now, lastAt         float64
		everSolved          bool
		want                bool
	}{
		{"below band idle", 1.05, false, false, 100, 0, false, false},
		{"above high triggers", 1.30, false, false, 100, 0, false, true},
		{"above high supersedes migration", 1.30, true, true, 100, 0, false, true},
		{"mid band no campaign", 1.15, false, false, 100, 0, false, false},
		{"mid band campaign continues", 1.15, true, false, 100, 0, false, true},
		{"mid band never supersedes", 1.15, true, true, 100, 0, false, false},
		{"at low water stops", 1.10, true, false, 100, 0, false, false},
		{"cooldown gates", 1.50, true, false, 100, 80, true, false},
		{"cooldown expired", 1.50, true, false, 100, 60, true, true},
		{"first solve ignores cooldown", 1.50, false, false, 5, 0, false, true},
	}
	for _, tc := range cases {
		got := p.ShouldSolve(tc.imb, tc.campaign, tc.migrating, tc.now, tc.lastAt, tc.everSolved)
		if got != tc.want {
			t.Errorf("%s: ShouldSolve = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{HighWater: 1.2, LowWater: 0.9},
		{HighWater: 1.1, LowWater: 1.2},
		{HighWater: 1.2, LowWater: 1.1, Cooldown: -1},
	}
	for _, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("policy %+v validated", p)
		}
	}
	if err := DefaultPolicy().validate(); err != nil {
		t.Fatal(err)
	}
}

// scriptSource plays back a fixed sequence of load snapshots.
type scriptSource struct {
	rows [][]float64
	i    int
}

func (s *scriptSource) Next(t0, t1 float64) ([]float64, error) {
	row := s.rows[len(s.rows)-1]
	if s.i < len(s.rows) {
		row = s.rows[s.i]
	}
	s.i++
	return append([]float64(nil), row...), nil
}

// e2eConfig is the shared scenario used by the convergence, determinism,
// and failure-injection tests: a generated fleet under diurnal intensity
// and per-window popularity drift on the virtual clock.
func e2eConfig(t *testing.T, machines, shards int, seed int64) (Config, *cluster.Placement, *TraceDriftSource) {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Machines = machines
	wcfg.Shards = shards
	wcfg.TargetFill = 0.82
	wcfg.Seed = seed
	inst, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 120, BaseRate: 50, DiurnalAmp: 0.5, Period: 120,
		CostMu: 0, CostSigma: 0.5, Seed: seed + 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceDriftSource(inst.Placement.Cluster(), tr, 0.03, seed+101)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = 10
	cfg.Policy = Policy{HighWater: 1.25, LowWater: 1.10}
	cfg.Budget = Budget{Iterations: 400, Restarts: 2, SolveSeconds: 1}
	cfg.Exec.Migration = sim.MigrationConfig{Bandwidth: 250, Concurrency: 8}
	cfg.Seed = seed
	return cfg, inst.Placement, src
}

// convergedImbalance returns the lowest imbalance observed at or after the
// first solved round (the trajectory's converged level), or +Inf when no
// round solved. Later windows may drift back into the dead band — that is
// hysteresis working as designed — so convergence is judged on the
// trajectory, not only the final sample.
func convergedImbalance(hist []RoundStat) float64 {
	low := math.Inf(1)
	solved := false
	for _, st := range hist {
		solved = solved || st.Solved
		if solved && st.Imbalance < low {
			low = st.Imbalance
		}
	}
	return low
}

// TestControllerConvergesUnderDrift is the headline end-to-end scenario: a
// 200-machine fleet starts load-imbalanced, the controller detects the
// high-water crossing, re-solves under budget, migrates asynchronously, and
// the observed imbalance converges below the low-water mark. Under
// -tags debugasserts every executor commit re-validates placement
// invariants and the transient constraint.
func TestControllerConvergesUnderDrift(t *testing.T) {
	cfg, p, src := e2eConfig(t, 200, 2400, 5)
	clock := NewVirtualClock()
	c, err := New(cfg, clock, p, src)
	if err != nil {
		t.Fatal(err)
	}
	if imb := c.Report().Imbalance; imb < cfg.Policy.HighWater {
		t.Fatalf("scenario too tame: initial imbalance %.3f below high water", imb)
	}
	const rounds = 12
	if err := c.Run(rounds); err != nil {
		t.Fatal(err)
	}

	hist := c.History()
	if len(hist) != rounds {
		t.Fatalf("got %d round stats, want %d", len(hist), rounds)
	}
	solves := 0
	for _, st := range hist {
		if st.Err != "" {
			t.Fatalf("round %d recorded error: %s", st.Round, st.Err)
		}
		if st.Solved {
			solves++
		}
	}
	if solves == 0 {
		t.Fatal("controller never solved despite high imbalance")
	}
	if conv := convergedImbalance(hist); conv > cfg.Policy.LowWater {
		t.Fatalf("trajectory never reached low water %.2f (best post-solve %.4f, history: %+v)",
			cfg.Policy.LowWater, conv, hist)
	}
	final := c.Report()
	if final.Imbalance >= cfg.Policy.HighWater {
		t.Fatalf("final imbalance %.4f escaped back above high water (history: %+v)",
			final.Imbalance, hist)
	}
	ctr := c.ExecCounters()
	if ctr.Completed == 0 || !c.Status().Executor.Done {
		t.Fatalf("migration did not drain: %+v", ctr)
	}
	if ctr.PeakParallel > cfg.Exec.Migration.Concurrency {
		t.Fatalf("peak parallel %d exceeds bound %d", ctr.PeakParallel, cfg.Exec.Migration.Concurrency)
	}
	live := c.SnapshotPlacement()
	if err := live.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerTrajectoryDeterministic pins the bit-identical round
// trajectory across GOMAXPROCS: parallel restarts inside the solver must
// not leak scheduling nondeterminism into the control loop.
func TestControllerTrajectoryDeterministic(t *testing.T) {
	runAt := func(procs int) []RoundStat {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg, p, src := e2eConfig(t, 80, 960, 11)
		cfg.Budget = Budget{Iterations: 150, Restarts: 3, SolveSeconds: 1}
		c, err := New(cfg, NewVirtualClock(), p, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(6); err != nil {
			t.Fatal(err)
		}
		return c.History()
	}
	one := runAt(1)
	many := runAt(4)
	if !reflect.DeepEqual(one, many) {
		t.Fatalf("trajectory differs across GOMAXPROCS:\n 1: %+v\n 4: %+v", one, many)
	}
}

// TestControllerRetriesInjectedFailures injects deterministic copy failures
// and checks the rounds still complete: failed copies back off, retry, and
// the plan drains.
func TestControllerRetriesInjectedFailures(t *testing.T) {
	cfg, p, src := e2eConfig(t, 100, 1200, 3)
	cfg.Exec.MaxAttempts = 6
	cfg.Exec.BackoffBase = 0.05
	cfg.Exec.Failure = func(mv plan.Move, attempt int) bool {
		return attempt == 1 && mv.S%7 == 0 // every 7th shard fails its first copy
	}
	c, err := New(cfg, NewVirtualClock(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(12); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.History() {
		if st.Err != "" {
			t.Fatalf("round %d recorded error: %s", st.Round, st.Err)
		}
	}
	ctr := c.ExecCounters()
	if ctr.Failures == 0 {
		t.Fatal("failure injection never fired")
	}
	if !c.Status().Executor.Done {
		t.Fatalf("plan did not drain despite retries: %+v", ctr)
	}
	if conv := convergedImbalance(c.History()); conv > cfg.Policy.LowWater {
		t.Fatalf("trajectory never reached low water despite retries (best %.4f)", conv)
	}
}

// TestControllerSupersedesPlan scripts two successive load spikes with slow
// migration: the second spike must supersede the still-migrating first
// plan (aborting its in-flight copy) rather than queue behind it.
func TestControllerSupersedesPlan(t *testing.T) {
	nm, ns := 8, 16
	caps := make([]float64, nm)
	for i := range caps {
		caps[i] = 10
	}
	statics := make([]float64, ns)
	for i := range statics {
		statics[i] = 2
	}
	c := mkCluster(caps, statics)
	assign := make([]cluster.MachineID, ns)
	for s := range assign {
		assign[s] = cluster.MachineID(s / 2)
	}
	p := mustPlacement(t, c, assign)

	spike := func(hot ...int) []float64 {
		row := make([]float64, ns)
		for i := range row {
			row[i] = 0.5
		}
		for _, s := range hot {
			row[s] = 8
		}
		return row
	}
	src := &scriptSource{rows: [][]float64{
		spike(0, 1), // round 0: machine 0 melts → solve
		spike(2, 3), // round 1: machine 1 melts → supersede
		spike(2, 3),
	}}

	cfg := DefaultConfig()
	cfg.Window = 10
	cfg.Policy = Policy{HighWater: 1.5, LowWater: 1.2}
	cfg.Budget = Budget{Iterations: 200, Restarts: 1}
	// one slow copy at a time: 2 disk units / 0.04 = 50s per move,
	// far longer than the 10s window, so round 1 arrives mid-migration
	cfg.Exec.Migration = sim.MigrationConfig{Bandwidth: 0.04, Concurrency: 1}
	cfg.Seed = 9

	ctl, err := New(cfg, NewVirtualClock(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Run(3); err != nil {
		t.Fatal(err)
	}
	hist := ctl.History()
	if !hist[0].Solved || !hist[1].Solved {
		t.Fatalf("expected solves in rounds 0 and 1: %+v", hist)
	}
	ctr := ctl.ExecCounters()
	if ctr.Aborted == 0 {
		t.Fatalf("second spike did not abort the in-flight move: %+v", ctr)
	}
	if err := ctl.SnapshotPlacement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRejectsBadSnapshots(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{2, 2})
	p := mustPlacement(t, c, []cluster.MachineID{0, 1})
	cases := [][]float64{
		{1},              // wrong length
		{1, -3},          // negative
		{1, math.NaN()},  // NaN
		{1, math.Inf(1)}, // Inf
	}
	for i, row := range cases {
		cfg := DefaultConfig()
		ctl, err := New(cfg, NewVirtualClock(), p, &scriptSource{rows: [][]float64{row}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Run(1); err == nil {
			t.Errorf("case %d: bad snapshot %v accepted", i, row)
		}
	}
}

func TestTraceDriftSourceDeterministicAndWrapping(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.Machines = 10
	wcfg.Shards = 60
	inst, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 30, BaseRate: 40, DiurnalAmp: 0.7, Period: 30, CostSigma: 0.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *TraceDriftSource {
		s, err := NewTraceDriftSource(inst.Cluster, tr, 0.1, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for w := 0; w < 8; w++ { // windows 0..8×12s run well past the 30s trace
		t0, t1 := float64(w)*12, float64(w+1)*12
		la, err := a.Next(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.Next(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("window %d: identical sources diverged", w)
		}
		for i, l := range la {
			if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("window %d shard %d: bad load %g", w, i, l)
			}
		}
	}
	if _, err := mk().Next(5, 3); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	if now := c.Now(); now != 0 {
		t.Fatalf("fresh clock at %g", now)
	}
	c.Sleep(2.5)
	c.Sleep(-1) // negative sleeps are no-ops
	c.Sleep(0)
	if now := c.Now(); now != 2.5 {
		t.Fatalf("clock at %g, want 2.5", now)
	}
}

func ExamplePolicy() {
	p := DefaultPolicy()
	fmt.Println(p.ShouldSolve(1.30, false, false, 0, 0, false))
	fmt.Println(p.ShouldSolve(1.05, false, false, 0, 0, false))
	// Output:
	// true
	// false
}

// TestControllerPartitionedSolve runs the control loop end-to-end with the
// partitioned parallel solver (Budget.Partitions > 1): the fleet's three
// hardware tiers become resource-equivalence partitions, each solve round
// splits the iteration budget across them, and the trajectory must both
// converge and stay bit-identical across GOMAXPROCS — the partitioned
// path's concurrency must be as unobservable as the restart portfolio's.
func TestControllerPartitionedSolve(t *testing.T) {
	runAt := func(procs int) (float64, []RoundStat) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg, p, src := e2eConfig(t, 120, 1440, 17)
		cfg.Budget = Budget{Iterations: 400, Partitions: 4, ExchangeRounds: 1, SolveSeconds: 1}
		c, err := New(cfg, NewVirtualClock(), p, src)
		if err != nil {
			t.Fatal(err)
		}
		initial := c.Report().Imbalance
		if err := c.Run(10); err != nil {
			t.Fatal(err)
		}
		live := c.SnapshotPlacement()
		if err := live.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return initial, c.History()
	}

	initial, hist := runAt(1)
	solves := 0
	for _, st := range hist {
		if st.Err != "" {
			t.Fatalf("round %d recorded error: %s", st.Round, st.Err)
		}
		if st.Solved {
			solves++
		}
	}
	if solves == 0 {
		t.Fatal("partitioned controller never solved")
	}
	if conv := convergedImbalance(hist); conv >= initial {
		t.Fatalf("partitioned solves never improved imbalance: initial %.4f, best post-solve %.4f",
			initial, conv)
	}

	_, histMany := runAt(4)
	if !reflect.DeepEqual(hist, histMany) {
		t.Fatalf("partitioned trajectory differs across GOMAXPROCS:\n 1: %+v\n 4: %+v", hist, histMany)
	}
}

package core

import (
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// benchInstance builds an instance for solver benchmarks.
func benchInstance(b *testing.B, machines, shards, k int) *cluster.Placement {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = machines
	cfg.Shards = shards
	cfg.TargetFill = 0.82
	cfg.Seed = 5
	inst, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if k == 0 {
		return inst.Placement
	}
	ec := inst.Cluster.WithExchange(k, vec.Uniform(100), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchSolve measures full Solve calls (iterations per op reported by ns).
func benchSolve(b *testing.B, machines, shards, k, iters int) {
	p := benchInstance(b, machines, shards, k)
	cfg := DefaultConfig()
	cfg.Iterations = iters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSmall(b *testing.B)  { benchSolve(b, 20, 300, 2, 200) }
func BenchmarkSolveMedium(b *testing.B) { benchSolve(b, 100, 1500, 4, 200) }

// BenchmarkSolveLarge is the F3-scale working set (400 machines, 6000
// shards) at a reduced iteration budget; its allocs/op and ns/op before and
// after the delta kernel are recorded in bench/BENCH_F3.json.
func BenchmarkSolveLarge(b *testing.B) { benchSolve(b, 400, 6000, 4, 60) }

func BenchmarkSolveParallel4(b *testing.B) {
	p := benchInstance(b, 100, 1500, 4)
	cfg := DefaultConfig()
	cfg.Iterations = 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg).SolveParallel(p, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjective(b *testing.B) {
	p := benchInstance(b, 100, 1500, 0)
	initial := p.Assignment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = objective(p, 0.1, 0.02, initial)
	}
}

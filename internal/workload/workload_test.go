package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/metrics"
)

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	sum := 0.0
	for i := range w {
		sum += w[i]
		if i > 0 && w[i] > w[i-1] {
			t.Errorf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum = %v", sum)
	}
	u := ZipfWeights(5, 0)
	for _, x := range u {
		if math.Abs(x-0.2) > 1e-12 {
			t.Errorf("uniform weights = %v", u)
		}
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if LogNormal(r, 0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := Shuffled(r, 50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestGenerateDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 20
	cfg.Shards = 200
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Cluster
	if c.NumMachines() != 20 || c.NumShards() != 200 {
		t.Fatalf("sizes = %d/%d", c.NumMachines(), c.NumShards())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.Placement.Feasible() {
		t.Fatal("initial placement must be statically feasible")
	}
	// fill should be close to target in the tightest dimension
	fill := c.TotalStatic().MaxRatio(c.TotalCapacity())
	if math.Abs(fill-cfg.TargetFill) > 1e-6 {
		t.Errorf("fill = %v, want %v", fill, cfg.TargetFill)
	}
	// generated instance should be load-imbalanced (that's the point)
	rep := metrics.Compute(inst.Placement)
	if rep.Imbalance < 1.05 {
		t.Errorf("initial imbalance = %v, expected > 1.05", rep.Imbalance)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines, cfg.Shards = 10, 80
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cluster.Shards {
		if a.Cluster.Shards[i] != b.Cluster.Shards[i] {
			t.Fatalf("shard %d differs between same-seed runs", i)
		}
	}
	for s := range a.Cluster.Shards {
		if a.Placement.Home(cluster.ShardID(s)) != b.Placement.Home(cluster.ShardID(s)) {
			t.Fatalf("placement differs between same-seed runs at shard %d", s)
		}
	}
	cfg.Seed = 99
	c2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cluster.Shards {
		if a.Cluster.Shards[i] != c2.Cluster.Shards[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical shards")
	}
}

func TestGenerateRealistic(t *testing.T) {
	cfg := RealisticConfig()
	cfg.Machines = 30
	cfg.Shards = 400
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// heterogeneous fleet: expect >1 distinct speed
	speeds := map[float64]bool{}
	for _, m := range inst.Cluster.Machines {
		speeds[m.Speed] = true
	}
	if len(speeds) < 2 {
		t.Errorf("realistic fleet should be heterogeneous, got speeds %v", speeds)
	}
	if !inst.Placement.Feasible() {
		t.Fatal("realistic placement must be feasible")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Machines = 0
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for zero machines")
	}
	bad = DefaultConfig()
	bad.Shards = 0
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for zero shards")
	}
	bad = DefaultConfig()
	bad.TargetFill = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for fill >= 1")
	}
	bad = DefaultConfig()
	bad.Tiers = []MachineTier{{Speed: 0, Weight: 1}}
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for zero-speed tier")
	}
}

func TestGenerateTraceFlat(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Duration = 100
	cfg.BaseRate = 50
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := tr.Rate()
	if rate < 40 || rate > 60 {
		t.Errorf("rate = %v, want ≈50", rate)
	}
	last := -1.0
	for _, q := range tr.Queries {
		if q.At < last {
			t.Fatal("arrivals out of order")
		}
		if q.At < 0 || q.At >= cfg.Duration {
			t.Fatalf("arrival %v outside trace window", q.At)
		}
		if q.Cost <= 0 {
			t.Fatal("non-positive cost")
		}
		last = q.At
	}
}

func TestGenerateTraceDiurnal(t *testing.T) {
	cfg := TraceConfig{Duration: 1000, BaseRate: 20, DiurnalAmp: 0.8, Period: 1000, CostSigma: 0.1, Seed: 3}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First half of a sine period has elevated rate, second half depressed.
	var first, second int
	for _, q := range tr.Queries {
		if q.At < 500 {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Errorf("diurnal shape missing: first=%d second=%d", first, second)
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	if _, err := GenerateTrace(TraceConfig{Duration: 0, BaseRate: 1}); err == nil {
		t.Error("expected duration error")
	}
	if _, err := GenerateTrace(TraceConfig{Duration: 1, BaseRate: 0}); err == nil {
		t.Error("expected rate error")
	}
	if _, err := GenerateTrace(TraceConfig{Duration: 1, BaseRate: 1, DiurnalAmp: 1}); err == nil {
		t.Error("expected amp error")
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Duration = 5
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != tr.Duration {
		t.Errorf("duration %v != %v", got.Duration, tr.Duration)
	}
	if len(got.Queries) != len(tr.Queries) {
		t.Fatalf("query count %d != %d", len(got.Queries), len(tr.Queries))
	}
	for i := range got.Queries {
		if math.Abs(got.Queries[i].At-tr.Queries[i].At) > 1e-5 ||
			math.Abs(got.Queries[i].Cost-tr.Queries[i].Cost) > 1e-5 {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Duration = 2
	tr, _ := GenerateTrace(cfg)
	path := t.TempDir() + "/trace.csv"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != len(tr.Queries) {
		t.Error("file round trip lost queries")
	}
	if _, err := LoadTraceFile(path + ".missing"); err == nil {
		t.Error("expected missing-file error")
	}
}

func TestLoadTraceMalformed(t *testing.T) {
	cases := []string{
		"at,cost\n1,2,3\n",
		"at,cost\nnope,1\n",
		"at,cost\n1,nope\n",
		"# duration=abc\n",
	}
	for _, c := range cases {
		if _, err := LoadTrace(bytes.NewBufferString(c)); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestLoadTraceInfersDuration(t *testing.T) {
	got, err := LoadTrace(bytes.NewBufferString("at,cost\n1.0,1.0\n5.0,2.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 5 {
		t.Errorf("inferred duration = %v, want 5", got.Duration)
	}
}

package core

import (
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// TestSolveRespectsAntiAffinity rebalances a replicated instance and
// verifies no machine ever hosts two replicas of one group — in the final
// placement and at every step of the move schedule.
func TestSolveRespectsAntiAffinity(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Machines = 12
	cfg.Shards = 50
	cfg.Replicas = 2
	cfg.TargetFill = 0.7
	cfg.Seed = 3
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ec := inst.Cluster.WithExchange(2, vec.Uniform(100), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultConfig()
	sc.Iterations = 400
	res, err := New(sc).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Feasible() {
		t.Fatal("final placement violates feasibility (incl. anti-affinity)")
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	// replay the schedule checking anti-affinity at every intermediate step
	w := p.Clone()
	for i, mv := range res.Plan.Moves {
		if !w.CanPlace(mv.S, mv.To) {
			t.Fatalf("step %d violates capacity or anti-affinity", i)
		}
		w.Move(mv.S, mv.To)
		if !groupsOK(w) {
			t.Fatalf("step %d co-located replicas", i)
		}
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Error("replicated rebalance did not improve")
	}
}

// groupsOK verifies no machine hosts two shards of the same group.
func groupsOK(p *cluster.Placement) bool {
	c := p.Cluster()
	for m := 0; m < c.NumMachines(); m++ {
		seen := map[int]bool{}
		bad := false
		p.EachShardOn(cluster.MachineID(m), func(s cluster.ShardID) {
			g := c.Shards[s].Group
			if g == 0 {
				return
			}
			if seen[g] {
				bad = true
			}
			seen[g] = true
		})
		if bad {
			return false
		}
	}
	return true
}

package des

import (
	"math/rand"
	"testing"
)

// popAll drains the heap.
func popAll(h *eventHeap) []Event {
	out := make([]Event, 0, h.Len())
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}

// checkSorted verifies the drained sequence respects the documented
// total order: time, then kind, then push sequence.
func checkSorted(t *testing.T, evs []Event) {
	t.Helper()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if b.before(a) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, b, a)
		}
		if a.At == b.At && a.Kind == b.Kind && a.Seq >= b.Seq {
			t.Fatalf("pop %d violates FIFO tie-break: seq %d then %d", i, a.Seq, b.Seq)
		}
	}
}

func TestEventHeapOrdersByTime(t *testing.T) {
	h := &eventHeap{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Push(Event{At: r.Float64() * 100, Kind: Kind(r.Intn(3))})
	}
	evs := popAll(h)
	if len(evs) != 1000 {
		t.Fatalf("drained %d events, want 1000", len(evs))
	}
	checkSorted(t, evs)
}

// TestEventHeapTieBreak pins the (time, kind, seq) order on a dense set
// of equal timestamps: window boundaries before arrivals before leg
// completions, push order within each kind.
func TestEventHeapTieBreak(t *testing.T) {
	h := &eventHeap{}
	h.Push(Event{At: 5, Kind: KindLegDone, M: 1})
	h.Push(Event{At: 5, Kind: KindArrival, Q: 1})
	h.Push(Event{At: 5, Kind: KindWindow})
	h.Push(Event{At: 5, Kind: KindLegDone, M: 2})
	h.Push(Event{At: 5, Kind: KindArrival, Q: 2})
	h.Push(Event{At: 4, Kind: KindLegDone, M: 9})

	want := []struct {
		at   float64
		kind Kind
		id   int32
	}{
		{4, KindLegDone, 9},
		{5, KindWindow, 0},
		{5, KindArrival, 1},
		{5, KindArrival, 2},
		{5, KindLegDone, 1},
		{5, KindLegDone, 2},
	}
	for i, w := range want {
		e := h.Pop()
		id := e.M
		if e.Kind == KindArrival {
			id = e.Q
		}
		if e.At != w.at || e.Kind != w.kind || id != w.id {
			t.Fatalf("pop %d = %+v, want at=%g kind=%v id=%d", i, e, w.at, w.kind, w.id)
		}
	}
}

// TestEventHeapInterleavedPushPop mixes pushes and pops, mimicking the
// event loop scheduling completions while draining arrivals.
func TestEventHeapInterleavedPushPop(t *testing.T) {
	h := &eventHeap{}
	r := rand.New(rand.NewSource(7))
	last := -1.0
	for round := 0; round < 200; round++ {
		for i := 0; i < r.Intn(5); i++ {
			// Never schedule into the past relative to the last pop.
			h.Push(Event{At: last + r.Float64()*10, Kind: Kind(r.Intn(3))})
		}
		if h.Len() > 0 && r.Intn(2) == 0 {
			e := h.Pop()
			if e.At < last {
				t.Fatalf("popped %g after %g", e.At, last)
			}
			last = e.At
		}
	}
	evs := popAll(h)
	checkSorted(t, evs)
}

// TestEventHeapPopNoAlloc certifies the event-pop path stays off the
// garbage collector, matching its //rexlint:noalloc annotation.
func TestEventHeapPopNoAlloc(t *testing.T) {
	h := &eventHeap{}
	for i := 0; i < 1024; i++ {
		h.Push(Event{At: float64(1024 - i), Kind: KindArrival})
	}
	allocs := testing.AllocsPerRun(512, func() {
		h.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Pop allocates %.1f per call, want 0", allocs)
	}
}

// FuzzEventHeapOrdering: any permutation of pushes — including dense
// equal-timestamp batches — pops in the documented (time, kind, seq)
// order.
func FuzzEventHeapOrdering(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-9), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, distinct uint8) {
		r := rand.New(rand.NewSource(seed))
		// A small palette of timestamps forces equal-time collisions.
		n := int(distinct)%8 + 1
		times := make([]float64, n)
		for i := range times {
			times[i] = r.Float64() * 10
		}
		h := &eventHeap{}
		for i := 0; i < 300; i++ {
			h.Push(Event{At: times[r.Intn(n)], Kind: Kind(r.Intn(3))})
		}
		checkSorted(t, popAll(h))
	})
}

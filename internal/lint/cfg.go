package lint

// Intraprocedural control-flow graphs over go/ast, built from the standard
// library alone. Control statements are decomposed: a Block holds only
// "straight-line" nodes (assignments, calls, declarations, channel ops,
// return/defer/go statements, and the leaf condition expressions of the
// branches that end it), so dataflow transfer functions can walk each node
// with ast.Inspect without re-entering nested control flow.
//
// Conventions:
//   - One synthetic Exit block. return statements, explicit panic(...)
//     calls, and calls that provably never return (os.Exit, log.Fatal*,
//     runtime.Goexit) edge to Exit.
//   - Branch conditions are decomposed through &&, || and ! so every
//     conditional edge carries a leaf condition: Edge.Cond is the
//     expression, Edge.Neg reports whether the edge is taken when it is
//     false.
//   - switch with a tag synthesizes `tag == caseExpr` conditions on the
//     case edges (one edge per case expression). The synthesized
//     ast.BinaryExpr wraps the original typechecked operands but is not
//     itself in types.Info.
//   - select is branching: one successor per comm clause; `select {}`
//     has no successors (blocks forever).
//   - defer statements appear both in their block (so analyzers see where
//     they are scheduled) and in CFG.Defers.
//
// Unreachable code is still built into blocks; it simply has no path from
// Entry, and the dataflow solvers only visit reachable blocks.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Edge is a directed control-flow edge.
type Edge struct {
	To   *Block
	Cond ast.Expr // leaf branch condition, nil for unconditional edges
	Neg  bool     // edge taken when Cond is false
}

// Block is a basic block: straight-line nodes plus outgoing edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt // in source order of scheduling
}

// loopCtx tracks break/continue targets for an enclosing loop, switch, or
// select.
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type builder struct {
	cfg    *CFG
	info   *types.Info // may be nil
	stack  []loopCtx
	labels map[string]*Block
	gotos  []pendingGoto
	// fallTo is the next case block while building a switch case body, so
	// fallthrough has a target.
	fallTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of a function body. info may be nil; when
// present it is used to resolve whether `panic` is the builtin.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &builder{
		cfg:    &CFG{},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	end := b.stmtList(body.List, b.cfg.Entry)
	if end != nil {
		b.edge(end, b.cfg.Exit, nil, false)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target, nil, false)
		}
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, neg bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Neg: neg})
	to.Preds = append(to.Preds, from)
}

// stmtList builds stmts starting in cur; returns the block where control
// continues, or nil if every path terminated.
func (b *builder) stmtList(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt builds one statement. A nil cur means the statement is unreachable;
// it is still built (into a fresh predecessor-less block) so its nodes
// exist in the graph.
func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	if cur == nil {
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		return b.ifStmt(s, cur, "")

	case *ast.ForStmt:
		return b.forStmt(s, cur, "")

	case *ast.RangeStmt:
		return b.rangeStmt(s, cur, "")

	case *ast.SwitchStmt:
		return b.switchStmt(s, cur, "")

	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(s, cur, "")

	case *ast.SelectStmt:
		return b.selectStmt(s, cur, "")

	case *ast.LabeledStmt:
		return b.labeledStmt(s, cur)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		return b.branchStmt(s, cur)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.neverReturns(call) {
			b.edge(cur, b.cfg.Exit, nil, false)
			return nil
		}
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *builder) ifStmt(s *ast.IfStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	then := b.newBlock()
	after := b.newBlock()
	elseTarget := after
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock()
		elseTarget = elseB
	}
	b.cond(s.Cond, cur, then, elseTarget)
	if end := b.stmtList(s.Body.List, then); end != nil {
		b.edge(end, after, nil, false)
	}
	if s.Else != nil {
		if end := b.stmt(s.Else, elseB); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	return after
}

// cond decomposes a branch condition through &&, ||, ! and parentheses,
// appending leaf conditions as nodes of the block that evaluates them and
// emitting a true-edge to t and a false-edge to f.
func (b *builder) cond(e ast.Expr, cur *Block, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, cur, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, cur, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, cur, mid, f)
			b.cond(x.Y, mid, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, cur, t, mid)
			b.cond(x.Y, mid, t, f)
			return
		}
	}
	cur.Nodes = append(cur.Nodes, e)
	b.edge(cur, t, e, false)
	b.edge(cur, f, e, true)
}

func (b *builder) forStmt(s *ast.ForStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(cur, head, nil, false)

	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}

	if s.Cond != nil {
		b.cond(s.Cond, head, body, after)
	} else {
		b.edge(head, body, nil, false)
	}

	b.stack = append(b.stack, loopCtx{label: label, breakTo: after, continueTo: continueTo})
	end := b.stmtList(s.Body.List, body)
	b.stack = b.stack[:len(b.stack)-1]

	if end != nil {
		b.edge(end, continueTo, nil, false)
	}
	if post != nil {
		pend := b.stmt(s.Post, post)
		if pend != nil {
			b.edge(pend, head, nil, false)
		}
	}
	return after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, cur *Block, label string) *Block {
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(cur, head, nil, false)
	// The RangeStmt node itself carries the per-iteration key/value
	// assignment and the ranged expression.
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)

	b.stack = append(b.stack, loopCtx{label: label, breakTo: after, continueTo: head})
	end := b.stmtList(s.Body.List, body)
	b.stack = b.stack[:len(b.stack)-1]

	if end != nil {
		b.edge(end, head, nil, false)
	}
	return after
}

// synthEq builds the synthesized `tag == caseExpr` condition carried on
// switch case edges. The operands are the original typechecked
// expressions; the wrapper node is not in types.Info.
func synthEq(tag, caseExpr ast.Expr) ast.Expr {
	return &ast.BinaryExpr{X: tag, Op: token.EQL, Y: caseExpr, OpPos: caseExpr.Pos()}
}

func (b *builder) switchStmt(s *ast.SwitchStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	if s.Tag != nil {
		cur.Nodes = append(cur.Nodes, s.Tag)
	}
	after := b.newBlock()

	type caseBody struct {
		blk    *Block
		clause *ast.CaseClause
	}
	var cases []caseBody
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		cases = append(cases, caseBody{blk, cc})
		if cc.List == nil {
			hasDefault = true
			b.edge(cur, blk, nil, false)
			continue
		}
		for _, ce := range cc.List {
			switch {
			case s.Tag != nil:
				b.edge(cur, blk, synthEq(s.Tag, ce), false)
			default:
				// switch { case cond: } — the case expression is the
				// condition itself.
				b.edge(cur, blk, ce, false)
			}
		}
	}
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}

	b.stack = append(b.stack, loopCtx{label: label, breakTo: after})
	savedFall := b.fallTo
	for i, c := range cases {
		if i+1 < len(cases) {
			b.fallTo = cases[i+1].blk
		} else {
			b.fallTo = nil
		}
		if end := b.stmtList(c.clause.Body, c.blk); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.fallTo = savedFall
	b.stack = b.stack[:len(b.stack)-1]
	return after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur = b.stmt(s.Init, cur)
	}
	cur.Nodes = append(cur.Nodes, s.Assign)
	after := b.newBlock()

	hasDefault := false
	b.stack = append(b.stack, loopCtx{label: label, breakTo: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		b.edge(cur, blk, nil, false)
		if cc.List == nil {
			hasDefault = true
		}
		if end := b.stmtList(cc.Body, blk); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.stack = b.stack[:len(b.stack)-1]
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}
	return after
}

func (b *builder) selectStmt(s *ast.SelectStmt, cur *Block, label string) *Block {
	after := b.newBlock()
	b.stack = append(b.stack, loopCtx{label: label, breakTo: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(cur, blk, nil, false)
		if cc.Comm != nil {
			blk = b.stmt(cc.Comm, blk)
		}
		if end := b.stmtList(cc.Body, blk); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.stack = b.stack[:len(b.stack)-1]
	// select{} has no clauses: no successors, control never continues.
	return after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt, cur *Block) *Block {
	name := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.forStmt(inner, target, name)
	case *ast.RangeStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.rangeStmt(inner, target, name)
	case *ast.SwitchStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.switchStmt(inner, target, name)
	case *ast.TypeSwitchStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.typeSwitchStmt(inner, target, name)
	case *ast.SelectStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.selectStmt(inner, target, name)
	case *ast.IfStmt:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.ifStmt(inner, target, name)
	default:
		target := b.newBlock()
		b.edge(cur, target, nil, false)
		b.labels[name] = target
		return b.stmt(s.Stmt, target)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt, cur *Block) *Block {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.stack) - 1; i >= 0; i-- {
			c := b.stack[i]
			if s.Label == nil || c.label == s.Label.Name {
				b.edge(cur, c.breakTo, nil, false)
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.stack) - 1; i >= 0; i-- {
			c := b.stack[i]
			if c.continueTo == nil {
				continue // switch/select frames are not continue targets
			}
			if s.Label == nil || c.label == s.Label.Name {
				b.edge(cur, c.continueTo, nil, false)
				return nil
			}
		}
	case token.GOTO:
		if s.Label != nil {
			if target, ok := b.labels[s.Label.Name]; ok {
				b.edge(cur, target, nil, false)
			} else {
				b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			}
		}
		return nil
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.edge(cur, b.fallTo, nil, false)
		}
		return nil
	}
	return nil
}

// neverReturns reports whether a call provably terminates the flow of the
// enclosing function: the panic builtin, os.Exit, runtime.Goexit, and the
// log.Fatal family.
func (b *builder) neverReturns(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name != "panic" {
			return false
		}
		if b.info != nil {
			if _, isBuiltin := b.info.Uses[fn].(*types.Builtin); isBuiltin {
				return true
			}
			return false
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		// Only treat the ident as a package name when types confirm it
		// (or no type info is available).
		if b.info != nil {
			if _, isPkg := b.info.Uses[pkg].(*types.PkgName); !isPkg {
				return false
			}
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

// ExitReachable reports whether the synthetic Exit block is reachable from
// Entry — i.e. whether the function has any terminating path.
func (g *CFG) ExitReachable() bool {
	return g.Reachable()[g.Exit]
}

// String renders the CFG in a compact debug format, one block per line:
//
//	b0[entry]: 2 nodes -> b1(cond) b3(!cond)
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		tag := ""
		if blk == g.Entry {
			tag = "[entry]"
		} else if blk == g.Exit {
			tag = "[exit]"
		}
		fmt.Fprintf(&sb, "b%d%s: %d nodes ->", blk.Index, tag, len(blk.Nodes))
		for _, e := range blk.Succs {
			neg := ""
			if e.Neg {
				neg = "!"
			}
			if e.Cond != nil {
				fmt.Fprintf(&sb, " b%d(%scond)", e.To.Index, neg)
			} else {
				fmt.Fprintf(&sb, " b%d", e.To.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

package workload

import (
	"math"
	"math/rand"
	"sort"
)

// ArrivalWindow is the granularity (seconds) at which Arrivals reads the
// trace's intensity profile: the trace timeline is cut into windows of
// this width and each window's arrival rate is the number of trace
// queries it contains divided by its width.
const ArrivalWindow = 1.0

// Arrivals synthesizes a fresh arrival sequence over [t0, t1) whose rate
// follows the trace's windowed intensity: the requested span is cut at
// ArrivalWindow boundaries of the (wrapped) trace timeline, each piece
// draws a Poisson count at the rate of the trace window it lands in, and
// the arrivals spread uniformly within the piece. Times past the trace
// end wrap modulo the trace duration, so a finite trace can drive an
// arbitrarily long simulation — the same convention ctl.TraceDriftSource
// uses for load snapshots.
//
// The result is sorted ascending, every time lies in [t0, t1), and a
// zero-intensity window contributes nothing (and consumes only the one
// Poisson draw, so downstream pieces stay aligned). The sequence is fully
// determined by (trace, t0, t1, rng state): the discrete-event simulator
// feeds a dedicated workload sub-stream (internal/rng) so adding a policy
// elsewhere can never perturb it. An inverted or empty span, or a trace
// without positive duration, yields nil.
func (t *Trace) Arrivals(t0, t1 float64, rng *rand.Rand) []float64 {
	if t1 <= t0 || t.Duration <= 0 {
		return nil
	}
	var out []float64
	D := t.Duration
	for x := t0; x < t1; {
		// End of this piece: the next ArrivalWindow boundary of the
		// absolute timeline, clipped to the span's end and to the trace
		// end (so a piece never straddles the wrap point).
		end := math.Floor(x/ArrivalWindow)*ArrivalWindow + ArrivalWindow
		if end > t1 {
			end = t1
		}
		ws := wrapTime(x, D)
		if rem := D - ws; end-x > rem {
			end = x + rem
		}
		width := end - x
		if width <= 0 {
			// Defensive: float rounding at the wrap point; step past it.
			x = end + 1e-12
			continue
		}
		out = append(out, pieceArrivals(t, x, ws, width, rng)...)
		x = end
	}
	sort.Float64s(out)
	return out
}

// pieceArrivals draws the arrivals of one piece: absolute start x, wrapped
// trace position ws, width strictly inside one ArrivalWindow bucket and
// one trace pass.
func pieceArrivals(t *Trace, x, ws, width float64, rng *rand.Rand) []float64 {
	// The intensity bucket containing ws, clipped to the trace end (the
	// final bucket of a non-multiple duration is short).
	b0 := math.Floor(ws/ArrivalWindow) * ArrivalWindow
	b1 := b0 + ArrivalWindow
	if b1 > t.Duration {
		b1 = t.Duration
	}
	if b1 <= b0 {
		return nil
	}
	lo := sort.Search(len(t.Queries), func(i int) bool { return t.Queries[i].At >= b0 })
	hi := sort.Search(len(t.Queries), func(i int) bool { return t.Queries[i].At >= b1 })
	rate := float64(hi-lo) / (b1 - b0)
	n := poisson(rng, rate*width)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = x + rng.Float64()*width
	}
	return out
}

// poisson draws a Poisson-distributed count by Knuth's product method. A
// non-positive mean consumes no randomness and returns 0, so empty trace
// windows keep the stream aligned regardless of float noise in the mean.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	n := 0
	for p := rng.Float64(); p > limit; p *= rng.Float64() {
		n++
	}
	return n
}

// wrapTime maps x onto [0, d).
func wrapTime(x, d float64) float64 {
	r := math.Mod(x, d)
	if r < 0 {
		r += d
	}
	return r
}

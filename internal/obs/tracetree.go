package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Trace-tree reconstruction and analysis over a journal's SpanTrace
// records, shared by cmd/rextrace and tests. Every renderer uses fixed
// six-decimal float formatting and sorted iteration only, so for a
// deterministic journal the reports are byte-identical across runs and
// GOMAXPROCS values — the same discipline as des.Report.Render.

// Span is one reconstructed span: the journal payload plus its end time,
// the control round its journal record carried, and resolved children.
type Span struct {
	TraceEvent
	End      float64
	Round    int
	Children []*Span // sorted by (Start, span ID)
}

// Duration is the span's extent in simulated seconds.
func (s *Span) Duration() float64 { return s.End - s.Start }

// child returns the first child with the given op, or nil.
func (s *Span) child(op string) *Span {
	for _, c := range s.Children {
		if c.Op == op {
			return c
		}
	}
	return nil
}

// Trace is one reconstructed span tree.
type Trace struct {
	ID    string
	Root  *Span   // parentless span (op "query" or "round"); nil if absent
	Spans []*Span // every span, journal order
}

// BuildTraces reconstructs span trees from a journal's SpanTrace records,
// in first-appearance order. A span ID emitted more than once (a retried
// move re-emits its span per attempt) keeps the last record. Spans whose
// parent never appears (a query still in flight at shutdown) are kept in
// Spans but dangle without a root path.
func BuildTraces(events []Event) []*Trace {
	byID := make(map[string]*Trace)
	var order []string
	type slot struct {
		trace *Trace
		idx   map[string]int // span ID → index into trace.Spans
	}
	slots := make(map[string]*slot)
	for _, ev := range events {
		if ev.Span != SpanTrace || ev.Trace == nil {
			continue
		}
		te := *ev.Trace
		sl, ok := slots[te.ID]
		if !ok {
			tr := &Trace{ID: te.ID}
			byID[te.ID] = tr
			order = append(order, te.ID)
			sl = &slot{trace: tr, idx: make(map[string]int)}
			slots[te.ID] = sl
		}
		sp := &Span{TraceEvent: te, End: ev.T, Round: ev.Round}
		if i, dup := sl.idx[te.Span]; dup {
			sl.trace.Spans[i] = sp
		} else {
			sl.idx[te.Span] = len(sl.trace.Spans)
			sl.trace.Spans = append(sl.trace.Spans, sp)
		}
	}
	out := make([]*Trace, 0, len(order))
	for _, id := range order {
		tr := byID[id]
		sl := slots[id]
		for _, sp := range tr.Spans {
			if sp.Parent == "" {
				if tr.Root == nil {
					tr.Root = sp
				}
				continue
			}
			if pi, ok := sl.idx[sp.Parent]; ok {
				p := tr.Spans[pi]
				p.Children = append(p.Children, sp)
			}
		}
		for _, sp := range tr.Spans {
			sort.Slice(sp.Children, func(i, j int) bool {
				a, b := sp.Children[i], sp.Children[j]
				if a.Start != b.Start {
					return a.Start < b.Start
				}
				return a.Span < b.Span
			})
		}
		out = append(out, tr)
	}
	return out
}

// queryTraces filters for traces rooted at a query span.
func queryTraces(traces []*Trace) []*Trace {
	var out []*Trace
	for _, tr := range traces {
		if tr.Root != nil && tr.Root.Op == OpQuery {
			out = append(out, tr)
		}
	}
	return out
}

// blamedDelay sums the blocked_by delay across a trace's leg spans.
func blamedDelay(tr *Trace) float64 {
	total := 0.0
	for _, sp := range tr.Spans {
		if sp.Op == OpLeg && sp.Blocked != nil {
			total += sp.Blocked.Delay
		}
	}
	return total
}

// fmtRef renders a move reference as rROUND#SEQ.
func fmtRef(round, seq int) string { return fmt.Sprintf("r%d#%d", round, seq) }

// CriticalPath renders, per migration phase, the slowest sampled query's
// critical chain: the query root, its slowest leg with the leg's queue
// and service split, the leg's blame link, and the merge barrier wait.
func CriticalPath(traces []*Trace) string {
	var b strings.Builder
	qs := queryTraces(traces)
	for _, phase := range []string{"before", "during", "after"} {
		var worst *Trace
		for _, tr := range qs {
			if tr.Root.Mig != phase {
				continue
			}
			if worst == nil ||
				tr.Root.Duration() > worst.Root.Duration() ||
				(tr.Root.Duration() == worst.Root.Duration() && tr.ID < worst.ID) {
				worst = tr
			}
		}
		if worst == nil {
			fmt.Fprintf(&b, "phase %-6s  no sampled queries\n", phase)
			continue
		}
		root := worst.Root
		fmt.Fprintf(&b, "phase %-6s  trace %s  latency %.6f  arrive %.6f\n",
			phase, worst.ID, root.Duration(), root.Start)
		var slow *Span
		for _, c := range root.Children {
			if c.Op != OpLeg {
				continue
			}
			if slow == nil || c.End > slow.End || (c.End == slow.End && c.Span < slow.Span) {
				slow = c
			}
		}
		if slow != nil {
			fmt.Fprintf(&b, "  slowest leg: machine %d shard %d  span %.6f",
				slow.Machine, slow.Shard, slow.Duration())
			if q, svc := slow.child(OpQueue), slow.child(OpService); q != nil && svc != nil {
				fmt.Fprintf(&b, "  (queue %.6f service %.6f)", q.Duration(), svc.Duration())
			}
			b.WriteByte('\n')
			if bl := slow.Blocked; bl != nil {
				fmt.Fprintf(&b, "    blocked_by move %s  machine %d  %s %.6f\n",
					fmtRef(bl.Round, bl.Seq), bl.Machine, bl.Kind, bl.Delay)
			}
		}
		if m := root.child(OpMerge); m != nil {
			fmt.Fprintf(&b, "  merge wait %.6f behind machine %d\n", m.Duration(), m.Machine)
		}
	}
	return b.String()
}

// Blame aggregates the delay every sampled query leg attributed to a
// migration move, by move and by machine, largest totals first. Shard
// and destination come from the move's own trace span when the journal
// carries it.
func Blame(traces []*Trace) string {
	type moveAgg struct {
		round, seq  int
		delay       float64
		legs        int
		drag, queue int
	}
	type moveInfo struct{ shard, to int }
	moves := make(map[[2]int]*moveAgg)
	info := make(map[[2]int]moveInfo)
	machines := make(map[int]*moveAgg)
	totalDelay, totalLegs, queries := 0.0, 0, 0

	for _, tr := range traces {
		if tr.Root != nil && tr.Root.Op == OpQuery {
			queries++
		}
		for _, sp := range tr.Spans {
			if sp.Op == OpMove {
				info[[2]int{sp.Round, sp.Seq}] = moveInfo{shard: sp.Shard, to: sp.Machine}
				continue
			}
			if sp.Op != OpLeg || sp.Blocked == nil {
				continue
			}
			bl := sp.Blocked
			key := [2]int{bl.Round, bl.Seq}
			agg := moves[key]
			if agg == nil {
				agg = &moveAgg{round: bl.Round, seq: bl.Seq}
				moves[key] = agg
			}
			agg.delay += bl.Delay
			agg.legs++
			magg := machines[bl.Machine]
			if magg == nil {
				magg = &moveAgg{}
				machines[bl.Machine] = magg
			}
			magg.delay += bl.Delay
			magg.legs++
			if bl.Kind == BlameDrag {
				agg.drag++
			} else {
				agg.queue++
			}
			totalDelay += bl.Delay
			totalLegs++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "blame by move:\n")
	keys := make([][2]int, 0, len(moves))
	for k := range moves {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := moves[keys[i]], moves[keys[j]]
		if a.delay != c.delay {
			return a.delay > c.delay
		}
		if a.round != c.round {
			return a.round < c.round
		}
		return a.seq < c.seq
	})
	for _, k := range keys {
		agg := moves[k]
		fmt.Fprintf(&b, "  move %-8s delay %.6f  legs %d (drag %d, queue %d)",
			fmtRef(agg.round, agg.seq), agg.delay, agg.legs, agg.drag, agg.queue)
		if mi, ok := info[k]; ok {
			fmt.Fprintf(&b, "  shard %d -> machine %d", mi.shard, mi.to)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "blame by machine:\n")
	mkeys := make([]int, 0, len(machines))
	for m := range machines {
		mkeys = append(mkeys, m)
	}
	sort.Slice(mkeys, func(i, j int) bool {
		a, c := machines[mkeys[i]], machines[mkeys[j]]
		if a.delay != c.delay {
			return a.delay > c.delay
		}
		return mkeys[i] < mkeys[j]
	})
	for _, m := range mkeys {
		agg := machines[m]
		fmt.Fprintf(&b, "  machine %-4d delay %.6f  legs %d\n", m, agg.delay, agg.legs)
	}
	fmt.Fprintf(&b, "total attributed delay %.6f over %d delayed legs, %d sampled queries\n",
		totalDelay, totalLegs, queries)
	return b.String()
}

// Top ranks the n slowest sampled queries.
func Top(traces []*Trace, n int) string {
	qs := queryTraces(traces)
	sort.Slice(qs, func(i, j int) bool {
		a, b := qs[i].Root.Duration(), qs[j].Root.Duration()
		if a != b {
			return a > b
		}
		return qs[i].ID < qs[j].ID
	})
	if n > len(qs) {
		n = len(qs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d of %d sampled queries:\n", n, len(qs))
	for i := 0; i < n; i++ {
		tr := qs[i]
		legs := 0
		for _, c := range tr.Root.Children {
			if c.Op == OpLeg {
				legs++
			}
		}
		fmt.Fprintf(&b, "%3d. %s  phase %-6s  latency %.6f  legs %d  blamed %.6f\n",
			i+1, tr.ID, tr.Root.Mig, tr.Root.Duration(), legs, blamedDelay(tr))
	}
	return b.String()
}

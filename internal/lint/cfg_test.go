package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildTestCFG parses src (function declarations, no package clause) and
// builds the CFG of the first function with a body.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body, nil)
		}
	}
	t.Fatalf("no function with body in source")
	return nil
}

// condEdgeCount counts edges carrying a branch condition.
func condEdgeCount(g *CFG) (pos, neg int) {
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			if e.Neg {
				neg++
			} else {
				pos++
			}
		}
	}
	return pos, neg
}

// hasCycle reports whether the reachable part of g contains a cycle.
func hasCycle(g *CFG) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Block]int)
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		color[b] = gray
		for _, e := range b.Succs {
			switch color[e.To] {
			case gray:
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	return visit(g.Entry)
}

func TestCFGConstruction(t *testing.T) {
	tests := []struct {
		name string
		src  string
		// expectations
		exitReachable bool
		cycle         bool
		posCond       int // -1 = don't check
		negCond       int
		defers        int
		check         func(t *testing.T, g *CFG)
	}{
		{
			name: "straight line",
			src: `func f() {
				x := 1
				x++
				_ = x
			}`,
			exitReachable: true, cycle: false, posCond: 0, negCond: 0,
		},
		{
			name: "if else",
			src: `func f(a bool) int {
				if a {
					return 1
				} else {
					return 2
				}
			}`,
			exitReachable: true, cycle: false, posCond: 1, negCond: 1,
		},
		{
			name: "if without else falls through",
			src: `func f(a bool) {
				if a {
					println("t")
				}
				println("after")
			}`,
			exitReachable: true, cycle: false, posCond: 1, negCond: 1,
		},
		{
			name: "short-circuit and",
			src: `func f(a, b bool) {
				if a && b {
					println("both")
				}
			}`,
			exitReachable: true, cycle: false, posCond: 2, negCond: 2,
		},
		{
			name: "short-circuit or with not",
			src: `func f(a, b, c bool) {
				if !(a || b) && c {
					println("x")
				}
			}`,
			exitReachable: true, cycle: false, posCond: 3, negCond: 3,
		},
		{
			name: "for loop with condition",
			src: `func f(n int) {
				for i := 0; i < n; i++ {
					println(i)
				}
			}`,
			exitReachable: true, cycle: true, posCond: 1, negCond: 1,
		},
		{
			name: "infinite for never exits",
			src: `func f() {
				for {
					println("spin")
				}
			}`,
			exitReachable: false, cycle: true, posCond: 0, negCond: 0,
		},
		{
			name: "infinite for with break exits",
			src: `func f(a bool) {
				for {
					if a {
						break
					}
				}
			}`,
			exitReachable: true, cycle: true, posCond: -1, negCond: -1,
		},
		{
			name: "nested loops unlabeled break only exits inner",
			src: `func f() {
				for {
					for {
						break
					}
				}
			}`,
			exitReachable: false, cycle: true, posCond: -1, negCond: -1,
		},
		{
			name: "labeled break exits outer",
			// the only path breaks straight out, so no reachable cycle
			src: `func f() {
			outer:
				for {
					for {
						break outer
					}
				}
			}`,
			exitReachable: true, cycle: false, posCond: -1, negCond: -1,
		},
		{
			name: "labeled continue targets outer loop",
			src: `func f(n int) {
			outer:
				for i := 0; i < n; i++ {
					for {
						continue outer
					}
				}
			}`,
			exitReachable: true, cycle: true, posCond: -1, negCond: -1,
		},
		{
			name: "range loop",
			src: `func f(xs []int) {
				for _, x := range xs {
					println(x)
				}
			}`,
			exitReachable: true, cycle: true, posCond: 0, negCond: 0,
		},
		{
			name: "switch with tag synthesizes eq conds",
			src: `func f(x int) {
				switch x {
				case 1, 2:
					println("small")
				case 3:
					println("three")
				}
			}`,
			// one cond edge per case expression: 1, 2, 3
			exitReachable: true, cycle: false, posCond: 3, negCond: 0,
			check: func(t *testing.T, g *CFG) {
				// every synthesized cond is tag == caseExpr
				for _, b := range g.Blocks {
					for _, e := range b.Succs {
						if e.Cond == nil {
							continue
						}
						be, ok := e.Cond.(*ast.BinaryExpr)
						if !ok || be.Op != token.EQL {
							t.Errorf("switch edge cond is %T, want == BinaryExpr", e.Cond)
						}
					}
				}
			},
		},
		{
			name: "switch with default has no direct exit edge from head",
			src: `func f(x int) int {
				switch x {
				case 1:
					return 1
				default:
					return 0
				}
			}`,
			exitReachable: true, cycle: false, posCond: 1, negCond: 0,
		},
		{
			name: "switch fallthrough chains case bodies",
			src: `func f(x int) {
				n := 0
				switch x {
				case 1:
					n++
					fallthrough
				case 2:
					n++
				}
				_ = n
			}`,
			exitReachable: true, cycle: false, posCond: 2, negCond: 0,
			check: func(t *testing.T, g *CFG) {
				// the two case blocks must be connected: some non-head
				// block with nodes has an unconditional edge to another
				// block with nodes that also reaches exit
				found := false
				for _, b := range g.Blocks {
					for _, e := range b.Succs {
						if e.Cond == nil && len(b.Nodes) > 0 && len(e.To.Nodes) > 0 && e.To != g.Exit {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("no fallthrough edge found between case bodies")
				}
			},
		},
		{
			name: "condition switch uses case exprs as conds",
			src: `func f(x int) {
				switch {
				case x > 0:
					println("pos")
				case x < 0:
					println("neg")
				}
			}`,
			exitReachable: true, cycle: false, posCond: 2, negCond: 0,
		},
		{
			name: "defer recorded and kept in block",
			src: `func f() {
				defer println("done")
				defer println("done2")
				println("work")
			}`,
			exitReachable: true, cycle: false, posCond: 0, negCond: 0, defers: 2,
			check: func(t *testing.T, g *CFG) {
				n := 0
				for _, b := range g.Blocks {
					for _, nd := range b.Nodes {
						if _, ok := nd.(*ast.DeferStmt); ok {
							n++
						}
					}
				}
				if n != 2 {
					t.Errorf("defer nodes in blocks = %d, want 2", n)
				}
			},
		},
		{
			name: "panic edges to exit and kills fallthrough",
			src: `func f(a bool) {
				if a {
					panic("boom")
				}
				println("after")
			}`,
			exitReachable: true, cycle: false, posCond: 1, negCond: 1,
			check: func(t *testing.T, g *CFG) {
				// the block containing panic must have exactly one succ: Exit
				for _, b := range g.Blocks {
					for _, nd := range b.Nodes {
						es, ok := nd.(*ast.ExprStmt)
						if !ok {
							continue
						}
						call, ok := es.X.(*ast.CallExpr)
						if !ok {
							continue
						}
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
							if len(b.Succs) != 1 || b.Succs[0].To != g.Exit {
								t.Errorf("panic block succs = %v, want single edge to exit", b.Succs)
							}
						}
					}
				}
			},
		},
		{
			name: "statements after return are unreachable",
			src: `func f() int {
				return 1
				println("dead")
			}`,
			exitReachable: true, cycle: false, posCond: 0, negCond: 0,
			check: func(t *testing.T, g *CFG) {
				reach := g.Reachable()
				dead := 0
				for _, b := range g.Blocks {
					if !reach[b] && len(b.Nodes) > 0 {
						dead++
					}
				}
				if dead == 0 {
					t.Errorf("expected an unreachable block holding the dead statement")
				}
			},
		},
		{
			name: "goto backward forms a cycle",
			src: `func f() {
			top:
				println("x")
				goto top
			}`,
			exitReachable: false, cycle: true, posCond: 0, negCond: 0,
		},
		{
			name: "goto forward skips code",
			src: `func f(a bool) {
				if a {
					goto done
				}
				println("work")
			done:
				println("done")
			}`,
			exitReachable: true, cycle: false, posCond: 1, negCond: 1,
		},
		{
			name: "empty select never continues",
			src: `func f() {
				select {}
			}`,
			exitReachable: false, cycle: false, posCond: 0, negCond: 0,
		},
		{
			name: "select with clauses branches per clause",
			src: `func f(a, b chan int) {
				select {
				case <-a:
					println("a")
				case v := <-b:
					println(v)
				}
			}`,
			exitReachable: true, cycle: false, posCond: 0, negCond: 0,
		},
		{
			name: "for select done pattern exits",
			src: `func f(done chan struct{}, work chan int) {
				for {
					select {
					case <-done:
						return
					case w := <-work:
						println(w)
					}
				}
			}`,
			exitReachable: true, cycle: true, posCond: 0, negCond: 0,
		},
		{
			name: "type switch branches per clause",
			src: `func f(x interface{}) {
				switch v := x.(type) {
				case int:
					println(v)
				case string:
					println(v)
				}
			}`,
			exitReachable: true, cycle: false, posCond: 0, negCond: 0,
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			g := buildTestCFG(t, tt.src)
			if got := g.ExitReachable(); got != tt.exitReachable {
				t.Errorf("exit reachable = %v, want %v\n%s", got, tt.exitReachable, g)
			}
			if got := hasCycle(g); got != tt.cycle {
				t.Errorf("cycle = %v, want %v\n%s", got, tt.cycle, g)
			}
			if tt.posCond >= 0 {
				pos, neg := condEdgeCount(g)
				if pos != tt.posCond || neg != tt.negCond {
					t.Errorf("cond edges = (%d pos, %d neg), want (%d, %d)\n%s",
						pos, neg, tt.posCond, tt.negCond, g)
				}
			}
			if len(g.Defers) != tt.defers {
				t.Errorf("defers = %d, want %d", len(g.Defers), tt.defers)
			}
			if tt.check != nil {
				tt.check(t, g)
			}
		})
	}
}

// assignedFlow is a forward must-analysis used to exercise the solver: the
// fact is the set of variable names assigned on EVERY path so far
// (intersection at joins).
type assignedFlow struct{}

func (assignedFlow) Entry() map[string]bool { return map[string]bool{} }

func (assignedFlow) Join(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (assignedFlow) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (assignedFlow) Transfer(n ast.Node, in map[string]bool) map[string]bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := map[string]bool{}
	for k := range in {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

func TestForwardMustAssigned(t *testing.T) {
	g := buildTestCFG(t, `func f(c bool) {
		var a, b, both, neither int
		x := 1
		if c {
			a = x
			both = x
		} else {
			b = x
			both = x
		}
		_ = a
		_ = b
		_ = both
		_ = neither
	}`)
	facts := Forward[map[string]bool](g, assignedFlow{})
	atExit, ok := facts.In[g.Exit]
	if !ok {
		t.Fatalf("no fact at exit\n%s", g)
	}
	var got []string
	for k := range atExit {
		got = append(got, k)
	}
	sort.Strings(got)
	want := "both x"
	if s := strings.Join(got, " "); s != want {
		t.Errorf("must-assigned at exit = %q, want %q\n%s", s, want, g)
	}
}

func TestForwardLoopConverges(t *testing.T) {
	g := buildTestCFG(t, `func f(n int) {
		for i := 0; i < n; i++ {
			x := i
			_ = x
		}
		y := 1
		_ = y
	}`)
	facts := Forward[map[string]bool](g, assignedFlow{})
	atExit := facts.In[g.Exit]
	// i := 0 runs before the loop, x only inside the body (the body may
	// execute zero times), y always after.
	if !atExit["i"] || !atExit["y"] || atExit["x"] {
		t.Errorf("must-assigned at exit = %v, want i,y but not x\n%s", atExit, g)
	}
}

// mustCallFlow is a backward must-analysis: the fact is true when every
// path from this point to exit calls the function named fn.
type mustCallFlow struct{ fn string }

func (mustCallFlow) Entry() bool          { return false }
func (mustCallFlow) Join(a, b bool) bool  { return a && b }
func (mustCallFlow) Equal(a, b bool) bool { return a == b }

func (m mustCallFlow) Transfer(n ast.Node, after bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == m.fn {
				found = true
			}
		}
		return true
	})
	if found {
		return true
	}
	return after
}

func TestBackwardMustCall(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{
			name: "called on both branches",
			src: `func f(c bool) {
				if c {
					cleanup()
				} else {
					cleanup()
				}
			}`,
			want: true,
		},
		{
			name: "missed on else path",
			src: `func f(c bool) {
				if c {
					cleanup()
				}
			}`,
			want: false,
		},
		{
			name: "early return skips call",
			src: `func f(c bool) {
				if c {
					return
				}
				cleanup()
			}`,
			want: false,
		},
		{
			name: "called before any branch",
			src: `func f(c bool) {
				cleanup()
				if c {
					return
				}
			}`,
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			g := buildTestCFG(t, tt.src)
			facts := Backward[bool](g, mustCallFlow{fn: "cleanup"})
			got, ok := facts.Out[g.Entry]
			if !ok {
				t.Fatalf("no fact at entry\n%s", g)
			}
			if got != tt.want {
				t.Errorf("must-call(cleanup) at entry = %v, want %v\n%s", got, tt.want, g)
			}
		})
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Span kinds recorded in the event journal.
const (
	SpanRound = "round" // one control round (snapshot → decision)
	SpanSolve = "solve" // one budgeted SRA solve
	SpanMove  = "move"  // one shard copy, dispatch → land
	SpanSim   = "sim"   // one discrete-event simulator measurement window
	SpanTrace = "trace" // one completed trace span (see TraceEvent)
)

// Span phases.
const (
	PhaseBegin = "begin"
	PhaseEnd   = "end"
)

// Move span outcomes (round and solve spans use "ok"/"err"-style outcomes
// set by the controller).
const (
	OutcomeOK      = "ok"
	OutcomeErr     = "err"
	OutcomeFailed  = "failed"  // copy failed; the move will retry
	OutcomeAborted = "aborted" // in-flight copy abandoned by supersession
)

// MoveEvent identifies one scheduled move inside a move span. Machine and
// shard IDs are plain ints so a journal is self-contained JSON.
type MoveEvent struct {
	Seq     int `json:"seq"`
	Shard   int `json:"shard"`
	From    int `json:"from"`
	To      int `json:"to"`
	Attempt int `json:"attempt,omitempty"`
}

// SimEvent is the payload of a SpanSim record: one discrete-event
// simulator measurement window's query-latency summary, emitted at the
// window's closing timestamp. Percentiles are exact (computed from the
// window's completed-query latencies, not from histogram buckets) and in
// simulated seconds; Copies is the number of migration copies in flight
// when the window closed.
type SimEvent struct {
	Window    int     `json:"window"`
	Arrivals  int     `json:"arrivals"`
	Completed int     `json:"completed"`
	Dropped   int     `json:"dropped,omitempty"`
	P50       float64 `json:"p50"`
	P99       float64 `json:"p99"`
	P999      float64 `json:"p999"`
	Copies    int     `json:"copies,omitempty"`
}

// Event is one JSONL journal record. Timestamps come from the control
// plane's Clock, so a virtual-clock run journals in simulated seconds and
// is bit-reproducible: for a fixed configuration the byte stream is
// identical across runs and GOMAXPROCS values.
type Event struct {
	T     float64 `json:"t"`
	Span  string  `json:"span"`
	Phase string  `json:"phase"`
	Round int     `json:"round"`

	Outcome string `json:"outcome,omitempty"`
	Err     string `json:"err,omitempty"`

	// Round/solve payloads.
	Imbalance float64 `json:"imbalance,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	Moves     int     `json:"moves,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`

	// Move payload.
	Move *MoveEvent `json:"move,omitempty"`

	// Sim payload (SpanSim records).
	Sim *SimEvent `json:"sim,omitempty"`

	// Trace payload (SpanTrace records).
	Trace *TraceEvent `json:"trace,omitempty"`
}

// Journal writes events as JSON Lines. Emit is safe for concurrent use;
// write errors are sticky and surfaced by Err/Close rather than per
// event, so instrumented code paths never branch on telemetry failures.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer // guarded by: mu
	n   int       // guarded by: mu
	err error     // guarded by: mu
}

// NewJournal wraps w. The caller owns closing any underlying file; Close
// on the journal only flushes the sticky error state.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Emit appends one event. The first write error is retained and all
// subsequent emits become no-ops.
//
//rexlint:detsink journal write
func (j *Journal) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		j.err = fmt.Errorf("obs: marshal event: %w", err)
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: write event: %w", err)
		return
	}
	j.n++
}

// Len returns the number of events successfully written.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close surfaces the sticky error state. It does not close the underlying
// writer — the caller owns that — but callers that tear a journal down
// should check this result: it is the only place the deferred write
// failures ever become visible.
func (j *Journal) Close() error {
	return j.Err()
}

// ReadJournal parses a JSONL event stream. It fails on the first
// malformed line, reporting its line number.
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		if ev.Span == "" || ev.Phase == "" {
			return nil, fmt.Errorf("obs: journal line %d: missing span/phase", line)
		}
		switch ev.Span {
		case SpanRound, SpanSolve, SpanMove, SpanSim, SpanTrace:
		default:
			return nil, fmt.Errorf("obs: journal line %d: unknown span kind %q", line, ev.Span)
		}
		if ev.Span == SpanTrace && ev.Trace == nil {
			return nil, fmt.Errorf("obs: journal line %d: trace span without trace payload", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read journal: %w", err)
	}
	return out, nil
}

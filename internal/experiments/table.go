// Package experiments contains one driver per table and figure of the
// reconstructed evaluation plan (DESIGN.md §4). Each driver returns a
// Table that cmd/srabench prints and bench_test.go regenerates under
// testing.B; EXPERIMENTS.md records representative output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is the uniform result shape of every experiment driver: an ID
// matching DESIGN.md (T1, F3, ...), a caption, and text rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v, floats with
// 4 significant decimals.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

package des

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"rexchange/internal/obs"
)

// traceCampaign runs a solve campaign with query tracing into an
// in-memory journal and returns the raw journal bytes.
func traceCampaign(t *testing.T, procs int) []byte {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var buf bytes.Buffer
	cfg := DefaultCampaignConfig()
	cfg.Machines, cfg.Shards, cfg.Rounds = 16, 160, 5
	cfg.Rate, cfg.Iterations = 60, 120
	cfg.Sim.Window = 5
	cfg.Sim.DriftSigma = 0.4
	cfg.Sim.TraceSample = 0.5
	cfg.Registry = obs.NewRegistry()
	cfg.Journal = obs.NewJournal(&buf)
	if _, err := RunCampaign(cfg, "solve"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Journal.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rextraceRender is exactly what cmd/rextrace prints for
// -critical-path -blame -top 10.
func rextraceRender(t *testing.T, journal []byte) string {
	t.Helper()
	events, err := obs.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	traces := obs.BuildTraces(events)
	return obs.CriticalPath(traces) + obs.Blame(traces) + obs.Top(traces, 10)
}

// TestTraceJournalDeterministic: with tracing on, both the journal bytes
// and the full rextrace analysis are byte-identical across GOMAXPROCS=1
// and GOMAXPROCS=8. The controller's parallel solves and the executor run
// inside, so this pins the whole causal-tracing stack, not just the
// renderers.
func TestTraceJournalDeterministic(t *testing.T) {
	j1 := traceCampaign(t, 1)
	j8 := traceCampaign(t, 8)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("trace journal differs across GOMAXPROCS: %d vs %d bytes", len(j1), len(j8))
	}
	r1, r8 := rextraceRender(t, j1), rextraceRender(t, j8)
	if r1 != r8 {
		t.Fatalf("rextrace output differs across GOMAXPROCS:\n--- 1 ---\n%s--- 8 ---\n%s", r1, r8)
	}
}

// TestTraceBlamesMigrationTail: the acceptance check for migration blame.
// Over a campaign journal, at least one during-migration query in the
// latency tail (at or above the sampled during-phase p99) must carry a
// blocked_by link naming a specific move Seq, and the rextrace blame
// report must name that move.
func TestTraceBlamesMigrationTail(t *testing.T) {
	journal := traceCampaign(t, 1)
	events, err := obs.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	traces := obs.BuildTraces(events)

	type blamed struct {
		latency float64
		ref     *obs.BlameRef
	}
	var during []blamed
	for _, tr := range traces {
		if tr.Root == nil || tr.Root.Op != obs.OpQuery || tr.Root.Mig != "during" {
			continue
		}
		b := blamed{latency: tr.Root.Duration()}
		for _, sp := range tr.Spans {
			if sp.Op == obs.OpLeg && sp.Blocked != nil {
				if b.ref == nil || sp.Blocked.Delay > b.ref.Delay {
					b.ref = sp.Blocked
				}
			}
		}
		during = append(during, b)
	}
	if len(during) == 0 {
		t.Fatal("no during-phase queries were sampled")
	}
	sort.Slice(during, func(i, j int) bool { return during[i].latency < during[j].latency })
	p99 := during[len(during)*99/100].latency

	var tail *obs.BlameRef
	for _, b := range during {
		if b.latency >= p99 && b.ref != nil {
			tail = b.ref
			break
		}
	}
	if tail == nil {
		t.Fatalf("no during-phase p99 query (>= %.6f over %d sampled) carries a blocked_by move link",
			p99, len(during))
	}
	if tail.Seq < 0 || tail.Round < 0 {
		t.Fatalf("tail blame link lacks a move identity: %+v", tail)
	}
	want := fmt.Sprintf("move r%d#%d", tail.Round, tail.Seq)
	if blame := obs.Blame(traces); !strings.Contains(blame, want) {
		t.Fatalf("blame report does not name %s:\n%s", want, blame)
	}
}

package cluster

import (
	"testing"

	"rexchange/internal/vec"
)

// vacantFixture builds a placement with a known vacant pattern: machines
// with even IDs host one shard each, odd IDs stay vacant.
func vacantFixture(t *testing.T, machines int) *Placement {
	t.Helper()
	c := &Cluster{}
	for m := 0; m < machines; m++ {
		c.Machines = append(c.Machines, Machine{
			ID: MachineID(m), Capacity: vec.Uniform(100), Speed: 1,
		})
	}
	for s := 0; s < (machines+1)/2; s++ {
		c.Shards = append(c.Shards, Shard{ID: ShardID(s), Static: vec.Uniform(1), Load: 1})
	}
	p := NewPlacement(c)
	for s := 0; s < len(c.Shards); s++ {
		if err := p.Place(ShardID(s), MachineID(2*s)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestEachVacantMatchesVacantMachines(t *testing.T) {
	p := vacantFixture(t, 17)
	want := p.VacantMachines()
	var got []MachineID
	p.EachVacant(func(m MachineID) { got = append(got, m) })
	if len(got) != len(want) || len(got) != p.NumVacant() {
		t.Fatalf("EachVacant visited %d machines, VacantMachines %d, NumVacant %d",
			len(got), len(want), p.NumVacant())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachVacant order diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}

	// Mutations must be reflected: fill one vacant machine, vacate another.
	if err := p.Remove(0); err != nil { // machine 0 becomes vacant
		t.Fatal(err)
	}
	if err := p.Place(0, 1); err != nil { // machine 1 stops being vacant
		t.Fatal(err)
	}
	got = got[:0]
	p.EachVacant(func(m MachineID) { got = append(got, m) })
	if len(got) != p.NumVacant() {
		t.Fatalf("EachVacant visited %d machines after mutation, NumVacant %d", len(got), p.NumVacant())
	}
	seen0 := false
	for _, m := range got {
		if m == 1 {
			t.Fatal("machine 1 reported vacant after hosting a shard")
		}
		if m == 0 {
			seen0 = true
		}
	}
	if !seen0 {
		t.Fatal("machine 0 not reported vacant after Remove")
	}
}

// TestEachVacantAllocFree guards the exchange phase's hot loop: visiting
// the vacant set must not allocate. (VacantMachines allocates its result
// slice by design; EachVacant is the allocation-free form.)
func TestEachVacantAllocFree(t *testing.T) {
	p := vacantFixture(t, 64)
	count := 0
	f := func(MachineID) { count++ }
	if allocs := testing.AllocsPerRun(200, func() { p.EachVacant(f) }); allocs != 0 {
		t.Fatalf("EachVacant allocates %.1f times per call, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("callback never invoked")
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/workload"
)

// bigFleetInstance builds an instance large enough to exercise the
// heap-based candidate selection (which only engages above 32 machines).
func bigFleetInstance(t *testing.T, machines int) *cluster.Placement {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = machines
	cfg.Shards = machines * 10
	cfg.TargetFill = 0.7
	cfg.Seed = 7
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Placement
}

// resultsBitIdentical fails unless a (delta kernel) and b (reference
// kernel) are indistinguishable: same final assignment, Float64bits-equal
// objective and trajectory, same search accounting. This is the golden
// equivalence contract the delta kernel must uphold.
func resultsBitIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
		t.Fatalf("%s: objective %v vs %v — not bit-identical", label, a.Objective, b.Objective)
	}
	aa, ba := a.Final.Assignment(), b.Final.Assignment()
	for s := range aa {
		if aa[s] != ba[s] {
			t.Fatalf("%s: shard %d assigned to %d vs %d", label, s, aa[s], ba[s])
		}
	}
	if a.Accepted != b.Accepted || a.RepairFailures != b.RepairFailures {
		t.Fatalf("%s: accounting diverged: accepted %d/%d, repair failures %d/%d",
			label, a.Accepted, b.Accepted, a.RepairFailures, b.RepairFailures)
	}
	if a.MovedShards != b.MovedShards {
		t.Fatalf("%s: moved %d vs %d", label, a.MovedShards, b.MovedShards)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("%s: trajectory length %d vs %d", label, len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if math.Float64bits(a.Trajectory[i]) != math.Float64bits(b.Trajectory[i]) {
			t.Fatalf("%s: trajectory[%d] %v vs %v", label, i, a.Trajectory[i], b.Trajectory[i])
		}
	}
}

// TestKernelEquivalence is the golden test for the delta kernel: for fixed
// seeds, the journal-based in-place kernel and the retained clone-and-rescan
// reference kernel must produce byte-identical results — every destroy ×
// repair operator pair, plus the full adaptive portfolio.
func TestKernelEquivalence(t *testing.T) {
	type opCase struct {
		name string
		ops  OperatorSet
	}
	var cases []opCase
	destroys := []struct {
		name string
		set  func(*OperatorSet)
	}{
		{"random", func(o *OperatorSet) { o.RandomRemove = true }},
		{"worst", func(o *OperatorSet) { o.WorstRemove = true }},
		{"related", func(o *OperatorSet) { o.RelatedRemove = true }},
		{"drain", func(o *OperatorSet) { o.DrainRemove = true }},
	}
	repairs := []struct {
		name string
		set  func(*OperatorSet)
	}{
		{"greedy", func(o *OperatorSet) { o.GreedyRepair = true }},
		{"regret", func(o *OperatorSet) { o.RegretRepair = true }},
	}
	for _, d := range destroys {
		for _, r := range repairs {
			var ops OperatorSet
			d.set(&ops)
			r.set(&ops)
			cases = append(cases, opCase{d.name + "+" + r.name, ops})
		}
	}
	cases = append(cases, opCase{"full-portfolio", DefaultConfig().Operators})

	for _, tc := range cases {
		for _, seed := range []int64{1, 17} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				p := smallInstance(t, seed, 2)
				cfg := quickConfig()
				cfg.Seed = seed
				cfg.Operators = tc.ops
				cfg.KeepTrajectory = true

				delta, err := New(cfg).Solve(p)
				if err != nil {
					t.Fatal(err)
				}
				refCfg := cfg
				refCfg.refKernel = true
				ref, err := New(refCfg).Solve(p)
				if err != nil {
					t.Fatal(err)
				}
				resultsBitIdentical(t, tc.name, delta, ref)
			})
		}
	}
}

// TestKernelEquivalenceParallel extends the golden contract to the restart
// portfolio: SolveParallel must pick bit-identical winners under both
// kernels.
func TestKernelEquivalenceParallel(t *testing.T) {
	p := smallInstance(t, 5, 2)
	cfg := quickConfig()
	cfg.KeepTrajectory = true

	delta, err := New(cfg).SolveParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.refKernel = true
	ref, err := New(refCfg).SolveParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "parallel", delta, ref)
	if delta.FailedRestarts != 0 || ref.FailedRestarts != 0 {
		t.Fatalf("unexpected failed restarts: %d/%d", delta.FailedRestarts, ref.FailedRestarts)
	}
}

// TestIncrementalObjectiveMatchesReference fuzzes the incremental objective
// against the full-rescan reference over random journaled mutation batches —
// including rejected (rolled back) batches, whose state must keep matching
// afterwards.
func TestIncrementalObjectiveMatchesReference(t *testing.T) {
	p := smallInstance(t, 23, 2)
	cfg := quickConfig()
	cfg.Seed = 23
	st := newState(cfg, p, 2)
	st.curObj = objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
	st.initIncremental()

	c := st.cur.Cluster()
	n := c.NumShards()
	for round := 0; round < 400; round++ {
		st.cur.BeginTxn()
		st.saveObjState()
		// Random batch: remove a handful of shards, re-place them anywhere
		// they statically fit (the incremental state must track any legal
		// mutation sequence, not just solver-shaped ones).
		batch := 1 + st.rng.Intn(6)
		for b := 0; b < batch; b++ {
			s := cluster.ShardID(st.rng.Intn(n))
			if st.cur.Home(s) == cluster.Unassigned {
				continue
			}
			if err := st.cur.Remove(s); err != nil {
				t.Fatal(err)
			}
			for try := 0; try < 8; try++ {
				m := cluster.MachineID(st.rng.Intn(c.NumMachines()))
				if st.cur.PlaceChecked(s, m) {
					break
				}
			}
		}
		st.syncTouched()
		got := st.evalIncremental()
		want := objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d: incremental %v vs reference %v", round, got, want)
		}
		// Alternate accept/reject so both paths stay exercised.
		if round%2 == 0 {
			st.cur.Commit()
		} else {
			st.rollbackIncremental()
			got := st.evalIncremental()
			want := objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("round %d: post-rollback incremental %v vs reference %v", round, got, want)
			}
		}
	}
}

// TestCandidateMachinesDistinct pins the dedupe fix: the candidate subset
// must never contain a machine twice (duplicate random extras used to
// silently shrink candidate diversity).
func TestCandidateMachinesDistinct(t *testing.T) {
	p := bigFleetInstance(t, 64)
	cfg := quickConfig()
	st := newState(cfg, p, 0)
	for round := 0; round < 50; round++ {
		cands := st.candidateMachines()
		if len(cands) != 32 {
			t.Fatalf("round %d: %d candidates, want 32", round, len(cands))
		}
		seen := map[cluster.MachineID]bool{}
		for _, m := range cands {
			if seen[m] {
				t.Fatalf("round %d: duplicate candidate machine %d", round, m)
			}
			seen[m] = true
		}
	}
}

// TestBestTwoMachinesFor checks the full-scan fallback against a brute
// force: c1/c2 must be the true lowest and second-lowest feasible insertion
// costs (the bug this replaces left c2 at +Inf, inflating every fallback
// regret to ~1e18).
func TestBestTwoMachinesFor(t *testing.T) {
	p := smallInstance(t, 31, 2)
	cfg := quickConfig()
	st := newState(cfg, p, 2)
	c := st.cur.Cluster()

	tested := 0
	for s := 0; s < c.NumShards(); s += 7 {
		sid := cluster.ShardID(s)
		if err := st.cur.Remove(sid); err != nil {
			t.Fatal(err)
		}
		_, c1, c2 := st.bestTwoMachinesFor(sid)

		var costs []float64
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if st.canInsert(sid, id) {
				costs = append(costs, st.insertCost(sid, id))
			}
		}
		lo, lo2 := math.Inf(1), math.Inf(1)
		for _, v := range costs {
			if v < lo {
				lo2 = lo
				lo = v
			} else if v < lo2 {
				lo2 = v
			}
		}
		// The scan breaks sub-epsilon cost ties by slack, so allow the
		// documented 1e-12 tie tolerance (the bug being pinned is 18 orders
		// of magnitude larger).
		if math.Abs(c1-lo) > 1e-9 {
			t.Fatalf("shard %d: c1 = %v, brute force %v", s, c1, lo)
		}
		if math.Abs(c2-lo2) > 1e-9 && !(math.IsInf(c2, 1) && math.IsInf(lo2, 1)) {
			t.Fatalf("shard %d: c2 = %v, brute force second-best %v", s, c2, lo2)
		}
		if len(costs) >= 2 && math.IsInf(c2, 1) {
			t.Fatalf("shard %d: c2 is +Inf with %d feasible machines", s, len(costs))
		}
		if err := st.cur.Place(sid, st.initial[sid]); err != nil {
			t.Fatal(err)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no shards tested")
	}
}

// TestReduceOutcomes covers the restart-failure accounting satellite.
func TestReduceOutcomes(t *testing.T) {
	res := func(obj float64) *Result { return &Result{Objective: obj} }

	best, err := reduceOutcomes([]outcome{
		{res(0.7), nil},
		{nil, errors.New("boom")},
		{res(0.5), nil},
		{nil, errors.New("bust")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Objective != 0.5 {
		t.Errorf("picked objective %v, want 0.5", best.Objective)
	}
	if best.FailedRestarts != 2 {
		t.Errorf("FailedRestarts = %d, want 2", best.FailedRestarts)
	}

	_, err = reduceOutcomes([]outcome{
		{nil, errors.New("first")},
		{nil, errors.New("second")},
	})
	if err == nil {
		t.Fatal("all-failed portfolio must error")
	}
}

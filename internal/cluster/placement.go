package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"rexchange/internal/vec"
)

// Placement is a (possibly partial) assignment of shards to machines with
// incrementally maintained per-machine aggregates. All mutating operations
// are O(1); Clone is O(shards + machines). Speculative mutation batches can
// be undone in O(mutations) via the BeginTxn/Commit/Rollback journal
// (txn.go) instead of cloning. Placement is not safe for concurrent
// mutation; parallel searches clone first. That single-owner discipline is
// machine-checked: rexlint's sharecheck analyzer forbids a Placement from
// escaping to a goroutine, channel, global, or second owner unless the
// hand-off site carries a reviewed //rexlint:transfer annotation.
//
//rexlint:owned
type Placement struct {
	c    *Cluster
	home []MachineID // per shard; Unassigned while removed
	used []vec.Vec   // per machine: static usage of hosted shards
	load []float64   // per machine: total load of hosted shards
	on   [][]ShardID // per machine: hosted shards (unordered)
	pos  []int       // per shard: index within on[home[s]]

	unassigned int //rexlint:nonneg — number of shards with home == Unassigned
	vacant     int //rexlint:nonneg — number of machines hosting no shards
	// groups[m] counts shards per anti-affinity group on machine m; nil
	// until a grouped shard lands there.
	groups []map[int]int

	// undo journal (see txn.go); records mutations while txnActive.
	txnActive bool
	txnLog    []txnRec
}

// NewPlacement creates an empty placement (all shards unassigned) for c.
func NewPlacement(c *Cluster) *Placement {
	p := &Placement{
		c:          c,
		home:       make([]MachineID, len(c.Shards)),
		used:       make([]vec.Vec, len(c.Machines)),
		load:       make([]float64, len(c.Machines)),
		on:         make([][]ShardID, len(c.Machines)),
		pos:        make([]int, len(c.Shards)),
		unassigned: len(c.Shards),
		vacant:     len(c.Machines),
		groups:     make([]map[int]int, len(c.Machines)),
	}
	for i := range p.home {
		p.home[i] = Unassigned
	}
	return p
}

// FromAssignment creates a placement from an explicit shard→machine mapping.
// Entries may be Unassigned. Capacity violations are permitted here (the
// caller may be describing an observed overloaded state); use Feasible to
// check.
func FromAssignment(c *Cluster, assign []MachineID) (*Placement, error) {
	if len(assign) != len(c.Shards) {
		return nil, fmt.Errorf("cluster: assignment has %d entries for %d shards", len(assign), len(c.Shards))
	}
	p := NewPlacement(c)
	for s, m := range assign {
		if m == Unassigned {
			continue
		}
		if m < 0 || int(m) >= len(c.Machines) {
			return nil, fmt.Errorf("cluster: shard %d assigned to invalid machine %d", s, m)
		}
		p.place(ShardID(s), m)
	}
	return p, nil
}

// Cluster returns the cluster this placement refers to.
func (p *Placement) Cluster() *Cluster { return p.c }

// Home returns the machine hosting shard s, or Unassigned.
func (p *Placement) Home(s ShardID) MachineID { return p.home[s] }

// Assignment returns a copy of the full shard→machine mapping.
func (p *Placement) Assignment() []MachineID {
	out := make([]MachineID, len(p.home))
	copy(out, p.home)
	return out
}

// Used returns machine m's current static resource usage.
func (p *Placement) Used(m MachineID) vec.Vec { return p.used[m] }

// Free returns machine m's remaining static capacity.
func (p *Placement) Free(m MachineID) vec.Vec {
	return p.c.Machines[m].Capacity.Sub(p.used[m])
}

// Load returns machine m's total hosted load.
func (p *Placement) Load(m MachineID) float64 { return p.load[m] }

// Utilization returns machine m's normalized load (load/speed).
func (p *Placement) Utilization(m MachineID) float64 {
	return p.load[m] / p.c.Machines[m].Speed
}

// Count returns the number of shards hosted on machine m.
func (p *Placement) Count(m MachineID) int { return len(p.on[m]) }

// ShardsOn returns the shards hosted on machine m. The returned slice is a
// copy and safe to retain.
func (p *Placement) ShardsOn(m MachineID) []ShardID {
	return append([]ShardID(nil), p.on[m]...)
}

// ShardAt returns the i-th shard hosted on machine m (0 ≤ i < Count(m)).
// The index is only stable while the placement is not mutated; hot paths
// use it to snapshot a machine's shards without allocating.
func (p *Placement) ShardAt(m MachineID, i int) ShardID { return p.on[m][i] }

// EachShardOn calls f for every shard on machine m. f must not mutate the
// placement.
func (p *Placement) EachShardOn(m MachineID, f func(ShardID)) {
	for _, s := range p.on[m] {
		f(s)
	}
}

// Unassigned returns the number of shards without a home.
func (p *Placement) UnassignedCount() int { return p.unassigned }

// IsVacant reports whether machine m hosts no shards.
func (p *Placement) IsVacant(m MachineID) bool { return len(p.on[m]) == 0 }

// NumVacant returns the number of machines hosting no shards, maintained in
// O(1) for the solver's vacancy-budget checks.
func (p *Placement) NumVacant() int { return p.vacant }

// VacantMachines returns the IDs of all machines hosting no shards. It
// allocates the (exactly sized) result slice; hot paths that only need to
// visit the vacant set should use EachVacant instead.
func (p *Placement) VacantMachines() []MachineID {
	ids := make([]MachineID, 0, p.vacant)
	p.EachVacant(func(m MachineID) { ids = append(ids, m) })
	return ids
}

// EachVacant calls f for every machine hosting no shards, in ascending
// machine-ID order. It allocates nothing (the cross-partition exchange
// phase calls it in its hot loop) and stops early once every vacant
// machine has been visited. f must not mutate the placement.
//
//rexlint:noalloc
func (p *Placement) EachVacant(f func(MachineID)) {
	remaining := p.vacant
	for m := 0; remaining > 0 && m < len(p.on); m++ {
		if len(p.on[m]) == 0 {
			//rexlint:ignore alloccheck the callback is the caller's; TestEachVacantAllocFree pins the hot-loop contract at runtime
			f(MachineID(m))
			remaining--
		}
	}
}

// CanPlace reports whether shard s fits on machine m: static capacities
// must hold and no replica of the same anti-affinity group may already be
// hosted there.
func (p *Placement) CanPlace(s ShardID, m MachineID) bool {
	sh := &p.c.Shards[s]
	if sh.Group != 0 && p.groups[m][sh.Group] > 0 {
		return false
	}
	return sh.Static.FitsWithin(p.used[m], p.c.Machines[m].Capacity)
}

// GroupCount returns how many shards of anti-affinity group g machine m
// hosts.
func (p *Placement) GroupCount(m MachineID, g int) int {
	return p.groups[m][g]
}

// place links shard s to machine m, updating aggregates. It assumes s is
// currently unassigned.
func (p *Placement) place(s ShardID, m MachineID) {
	if p.txnActive {
		p.txnLog = append(p.txnLog, txnRec{
			s: s, m: m, place: true,
			prevUsed: p.used[m], prevLoad: p.load[m],
		})
	}
	sh := &p.c.Shards[s]
	p.home[s] = m
	p.used[m] = p.used[m].Add(sh.Static)
	p.load[m] += sh.Load
	p.pos[s] = len(p.on[m])
	if len(p.on[m]) == 0 {
		//rexlint:ignore nonneg a machine with an empty hosted list is counted in vacant (MustInvariants recomputes both)
		p.vacant--
	}
	p.on[m] = append(p.on[m], s)
	if sh.Group != 0 {
		if p.groups[m] == nil {
			p.groups[m] = make(map[int]int)
		}
		p.groups[m][sh.Group]++
	}
	//rexlint:ignore nonneg place's caller checked home[s] == Unassigned, so s is counted in unassigned
	p.unassigned--
}

// unplace unlinks shard s from its machine, updating aggregates. It assumes
// s is currently assigned.
func (p *Placement) unplace(s ShardID) {
	m := p.home[s]
	if p.txnActive {
		p.txnLog = append(p.txnLog, txnRec{
			s: s, m: m, place: false, pos: p.pos[s],
			prevUsed: p.used[m], prevLoad: p.load[m],
		})
	}
	sh := &p.c.Shards[s]
	p.used[m] = p.used[m].Sub(sh.Static)
	p.load[m] -= sh.Load
	// swap-remove from on[m]
	i := p.pos[s]
	last := len(p.on[m]) - 1
	moved := p.on[m][last]
	p.on[m][i] = moved
	p.pos[moved] = i
	p.on[m] = p.on[m][:last]
	if last == 0 {
		p.vacant++
	}
	if sh.Group != 0 {
		p.groups[m][sh.Group]--
		if p.groups[m][sh.Group] == 0 {
			delete(p.groups[m], sh.Group)
		}
	}
	p.home[s] = Unassigned
	p.unassigned++
}

// Place assigns unassigned shard s to machine m without checking capacity.
// It returns an error if s is already assigned.
func (p *Placement) Place(s ShardID, m MachineID) error {
	if p.home[s] != Unassigned {
		return fmt.Errorf("cluster: shard %d already on machine %d", s, p.home[s])
	}
	p.place(s, m)
	return nil
}

// PlaceChecked assigns unassigned shard s to m only if it fits; it reports
// whether the placement happened.
func (p *Placement) PlaceChecked(s ShardID, m MachineID) bool {
	if p.home[s] != Unassigned || !p.CanPlace(s, m) {
		return false
	}
	p.place(s, m)
	return true
}

// Remove unassigns shard s. It returns an error if s is already unassigned.
func (p *Placement) Remove(s ShardID) error {
	if p.home[s] == Unassigned {
		return fmt.Errorf("cluster: shard %d is not assigned", s)
	}
	p.unplace(s)
	return nil
}

// Move reassigns shard s to machine m (unchecked). Moving to its current
// machine is a no-op.
func (p *Placement) Move(s ShardID, m MachineID) {
	if p.home[s] == m {
		return
	}
	if p.home[s] != Unassigned {
		p.unplace(s)
	}
	p.place(s, m)
}

// MoveChecked reassigns shard s to machine m only if m has room; it reports
// whether the move happened.
func (p *Placement) MoveChecked(s ShardID, m MachineID) bool {
	if p.home[s] == m {
		return true
	}
	if !p.CanPlace(s, m) {
		return false
	}
	p.Move(s, m)
	return true
}

// Clone returns a deep copy sharing the (immutable) cluster. The clone
// starts with no undo journal: cloning mid-transaction captures the current
// (possibly partially mutated) state, and rolling back the original does
// not affect the clone.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		c:          p.c,
		home:       append([]MachineID(nil), p.home...),
		used:       append([]vec.Vec(nil), p.used...),
		load:       append([]float64(nil), p.load...),
		on:         make([][]ShardID, len(p.on)),
		pos:        append([]int(nil), p.pos...),
		unassigned: p.unassigned,
		vacant:     p.vacant,
		groups:     make([]map[int]int, len(p.groups)),
	}
	for m := range p.on {
		q.on[m] = append([]ShardID(nil), p.on[m]...)
		if len(p.groups[m]) > 0 {
			g := make(map[int]int, len(p.groups[m]))
			for k, v := range p.groups[m] {
				g[k] = v
			}
			q.groups[m] = g
		}
	}
	return q
}

// Feasible reports whether every machine's static usage is within
// capacity, every shard is assigned, and no machine hosts two replicas of
// the same anti-affinity group.
func (p *Placement) Feasible() bool {
	if p.unassigned > 0 {
		return false
	}
	for m := range p.used {
		if !p.used[m].LEQ(p.c.Machines[m].Capacity.Add(vec.Uniform(1e-9))) {
			return false
		}
		for _, n := range p.groups[m] {
			if n > 1 {
				return false
			}
		}
	}
	return true
}

// Validate recomputes all aggregates from scratch and compares them with
// the incrementally maintained state, returning an error on any mismatch.
// It is used by tests and by debug assertions in the solver.
func (p *Placement) Validate() error {
	used := make([]vec.Vec, len(p.c.Machines))
	load := make([]float64, len(p.c.Machines))
	count := make([]int, len(p.c.Machines))
	unassigned := 0
	for s := range p.home {
		m := p.home[s]
		if m == Unassigned {
			unassigned++
			continue
		}
		sh := &p.c.Shards[s]
		used[m] = used[m].Add(sh.Static)
		load[m] += sh.Load
		count[m]++
	}
	if unassigned != p.unassigned {
		return fmt.Errorf("cluster: unassigned count %d, recomputed %d", p.unassigned, unassigned)
	}
	vacant := 0
	for m := range p.on {
		if len(p.on[m]) == 0 {
			vacant++
		}
	}
	if vacant != p.vacant {
		return fmt.Errorf("cluster: vacant count %d, recomputed %d", p.vacant, vacant)
	}
	for m := range used {
		if !used[m].AlmostEqual(p.used[m], 1e-6) {
			return fmt.Errorf("cluster: machine %d used %v, recomputed %v", m, p.used[m], used[m])
		}
		if math.Abs(load[m]-p.load[m]) > 1e-6 {
			return fmt.Errorf("cluster: machine %d load %g, recomputed %g", m, p.load[m], load[m])
		}
		if count[m] != len(p.on[m]) {
			return fmt.Errorf("cluster: machine %d hosts %d shards, recomputed %d", m, len(p.on[m]), count[m])
		}
	}
	for m := range p.on {
		for i, s := range p.on[m] {
			if p.home[s] != MachineID(m) {
				return fmt.Errorf("cluster: shard %d in on[%d] but home=%d", s, m, p.home[s])
			}
			if p.pos[s] != i {
				return fmt.Errorf("cluster: shard %d pos %d, want %d", s, p.pos[s], i)
			}
		}
	}
	groups := make([]map[int]int, len(p.c.Machines))
	for s := range p.home {
		m := p.home[s]
		g := p.c.Shards[s].Group
		if m == Unassigned || g == 0 {
			continue
		}
		if groups[m] == nil {
			groups[m] = make(map[int]int)
		}
		groups[m][g]++
	}
	for m := range groups {
		for g, n := range groups[m] {
			if p.groups[m][g] != n {
				return fmt.Errorf("cluster: machine %d group %d count %d, recomputed %d",
					m, g, p.groups[m][g], n)
			}
		}
		for g, n := range p.groups[m] {
			if n != 0 && groups[m][g] != n {
				return fmt.Errorf("cluster: machine %d group %d stale count %d", m, g, n)
			}
		}
	}
	return nil
}

// Utilizations returns every machine's load/speed as a slice (index =
// MachineID). Exchange machines are included.
func (p *Placement) Utilizations() []float64 {
	out := make([]float64, len(p.c.Machines))
	for m := range out {
		out[m] = p.load[m] / p.c.Machines[m].Speed
	}
	return out
}

// placementJSON is the serialized form of a placement: the cluster plus the
// assignment vector.
type placementJSON struct {
	Cluster    *Cluster    `json:"cluster"`
	Assignment []MachineID `json:"assignment"`
}

// Save writes the placement (cluster + assignment) as JSON to w.
func (p *Placement) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(placementJSON{Cluster: p.c, Assignment: p.home})
}

// SaveFile writes the placement as JSON to path.
func (p *Placement) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cluster: save placement: %w", err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return fmt.Errorf("cluster: save placement %s: %w", path, err)
	}
	return f.Close()
}

// LoadPlacement reads a placement (cluster + assignment) from r.
func LoadPlacement(r io.Reader) (*Placement, error) {
	var pj placementJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("cluster: load placement: %w", err)
	}
	if pj.Cluster == nil {
		return nil, fmt.Errorf("cluster: load placement: missing cluster")
	}
	if err := pj.Cluster.Validate(); err != nil {
		return nil, err
	}
	return FromAssignment(pj.Cluster, pj.Assignment)
}

// LoadPlacementFile reads a placement from path.
func LoadPlacementFile(path string) (*Placement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: load placement: %w", err)
	}
	defer f.Close()
	return LoadPlacement(f)
}

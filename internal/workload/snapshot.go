package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// This file implements the operator-facing snapshot format: two CSV files
// describing the observed datacenter state. It is the ingestion path for
// the "real data from actual datacenters" leg of the evaluation — anyone
// with production inventory can export these two tables and rebalance.
//
//	machines.csv: id,name,mem,disk,net,speed
//	shards.csv:   id,name,mem,disk,net,load,group,machine
//
// machine is the hosting machine id, or -1 for an unassigned shard.
// Headers are required; extra whitespace is not tolerated (CSV semantics).

// machineHeader and shardHeader are the expected CSV headers.
var (
	machineHeader = []string{"id", "name", "mem", "disk", "net", "speed"}
	shardHeader   = []string{"id", "name", "mem", "disk", "net", "load", "group", "machine"}
)

// SaveSnapshot writes the placement as the two-file CSV snapshot.
func SaveSnapshot(p *cluster.Placement, machines, shards io.Writer) error {
	c := p.Cluster()
	mw := csv.NewWriter(machines)
	if err := mw.Write(machineHeader); err != nil {
		return fmt.Errorf("workload: snapshot machines: %w", err)
	}
	for _, m := range c.Machines {
		rec := []string{
			strconv.Itoa(int(m.ID)), m.Name,
			fmtF(m.Capacity[vec.Memory]), fmtF(m.Capacity[vec.Disk]), fmtF(m.Capacity[vec.Net]),
			fmtF(m.Speed),
		}
		if err := mw.Write(rec); err != nil {
			return fmt.Errorf("workload: snapshot machines: %w", err)
		}
	}
	mw.Flush()
	if err := mw.Error(); err != nil {
		return fmt.Errorf("workload: snapshot machines: %w", err)
	}

	sw := csv.NewWriter(shards)
	if err := sw.Write(shardHeader); err != nil {
		return fmt.Errorf("workload: snapshot shards: %w", err)
	}
	for _, s := range c.Shards {
		rec := []string{
			strconv.Itoa(int(s.ID)), s.Name,
			fmtF(s.Static[vec.Memory]), fmtF(s.Static[vec.Disk]), fmtF(s.Static[vec.Net]),
			fmtF(s.Load), strconv.Itoa(s.Group),
			strconv.Itoa(int(p.Home(s.ID))),
		}
		if err := sw.Write(rec); err != nil {
			return fmt.Errorf("workload: snapshot shards: %w", err)
		}
	}
	sw.Flush()
	if err := sw.Error(); err != nil {
		return fmt.Errorf("workload: snapshot shards: %w", err)
	}
	return nil
}

// SaveSnapshotFiles writes the snapshot to two file paths.
func SaveSnapshotFiles(p *cluster.Placement, machinesPath, shardsPath string) error {
	mf, err := os.Create(machinesPath)
	if err != nil {
		return fmt.Errorf("workload: snapshot: %w", err)
	}
	defer mf.Close()
	sf, err := os.Create(shardsPath)
	if err != nil {
		return fmt.Errorf("workload: snapshot: %w", err)
	}
	defer sf.Close()
	if err := SaveSnapshot(p, mf, sf); err != nil {
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	return sf.Close()
}

// LoadSnapshot reads a two-file CSV snapshot into a placement. The cluster
// is validated; the assignment may be partial (machine = -1) and may be
// statically infeasible (an honest observation of an overloaded fleet).
func LoadSnapshot(machines, shards io.Reader) (*cluster.Placement, error) {
	mr := csv.NewReader(machines)
	mrecs, err := mr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: snapshot machines: %w", err)
	}
	if err := checkHeader(mrecs, machineHeader, "machines"); err != nil {
		return nil, err
	}
	c := &cluster.Cluster{}
	for i, rec := range mrecs[1:] {
		vals, err := parseFloats(rec[2:], 4)
		if err != nil {
			return nil, fmt.Errorf("workload: machines.csv row %d: %w", i+2, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil || id != len(c.Machines) {
			return nil, fmt.Errorf("workload: machines.csv row %d: ids must be 0..n-1 in order", i+2)
		}
		c.Machines = append(c.Machines, cluster.Machine{
			ID:       cluster.MachineID(id),
			Name:     rec[1],
			Capacity: vec.New(vals[0], vals[1], vals[2]),
			Speed:    vals[3],
		})
	}

	sr := csv.NewReader(shards)
	srecs, err := sr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: snapshot shards: %w", err)
	}
	if err := checkHeader(srecs, shardHeader, "shards"); err != nil {
		return nil, err
	}
	assign := make([]cluster.MachineID, 0, len(srecs)-1)
	for i, rec := range srecs[1:] {
		vals, err := parseFloats(rec[2:6], 4)
		if err != nil {
			return nil, fmt.Errorf("workload: shards.csv row %d: %w", i+2, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil || id != len(c.Shards) {
			return nil, fmt.Errorf("workload: shards.csv row %d: ids must be 0..n-1 in order", i+2)
		}
		group, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("workload: shards.csv row %d: bad group: %w", i+2, err)
		}
		home, err := strconv.Atoi(rec[7])
		if err != nil {
			return nil, fmt.Errorf("workload: shards.csv row %d: bad machine: %w", i+2, err)
		}
		c.Shards = append(c.Shards, cluster.Shard{
			ID:     cluster.ShardID(id),
			Name:   rec[1],
			Static: vec.New(vals[0], vals[1], vals[2]),
			Load:   vals[3],
			Group:  group,
		})
		assign = append(assign, cluster.MachineID(home))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return cluster.FromAssignment(c, assign)
}

// LoadSnapshotFiles reads a snapshot from two file paths.
func LoadSnapshotFiles(machinesPath, shardsPath string) (*cluster.Placement, error) {
	mf, err := os.Open(machinesPath)
	if err != nil {
		return nil, fmt.Errorf("workload: snapshot: %w", err)
	}
	defer mf.Close()
	sf, err := os.Open(shardsPath)
	if err != nil {
		return nil, fmt.Errorf("workload: snapshot: %w", err)
	}
	defer sf.Close()
	return LoadSnapshot(mf, sf)
}

// checkHeader verifies the first record matches the expected header.
func checkHeader(recs [][]string, want []string, which string) error {
	if len(recs) == 0 {
		return fmt.Errorf("workload: %s.csv is empty", which)
	}
	got := recs[0]
	if len(got) != len(want) {
		return fmt.Errorf("workload: %s.csv header has %d fields, want %d", which, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("workload: %s.csv header field %d is %q, want %q", which, i, got[i], want[i])
		}
	}
	return nil
}

// parseFloats parses exactly n leading fields as floats.
func parseFloats(fields []string, n int) ([]float64, error) {
	if len(fields) < n {
		return nil, fmt.Errorf("want %d numeric fields, got %d", n, len(fields))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// fmtF formats a float compactly for CSV.
func fmtF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

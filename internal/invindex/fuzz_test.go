package invindex

import (
	"testing"
)

// FuzzCompressRoundtrip derives a valid sorted postings list from the fuzz
// input (byte pairs become doc-gap and term frequency), compresses it, and
// checks that decompression and skip-based seeking reproduce it exactly.
// The raw input is also fed to vbyteGet, which must reject malformed bytes
// without panicking or over-reading.
func FuzzCompressRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1})
	f.Add([]byte{0, 0, 255, 255, 3, 7})
	multi := make([]byte, 4*blockSize+6) // spans several skip blocks
	for i := range multi {
		multi[i] = byte(i*7 + 1)
	}
	f.Add(multi)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder robustness on arbitrary bytes.
		if x, n := vbyteGet(data); n > len(data) {
			t.Fatalf("vbyteGet consumed %d of %d bytes (decoded %d)", n, len(data), x)
		}

		// Byte pairs → strictly increasing docs with positive TFs.
		var ps []Posting
		doc := DocID(-1)
		for i := 0; i+1 < len(data) && len(ps) < 4096; i += 2 {
			doc += DocID(data[i]) + 1
			ps = append(ps, Posting{Doc: doc, TF: int32(data[i+1]) + 1})
		}

		cl, err := Compress(ps)
		if err != nil {
			t.Fatalf("Compress rejected valid postings: %v", err)
		}
		got, err := cl.Decompress()
		if err != nil {
			t.Fatalf("Decompress: %v", err)
		}
		if len(got) != len(ps) {
			t.Fatalf("roundtrip length %d, want %d", len(got), len(ps))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("posting %d = %+v, want %+v", i, got[i], ps[i])
			}
		}

		if len(ps) == 0 {
			return
		}
		// SeekGE must land on the first posting ≥ target for targets below,
		// inside, and above the doc range.
		targets := []DocID{ps[0].Doc - 1, ps[len(ps)/2].Doc, ps[len(ps)-1].Doc + 1}
		for _, target := range targets {
			want := -1
			for i := range ps {
				if ps[i].Doc >= target {
					want = i
					break
				}
			}
			it := cl.Iterator()
			if err := it.SeekGE(target); err != nil {
				t.Fatalf("SeekGE(%d): %v", target, err)
			}
			if want == -1 {
				if it.Valid() {
					t.Fatalf("SeekGE(%d) landed on doc %d past the end", target, it.Doc())
				}
				continue
			}
			if !it.Valid() || it.Doc() != ps[want].Doc || it.TF() != ps[want].TF {
				t.Fatalf("SeekGE(%d) valid=%v doc=%d, want doc %d", target, it.Valid(), it.Doc(), ps[want].Doc)
			}
		}
	})
}

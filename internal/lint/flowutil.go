package lint

// Shared helpers for the dataflow-based analyzers: canonical keys for
// lvalue paths, directive parsing, and AST walks that respect function
// boundaries.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// exprKey canonicalizes an ident/selector path (`c`, `c.mu`, `st.status`)
// into a string key rooted at the types.Object of the leftmost identifier,
// so shadowed names never collide and the same path always produces the
// same key within a function. ok is false for expressions that are not
// simple paths (index expressions, calls, literals).
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("v%p", obj), true
	case *ast.SelectorExpr:
		base, ok := exprKey(info, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return exprKey(info, x.X)
	}
	return "", false
}

// rootObject returns the types.Object of the leftmost identifier of a
// path expression, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// renderPath renders an ident/selector path for diagnostics ("c.mu").
func renderPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderPath(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return renderPath(x.X)
	}
	return "<expr>"
}

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals: nested closures have their own control flow and are
// analyzed separately.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return fn(x)
	})
}

// inspectHeader visits n like inspectShallow but does not descend into
// nested statement bodies (blocks, case and comm clauses): when n is a
// compound statement stored whole in a CFG block — a RangeStmt in its loop
// head — the body statements live in their own blocks and visiting them
// here would process them twice.
func inspectHeader(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == n {
			return fn(x)
		}
		switch x.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.FuncLit:
			return false
		}
		return fn(x)
	})
}

// funcBodies yields every function body in the file together with its
// declaration (nil for function literals): top-level FuncDecls first, then
// any nested FuncLits, each exactly once.
func funcBodies(file *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(nil, lit.Body)
			}
			return true
		})
	}
}

// directives scans the comments of all files for `//rexlint:<name> ...`
// lines and returns the argument fields of each occurrence of name.
func directives(files []*ast.File, name string) [][]string {
	prefix := "rexlint:" + name
	var out [][]string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, prefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				out = append(out, strings.Fields(rest))
			}
		}
	}
	return out
}

// funcDirective extracts `//rexlint:<name> ...` lines from one function's
// doc comment.
func funcDirective(fd *ast.FuncDecl, name string) [][]string {
	if fd == nil || fd.Doc == nil {
		return nil
	}
	prefix := "rexlint:" + name
	var out [][]string
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, prefix)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		out = append(out, strings.Fields(rest))
	}
	return out
}

// derefStruct unwraps pointers and named types down to a struct type, or
// nil.
func derefStruct(t types.Type) *types.Struct {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			t = x.Underlying()
		case *types.Struct:
			return x
		default:
			return nil
		}
	}
}

// blockFallsToExit reports whether b flows into the synthetic exit block
// without an explicit return/panic node of its own — the implicit return
// at the closing brace.
func blockFallsToExit(g *CFG, b *Block, info *types.Info) bool {
	toExit := false
	for _, e := range b.Succs {
		if e.To == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	for _, n := range b.Nodes {
		if isFlowExit(info, n) {
			return false
		}
	}
	return true
}

// lastPos picks a report position for a fall-off-the-end block: its last
// node, or the body's closing brace when the block is empty.
func lastPos(b *Block, body *ast.BlockStmt) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].Pos()
	}
	return body.Rbrace
}

// forEachAccess classifies, within one straight-line node, which selector
// expressions are written (assignment LHS, ++/--, or address-taken) and
// calls fn for each selector access with its write-ness.
func forEachAccess(n ast.Node, fn func(sel *ast.SelectorExpr, write bool)) {
	writes := map[ast.Expr]bool{}
	// markWrite records e and, for index/deref targets like `s.m[k]` or
	// `*s.p`, the underlying base path as written.
	var markWrite func(e ast.Expr)
	markWrite = func(e ast.Expr) {
		e = ast.Unparen(e)
		writes[e] = true
		switch x := e.(type) {
		case *ast.IndexExpr:
			markWrite(x.X)
		case *ast.StarExpr:
			markWrite(x.X)
		}
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markWrite(s.X)
			}
		}
		return true
	})
	inspectShallow(n, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			fn(sel, writes[sel])
		}
		return true
	})
}

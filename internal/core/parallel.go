package core

import (
	"fmt"
	"runtime"
	"sync"

	"rexchange/internal/cluster"
	"rexchange/internal/rng"
)

// Note: runtime.GOMAXPROCS is used only to cap worker concurrency (a pure
// throughput knob); it must never influence which searches run.

// DefaultRestarts is the portfolio width used when SolveParallel is called
// with restarts <= 0. It is a pinned constant — never derived from
// GOMAXPROCS or any other machine property — so that a defaulted portfolio
// runs the same set of searches on every host. (The pre-fix behaviour
// defaulted to GOMAXPROCS, which silently violated the documented
// determinism contract: a 1-core box would even collapse to a single
// undetected restart via the restarts == 1 shortcut.)
const DefaultRestarts = 4

// SolveParallel runs `restarts` independent LNS searches concurrently —
// same configuration, decorrelated seeds — and returns the best result by
// solver objective. LNS is embarrassingly parallel across restarts and the
// placement state is cloned per worker, so speedup is near-linear until
// memory bandwidth binds. The input placement is shared read-only and
// never modified. restarts <= 0 selects the pinned DefaultRestarts.
//
// Determinism: for a fixed (Config.Seed, restarts) the set of searches and
// the returned result are reproducible regardless of scheduling — and of
// GOMAXPROCS, including on the defaulted path — because selection uses the
// objective with the restart index as tie-breaker.
//
// Individual restart failures do not abort the portfolio: the best
// successful result is returned with Result.FailedRestarts counting the
// losses, and an error is returned only when every restart failed.
func (sv *Solver) SolveParallel(p *cluster.Placement, restarts int) (*Result, error) {
	if restarts <= 0 {
		restarts = DefaultRestarts
	}
	if restarts == 1 {
		return sv.Solve(p)
	}

	outcomes := make([]outcome, restarts)
	var wg sync.WaitGroup
	// Cap concurrent workers at GOMAXPROCS: each clones the placement and
	// more parallelism than cores only adds memory pressure.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < restarts; i++ {
		wg.Add(1)
		//rexlint:transfer workers read p only; Solve clones before mutating (newState)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := sv.cfg
			cfg.Seed = rng.WorkerSeed(sv.cfg.Seed, i)
			res, err := New(cfg).Solve(p)
			outcomes[i] = outcome{res, err}
		}(i)
	}
	wg.Wait()
	return reduceOutcomes(outcomes)
}

// outcome is one restart's result in the portfolio.
type outcome struct {
	res *Result
	err error
}

// Seed derivation lives in internal/rng: rng.WorkerSeed keeps restart 0 on
// the base seed (the portfolio always contains the plain single run) and
// splitmix64-decorrelates the rest; rng.CellSeed extends the construction
// to the partitioned solver's (round, partition) grid. The
// pairwise-distinctness regression tests (including the historical
// stride-collision shape) moved to internal/rng with the helpers.

// reduceOutcomes selects the best successful restart by objective (ties
// resolved by restart index, never completion order, preserving the
// determinism contract). Partially failed portfolios are not silent: the
// number of failed restarts is recorded in the winner's FailedRestarts so
// callers can detect a degraded portfolio. Only when every restart fails
// does the reduction return an error (wrapping the first, by index).
func reduceOutcomes(outcomes []outcome) (*Result, error) {
	var best *Result
	var firstErr error
	failed := 0
	for i := range outcomes {
		o := outcomes[i]
		if o.err != nil {
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if best == nil || o.res.Objective < best.Objective {
			best = o.res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: all %d restarts failed: %w", len(outcomes), firstErr)
	}
	best.FailedRestarts = failed
	return best, nil
}

package cluster

import (
	"testing"

	"rexchange/internal/vec"
)

// groupCluster builds 3 machines and a replicated shard pair (group 1)
// plus one free shard.
func groupCluster() *Cluster {
	return &Cluster{
		Machines: []Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 2, Group: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 2, Group: 1},
			{ID: 2, Static: vec.Uniform(1), Load: 1},
		},
	}
}

func TestAntiAffinityCanPlace(t *testing.T) {
	c := groupCluster()
	p := NewPlacement(c)
	if err := p.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	if p.CanPlace(1, 0) {
		t.Error("replica must not co-locate with its sibling")
	}
	if !p.CanPlace(1, 1) {
		t.Error("replica should fit on another machine")
	}
	if !p.CanPlace(2, 0) {
		t.Error("ungrouped shard is unaffected by the group")
	}
	if p.GroupCount(0, 1) != 1 || p.GroupCount(1, 1) != 0 {
		t.Errorf("group counts wrong: %d/%d", p.GroupCount(0, 1), p.GroupCount(1, 1))
	}
}

func TestAntiAffinityMoveBookkeeping(t *testing.T) {
	c := groupCluster()
	p, err := FromAssignment(c, []MachineID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatal("spread replicas should be feasible")
	}
	p.Move(0, 2) // shard 0 joins machine 2 (with ungrouped shard 2) — fine
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.CanPlace(1, 2) {
		t.Error("machine 2 now hosts group 1")
	}
	p.Move(0, 0) // back
	if !p.CanPlace(1, 2) {
		t.Error("group count not released after move away")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleDetectsCollocatedReplicas(t *testing.T) {
	c := groupCluster()
	// Force both replicas onto machine 0 via unchecked ops.
	p, err := FromAssignment(c, []MachineID{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible() {
		t.Error("co-located replicas must be infeasible")
	}
}

func TestCloneCopiesGroups(t *testing.T) {
	c := groupCluster()
	p, _ := FromAssignment(c, []MachineID{0, 1, 2})
	q := p.Clone()
	q.Move(0, 2)
	if p.GroupCount(2, 1) != 0 {
		t.Error("clone group mutation leaked")
	}
	if q.GroupCount(2, 1) != 1 {
		t.Error("clone lost group move")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

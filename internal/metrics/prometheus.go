package metrics

import (
	"fmt"
	"io"
	"strconv"

	"rexchange/internal/vec"
)

// promGauge is one exposed gauge: name, help text, and the value extractor.
var promGauges = []struct {
	name string
	help string
	val  func(r Report) float64
}{
	{"rex_machines", "Number of serving (non-vacant) machines.", func(r Report) float64 { return float64(r.Machines) }},
	{"rex_vacant_machines", "Number of machines hosting no shards.", func(r Report) float64 { return float64(r.Vacant) }},
	{"rex_max_util", "Highest load/speed among serving machines.", func(r Report) float64 { return r.MaxUtil }},
	{"rex_min_util", "Lowest load/speed among serving machines.", func(r Report) float64 { return r.MinUtil }},
	{"rex_mean_util", "Capacity-weighted ideal utilization.", func(r Report) float64 { return r.MeanUtil }},
	{"rex_imbalance", "MaxUtil/MeanUtil; 1.0 is perfect balance.", func(r Report) float64 { return r.Imbalance }},
	{"rex_util_stddev", "Standard deviation of per-machine utilization.", func(r Report) float64 { return r.StdDev }},
	{"rex_util_cv", "Coefficient of variation of per-machine utilization.", func(r Report) float64 { return r.CV }},
	{"rex_util_gini", "Gini coefficient of per-machine utilization.", func(r Report) float64 { return r.Gini }},
}

// WritePrometheus emits the report in the Prometheus text exposition format
// (version 0.0.4): every Report field as a #-annotated gauge, with the
// per-resource static pressure as one labelled family. It backs rexd's
// /metrics endpoint and works with any scraper.
func WritePrometheus(w io.Writer, r Report) error {
	for _, g := range promGauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			g.name, g.help, g.name, g.name, promFloat(g.val(r))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP rex_static_pressure Max used/capacity over machines, per static resource.\n# TYPE rex_static_pressure gauge\n"); err != nil {
		return err
	}
	for res := 0; res < vec.NumResources; res++ {
		if _, err := fmt.Fprintf(w, "rex_static_pressure{resource=%q} %s\n",
			vec.Resource(res).String(), promFloat(r.StaticPressure[res])); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trip representation; integers without exponent).
func promFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

package core

import (
	"math"
	"runtime"
	"testing"
)

// TestSolveParallelDeterministicAcrossGOMAXPROCS pins the determinism
// contract the rexlint suite exists to protect: for a fixed seed,
// SolveParallel must produce a byte-identical assignment and bit-identical
// objective regardless of how much real parallelism the runtime provides.
// The solver's worker results are reduced by worker index, not completion
// order, so scheduling must not be observable.
func TestSolveParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	inst := smallInstance(t, 99, 2)
	cfg := quickConfig()
	cfg.Seed = 424242

	run := func(procs, restarts int) ([]int32, float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := New(cfg).SolveParallel(inst, restarts)
		if err != nil {
			t.Fatalf("SolveParallel with GOMAXPROCS=%d: %v", procs, err)
		}
		assign := res.Final.Assignment()
		out := make([]int32, len(assign))
		for i, m := range assign {
			out[i] = int32(m)
		}
		return out, res.Objective
	}

	serialAssign, serialObj := run(1, 4)
	parallelAssign, parallelObj := run(8, 4)

	if math.Float64bits(serialObj) != math.Float64bits(parallelObj) {
		t.Errorf("objective differs across GOMAXPROCS: %v (serial) vs %v (parallel)",
			serialObj, parallelObj)
	}
	if len(serialAssign) != len(parallelAssign) {
		t.Fatalf("assignment lengths differ: %d vs %d", len(serialAssign), len(parallelAssign))
	}
	for s := range serialAssign {
		if serialAssign[s] != parallelAssign[s] {
			t.Fatalf("shard %d assigned to %d (serial) vs %d (parallel)",
				s, serialAssign[s], parallelAssign[s])
		}
	}

	// The defaulted path (restarts <= 0) must be just as deterministic:
	// the default portfolio width is the pinned DefaultRestarts constant,
	// never GOMAXPROCS, so a 1-core box and an 8-core box run the same
	// searches. (Before the fix, restarts=0 meant GOMAXPROCS restarts, and
	// a 1-core box even skipped seed decorrelation entirely through the
	// restarts == 1 shortcut.)
	defSerialAssign, defSerialObj := run(1, 0)
	defParallelAssign, defParallelObj := run(8, 0)
	if math.Float64bits(defSerialObj) != math.Float64bits(defParallelObj) {
		t.Errorf("defaulted-restarts objective differs across GOMAXPROCS: %v vs %v",
			defSerialObj, defParallelObj)
	}
	for s := range defSerialAssign {
		if defSerialAssign[s] != defParallelAssign[s] {
			t.Fatalf("defaulted restarts: shard %d assigned to %d (serial) vs %d (parallel)",
				s, defSerialAssign[s], defParallelAssign[s])
		}
	}
	if DefaultRestarts == 4 {
		// With the default width equal to this test's explicit width, the
		// defaulted portfolio must be the explicit one exactly.
		if math.Float64bits(defSerialObj) != math.Float64bits(serialObj) {
			t.Errorf("defaulted portfolio diverges from explicit restarts=4: %v vs %v",
				defSerialObj, serialObj)
		}
	}

	// The same run repeated must also be identical to itself (guards
	// against hidden global state between invocations).
	againAssign, againObj := run(8, 4)
	if math.Float64bits(againObj) != math.Float64bits(parallelObj) {
		t.Errorf("objective differs between identical runs: %v vs %v", againObj, parallelObj)
	}
	for s := range againAssign {
		if againAssign[s] != parallelAssign[s] {
			t.Fatalf("shard %d differs between identical runs: %d vs %d",
				s, againAssign[s], parallelAssign[s])
		}
	}
}

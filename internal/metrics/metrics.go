// Package metrics computes load-balance quality measures over a placement:
// maximum and mean machine utilization, the max/mean imbalance ratio that is
// the paper's primary objective, dispersion statistics, and per-resource
// static pressure. Vacant machines are excluded from load statistics —
// machines being handed back as compensation serve no queries — but their
// count is reported.
package metrics

import (
	"fmt"
	"strings"

	"rexchange/internal/cluster"
	"rexchange/internal/stats"
	"rexchange/internal/vec"
)

// Report summarizes the balance quality of a placement.
type Report struct {
	// Machines is the number of serving (non-vacant) machines.
	Machines int
	// Vacant is the number of machines hosting no shards.
	Vacant int

	// MaxUtil is the highest load/speed among serving machines — the
	// normalized makespan minimized by the IP objective.
	MaxUtil float64
	// MinUtil is the lowest load/speed among serving machines.
	MinUtil float64
	// MeanUtil is the load-capacity-weighted ideal utilization:
	// totalLoad / totalSpeed over serving machines.
	MeanUtil float64
	// Imbalance is MaxUtil/MeanUtil (1.0 = perfect balance).
	Imbalance float64
	// StdDev and CV are dispersion of per-machine utilization.
	StdDev float64
	CV     float64
	// Gini is the Gini coefficient of per-machine utilization.
	Gini float64

	// StaticPressure is, per resource, the maximum used/capacity over all
	// machines (how close the tightest machine is to a static limit).
	StaticPressure vec.Vec
}

// Compute builds a Report for placement p. Machines hosting no shards are
// excluded from utilization statistics but counted in Vacant.
func Compute(p *cluster.Placement) Report {
	c := p.Cluster()
	var utils []float64
	var totalLoad, totalSpeed float64
	var pressure vec.Vec
	vacant := 0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if p.IsVacant(id) {
			vacant++
			continue
		}
		u := p.Utilization(id)
		utils = append(utils, u)
		totalLoad += p.Load(id)
		totalSpeed += c.Machines[m].Speed
		used := p.Used(id)
		capV := c.Machines[m].Capacity
		for r := 0; r < vec.NumResources; r++ {
			if capV[r] > 0 {
				if ratio := used[r] / capV[r]; ratio > pressure[r] {
					pressure[r] = ratio
				}
			} else if used[r] > 0 {
				pressure[r] = 1
			}
		}
	}
	rep := Report{
		Machines:       len(utils),
		Vacant:         vacant,
		StaticPressure: pressure,
	}
	if len(utils) == 0 {
		return rep
	}
	rep.MaxUtil = stats.Max(utils)
	rep.MinUtil = stats.Min(utils)
	if totalSpeed > 0 {
		rep.MeanUtil = totalLoad / totalSpeed
	}
	if rep.MeanUtil > 0 {
		rep.Imbalance = rep.MaxUtil / rep.MeanUtil
	} else {
		rep.Imbalance = 1
	}
	rep.StdDev = stats.StdDev(utils)
	rep.CV = stats.CV(utils)
	rep.Gini = stats.Gini(utils)
	return rep
}

// String renders the report as a one-line summary used by CLI output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machines=%d vacant=%d max=%.4f mean=%.4f imb=%.4f cv=%.4f gini=%.4f pressure=%s",
		r.Machines, r.Vacant, r.MaxUtil, r.MeanUtil, r.Imbalance, r.CV, r.Gini, r.StaticPressure)
	return b.String()
}

// Improvement summarizes before→after change of the primary objective.
// Positive values mean the rebalance helped.
type Improvement struct {
	Before, After Report
}

// ImbalanceDrop returns before.Imbalance − after.Imbalance.
func (i Improvement) ImbalanceDrop() float64 { return i.Before.Imbalance - i.After.Imbalance }

// MaxUtilDrop returns before.MaxUtil − after.MaxUtil.
func (i Improvement) MaxUtilDrop() float64 { return i.Before.MaxUtil - i.After.MaxUtil }

// RelativeImprovement returns the fractional reduction of the gap between
// Imbalance and the ideal 1.0: (before−after)/(before−1). It is 1 for a
// perfect rebalance, 0 for no change, and 0 when the initial placement was
// already perfectly balanced.
func (i Improvement) RelativeImprovement() float64 {
	gap := i.Before.Imbalance - 1
	if gap <= 0 {
		return 0
	}
	return (i.Before.Imbalance - i.After.Imbalance) / gap
}

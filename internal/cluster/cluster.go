// Package cluster models a search-engine datacenter: machines with static
// resource capacities and a load-serving speed, index shards with static
// demands and dynamic query load, and placements (shard→machine assignments)
// with O(1) incremental accounting for the rebalancing search.
//
// The model follows the paper's setting: static resources (memory, disk,
// network) are hard constraints — and during a shard move they are consumed
// on both endpoints simultaneously — while the scalar query load is the
// quantity being balanced.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rexchange/internal/vec"
)

// ShardID identifies a shard; it is the shard's index in Cluster.Shards.
type ShardID int

// MachineID identifies a machine; it is the machine's index in
// Cluster.Machines.
type MachineID int

// Unassigned marks a shard with no home machine (e.g. mid-destroy during
// large neighborhood search).
const Unassigned MachineID = -1

// Shard is one index shard: the unit of placement and migration.
type Shard struct {
	ID     ShardID `json:"id"`
	Name   string  `json:"name,omitempty"`
	Static vec.Vec `json:"static"` // memory/disk/net occupancy (hard constraints)
	Load   float64 `json:"load"`   // dynamic query load (balanced quantity)
	// Group is the shard's anti-affinity group: shards sharing a nonzero
	// Group are replicas of the same logical shard and must live on
	// distinct machines. 0 means unreplicated.
	Group int `json:"group,omitempty"`
}

// Machine is one server. Speed expresses heterogeneous serving capacity:
// a machine's utilization is load/Speed, so balancing targets equal
// utilization rather than equal raw load.
type Machine struct {
	ID       MachineID `json:"id"`
	Name     string    `json:"name,omitempty"`
	Capacity vec.Vec   `json:"capacity"`
	Speed    float64   `json:"speed"`
	Exchange bool      `json:"exchange,omitempty"` // borrowed exchange machine
}

// Cluster is an immutable instance description: the machine fleet and the
// shard population. Placements reference a Cluster and never mutate it.
type Cluster struct {
	Machines []Machine `json:"machines"`
	Shards   []Shard   `json:"shards"`
}

// Validate checks internal consistency: IDs match indices, capacities and
// speeds are positive, demands non-negative.
func (c *Cluster) Validate() error {
	for i, m := range c.Machines {
		if int(m.ID) != i {
			return fmt.Errorf("cluster: machine at index %d has ID %d", i, m.ID)
		}
		if !(vec.Vec{}).LEQ(m.Capacity) {
			return fmt.Errorf("cluster: machine %d has negative capacity %v", i, m.Capacity)
		}
		if m.Speed <= 0 {
			return fmt.Errorf("cluster: machine %d has non-positive speed %g", i, m.Speed)
		}
	}
	for i, s := range c.Shards {
		if int(s.ID) != i {
			return fmt.Errorf("cluster: shard at index %d has ID %d", i, s.ID)
		}
		if !s.Static.NonNegative() {
			return fmt.Errorf("cluster: shard %d has negative demand %v", i, s.Static)
		}
		if s.Load < 0 {
			return fmt.Errorf("cluster: shard %d has negative load %g", i, s.Load)
		}
	}
	return nil
}

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return len(c.Machines) }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.Shards) }

// TotalLoad returns the sum of all shard loads.
func (c *Cluster) TotalLoad() float64 {
	t := 0.0
	for i := range c.Shards {
		t += c.Shards[i].Load
	}
	return t
}

// TotalSpeed returns the sum of machine speeds.
func (c *Cluster) TotalSpeed() float64 {
	t := 0.0
	for i := range c.Machines {
		t += c.Machines[i].Speed
	}
	return t
}

// TotalStatic returns the element-wise sum of shard static demands.
func (c *Cluster) TotalStatic() vec.Vec {
	var t vec.Vec
	for i := range c.Shards {
		t = t.Add(c.Shards[i].Static)
	}
	return t
}

// TotalCapacity returns the element-wise sum of machine capacities.
func (c *Cluster) TotalCapacity() vec.Vec {
	var t vec.Vec
	for i := range c.Machines {
		t = t.Add(c.Machines[i].Capacity)
	}
	return t
}

// ExchangeMachines returns the IDs of machines flagged as borrowed exchange
// machines.
func (c *Cluster) ExchangeMachines() []MachineID {
	var ids []MachineID
	for i := range c.Machines {
		if c.Machines[i].Exchange {
			ids = append(ids, MachineID(i))
		}
	}
	return ids
}

// WithExchange returns a new Cluster extended with k borrowed exchange
// machines, each with the given capacity and speed. The original cluster is
// not modified. The new machines carry Exchange=true and IDs following the
// existing fleet.
func (c *Cluster) WithExchange(k int, capacity vec.Vec, speed float64) *Cluster {
	nc := &Cluster{
		Machines: make([]Machine, 0, len(c.Machines)+k),
		Shards:   c.Shards, // shards are immutable; safe to share
	}
	nc.Machines = append(nc.Machines, c.Machines...)
	for i := 0; i < k; i++ {
		id := MachineID(len(nc.Machines))
		nc.Machines = append(nc.Machines, Machine{
			ID:       id,
			Name:     fmt.Sprintf("exchange-%d", i),
			Capacity: capacity,
			Speed:    speed,
			Exchange: true,
		})
	}
	return nc
}

// Save writes the cluster as JSON to w.
func (c *Cluster) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c)
}

// SaveFile writes the cluster as JSON to path.
func (c *Cluster) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cluster: save: %w", err)
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return fmt.Errorf("cluster: save %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a JSON cluster from r and validates it.
func Load(r io.Reader) (*Cluster, error) {
	var c Cluster
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("cluster: load: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadFile reads a JSON cluster from path and validates it.
func LoadFile(path string) (*Cluster, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}

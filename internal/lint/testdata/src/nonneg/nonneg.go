// Fixture for the nonneg analyzer: a miniature move executor whose
// in-flight reservation counter is declared non-negative. badFinish is a
// faithful reconstruction of the PR-4 executor bug: the error path
// released a reservation that the success path had already released, so
// the counter went negative. The near-miss negatives show what the proof
// accepts: guard-refined decrements, balanced reserve/release in one body,
// a callee increment folded through its summary, and a discharged
// //rexlint:requires precondition.
package nonneg

type exec struct {
	inflight int //rexlint:nonneg
	pending  int //rexlint:nonneg
}

func failed() bool { return false }

// badFinish double-releases: after the guarded decrement the proven lower
// bound is back to zero, so the error-path decrement can go negative.
func (e *exec) badFinish() {
	if e.inflight > 0 {
		e.inflight--
		if failed() {
			e.inflight-- // want `e\.inflight may go negative: decrement of //rexlint:nonneg counter at proven lower bound 0`
		}
	}
}

// unguarded decrements at entry, where nothing is proven.
func (e *exec) unguarded() {
	e.pending-- // want `e\.pending may go negative: decrement of //rexlint:nonneg counter at proven lower bound 0`
}

// bigStep decrements by more than the guard proves.
func (e *exec) bigStep() {
	if e.pending > 0 {
		e.pending -= 2 // want `e\.pending may go negative: decrement by 2 at proven lower bound 1`
	}
}

// unprovable subtracts a run-time amount the proof cannot bound.
func (e *exec) unprovable(n int) {
	if e.pending > 0 {
		e.pending -= n // want `e\.pending may go negative: decrement of //rexlint:nonneg counter by a non-constant amount cannot be proven`
	}
}

// negativeReset assigns a negative constant outright.
func (e *exec) negativeReset() {
	e.pending = -1 // want `//rexlint:nonneg counter e\.pending assigned negative constant -1`
}

// guarded is the textbook proven decrement: clean.
func (e *exec) guarded() {
	if e.inflight > 0 {
		e.inflight--
	}
}

// balanced reserves then releases in one body; the local bound covers the
// decrement: clean.
func (e *exec) balanced() {
	e.inflight++
	e.inflight--
}

// reserve's summary guarantees a net +1, which callers fold in.
func (e *exec) reserve() { e.inflight++ }

// foldedRelease is proven through reserve's summary: clean.
func (e *exec) foldedRelease() {
	e.reserve()
	e.inflight--
}

// drainOne may only run on a non-empty executor.
//
//rexlint:requires pending>=1
func (e *exec) drainOne() {
	e.pending--
}

// drainAll discharges the precondition with the loop guard: clean.
func (e *exec) drainAll() {
	for e.pending > 0 {
		e.drainOne()
	}
}

// drainBlind calls drainOne without establishing the precondition.
func (e *exec) drainBlind() {
	e.drainOne() // want `call to .*drainOne requires pending >= 1 \(//rexlint:requires\); caller's proven lower bound is 0`
}

// localCopy tracks a derived local under the same invariant.
func (e *exec) localCopy() int {
	remaining := e.pending
	visited := 0
	for remaining > 0 {
		remaining--
		visited++
	}
	return visited
}

// waived documents an invariant the checker cannot see; the suppression
// must absorb the finding and count as used.
func (e *exec) waived() {
	//rexlint:ignore nonneg every waived call pairs with a prior reserve on the single control goroutine
	e.inflight--
}

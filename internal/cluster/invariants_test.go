package cluster

import (
	"strings"
	"testing"

	"rexchange/internal/vec"
)

// groupedCluster is testCluster with shards 1 and 2 made replicas of the
// same logical shard, so replica-distinctness is exercised.
func groupedCluster() *Cluster {
	c := testCluster()
	c.Shards[1].Group = 7
	c.Shards[2].Group = 7
	return c
}

func TestCheckInvariantsCleanStates(t *testing.T) {
	c := groupedCluster()

	// Empty placement: all shards unassigned is a legal mid-solve state.
	p := NewPlacement(c)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("empty placement: %v", err)
	}

	// Partial and complete placements built through the public API.
	if err := p.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("partial placement: %v", err)
	}
	for s, m := range map[ShardID]MachineID{1: 0, 2: 1, 3: 2} {
		if err := p.Place(s, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("complete placement: %v", err)
	}
	p.Move(3, 1)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after move: %v", err)
	}
}

func TestCheckInvariantsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Placement)
		wantSub string
	}{
		{
			name:    "stale used vector",
			corrupt: func(p *Placement) { p.used[0] = p.used[0].Add(vec.New(1, 0, 0)) },
			wantSub: "used",
		},
		{
			name:    "stale load aggregate",
			corrupt: func(p *Placement) { p.load[1] += 1 },
			wantSub: "load",
		},
		{
			name:    "home/on mismatch",
			corrupt: func(p *Placement) { p.home[0] = 1 },
			wantSub: "recomputed",
		},
		{
			name:    "unassigned counter drift",
			corrupt: func(p *Placement) { p.unassigned++ },
			wantSub: "unassigned",
		},
		{
			name: "capacity overflow",
			corrupt: func(p *Placement) {
				// Force shard 2 (static 4,4,4) onto the small machine 2
				// (capacity 4,4,4) on top of shard 3, bypassing CanPlace.
				p.unplace(2)
				p.place(2, 2)
			},
			wantSub: "exceeds capacity",
		},
		{
			name: "replica collision",
			corrupt: func(p *Placement) {
				// Both replicas of group 7 onto machine 0, bypassing CanPlace.
				p.unplace(2)
				p.place(2, 0)
			},
			wantSub: "replicas of group 7",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := groupedCluster()
			p, err := FromAssignment(c, []MachineID{0, 0, 1, 2})
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(p)
			err = p.CheckInvariants()
			if err == nil {
				t.Fatal("CheckInvariants passed on corrupted placement")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestMustInvariantsPanics(t *testing.T) {
	c := testCluster()
	p, err := FromAssignment(c, []MachineID{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	p.MustInvariants("test hook") // clean: must not panic

	p.load[0] += 5
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustInvariants did not panic on corrupted placement")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "test hook") {
			t.Errorf("panic %v does not carry the context string", r)
		}
	}()
	p.MustInvariants("test hook")
}

package core

import (
	"math"

	"rexchange/internal/cluster"
)

// objective scores a placement: lower is better.
//
//	obj = maxUtil + spreadWeight·rmsUtil + movePenalty·movedFraction
//
// maxUtil (the normalized makespan over serving machines) is the paper's
// IP objective T; the RMS term orders solutions with equal maxima by how
// evenly the remaining load is spread; the move term charges reassignment
// volume relative to initial (nil initial disables it). Vacant machines
// serve nothing and are excluded. The solver evaluates it on every
// accepted iteration, so its freedom from side effects is machine-checked.
//
//rexlint:pure
func objective(p *cluster.Placement, spreadWeight, movePenalty float64, initial []cluster.MachineID) float64 {
	c := p.Cluster()
	maxU := 0.0
	sumSq := 0.0
	serving := 0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if p.IsVacant(id) {
			continue
		}
		u := p.Load(id) / c.Machines[m].Speed
		if u > maxU {
			maxU = u
		}
		sumSq += u * u
		serving++
	}
	obj := maxU
	if serving > 0 {
		obj += spreadWeight * math.Sqrt(sumSq/float64(serving))
	}
	if initial != nil && movePenalty > 0 && c.NumShards() > 0 {
		moved := 0
		for s := range initial {
			if p.Home(cluster.ShardID(s)) != initial[s] {
				moved++
			}
		}
		obj += movePenalty * float64(moved) / float64(c.NumShards())
	}
	return obj
}

// movedCount counts shards whose home differs from the initial assignment.
func movedCount(p *cluster.Placement, initial []cluster.MachineID) int {
	moved := 0
	for s := range initial {
		if p.Home(cluster.ShardID(s)) != initial[s] {
			moved++
		}
	}
	return moved
}

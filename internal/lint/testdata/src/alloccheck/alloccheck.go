// Fixture for the alloccheck analyzer: //rexlint:noalloc functions must be
// provably allocation-free on every reachable path, callees included.
// Near-misses: dead code, debug-guarded blocks, waived amortized growth,
// and clean recursion must stay silent.
package alloccheck

// debugChecks mirrors cluster.DebugAsserts: a named boolean constant
// guarding debug-only blocks, folded from summaries regardless of value.
const debugChecks = false

// scratch is a package-level buffer reused across calls.
var scratch []int

//rexlint:noalloc
func directMake(n int) []int {
	return make([]int, n) // want `alloccheck\.directMake is declared //rexlint:noalloc but allocates: make`
}

// grow appends without a size hint; callers pay the growth.
func grow(xs []int, v int) []int {
	return append(xs, v)
}

//rexlint:noalloc
func viaHelper() {
	scratch = grow(scratch, 1) // want `alloccheck\.viaHelper is declared //rexlint:noalloc but allocates: append may grow its backing array at .+ \(via alloccheck\.grow\)`
}

func sink(v any) { _ = v }

//rexlint:noalloc
func boxes(n int) {
	sink(n) // want `alloccheck\.boxes is declared //rexlint:noalloc but allocates: interface argument boxes int`
}

var hook func()

//rexlint:noalloc
func dynamic() {
	hook() // want `alloccheck\.dynamic is declared //rexlint:noalloc but cannot be proven: dynamic call with no resolvable target`
}

// --- near-misses: all of the below must stay silent ---

// deadAlloc allocates only in unreachable code; the CFG excludes it.
//
//rexlint:noalloc
func deadAlloc(n int) int {
	return n
	xs := make([]int, n)
	return len(xs)
}

// guarded allocates only inside a debug-assertion block, which the summary
// engine folds away so default and -tags debugasserts runs agree.
//
//rexlint:noalloc
func guarded(n int) int {
	if debugChecks {
		scratch = append(scratch, n)
	}
	return n
}

// amortized waives its append: growth into a reused buffer is amortized
// zero and the waiver blesses the whole call chain.
//
//rexlint:noalloc
func amortized(v int) {
	//rexlint:ignore alloccheck amortized growth of a reused scratch buffer
	scratch = append(scratch, v)
}

// callsAmortized inherits the waived summary: silent.
//
//rexlint:noalloc
func callsAmortized() {
	amortized(3)
}

// recurseOK exercises the summary fixpoint over recursion: no allocation
// on any path, so the self-referential summary converges clean.
//
//rexlint:noalloc
func recurseOK(n int) int {
	if n <= 0 {
		return 0
	}
	return n + recurseOK(n-1)
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rexchange/internal/cluster"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
)

// state carries one Solve invocation.
type state struct {
	cfg Config
	k   int
	rng *rand.Rand

	initialP *cluster.Placement  // untouched starting placement
	initial  []cluster.MachineID // starting assignment (move-penalty reference)

	cur    *cluster.Placement
	curObj float64

	best    *cluster.Placement
	bestObj float64
	// improving records every new-best placement in discovery order, so
	// finish() can fall back to an earlier (more conservative) solution if
	// the very best one has no transiently feasible schedule.
	improving []*cluster.Placement

	destroyOps []destroyOp
	repairOps  []repairOp
	dWeights   []float64
	rWeights   []float64

	pool []cluster.ShardID // shards removed by the current destroy

	// Incremental objective state (incremental.go) and its per-iteration
	// snapshot of the lazy maximum.
	obj           objState
	touched       []touchRec
	savedMaxU     float64
	savedMaxM     int
	savedMaxDirty bool

	// Reusable scratch so the hot loop is allocation-free: a persistent
	// shard permutation for destroyRandom, sortable candidate pools for
	// the related/drain destroyers, and the candidate-machine and
	// remaining-pool buffers for regret repair.
	shardPerm      []cluster.ShardID
	relScratch     []relScored
	relSorter      relSorter
	drainScratch   []drainCand
	drainSorter    drainSorter
	drainIDScratch []cluster.ShardID
	candScratch    []cluster.MachineID
	candHeap       []machUtil
	remainScratch  []cluster.ShardID
	poolSorter     poolSorter

	trajectory     []float64
	accepted       int
	repairFailures int
	planFallbacks  int

	// iterCounts batches Recorder outcome counts locally, indexed
	// (di*len(repairOps)+ri)*numIterOutcomes+outcome, so the hot loop
	// pays one slice increment and the flush happens once per run. nil
	// when no Recorder is configured.
	iterCounts []int
}

// touchRec is one journal entry mirrored into core: the shard and machine a
// neighborhood mutation touched.
type touchRec struct {
	s cluster.ShardID
	m cluster.MachineID
}

type destroyOp struct {
	name string
	fn   func(*state, int)
}

type repairOp struct {
	name string
	fn   func(*state) bool
}

func newState(cfg Config, p *cluster.Placement, k int) *state {
	st := &state{
		cfg:      cfg,
		k:        k,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		initialP: p,
		initial:  p.Assignment(),
		cur:      p.Clone(),
	}
	if cfg.Operators.RandomRemove {
		st.destroyOps = append(st.destroyOps, destroyOp{"random", (*state).destroyRandom})
	}
	if cfg.Operators.WorstRemove {
		st.destroyOps = append(st.destroyOps, destroyOp{"worst", (*state).destroyWorst})
	}
	if cfg.Operators.RelatedRemove {
		st.destroyOps = append(st.destroyOps, destroyOp{"related", (*state).destroyRelated})
	}
	if cfg.Operators.DrainRemove {
		st.destroyOps = append(st.destroyOps, destroyOp{"drain", (*state).destroyDrain})
	}
	if cfg.Operators.GreedyRepair {
		st.repairOps = append(st.repairOps, repairOp{"greedy", (*state).repairGreedy})
	}
	if cfg.Operators.RegretRepair {
		st.repairOps = append(st.repairOps, repairOp{"regret", (*state).repairRegret})
	}
	st.dWeights = uniformWeights(len(st.destroyOps))
	st.rWeights = uniformWeights(len(st.repairOps))
	if cfg.Recorder != nil {
		st.iterCounts = make([]int, len(st.destroyOps)*len(st.repairOps)*numIterOutcomes)
	}
	return st
}

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// run executes the LNS loop.
//
// The production path is the delta kernel: each iteration opens an undo
// journal on the placement, applies destroy+repair in place, evaluates the
// objective incrementally (incremental.go), and commits or rolls back in
// O(mutations touched). With cfg.refKernel set (tests only) the loop
// instead clones the placement up front and rescans the full objective —
// the retained reference behaviour. Both paths perform bit-identical
// arithmetic and consume the RNG identically, so for a fixed seed they must
// produce the same Result; TestKernelEquivalence enforces this, and under
// -tags debugasserts every delta evaluation is cross-checked against the
// reference objective.
func (st *state) run() {
	cfg := st.cfg
	var runStart time.Time
	if cfg.Recorder != nil {
		runStart = time.Now() //rexlint:ignore clockpurity recorder wall time feeds telemetry only
	}
	st.curObj = objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
	st.best = st.cur.Clone()
	st.bestObj = st.curObj
	//rexlint:transfer best snapshots are frozen once recorded; only st.cur is ever mutated
	st.improving = append(st.improving, st.best)
	if !cfg.refKernel {
		st.initIncremental()
	}

	t0 := cfg.TempFrac * st.curObj
	tEnd := cfg.EndTempFrac * st.curObj

	n := st.cur.Cluster().NumShards()
	baseQ := int(cfg.DestroyFrac * float64(n))
	if baseQ < cfg.MinDestroy {
		baseQ = cfg.MinDestroy
	}
	if baseQ > cfg.MaxDestroy {
		baseQ = cfg.MaxDestroy
	}

	if cfg.KeepTrajectory {
		st.trajectory = make([]float64, 0, cfg.Iterations)
	}

	for it := 0; it < cfg.Iterations; it++ {
		var snap *cluster.Placement
		if cfg.refKernel {
			snap = st.cur.Clone()
		} else {
			st.cur.BeginTxn()
			st.saveObjState()
		}

		// destroy size: jitter around baseQ in [MinDestroy, MaxDestroy]
		q := cfg.MinDestroy
		if baseQ > cfg.MinDestroy {
			q += st.rng.Intn(baseQ - cfg.MinDestroy + 1)
		}
		if q > n {
			q = n
		}

		di := st.pickOp(st.dWeights)
		ri := st.pickOp(st.rWeights)

		st.pool = st.pool[:0]
		st.destroyOps[di].fn(st, q)
		if cluster.DebugAsserts {
			st.cur.MustInvariants("destroy " + st.destroyOps[di].name)
		}
		ok := st.repairOps[ri].fn(st)
		if cluster.DebugAsserts {
			// Even a failed repair must leave the bookkeeping uncorrupted;
			// the caller only discards the neighborhood, not the structure.
			st.cur.MustInvariants("repair " + st.repairOps[ri].name)
		}

		reward := 0.0
		outcome := iterIdxRepairFailed
		if !ok {
			// Discard the neighborhood. The incremental objective state
			// was not synced yet, so rolling the placement back is enough.
			if cfg.refKernel {
				//rexlint:transfer reference-kernel restore: snap becomes the sole owner, the mutated copy is discarded
				st.cur = snap
			} else {
				st.cur.Rollback()
			}
			st.repairFailures++
		} else {
			var newObj float64
			if cfg.refKernel {
				newObj = objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
			} else {
				st.syncTouched()
				newObj = st.evalIncremental()
				if cluster.DebugAsserts {
					ref := objective(st.cur, cfg.SpreadWeight, cfg.MovePenalty, st.initial)
					if math.Float64bits(newObj) != math.Float64bits(ref) {
						panic(fmt.Sprintf(
							"core: incremental objective %v diverged from reference %v at iteration %d",
							newObj, ref, it))
					}
				}
			}
			accept := newObj <= st.curObj+1e-12
			if !accept && !cfg.HillClimb {
				t := tempAt(t0, tEnd, it, cfg.Iterations)
				if t > 0 {
					accept = st.rng.Float64() < math.Exp(-(newObj-st.curObj)/t)
				}
			}
			if accept {
				if !cfg.refKernel {
					st.cur.Commit()
				}
				st.accepted++
				improvedCur := newObj < st.curObj
				st.curObj = newObj
				switch {
				case newObj < st.bestObj-1e-12:
					st.best = st.cur.Clone()
					st.bestObj = newObj
					//rexlint:transfer best snapshots are frozen once recorded; only st.cur is ever mutated
					st.improving = append(st.improving, st.best)
					reward = 3
					outcome = iterIdxNewBest
				case improvedCur:
					reward = 1
					outcome = iterIdxImproved
				default:
					reward = 0.4
					outcome = iterIdxAccepted
				}
			} else {
				outcome = iterIdxRejected
				if cfg.refKernel {
					//rexlint:transfer reference-kernel restore: snap becomes the sole owner, the mutated copy is discarded
					st.cur = snap
				} else {
					st.rollbackIncremental()
				}
			}
		}
		if st.iterCounts != nil {
			st.iterCounts[(di*len(st.repairOps)+ri)*numIterOutcomes+outcome]++
		}
		if cfg.Adaptive {
			st.updateWeight(st.dWeights, di, reward)
			st.updateWeight(st.rWeights, ri, reward)
		}
		if cfg.KeepTrajectory {
			st.trajectory = append(st.trajectory, st.bestObj)
		}
	}
	if cfg.Recorder != nil {
		st.flushRecorder(time.Since(runStart).Seconds()) //rexlint:ignore clockpurity recorder wall time feeds telemetry only
	}
}

// flushRecorder drains the batched per-operator outcome counts into the
// configured Recorder, then reports the run totals. Wall-clock seconds
// feed telemetry only; they never influence the search.
func (st *state) flushRecorder(seconds float64) {
	rec := st.cfg.Recorder
	for di := range st.destroyOps {
		for ri := range st.repairOps {
			base := (di*len(st.repairOps) + ri) * numIterOutcomes
			for o := 0; o < numIterOutcomes; o++ {
				if n := st.iterCounts[base+o]; n > 0 {
					rec.RecordIterations(st.destroyOps[di].name, st.repairOps[ri].name, iterOutcomes[o], n)
				}
			}
		}
	}
	rec.RecordRun(st.cfg.Iterations, st.accepted, st.repairFailures, seconds)
}

// pickOp selects an operator index: adaptive roulette or uniform.
func (st *state) pickOp(weights []float64) int {
	if len(weights) == 1 {
		return 0
	}
	if st.cfg.Adaptive {
		return rouletteIndex(st.rng, weights)
	}
	return st.rng.Intn(len(weights))
}

// updateWeight applies the exponential ALNS weight update with a floor so
// no operator starves permanently.
func (st *state) updateWeight(weights []float64, i int, reward float64) {
	weights[i] = 0.85*weights[i] + 0.15*reward
	if weights[i] < 0.05 {
		weights[i] = 0.05
	}
}

// finish compiles the best reassignment into a move schedule, falling back
// to earlier improving solutions when the best has no feasible schedule
// (rare, but possible when every intermediate machine is saturated).
func (st *state) finish() (*Result, error) {
	cfg := st.cfg

	var final *cluster.Placement
	var schedule *plan.Plan
	for i := len(st.improving) - 1; i >= 0; i-- {
		cand := st.improving[i]
		pl, err := cfg.Planner.Build(st.initialP, cand)
		if err == nil {
			final = cand
			schedule = pl
			break
		}
		st.planFallbacks++
	}
	if final == nil {
		// The identity reassignment always plans (zero moves); improving[0]
		// is the initial placement, so this is unreachable unless the
		// planner itself errors on identical placements — treat as a bug.
		return nil, errIdentityPlan
	}

	res := &Result{
		Final:          final,
		Plan:           schedule,
		Returned:       pickReturned(final, st.k),
		Before:         metrics.Compute(st.initialP),
		After:          metrics.Compute(final),
		Objective:      objective(final, cfg.SpreadWeight, cfg.MovePenalty, st.initial),
		MovedShards:    movedCount(final, st.initial),
		Iterations:     cfg.Iterations,
		Accepted:       st.accepted,
		RepairFailures: st.repairFailures,
		PlanFallbacks:  st.planFallbacks,
		Trajectory:     st.trajectory,
	}
	return res, nil
}

// Package ctl is the online rebalancing control plane: a long-running
// controller that watches cluster load drift (replayed from a query trace or
// fed by any LoadSource), decides when a re-solve is worth its churn via a
// hysteresis trigger, runs the SRA solver under a per-round budget, and
// drives the resulting move schedule with an asynchronous migration
// executor that enforces the paper's transient resource constraint at
// dispatch time against the *live* placement.
//
// The whole subsystem runs on an injected Clock: a deterministic virtual
// clock for tests and CI (no sleeps, bit-identical round trajectories
// across GOMAXPROCS) and the wall clock in production. cmd/rexd is the
// binary wrapper; the HTTP surface in http.go exposes controller state,
// the live placement, the current plan, and Prometheus metrics.
package ctl

import (
	"sync"
	"time"
)

// Clock abstracts time for the controller and executor. All timestamps are
// float64 seconds since the controller started, matching the units used by
// workload traces and the migration simulator.
//
// Implementations must be safe for concurrent Now calls (HTTP handlers read
// the clock while the control loop advances it); Sleep is only ever called
// by the single control-loop goroutine.
type Clock interface {
	// Now returns the current time in seconds since start.
	Now() float64
	// Sleep blocks until d seconds have passed. Non-positive d returns
	// immediately.
	Sleep(d float64)
}

// VirtualClock is a deterministic simulated clock: Sleep advances time
// instantly. It makes the control loop fully reproducible and lets tests
// cover hours of simulated operation in milliseconds.
type VirtualClock struct {
	mu  sync.Mutex
	now float64 // guarded by: mu
}

// NewVirtualClock returns a virtual clock at t=0.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual time by d seconds without blocking.
func (c *VirtualClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// WallClock is the production clock: real time elapsed since construction.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a wall clock starting now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns seconds elapsed since the clock was created.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() }

// Sleep blocks for d seconds of real time.
func (c *WallClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d * float64(time.Second)))
}

package experiments

import (
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/metrics"
	"rexchange/internal/workload"
)

// F7ContinuousRebalance extends the evaluation to the operational loop the
// paper's system lives in: shard popularity drifts between rounds, and the
// operator periodically rebalances with a small borrowed pool. Two series
// are reported per round — letting imbalance accumulate ("static") versus
// rebalancing each round with SRA ("rebalanced") — plus the migration
// volume each round costs.
func F7ContinuousRebalance(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F7",
		Title:   "Continuous rebalancing under load drift — extension",
		Columns: []string{"round", "static-maxU", "rebal-maxU-before", "rebal-maxU-after", "moves", "disk-moved"},
	}
	p0, err := genInstance(sc.sel(16, 60), sc.sel(200, 900), 0.82, 1101)
	if err != nil {
		return nil, err
	}
	pk, err := withExchange(p0, 2)
	if err != nil {
		return nil, err
	}
	iters := sc.sel(250, 1500)
	rounds := sc.sel(3, 6)
	driftSigma := 0.35

	staticCluster := pk.Cluster()
	staticAssign := pk.Assignment()
	rebalCluster := pk.Cluster()
	rebalAssign := pk.Assignment()

	for round := 1; round <= rounds; round++ {
		seed := int64(2000 + round)
		staticCluster = workload.PerturbLoads(staticCluster, driftSigma, seed)
		rebalCluster = workload.PerturbLoads(rebalCluster, driftSigma, seed)

		staticP, err := cluster.FromAssignment(staticCluster, staticAssign)
		if err != nil {
			return nil, err
		}
		rebalP, err := cluster.FromAssignment(rebalCluster, rebalAssign)
		if err != nil {
			return nil, err
		}

		cfg := solverConfig(iters, int64(round))
		res, err := core.New(cfg).Solve(rebalP)
		if err != nil {
			return nil, err
		}
		rebalAssign = res.Final.Assignment()

		tbl.AddRow(round,
			metrics.Compute(staticP).MaxUtil,
			res.Before.MaxUtil,
			res.After.MaxUtil,
			res.Plan.NumMoves(),
			res.Plan.BytesMoved(rebalCluster),
		)
	}
	return tbl, nil
}

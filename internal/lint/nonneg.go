package lint

// NonNeg proves annotated resource counters non-negative on every path — a
// sign/interval dataflow that turns the double-release bug class (an
// executor releasing the same reservation twice drove its in-flight count
// below zero) into a static error. Integer struct fields opt in with
//
//	count int //rexlint:nonneg
//
// Decrements are legal only where the proven lower bound covers them:
// branch conditions refine bounds (`if q.n > 0 { q.n-- }` is proven),
// //rexlint:requires f>=k states a method's entry precondition (checked at
// every call site against the caller's proven bound), and method summaries
// carry a guaranteed minimum net delta that callers fold at call sites.
// Local copies of a counter (`remaining := p.vacant`) are tracked under the
// same invariant. Writes through index expressions are outside the proof
// (exprKey cannot canonicalize them); decrements the checker cannot prove
// are waivable with //rexlint:ignore nonneg <invariant>.
var NonNeg = &Analyzer{
	Name: "nonneg",
	Doc:  "prove //rexlint:nonneg counters never go negative on any path; check //rexlint:requires preconditions at call sites",
	Run:  func(pass *Pass) error { return runValueFlow(pass, vfNonneg) },
}

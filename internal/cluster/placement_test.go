package cluster

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rexchange/internal/vec"
)

func TestNewPlacementEmpty(t *testing.T) {
	c := testCluster()
	p := NewPlacement(c)
	if p.UnassignedCount() != c.NumShards() {
		t.Fatalf("UnassignedCount = %d", p.UnassignedCount())
	}
	for s := range c.Shards {
		if p.Home(ShardID(s)) != Unassigned {
			t.Errorf("shard %d should be unassigned", s)
		}
	}
	if len(p.VacantMachines()) != c.NumMachines() {
		t.Error("all machines should be vacant")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromAssignment(t *testing.T) {
	c := testCluster()
	p, err := FromAssignment(c, []MachineID{0, 0, 1, Unassigned})
	if err != nil {
		t.Fatal(err)
	}
	if p.Home(0) != 0 || p.Home(1) != 0 || p.Home(2) != 1 || p.Home(3) != Unassigned {
		t.Fatalf("homes = %v", p.Assignment())
	}
	if p.UnassignedCount() != 1 {
		t.Errorf("UnassignedCount = %d", p.UnassignedCount())
	}
	if got := p.Used(0); got != vec.New(5, 4, 3) {
		t.Errorf("Used(0) = %v", got)
	}
	if p.Load(0) != 8 || p.Load(1) != 8 || p.Load(2) != 0 {
		t.Errorf("loads = %v %v %v", p.Load(0), p.Load(1), p.Load(2))
	}
	if p.Utilization(1) != 4 { // 8 / speed 2
		t.Errorf("Utilization(1) = %v", p.Utilization(1))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromAssignmentErrors(t *testing.T) {
	c := testCluster()
	if _, err := FromAssignment(c, []MachineID{0}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := FromAssignment(c, []MachineID{0, 0, 0, 99}); err == nil {
		t.Error("expected invalid-machine error")
	}
}

func TestPlaceRemoveMove(t *testing.T) {
	c := testCluster()
	p := NewPlacement(c)
	if err := p.Place(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(0, 1); err == nil {
		t.Error("double place should fail")
	}
	if p.Count(2) != 1 || !p.IsVacant(0) {
		t.Error("counts wrong after place")
	}
	p.Move(0, 1)
	if p.Home(0) != 1 || p.Count(2) != 0 || p.Count(1) != 1 {
		t.Error("move bookkeeping wrong")
	}
	p.Move(0, 1) // no-op move
	if p.Count(1) != 1 {
		t.Error("self-move should be no-op")
	}
	if err := p.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(0); err == nil {
		t.Error("double remove should fail")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCanPlaceAndChecked(t *testing.T) {
	c := testCluster()
	p := NewPlacement(c)
	// machine 2 capacity {4,4,4}; shard 2 static {4,4,4} exactly fits.
	if !p.CanPlace(2, 2) {
		t.Error("exact fit should be allowed")
	}
	if !p.PlaceChecked(2, 2) {
		t.Fatal("PlaceChecked should succeed")
	}
	// now shard 3 {1,1,1} does not fit on machine 2
	if p.CanPlace(3, 2) {
		t.Error("machine 2 is full")
	}
	if p.PlaceChecked(3, 2) {
		t.Error("PlaceChecked should fail on full machine")
	}
	if !p.MoveChecked(2, 0) {
		t.Error("MoveChecked to empty machine should succeed")
	}
	if p.Home(2) != 0 {
		t.Error("MoveChecked did not move")
	}
	// MoveChecked to current machine is trivially true.
	if !p.MoveChecked(2, 0) {
		t.Error("MoveChecked self should be true")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := testCluster()
	p, _ := FromAssignment(c, []MachineID{0, 1, 1, 2})
	q := p.Clone()
	q.Move(0, 2)
	if p.Home(0) != 0 {
		t.Error("clone mutation leaked into original")
	}
	if q.Home(0) != 2 {
		t.Error("clone move lost")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFeasible(t *testing.T) {
	c := testCluster()
	p, _ := FromAssignment(c, []MachineID{0, 0, 1, 1})
	if !p.Feasible() {
		t.Error("placement within capacity should be feasible")
	}
	// Overstuff machine 2 (cap {4,4,4}) with shards 0+2 (static {7,6,5}).
	q, _ := FromAssignment(c, []MachineID{2, 1, 2, 1})
	if q.Feasible() {
		t.Error("overloaded machine should be infeasible")
	}
	// Unassigned shard makes it infeasible too.
	r, _ := FromAssignment(c, []MachineID{0, 0, 1, Unassigned})
	if r.Feasible() {
		t.Error("partial placement should be infeasible")
	}
}

func TestShardsOnAndEach(t *testing.T) {
	c := testCluster()
	p, _ := FromAssignment(c, []MachineID{1, 1, 1, 0})
	got := p.ShardsOn(1)
	if len(got) != 3 {
		t.Fatalf("ShardsOn(1) = %v", got)
	}
	seen := map[ShardID]bool{}
	p.EachShardOn(1, func(s ShardID) { seen[s] = true })
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("EachShardOn missed shards: %v", seen)
	}
	// mutating the returned copy must not corrupt the placement
	got[0] = 99
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizations(t *testing.T) {
	c := testCluster()
	p, _ := FromAssignment(c, []MachineID{0, 0, 1, 2})
	us := p.Utilizations()
	if us[0] != 8 || us[1] != 4 || us[2] != 2 {
		t.Errorf("Utilizations = %v", us)
	}
}

func TestPlacementSaveLoad(t *testing.T) {
	c := testCluster()
	p, _ := FromAssignment(c, []MachineID{0, 1, 1, 2})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := range c.Shards {
		if q.Home(ShardID(s)) != p.Home(ShardID(s)) {
			t.Errorf("shard %d home mismatch", s)
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/placement.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlacementFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlacementFile(path + ".missing"); err == nil {
		t.Error("expected missing-file error")
	}
}

// TestQuickRandomOpsInvariant drives random place/move/remove sequences and
// checks the incrementally maintained aggregates against a full recompute.
func TestQuickRandomOpsInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nm, ns := 2+r.Intn(6), 1+r.Intn(20)
		c := &Cluster{}
		for m := 0; m < nm; m++ {
			c.Machines = append(c.Machines, Machine{
				ID: MachineID(m), Capacity: vec.Uniform(1e9), Speed: 1 + r.Float64(),
			})
		}
		for s := 0; s < ns; s++ {
			group := 0
			if r.Intn(2) == 0 {
				group = 1 + r.Intn(3) // some shards replicated
			}
			c.Shards = append(c.Shards, Shard{
				ID:     ShardID(s),
				Static: vec.New(r.Float64()*10, r.Float64()*10, r.Float64()*10),
				Load:   r.Float64() * 5,
				Group:  group,
			})
		}
		p := NewPlacement(c)
		for op := 0; op < 200; op++ {
			s := ShardID(r.Intn(ns))
			m := MachineID(r.Intn(nm))
			switch r.Intn(4) {
			case 0:
				if p.Home(s) == Unassigned {
					_ = p.Place(s, m)
				}
			case 1:
				p.Move(s, m)
			case 2:
				if p.Home(s) != Unassigned {
					_ = p.Remove(s)
				}
			case 3:
				// checked ops must respect anti-affinity
				if p.Home(s) == Unassigned {
					p.PlaceChecked(s, m)
				} else {
					p.MoveChecked(s, m)
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

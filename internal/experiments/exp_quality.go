package experiments

import (
	"errors"
	"fmt"

	"rexchange/internal/baseline"
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/ip"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
	"rexchange/internal/workload"
)

// T1OptimalityGap measures SRA's solution quality against the exact
// branch-and-bound optimum of the IP formulation on small instances.
func T1OptimalityGap(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "T1",
		Title:   "SRA vs exact optimum (small instances)",
		Columns: []string{"inst", "machines", "shards", "K", "opt-maxU", "sra-maxU", "gap%", "bb-nodes", "bb-status"},
	}
	cases := []struct {
		m, s, k int
		seed    int64
	}{
		{4, 10, 1, 101},
		{4, 12, 1, 102},
		{5, 12, 1, 103},
		{5, 14, 2, 104},
		{6, 16, 2, 105},
	}
	cases = cases[:sc.sel(2, len(cases))]
	for i, cs := range cases {
		p0, err := genSmallHetero(cs.m, cs.s, cs.seed)
		if err != nil {
			return nil, err
		}
		p, err := withExchange(p0, cs.k)
		if err != nil {
			return nil, err
		}
		res, err := core.New(solverConfig(sc.sel(300, 2000), 1)).Solve(p)
		if err != nil {
			return nil, err
		}
		md, err := ip.BuildModel(p.Cluster(), cs.k)
		if err != nil {
			return nil, err
		}
		// Prime branch-and-bound with the SRA makespan: if every node is
		// pruned below it, the SRA solution is certified optimal. The
		// combinatorial solver certifies these sizes in milliseconds; the
		// LP-relaxation solver (md.Solve) is its cross-checked reference.
		exact, err := md.SolveExact(ip.Options{
			MaxNodes:     sc.sel(2_000_000, 50_000_000),
			IncumbentObj: res.After.MaxUtil,
		})
		if err != nil {
			return nil, err
		}
		opt, gap, status := "n/a", "n/a", exact.Status.String()
		switch {
		case exact.Status == ip.Optimal:
			opt = fmt.Sprintf("%.4f", exact.Objective)
			if exact.Objective > 0 {
				gap = fmt.Sprintf("%.2f", 100*(res.After.MaxUtil-exact.Objective)/exact.Objective)
			}
		case exact.Status == ip.Infeasible && exact.Assignment == nil:
			// all nodes pruned by the incumbent: SRA is the optimum
			opt = fmt.Sprintf("%.4f", res.After.MaxUtil)
			gap = "0.00"
			status = "certified"
		default:
			// node-limited: bound the gap from the load/capacity bound
			if lb := exact.RootBound; lb > 0 {
				opt = fmt.Sprintf("≥%.4f", lb)
				gap = fmt.Sprintf("≤%.2f", 100*(res.After.MaxUtil-lb)/lb)
			}
		}
		tbl.AddRow(i+1, cs.m, cs.s, cs.k, opt, res.After.MaxUtil, gap, exact.Nodes, status)
	}
	return tbl, nil
}

// T2EndToEnd compares all methods end-to-end on a synthetic and a
// realistic instance: balance achieved, reassignment volume, and machines
// returned.
func T2EndToEnd(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "T2",
		Title:   "End-to-end comparison (synthetic and realistic data)",
		Columns: []string{"dataset", "method", "maxU", "imbalance", "cv", "moves", "returned"},
	}
	type dataset struct {
		name string
		p    *cluster.Placement
	}
	syn, err := genInstance(sc.sel(20, 100), sc.sel(240, 1500), 0.80, 201)
	if err != nil {
		return nil, err
	}
	real_, err := genRealistic(sc.sel(24, 120), sc.sel(360, 2400), 202)
	if err != nil {
		return nil, err
	}
	k := sc.sel(2, 4)
	iters := sc.sel(800, 4000)
	for _, ds := range []dataset{{"synthetic", syn}, {"realistic", real_}} {
		before := metrics.Compute(ds.p)
		tbl.AddRow(ds.name, "initial", before.MaxUtil, before.Imbalance, before.CV, 0, 0)

		g := baseline.Greedy(ds.p, baseline.Config{})
		tbl.AddRow(ds.name, "greedy", g.After.MaxUtil, g.After.Imbalance, g.After.CV, g.MovedShards, 0)

		ls := baseline.LocalSearch(ds.p, baseline.Config{AllowSwaps: true})
		tbl.AddRow(ds.name, "local-search", ls.After.MaxUtil, ls.After.Imbalance, ls.After.CV, ls.MovedShards, 0)

		s0, err := core.New(solverConfig(iters, 7)).Solve(ds.p)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(ds.name, "sra-k0", s0.After.MaxUtil, s0.After.Imbalance, s0.After.CV, s0.MovedShards, 0)

		pk, err := withExchange(ds.p, k)
		if err != nil {
			return nil, err
		}
		sk, err := core.New(solverConfig(iters, 7)).Solve(pk)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(ds.name, fmt.Sprintf("sra-k%d", k),
			sk.After.MaxUtil, sk.After.Imbalance, sk.After.CV, sk.MovedShards, len(sk.Returned))
	}
	return tbl, nil
}

// T3PlanFeasibility measures how often an aggressive load-oblivious-to-
// balanced reassignment can be scheduled under the transient constraints,
// as a function of the borrowed exchange machines available for staging.
func T3PlanFeasibility(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "T3",
		Title:   "Move-plan feasibility vs exchange machines",
		Columns: []string{"fill", "displace", "K", "planned", "trials", "avg-moves", "avg-staged", "avg-displaced"},
	}
	fills := []float64{0.80, 0.90, 0.94, 0.96}
	ks := []int{0, 1, 2, 4}
	trials := sc.sel(3, 10)
	machines := sc.sel(10, 40)
	shards := sc.sel(80, 480)
	// The displace=no rows model operators who forbid touching shards the
	// optimizer did not select: there the feasibility cliff without
	// exchange machines is sharp.
	for _, fill := range fills {
		for _, allowDisplace := range []bool{true, false} {
			for _, k := range ks {
				planner := plan.DefaultPlanner()
				planner.AllowDisplace = allowDisplace
				planned, moves, staged, displaced := 0, 0, 0, 0
				for trial := 0; trial < trials; trial++ {
					p0, err := genInstance(machines, shards, fill, int64(300+trial))
					if err != nil {
						return nil, err
					}
					p, err := withExchange(p0, k)
					if err != nil {
						return nil, err
					}
					target, err := repackTarget(p, k)
					if err != nil {
						continue // statically impossible repack at this fill
					}
					pl, err := planner.Build(p, target)
					if err != nil {
						if errors.Is(err, plan.ErrInfeasible) {
							continue
						}
						return nil, err
					}
					planned++
					moves += pl.NumMoves()
					staged += pl.Staged
					displaced += pl.Displaced
				}
				row := []interface{}{fill, yesNo(allowDisplace), k, planned, trials, "n/a", "n/a", "n/a"}
				if planned > 0 {
					row[5] = float64(moves) / float64(planned)
					row[6] = float64(staged) / float64(planned)
					row[7] = float64(displaced) / float64(planned)
				}
				tbl.AddRow(row...)
			}
		}
	}
	return tbl, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// T4Replicated extends the evaluation to replicated fleets (the model of
// production engines and a natural extension of the paper's single-copy
// setting): every logical shard has R replicas under anti-affinity, each
// serving 1/R of its load. The exchange mechanism must preserve the
// anti-affinity invariant through every staged move.
func T4Replicated(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "T4",
		Title:   "Replicated fleets (anti-affinity) — extension",
		Columns: []string{"replicas", "method", "maxU-before", "maxU-after", "moves", "affinity-ok"},
	}
	iters := sc.sel(300, 2500)
	for _, replicas := range []int{1, 2, 3} {
		cfg := workload.DefaultConfig()
		cfg.Machines = sc.sel(16, 60)
		cfg.Shards = sc.sel(80, 400) // logical shards
		cfg.Replicas = replicas
		cfg.TargetFill = 0.8
		cfg.Seed = int64(1000 + replicas)
		inst, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		p := inst.Placement
		before := metrics.Compute(p)

		ls := baseline.LocalSearch(p, baseline.Config{AllowSwaps: true})
		tbl.AddRow(replicas, "local-search", before.MaxUtil, ls.After.MaxUtil,
			ls.MovedShards, yesNo(affinityOK(ls.Final)))

		pk, err := withExchange(p, 2)
		if err != nil {
			return nil, err
		}
		res, err := core.New(solverConfig(iters, 41)).Solve(pk)
		if err != nil {
			return nil, err
		}
		ok := affinityOK(res.Final)
		// also verify every intermediate schedule state
		w := pk.Clone()
		for _, mv := range res.Plan.Moves {
			w.Move(mv.S, mv.To)
			if !affinityOK(w) {
				ok = false
				break
			}
		}
		tbl.AddRow(replicas, "sra-k2", before.MaxUtil, res.After.MaxUtil,
			res.MovedShards, yesNo(ok))
	}
	return tbl, nil
}

// affinityOK verifies no machine hosts two replicas of one group.
func affinityOK(p *cluster.Placement) bool {
	c := p.Cluster()
	for m := 0; m < c.NumMachines(); m++ {
		seen := map[int]bool{}
		conflict := false
		p.EachShardOn(cluster.MachineID(m), func(s cluster.ShardID) {
			g := c.Shards[s].Group
			if g == 0 {
				return
			}
			if seen[g] {
				conflict = true
			}
			seen[g] = true
		})
		if conflict {
			return false
		}
	}
	return true
}

package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPadsAndTruncates(t *testing.T) {
	v := New(1, 2)
	if v[Memory] != 1 || v[Disk] != 2 || v[Net] != 0 {
		t.Fatalf("New(1,2) = %v, want {1 2 0}", v)
	}
	w := New(1, 2, 3, 4, 5)
	if w != (Vec{1, 2, 3}) {
		t.Fatalf("New with extras = %v, want {1 2 3}", w)
	}
}

func TestUniform(t *testing.T) {
	v := Uniform(2.5)
	for i := range v {
		if v[i] != 2.5 {
			t.Fatalf("Uniform(2.5)[%d] = %v", i, v[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, 5, 6)
	if got := a.Add(b); got != (Vec{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != (Vec{4, 10, 18}) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); got != (Vec{4, 2.5, 2}) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Max(Vec{0, 9, 3}); got != (Vec{1, 9, 3}) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(Vec{0, 9, 3}); got != (Vec{0, 2, 3}) {
		t.Errorf("Min = %v", got)
	}
}

func TestLEQ(t *testing.T) {
	if !New(1, 1, 1).LEQ(New(1, 2, 3)) {
		t.Error("LEQ should hold")
	}
	if New(1, 3, 1).LEQ(New(1, 2, 3)) {
		t.Error("LEQ should fail on dim 1")
	}
}

func TestFitsWithin(t *testing.T) {
	capV := New(10, 10, 10)
	used := New(9, 5, 0)
	if !New(1, 1, 1).FitsWithin(used, capV) {
		t.Error("exact fit on mem should succeed")
	}
	if New(1.0001, 0, 0).FitsWithin(used, capV) {
		t.Error("overflow on mem should fail")
	}
	// fitEps tolerance: tiny drift past capacity is accepted.
	if !New(1+1e-12, 0, 0).FitsWithin(used, capV) {
		t.Error("sub-eps drift should be tolerated")
	}
}

func TestIsZeroAndNonNegative(t *testing.T) {
	if !(Vec{}).IsZero() {
		t.Error("zero Vec should be zero")
	}
	if New(0, 0, 1e-20).IsZero() {
		t.Error("tiny nonzero is not zero")
	}
	if !New(0, -1e-12, 0).NonNegative() {
		t.Error("drift below zero within eps should be non-negative")
	}
	if New(0, -1, 0).NonNegative() {
		t.Error("-1 is negative")
	}
}

func TestSumMaxDim(t *testing.T) {
	v := New(1, 5, 3)
	if v.Sum() != 9 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if v.MaxDim() != 5 {
		t.Errorf("MaxDim = %v", v.MaxDim())
	}
}

func TestMaxRatio(t *testing.T) {
	v := New(2, 3, 0)
	w := New(4, 4, 0)
	if got := v.MaxRatio(w); got != 0.75 {
		t.Errorf("MaxRatio = %v, want 0.75", got)
	}
	// demand against zero capacity is infeasible
	if got := New(0, 0, 1).MaxRatio(New(1, 1, 0)); !math.IsInf(got, 1) {
		t.Errorf("MaxRatio vs zero cap = %v, want +Inf", got)
	}
	// zero demand against zero capacity contributes nothing
	if got := New(1, 0, 0).MaxRatio(New(2, 0, 0)); got != 0.5 {
		t.Errorf("MaxRatio zero/zero = %v, want 0.5", got)
	}
}

func TestDotNormDist(t *testing.T) {
	a := New(3, 4, 0)
	if a.Dot(New(1, 1, 1)) != 7 {
		t.Errorf("Dot = %v", a.Dot(New(1, 1, 1)))
	}
	if a.Norm2() != 5 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	if d := a.Dist2(New(0, 0, 0)); d != 5 {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !New(1, 2, 3).AlmostEqual(New(1.0005, 2, 3), 1e-3) {
		t.Error("AlmostEqual within eps")
	}
	if New(1, 2, 3).AlmostEqual(New(1.1, 2, 3), 1e-3) {
		t.Error("AlmostEqual outside eps")
	}
}

func TestResourceString(t *testing.T) {
	if Memory.String() != "mem" || Disk.String() != "disk" || Net.String() != "net" {
		t.Errorf("resource names: %v %v %v", Memory, Disk, Net)
	}
	if Resource(99).String() != "res(99)" {
		t.Errorf("out-of-range name: %v", Resource(99))
	}
}

func TestVecString(t *testing.T) {
	got := New(1, 2.5, 0).String()
	want := "{mem:1 disk:2.5 net:0}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randVec generates bounded random vectors for property tests.
func randVec(r *rand.Rand) Vec {
	var v Vec
	for i := range v {
		v[i] = float64(r.Intn(2000)-1000) / 16
	}
	return v
}

// The quick-check properties below generate bounded vectors explicitly so
// floating-point identities hold exactly.

func TestQuickAddCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randVec(r), randVec(r)
		return a.Add(b) == b.Add(a)
	}
	if err := quickCheckN(f, 500); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randVec(r), randVec(r)
		return a.Add(b).Sub(b).AlmostEqual(a, 1e-9)
	}
	if err := quickCheckN(f, 500); err != nil {
		t.Error(err)
	}
}

func TestQuickLEQAntisymmetricOnDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randVec(r), randVec(r)
		if a == b {
			return true
		}
		// a ≤ b and b ≤ a cannot both hold for distinct vectors.
		return !(a.LEQ(b) && b.LEQ(a))
	}
	if err := quickCheckN(f, 500); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxDominates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randVec(r), randVec(r)
		m := a.Max(b)
		return a.LEQ(m) && b.LEQ(m)
	}
	if err := quickCheckN(f, 500); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleLinearInSum(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a := randVec(r)
		k := float64(r.Intn(64)) / 4
		return math.Abs(a.Scale(k).Sum()-k*a.Sum()) < 1e-6
	}
	if err := quickCheckN(f, 500); err != nil {
		t.Error(err)
	}
}

// quickCheckN runs a nullary property n times via testing/quick.
func quickCheckN(f func() bool, n int) error {
	return quick.Check(f, &quick.Config{MaxCount: n})
}

package experiments

import (
	"fmt"
	"sort"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// Scale selects experiment sizing. Quick shrinks every sweep so the full
// suite runs in seconds (used by unit tests and -quick CLI runs); the
// default sizes match the instances reported in EXPERIMENTS.md.
type Scale struct {
	Quick bool
}

// sel picks q in Quick mode and f otherwise.
func (s Scale) sel(q, f int) int {
	if s.Quick {
		return q
	}
	return f
}

// withExchange appends k exchange machines sized like the instance's
// average machine and rebuilds the placement over the extended cluster.
func withExchange(p *cluster.Placement, k int) (*cluster.Placement, error) {
	if k == 0 {
		return p, nil
	}
	c := p.Cluster()
	// exchange machines shaped like the fleet average
	capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
	speed := c.TotalSpeed() / float64(c.NumMachines())
	ec := c.WithExchange(k, capacity, speed)
	return cluster.FromAssignment(ec, p.Assignment())
}

// genInstance builds a synthetic instance with the given sizing.
func genInstance(machines, shards int, fill float64, seed int64) (*cluster.Placement, error) {
	cfg := workload.DefaultConfig()
	cfg.Machines = machines
	cfg.Shards = shards
	cfg.TargetFill = fill
	cfg.Seed = seed
	inst, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return inst.Placement, nil
}

// genSmallHetero builds a small heterogeneous instance for the exact-
// optimum experiment: distinct machine speeds break the machine-permutation
// symmetry that otherwise cripples branch-and-bound.
func genSmallHetero(machines, shards int, seed int64) (*cluster.Placement, error) {
	cfg := workload.DefaultConfig()
	cfg.Machines = machines
	cfg.Shards = shards
	cfg.TargetFill = 0.55
	cfg.Seed = seed
	cfg.Tiers = []workload.MachineTier{
		{Capacity: vec.New(100, 100, 100), Speed: 1.0, Weight: 1},
		{Capacity: vec.New(140, 140, 140), Speed: 1.5, Weight: 1},
		{Capacity: vec.New(180, 180, 180), Speed: 2.1, Weight: 1},
	}
	inst, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// Perturb speeds slightly so even same-tier machines are distinct.
	c := inst.Cluster
	for m := range c.Machines {
		c.Machines[m].Speed *= 1 + 0.01*float64(m)
	}
	return inst.Placement, nil
}

// genRealistic builds a realistic-trace instance with the given sizing.
func genRealistic(machines, shards int, seed int64) (*cluster.Placement, error) {
	cfg := workload.RealisticConfig()
	cfg.Machines = machines
	cfg.Shards = shards
	cfg.Seed = seed
	inst, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return inst.Placement, nil
}

// solverConfig returns the SRA configuration used by the experiments,
// scaled by iteration budget.
func solverConfig(iters int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Iterations = iters
	cfg.Seed = seed
	return cfg
}

// repackTarget computes a load-balanced target placement from scratch,
// ignoring where shards currently are (and ignoring move feasibility):
// shards sorted by descending load are best-fit onto the machine that
// minimizes resulting utilization, keeping `keepVacant` machines empty.
// It is the "desired state" generator for the T3 planning experiment.
func repackTarget(p *cluster.Placement, keepVacant int) (*cluster.Placement, error) {
	c := p.Cluster()
	t := cluster.NewPlacement(c)
	order := make([]cluster.ShardID, c.NumShards())
	for i := range order {
		order[i] = cluster.ShardID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := c.Shards[order[i]].Load, c.Shards[order[j]].Load
		if a != b {
			return a > b
		}
		return order[i] < order[j]
	})
	for _, s := range order {
		best := cluster.Unassigned
		bestU := 0.0
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if t.IsVacant(id) && t.NumVacant() <= keepVacant {
				continue
			}
			if !t.CanPlace(s, id) {
				continue
			}
			u := (t.Load(id) + c.Shards[s].Load) / c.Machines[m].Speed
			if best == cluster.Unassigned || u < bestU {
				best, bestU = id, u
			}
		}
		if best == cluster.Unassigned {
			return nil, fmt.Errorf("experiments: repack failed for shard %d", s)
		}
		if err := t.Place(s, best); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// exchangeCapacity returns a capacity vector for a single exchange machine
// matching the fleet average of c.
func exchangeCapacity(c *cluster.Cluster) (vec.Vec, float64) {
	return c.TotalCapacity().Scale(1 / float64(c.NumMachines())),
		c.TotalSpeed() / float64(c.NumMachines())
}

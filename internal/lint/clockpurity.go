package lint

import (
	"go/ast"
	"go/types"
)

// ClockPurity keeps deterministic packages off the wall clock. Direct
// calls to the ambient time sources (time.Now, time.Since, time.Sleep,
// time.After, ...) are flagged unless they occur inside a Clock
// implementation — the single seam through which wall time is allowed to
// enter. The analysis is flow-sensitive: storing a banned function value
// and calling it later is caught at the call site, so
//
//	now := time.Now
//	...
//	t := now() // flagged here
//
// cannot smuggle wall time past a grep. Global math/rand use is policed
// separately by noglobalrand.
//
// A function is exempt when its receiver type or any of its result types
// implements the Clock interface (resolved from the package itself or
// from an imported internal/ctl): WallClock.Now, WallClock.Sleep, and
// constructors like NewWallClock are legitimate wall-time sinks.
var ClockPurity = &Analyzer{
	Name: "clockpurity",
	Doc:  "flag wall-clock access (time.Now/Since/Sleep/...) outside Clock implementations, including via stored function values",
	Run:  runClockPurity,
}

// bannedTimeFuncs are the package-level time functions that read or wait
// on the ambient clock.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// taintFact maps object keys of locals to the banned time function they
// currently hold ("time.Now", ...). May-analysis: union join.
type taintFact map[string]string

type taintFlow struct {
	info *types.Info
}

func (tf *taintFlow) Entry() taintFact { return taintFact{} }

func (tf *taintFlow) Join(a, b taintFact) taintFact {
	out := taintFact{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func (tf *taintFlow) Equal(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (tf *taintFlow) Transfer(n ast.Node, in taintFact) taintFact {
	out := in
	copied := false
	set := func(k, v string) {
		if !copied {
			cp := taintFact{}
			for kk, vv := range out {
				cp[kk] = vv
			}
			out, copied = cp, true
		}
		if v == "" {
			delete(out, k)
		} else {
			out[k] = v
		}
	}
	inspectShallow(n, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			key, okKey := exprKey(tf.info, lhs)
			if !okKey {
				continue
			}
			if src := bannedTimeValue(tf.info, as.Rhs[i]); src != "" {
				set(key, src)
			} else if rk, okR := exprKey(tf.info, as.Rhs[i]); okR && out[rk] != "" {
				set(key, out[rk])
			} else {
				if out[key] != "" {
					set(key, "")
				}
			}
		}
		return true
	})
	return out
}

// bannedTimeValue reports the banned time function that e references as a
// value ("time.Now"), or "" if e is not one. Calls are handled separately:
// this matches the bare function value only.
func bannedTimeValue(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if name := bannedTimeFunc(info, sel); name != "" {
		return name
	}
	return ""
}

// bannedTimeFunc reports "time.<Name>" when sel resolves to a banned
// package-level function of the time package.
func bannedTimeFunc(info *types.Info, sel *ast.SelectorExpr) string {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // method on time.Time/Timer etc., not an ambient source
	}
	if !bannedTimeFuncs[fn.Name()] {
		return ""
	}
	return "time." + fn.Name()
}

func runClockPurity(pass *Pass) error {
	clockIface := findClockInterface(pass.Pkg)
	for _, file := range pass.Files {
		funcBodies(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			if fd != nil && clockExempt(pass.TypesInfo, fd, clockIface) {
				return
			}
			checkClockPurity(pass, body)
		})
	}
	checkHiddenClockReads(pass)
	return nil
}

// checkHiddenClockReads is the interprocedural half: a call to a
// module-local function whose summary says it reads the wall clock —
// directly or through further callees — is flagged at the call site with
// the chain to the root read. Clock implementations are exempt as callers,
// and waived leaf sites never enter summaries, so a reviewed
// //rexlint:ignore on the root read blesses every caller.
func checkHiddenClockReads(pass *Pass) {
	prog := pass.Prog
	for _, node := range prog.NodesOf(pass.pkg()) {
		if clockExemptNode(node) {
			continue
		}
		for _, site := range prog.EffectiveCalls(node) {
			for _, callee := range site.Callees {
				sum := prog.SummaryOf(callee)
				if sum.Mask&EffClock == 0 {
					continue
				}
				what, at := "a wall-clock read", ""
				if sum.Clock != nil {
					what = sum.Clock.What
					at = " at " + pass.Fset.Position(sum.Clock.Pos).String()
				}
				pass.Reportf(site.Pos, "call of %s hides %s%s%s; inject a ctl.Clock instead",
					callee.Name(), what, at, sum.Clock.Chain())
				break
			}
		}
	}
}

// clockExemptNode extends the FuncDecl exemption to literals nested inside
// exempt declarations.
func clockExemptNode(n *FuncNode) bool {
	for ; n != nil; n = n.Enclosing {
		if n.ClockExempt {
			return true
		}
	}
	return false
}

// findClockInterface resolves the Clock seam interface: a package-local
// interface type named Clock, or failing that, Clock from an imported
// internal/ctl package.
func findClockInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Clock")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if pkg == nil {
		return nil
	}
	if iface := lookup(pkg); iface != nil {
		return iface
	}
	for _, imp := range pkg.Imports() {
		if pathHasSuffix(imp.Path(), "internal/ctl") {
			if iface := lookup(imp); iface != nil {
				return iface
			}
		}
	}
	return nil
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-component boundary.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// clockExempt reports whether fd is part of a Clock implementation: its
// receiver or one of its results implements the Clock interface.
func clockExempt(info *types.Info, fd *ast.FuncDecl, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	implements := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if types.Implements(t, iface) {
			return true
		}
		if _, isPtr := t.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
		return false
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if implements(info.TypeOf(fd.Recv.List[0].Type)) {
			return true
		}
	}
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if implements(info.TypeOf(r.Type)) {
				return true
			}
		}
	}
	return false
}

// checkClockPurity solves the taint facts over body's CFG and reports
// banned calls.
func checkClockPurity(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := BuildCFG(body, info)
	facts := Forward[taintFact](g, &taintFlow{info: info})
	flow := &taintFlow{info: info}

	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		f, ok := facts.In[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			reportClockCalls(pass, n, f)
			f = flow.Transfer(n, f)
		}
	}
}

// reportClockCalls flags direct and stored-value calls of banned time
// functions within one straight-line node.
func reportClockCalls(pass *Pass, n ast.Node, f taintFact) {
	info := pass.TypesInfo
	inspectShallow(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if name := bannedTimeFunc(info, sel); name != "" {
				pass.Reportf(call.Pos(), "%s bypasses the Clock seam; inject a ctl.Clock instead", name)
				return true
			}
		}
		if key, ok := exprKey(info, fun); ok {
			if src := f[key]; src != "" {
				pass.Reportf(call.Pos(), "call of %s (holds %s) bypasses the Clock seam; inject a ctl.Clock instead",
					renderPath(fun), src)
			}
		}
		return true
	})
}

package ctl

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/metrics"
	"rexchange/internal/obs"
)

// State is the controller's top-level mode, exposed on /status.
type State int

// Controller states.
const (
	// StateIdle: watching load, no plan outstanding.
	StateIdle State = iota
	// StateSolving: a re-solve is running on a planning copy.
	StateSolving
	// StateMigrating: a plan is installed and the executor is draining it.
	StateMigrating
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateSolving:
		return "solving"
	case StateMigrating:
		return "migrating"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterizes the controller.
type Config struct {
	// Window is the seconds between load snapshots (one control round).
	Window float64
	// Policy is the solve trigger (hysteresis + cooldown).
	Policy Policy
	// Budget bounds each solve round.
	Budget Budget
	// Solver is the base SRA configuration; Iterations and Seed are
	// overridden per round from Budget and Seed.
	Solver core.Config
	// Exec parameterizes the migration executor.
	Exec ExecConfig
	// Seed decorrelates per-round solver seeds.
	Seed int64
	// OnRound, when set, is called after every completed control round
	// with that round's stat (outside the controller lock). rexd uses it
	// for progress logging.
	OnRound func(RoundStat)

	// Registry, when non-nil, receives the control-plane metric families
	// (round/solve lifecycle, executor migration lifecycle, solver
	// telemetry, and the live balance report) and is what /metrics
	// renders. Nil disables registry-backed metrics; the HTTP handler
	// falls back to synthesizing gauges from Status snapshots.
	Registry *obs.Registry
	// Journal, when non-nil, receives structured round/solve/move span
	// events. Every event is emitted from the Run goroutine with Clock
	// timestamps, so a virtual-clock run journals bit-reproducibly
	// (byte-identical across runs and GOMAXPROCS).
	Journal *obs.Journal
	// Tracer, when non-nil, adds round → solve → move trace spans to the
	// journal (obs.SpanTrace records). Span identity is a pure function
	// of (round, move seq) — see obs.RoundTraceID — so these spans join
	// causally with the query traces a simulator emits, without the two
	// layers sharing any runtime state.
	Tracer *obs.Tracer
}

// DefaultConfig returns a continuous-operation configuration: 10-second
// windows, the default hysteresis band, and a small per-round budget.
func DefaultConfig() Config {
	return Config{
		Window: 10,
		Policy: DefaultPolicy(),
		Budget: DefaultBudget(),
		Solver: core.DefaultConfig(),
		Exec:   DefaultExecConfig(),
		Seed:   1,
	}
}

// RoundStat records one control round for /status and tests. The sequence
// of RoundStats is the controller's trajectory and is bit-identical across
// GOMAXPROCS for a fixed configuration on the virtual clock.
type RoundStat struct {
	Round     int     `json:"round"`
	At        float64 `json:"at"`
	Imbalance float64 `json:"imbalance"`
	MaxUtil   float64 `json:"max_util"`
	MeanUtil  float64 `json:"mean_util"`
	Solved    bool    `json:"solved"`
	PlanMoves int     `json:"plan_moves,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// Controller is the online rebalancing control loop. Run drives it; the
// HTTP handlers in http.go observe it concurrently through the mutex.
type Controller struct {
	cfg   Config
	clock Clock
	src   LoadSource

	mu       sync.Mutex
	live     *cluster.Placement // guarded by: mu
	exec     *Executor          // guarded by: mu
	state    State              // guarded by: mu
	campaign bool               // guarded by: mu
	round    int                // guarded by: mu
	solves   int                // guarded by: mu
	// lastSolveAt is meaningful only once everSolved is true.
	lastSolveAt float64        // guarded by: mu
	everSolved  bool           // guarded by: mu
	lastReport  metrics.Report // guarded by: mu
	history     []RoundStat    // guarded by: mu

	// Telemetry (all may be nil/zero when Config.Registry/Journal are
	// unset). recorder is handed to per-round solves unless the solver
	// config carries its own.
	m         *ctlMetrics
	collector *metrics.Collector
	journal   *obs.Journal
	tracer    *obs.Tracer
	recorder  core.Recorder

	stopped atomic.Bool
}

// New creates a controller over the given live placement. The placement is
// owned by the controller from here on: the executor commits moves into it
// and load snapshots replace its cluster's shard loads.
func New(cfg Config, clock Clock, p *cluster.Placement, src LoadSource) (*Controller, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("ctl: Window must be positive, got %g", cfg.Window)
	}
	if err := cfg.Policy.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Budget.validate(); err != nil {
		return nil, err
	}
	if clock == nil || p == nil || src == nil {
		return nil, fmt.Errorf("ctl: clock, placement, and load source are required")
	}
	ex, err := NewExecutor(p.Cluster(), cfg.Exec)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:        cfg,
		clock:      clock,
		src:        src,
		live:       p,
		exec:       ex,
		journal:    cfg.Journal,
		tracer:     cfg.Tracer,
		lastReport: metrics.Compute(p),
	}
	if cfg.Registry != nil {
		c.m = newCtlMetrics(cfg.Registry)
		c.collector = metrics.NewCollector(cfg.Registry)
		c.collector.Set(c.lastReport)
		c.recorder = obs.NewSolverRecorder(cfg.Registry)
	}
	ex.m, ex.journal, ex.tracer = c.m, c.journal, c.tracer
	return c, nil
}

// setState transitions the controller state, mirroring it onto the
// rex_ctl_state gauge. Callers hold c.mu.
//
//rexlint:holds c.mu
func (c *Controller) setState(s State) {
	c.state = s
	c.m.stateGauge(s)
}

// emit journals one round/solve event; no-op without a journal. Only the
// Run goroutine emits, which keeps the event order deterministic.
func (c *Controller) emit(ev obs.Event) {
	if c.journal != nil {
		c.journal.Emit(ev)
	}
}

// Stop makes Run return after the current round. Safe to call from any
// goroutine (e.g. a signal handler).
func (c *Controller) Stop() { c.stopped.Store(true) }

// Run executes `rounds` control rounds (≤0 means until Stop), then drains
// any outstanding migration. Each round services executor events until the
// window closes, ingests a load snapshot, and consults the trigger policy.
// Run returns the first hard error (a snapshot or solve infrastructure
// failure); executor plan failures are recorded in the round history and
// operation continues.
func (c *Controller) Run(rounds int) error {
	start := c.clock.Now()
	for r := 0; (rounds <= 0 || r < rounds) && !c.stopped.Load(); r++ {
		t1 := start + float64(r+1)*c.cfg.Window
		if err := c.serviceUntil(t1); err != nil {
			c.noteExecError(err)
		}
		if err := c.snapshotAndDecide(t1-c.cfg.Window, t1); err != nil {
			return err
		}
	}
	return c.drain()
}

// serviceUntil advances the clock to t, processing executor events on the
// way. Executor plan failures abort the plan and surface as the returned
// error; the controller keeps running.
func (c *Controller) serviceUntil(t float64) error {
	for {
		c.mu.Lock()
		next, ok := c.exec.NextEvent(c.clock.Now())
		c.mu.Unlock()
		if !ok || next > t {
			c.clock.Sleep(t - c.clock.Now())
			return nil
		}
		c.clock.Sleep(next - c.clock.Now())
		if err := c.tickExec(); err != nil {
			return err
		}
	}
}

// tickExec runs one executor step at the current time and updates the
// controller state when the plan drains or fails.
func (c *Controller) tickExec() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.exec.Tick(c.live, c.clock.Now())
	if c.exec.Done() && c.state == StateMigrating {
		c.setState(StateIdle)
	}
	return err
}

// drain services the executor until the installed plan finishes (or
// fails), without ingesting further snapshots.
func (c *Controller) drain() error {
	for {
		c.mu.Lock()
		next, ok := c.exec.NextEvent(c.clock.Now())
		c.mu.Unlock()
		if !ok {
			return nil
		}
		c.clock.Sleep(next - c.clock.Now())
		if err := c.tickExec(); err != nil {
			c.noteExecError(err)
			return nil
		}
	}
}

// noteExecError records an executor plan failure in the round history.
func (c *Controller) noteExecError(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m != nil {
		c.m.execErrors.Inc()
	}
	if c.state == StateMigrating {
		c.setState(StateIdle)
	}
	if n := len(c.history); n > 0 && c.history[n-1].Err == "" {
		c.history[n-1].Err = err.Error()
	} else {
		c.history = append(c.history, RoundStat{Round: c.round, At: c.clock.Now(), Err: err.Error()})
	}
}

// snapshotAndDecide ingests the window's load observation, recomputes the
// balance report, and triggers a solve when the policy says so.
func (c *Controller) snapshotAndDecide(t0, t1 float64) error {
	loads, err := c.src.Next(t0, t1)
	if err != nil {
		return fmt.Errorf("ctl: load snapshot: %w", err)
	}
	if err := c.applyLoads(loads); err != nil {
		return err
	}

	c.mu.Lock()
	rep := metrics.Compute(c.live)
	c.lastReport = rep
	now := c.clock.Now()
	migrating := c.state == StateMigrating && !c.exec.Done()
	trigger := c.cfg.Policy.ShouldSolve(rep.Imbalance, c.campaign, migrating, now, c.lastSolveAt, c.everSolved)
	if rep.Imbalance >= c.cfg.Policy.HighWater {
		c.campaign = true
	}
	stat := RoundStat{
		Round: c.round, At: now,
		Imbalance: rep.Imbalance, MaxUtil: rep.MaxUtil, MeanUtil: rep.MeanUtil,
	}
	c.round++
	if c.m != nil {
		c.m.rounds.Inc()
	}
	if c.collector != nil {
		c.collector.Set(rep)
	}
	c.mu.Unlock()

	c.emit(obs.Event{T: now, Span: obs.SpanRound, Phase: obs.PhaseBegin,
		Round: stat.Round, Imbalance: rep.Imbalance})

	if trigger {
		c.solveRound(&stat)
	}

	c.mu.Lock()
	// End the campaign only from the freshly observed report; a solve this
	// round begins paying off in later windows.
	if c.campaign && rep.Imbalance <= c.cfg.Policy.LowWater {
		c.campaign = false
	}
	if c.m != nil {
		c.m.campaign.Set(boolGauge(c.campaign))
	}
	c.history = append(c.history, stat)
	c.mu.Unlock()

	outcome := obs.OutcomeOK
	if stat.Err != "" {
		outcome = obs.OutcomeErr
	}
	endNow := c.clock.Now()
	c.emit(obs.Event{T: endNow, Span: obs.SpanRound, Phase: obs.PhaseEnd,
		Round: stat.Round, Outcome: outcome, Err: stat.Err,
		Imbalance: rep.Imbalance, Moves: stat.PlanMoves})
	if c.tracer != nil {
		c.tracer.Emit(endNow, stat.Round, obs.TraceEvent{
			ID:    obs.RoundTraceID(stat.Round).String(),
			Span:  obs.RoundSpanID(stat.Round).String(),
			Op:    obs.OpRound,
			Start: now, Machine: -1, Shard: -1, Seq: -1,
		})
	}

	if c.cfg.OnRound != nil {
		c.cfg.OnRound(stat)
	}
	return nil
}

// applyLoads replaces the live cluster's shard loads with the observed
// snapshot and rebuilds the placement aggregates on the unchanged
// assignment. Static demands never change, so in-flight executor
// reservations remain valid.
func (c *Controller) applyLoads(loads []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.live.Cluster()
	if len(loads) != cl.NumShards() {
		return fmt.Errorf("ctl: snapshot has %d loads for %d shards", len(loads), cl.NumShards())
	}
	nc := &cluster.Cluster{
		Machines: cl.Machines,
		Shards:   append([]cluster.Shard(nil), cl.Shards...),
	}
	for i := range nc.Shards {
		l := loads[i]
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("ctl: snapshot load %g for shard %d", l, i)
		}
		nc.Shards[i].Load = l
	}
	np, err := cluster.FromAssignment(nc, c.live.Assignment())
	if err != nil {
		return fmt.Errorf("ctl: rebuild placement: %w", err)
	}
	//rexlint:transfer np was built fresh above; the controller takes sole ownership
	c.live = np
	return nil
}

// solveRound runs one budgeted solve and installs the resulting plan. Any
// in-flight plan is superseded first so the solver sees a quiescent live
// placement. Solve failures (including infeasible plans) are recorded on
// the round stat; the controller returns to idle and tries again at a
// later trigger.
func (c *Controller) solveRound(stat *RoundStat) {
	c.mu.Lock()
	if c.m != nil && !c.exec.Done() {
		c.m.supersessions.Inc()
	}
	// Journal move events from here on belong to the round that installed
	// (or, for aborts, superseded) the plan.
	c.exec.round = stat.Round
	c.exec.SetPlan(nil) // supersede: abort in-flight, cancel pending
	c.setState(StateSolving)
	planning := c.live.Clone()
	c.mu.Unlock()

	solveStart := c.clock.Now()
	c.emit(obs.Event{T: solveStart, Span: obs.SpanSolve, Phase: obs.PhaseBegin,
		Round: stat.Round, Imbalance: stat.Imbalance})
	emitSolveTrace := func(end float64) {
		if c.tracer == nil {
			return
		}
		c.tracer.Emit(end, stat.Round, obs.TraceEvent{
			ID:     obs.RoundTraceID(stat.Round).String(),
			Span:   obs.SolveSpanID(stat.Round).String(),
			Parent: obs.RoundSpanID(stat.Round).String(),
			Op:     obs.OpSolve,
			Start:  solveStart, Machine: -1, Shard: -1, Seq: -1,
		})
	}

	scfg := c.cfg.Solver
	scfg.Iterations = c.cfg.Budget.Iterations
	// Fresh seed per round, decorrelated by a large odd stride.
	scfg.Seed = c.cfg.Seed + int64(stat.Round)*0x9E3779B1
	if scfg.Recorder == nil {
		scfg.Recorder = c.recorder
	}
	wallStart := time.Now() //rexlint:ignore clockpurity wall time feeds metrics only, never decisions
	var res *core.Result
	var err error
	if c.cfg.Budget.Partitions > 1 {
		pc := core.DefaultPartitionConfig()
		pc.Partitions = c.cfg.Budget.Partitions
		pc.ExchangeRounds = c.cfg.Budget.ExchangeRounds
		// No transfer annotation needed: SolvePartitioned clones planning
		// before any goroutine sees it (each partition goroutine owns its
		// PlacementView), which sharecheck proves interprocedurally.
		res, err = core.New(scfg).SolvePartitioned(planning, pc)
	} else {
		//rexlint:transfer planning is the controller's private clone; the live placement stays behind the mutex
		res, err = core.New(scfg).SolveParallel(planning, c.cfg.Budget.Restarts)
	}
	if c.m != nil {
		// Wall time feeds metrics only; the journal sticks to Clock
		// seconds so virtual-clock runs stay bit-reproducible.
		c.m.solveSeconds.Observe(time.Since(wallStart).Seconds()) //rexlint:ignore clockpurity metrics-only wall time
	}
	c.clock.Sleep(c.cfg.Budget.SolveSeconds)

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	c.solves++
	if c.m != nil {
		c.m.solves.Inc()
	}
	c.lastSolveAt = now
	c.everSolved = true
	stat.Solved = true
	if err != nil {
		stat.Err = err.Error()
		c.setState(StateIdle)
		c.emit(obs.Event{T: now, Span: obs.SpanSolve, Phase: obs.PhaseEnd,
			Round: stat.Round, Outcome: obs.OutcomeErr, Err: stat.Err,
			Seconds: c.cfg.Budget.SolveSeconds})
		emitSolveTrace(now)
		return
	}
	stat.PlanMoves = res.Plan.NumMoves()
	stat.Objective = res.Objective
	if c.m != nil {
		c.m.plannedMoves.Add(float64(res.Plan.NumMoves()))
		c.m.lastPlanMoves.Set(float64(res.Plan.NumMoves()))
	}
	c.emit(obs.Event{T: now, Span: obs.SpanSolve, Phase: obs.PhaseEnd,
		Round: stat.Round, Outcome: obs.OutcomeOK,
		Objective: res.Objective, Moves: res.Plan.NumMoves(),
		Seconds: c.cfg.Budget.SolveSeconds})
	emitSolveTrace(now)
	c.exec.SetPlan(res.Plan)
	if res.Plan.NumMoves() == 0 {
		c.setState(StateIdle)
		return
	}
	c.setState(StateMigrating)
	if err := c.exec.Tick(c.live, now); err != nil {
		stat.Err = err.Error()
		c.setState(StateIdle)
	}
}

// ExecStatus is the executor excerpt embedded in Status.
type ExecStatus struct {
	ExecCounters
	Done bool `json:"done"`
}

// Status is the controller snapshot served on /status.
type Status struct {
	State       string      `json:"state"`
	Now         float64     `json:"now"`
	Round       int         `json:"round"`
	Solves      int         `json:"solves"`
	LastSolveAt float64     `json:"last_solve_at"`
	Campaign    bool        `json:"campaign"`
	Imbalance   float64     `json:"imbalance"`
	MaxUtil     float64     `json:"max_util"`
	MeanUtil    float64     `json:"mean_util"`
	Executor    ExecStatus  `json:"executor"`
	LastRounds  []RoundStat `json:"last_rounds,omitempty"`
}

// Status returns a consistent snapshot of the controller state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		State:       c.state.String(),
		Now:         c.clock.Now(),
		Round:       c.round,
		Solves:      c.solves,
		LastSolveAt: c.lastSolveAt,
		Campaign:    c.campaign,
		Imbalance:   c.lastReport.Imbalance,
		MaxUtil:     c.lastReport.MaxUtil,
		MeanUtil:    c.lastReport.MeanUtil,
		Executor:    ExecStatus{ExecCounters: c.exec.Counters(), Done: c.exec.Done()},
	}
	tail := c.history
	if len(tail) > 16 {
		tail = tail[len(tail)-16:]
	}
	st.LastRounds = append([]RoundStat(nil), tail...)
	return st
}

// Report returns the balance report of the most recent snapshot.
func (c *Controller) Report() metrics.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastReport
}

// History returns a copy of every recorded round.
func (c *Controller) History() []RoundStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RoundStat(nil), c.history...)
}

// SnapshotPlacement returns a deep copy of the live placement.
func (c *Controller) SnapshotPlacement() *cluster.Placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live.Clone()
}

// PlanView returns the per-move state of the current schedule.
func (c *Controller) PlanView() []MoveView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exec.MoveStates()
}

// ExecCounters returns a snapshot of the executor statistics.
func (c *Controller) ExecCounters() ExecCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exec.Counters()
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// smallInstance builds a deterministic imbalanced instance with k exchange
// machines appended.
func smallInstance(t *testing.T, seed int64, k int) *cluster.Placement {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = 12
	cfg.Shards = 120
	cfg.TargetFill = 0.75
	cfg.Seed = seed
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k == 0 {
		return inst.Placement
	}
	ec := inst.Cluster.WithExchange(k, vec.New(100, 100, 100), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 300
	return cfg
}

func TestSolveImprovesBalance(t *testing.T) {
	p := smallInstance(t, 3, 2)
	res, err := New(quickConfig()).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.After.Imbalance >= res.Before.Imbalance {
		t.Errorf("imbalance did not improve: %.4f → %.4f", res.Before.Imbalance, res.After.Imbalance)
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Errorf("max utilization rose: %.4f → %.4f", res.Before.MaxUtil, res.After.MaxUtil)
	}
	if !res.Final.Feasible() {
		t.Error("final placement must be statically feasible")
	}
	if err := res.Final.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSolveVacancyContract(t *testing.T) {
	const k = 3
	p := smallInstance(t, 4, k)
	res, err := New(quickConfig()).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.NumVacant() < k {
		t.Fatalf("final has %d vacant machines, need ≥ %d", res.Final.NumVacant(), k)
	}
	if len(res.Returned) != k {
		t.Fatalf("returned %d machines, want %d", len(res.Returned), k)
	}
	seen := map[cluster.MachineID]bool{}
	for _, m := range res.Returned {
		if !res.Final.IsVacant(m) {
			t.Errorf("returned machine %d is not vacant", m)
		}
		if seen[m] {
			t.Errorf("machine %d returned twice", m)
		}
		seen[m] = true
	}
}

func TestSolvePlanReplays(t *testing.T) {
	p := smallInstance(t, 5, 2)
	res, err := New(quickConfig()).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Plan.Validate(p)
	if err != nil {
		t.Fatalf("move schedule invalid: %v", err)
	}
	for s := 0; s < p.Cluster().NumShards(); s++ {
		id := cluster.ShardID(s)
		if got.Home(id) != res.Final.Home(id) {
			t.Fatalf("plan realizes different placement at shard %d", s)
		}
	}
	if res.MovedShards == 0 {
		t.Error("expected some shards to move")
	}
	if res.Plan.NumMoves() < res.MovedShards {
		t.Errorf("plan has %d moves for %d moved shards", res.Plan.NumMoves(), res.MovedShards)
	}
}

func TestSolveDeterministic(t *testing.T) {
	a, err := New(quickConfig()).Solve(smallInstance(t, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(quickConfig()).Solve(smallInstance(t, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Errorf("same seed, different objectives: %v vs %v", a.Objective, b.Objective)
	}
	if a.MovedShards != b.MovedShards {
		t.Errorf("same seed, different move counts: %d vs %d", a.MovedShards, b.MovedShards)
	}
}

func TestSolveInputNotModified(t *testing.T) {
	p := smallInstance(t, 7, 1)
	before := p.Assignment()
	if _, err := New(quickConfig()).Solve(p); err != nil {
		t.Fatal(err)
	}
	after := p.Assignment()
	for s := range before {
		if before[s] != after[s] {
			t.Fatalf("input placement mutated at shard %d", s)
		}
	}
}

func TestSolveNoExchange(t *testing.T) {
	p := smallInstance(t, 8, 0)
	res, err := New(quickConfig()).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Returned) != 0 {
		t.Errorf("K=0 run returned machines: %v", res.Returned)
	}
	// Still expected to improve at moderate fill.
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Errorf("max utilization rose without exchange: %.4f → %.4f", res.Before.MaxUtil, res.After.MaxUtil)
	}
}

func TestSolveWithExchangeBeatsWithout(t *testing.T) {
	// At very high fill the exchange machines should enable strictly more
	// improvement. Use a tight instance.
	gen := workload.DefaultConfig()
	gen.Machines = 10
	gen.Shards = 100
	gen.TargetFill = 0.93
	gen.Seed = 11
	inst, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Iterations = 1500

	noEx, err := New(cfg).Solve(inst.Placement)
	if err != nil {
		t.Fatal(err)
	}
	ec := inst.Cluster.WithExchange(2, vec.New(100, 100, 100), 1)
	ep, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	withEx, err := New(cfg).Solve(ep)
	if err != nil {
		t.Fatal(err)
	}
	// Both searches are stochastic with different search spaces; allow 1%
	// slack but the exchange run must not be meaningfully worse.
	if withEx.After.MaxUtil > noEx.After.MaxUtil*1.01 {
		t.Errorf("exchange run worse than no-exchange: %.4f vs %.4f",
			withEx.After.MaxUtil, noEx.After.MaxUtil)
	}
}

func TestConfigValidation(t *testing.T) {
	p := smallInstance(t, 9, 1)

	cfg := quickConfig()
	cfg.Iterations = 0
	if _, err := New(cfg).Solve(p); err == nil {
		t.Error("expected error for zero iterations")
	}

	cfg = quickConfig()
	cfg.Operators = OperatorSet{}
	if _, err := New(cfg).Solve(p); err == nil {
		t.Error("expected error for empty operator set")
	}

	cfg = quickConfig()
	cfg.ReturnCount = 50 // more than vacant machines available
	if _, err := New(cfg).Solve(p); err == nil {
		t.Error("expected error for impossible ReturnCount")
	}

	// partial placement
	q := p.Clone()
	if err := q.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, err := New(quickConfig()).Solve(q); err == nil {
		t.Error("expected error for partial placement")
	}
}

func TestOperatorSubsets(t *testing.T) {
	subsets := []OperatorSet{
		{RandomRemove: true, GreedyRepair: true},
		{WorstRemove: true, GreedyRepair: true},
		{RelatedRemove: true, RegretRepair: true},
		{DrainRemove: true, GreedyRepair: true},
		{RandomRemove: true, RegretRepair: true},
	}
	for i, ops := range subsets {
		cfg := quickConfig()
		cfg.Iterations = 150
		cfg.Operators = ops
		res, err := New(cfg).Solve(smallInstance(t, 20+int64(i), 1))
		if err != nil {
			t.Fatalf("subset %d: %v", i, err)
		}
		if !res.Final.Feasible() {
			t.Errorf("subset %d: infeasible final placement", i)
		}
	}
}

func TestHillClimbMode(t *testing.T) {
	cfg := quickConfig()
	cfg.HillClimb = true
	res, err := New(cfg).Solve(smallInstance(t, 12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Error("hill climb must never worsen the best solution")
	}
}

func TestTrajectoryMonotone(t *testing.T) {
	cfg := quickConfig()
	cfg.KeepTrajectory = true
	res, err := New(cfg).Solve(smallInstance(t, 13, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != cfg.Iterations {
		t.Fatalf("trajectory length %d, want %d", len(res.Trajectory), cfg.Iterations)
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] > res.Trajectory[i-1]+1e-12 {
			t.Fatalf("best-objective trajectory rose at %d: %v → %v",
				i, res.Trajectory[i-1], res.Trajectory[i])
		}
	}
}

func TestObjectivePrefersBalance(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 4},
			{ID: 1, Static: vec.Uniform(1), Load: 4},
		},
	}
	lopsided, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 0})
	even, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 1})
	cfg := DefaultConfig()
	if Evaluate(cfg, even, nil) >= Evaluate(cfg, lopsided, nil) {
		t.Error("balanced placement should score lower")
	}
}

func TestObjectiveMovePenalty(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 1},
		},
	}
	even, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 1})
	initial := []cluster.MachineID{0, 1}
	swapped := []cluster.MachineID{1, 0}
	evenSwapped, _ := cluster.FromAssignment(c, swapped)
	cfg := DefaultConfig()
	same := Evaluate(cfg, even, initial)
	moved := Evaluate(cfg, evenSwapped, initial)
	if moved <= same {
		t.Error("moving shards without balance gain should cost")
	}
}

func TestPickReturnedPrefersExchange(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 0.5},
			{ID: 2, Capacity: vec.Uniform(10), Speed: 1, Exchange: true},
		},
		Shards: []cluster.Shard{{ID: 0, Static: vec.Uniform(1), Load: 1}},
	}
	p, _ := cluster.FromAssignment(c, []cluster.MachineID{0})
	// vacant: 1 (speed .5) and 2 (exchange). K=1 → must pick the exchange.
	got := pickReturned(p, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("pickReturned = %v, want [2]", got)
	}
	// K=2 → exchange then slowest
	got = pickReturned(p, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("pickReturned = %v, want [2 1]", got)
	}
	// K larger than vacancy is clamped defensively
	if got := pickReturned(p, 5); len(got) != 2 {
		t.Errorf("pickReturned over-request = %v", got)
	}
}

func TestTempAt(t *testing.T) {
	if tempAt(0, 0, 5, 10) != 0 {
		t.Error("zero t0 should yield zero temperature")
	}
	t0, tEnd := 1.0, 0.01
	first := tempAt(t0, tEnd, 0, 100)
	last := tempAt(t0, tEnd, 99, 100)
	if math.Abs(first-t0) > 1e-9 {
		t.Errorf("first temp = %v", first)
	}
	if math.Abs(last-tEnd) > 1e-9 {
		t.Errorf("last temp = %v", last)
	}
	mid := tempAt(t0, tEnd, 50, 100)
	if mid >= first || mid <= last {
		t.Errorf("temperature not interpolating: %v", mid)
	}
	// tEnd <= 0 defaults to t0/1000
	if got := tempAt(1, 0, 99, 100); got > 1e-2 {
		t.Errorf("default end temp = %v", got)
	}
}

func TestRouletteIndex(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	counts := make([]int, 3)
	w := []float64{1, 0, 3}
	for i := 0; i < 4000; i++ {
		counts[rouletteIndex(r, w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight op selected %d times", counts[1])
	}
	if counts[2] < 2*counts[0] {
		t.Errorf("weights not respected: %v", counts)
	}
	// all-zero weights → uniform fallback
	z := []float64{0, 0}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[rouletteIndex(r, z)] = true
	}
	if len(seen) != 2 {
		t.Errorf("uniform fallback broken: %v", seen)
	}
}

func TestSolveInternalInvariants(t *testing.T) {
	// Run a short solve and recheck the final placement's incremental
	// aggregates from scratch.
	res, err := New(quickConfig()).Solve(smallInstance(t, 14, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Error("expected the search to accept at least one move")
	}
}

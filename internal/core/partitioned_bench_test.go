package core

// The F4 partitioned-solver sweep (bench/BENCH_F4.json): the same global
// iteration budget spent by the whole-cluster solve (p=1, the
// single-partition delegate) versus the partitioned parallel solve at
// several partition counts, on 10k–100k machine fleets. The partitioned
// path wins twice — one LNS iteration costs O(|partition|) instead of
// O(|fleet|) (budget splitting), and partitions solve concurrently — so
// the speedup is architectural on any core count and grows with cores.
//
//	go test ./internal/core -run '^$' -bench PartitionedSweep -benchtime=1x
//	REXCHANGE_FULL=1 ... adds the 100k-machine size.

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// benchFleet builds a three-tier fleet with an O(shards) random first-fit
// placement. Every 5th machine of each shape class stays vacant, so spread
// headroom exists inside every partition a shape partitioning can produce
// (not just in one ID range — that would gift the whole-cluster solve an
// opportunity partitions cannot see and bias the quality comparison), and
// placement probability is proportional to machine speed, so no shape
// class starts structurally overloaded relative to another (the
// equivalence-class setting: the router feeds classes in proportion to
// their capability, and rebalancing fights variance, not class skew).
// Heavy-tailed shard loads leave real per-machine load variance for the
// solver to flatten at any scale, without the O(shards·machines) best-fit
// pass the workload generator uses.
func benchFleet(tb testing.TB, machines, shards int, seed int64) *cluster.Placement {
	tb.Helper()
	c := &cluster.Cluster{
		Machines: make([]cluster.Machine, machines),
		Shards:   make([]cluster.Shard, shards),
	}
	shapes := []cluster.Machine{
		{Capacity: vec.New(64, 512, 10), Speed: 1},
		{Capacity: vec.New(128, 1024, 25), Speed: 1.8},
		{Capacity: vec.New(256, 2048, 40), Speed: 3},
	}
	var dense []cluster.MachineID
	for m := 0; m < machines; m++ {
		c.Machines[m] = shapes[m%len(shapes)]
		c.Machines[m].ID = cluster.MachineID(m)
		if (m/len(shapes))%5 != 4 {
			dense = append(dense, cluster.MachineID(m))
		}
	}
	r := rand.New(rand.NewSource(seed))
	for s := 0; s < shards; s++ {
		load := 0.05 + 0.3*r.Float64()
		if s%10 == 0 {
			load += 2 * r.Float64() // heavy tail so balance is non-trivial
		}
		c.Shards[s] = cluster.Shard{
			ID:     cluster.ShardID(s),
			Static: vec.New(1+r.Float64(), 4+r.Float64(), 0.1),
			Load:   load,
		}
	}
	// Speed-proportional slots: a speed-3 machine draws 3x the shards of a
	// speed-1 machine, so expected utilization is flat across shape classes.
	var slots []cluster.MachineID
	for _, id := range dense {
		n := int(c.Machines[id].Speed * 5) // speeds 1/1.8/3 -> 5/9/15 slots
		for i := 0; i < n; i++ {
			slots = append(slots, id)
		}
	}
	p := cluster.NewPlacement(c)
	for s := 0; s < shards; s++ {
		start := r.Intn(len(slots))
		for off := 0; ; off++ {
			if off >= len(slots) {
				tb.Fatalf("bench fleet too tight: shard %d fits nowhere", s)
			}
			if p.PlaceChecked(cluster.ShardID(s), slots[(start+off)%len(slots)]) {
				break
			}
		}
	}
	return p
}

// benchmarkPartitioned solves one fleet size at one partition count with
// the same global iteration budget; p=1 is the whole-cluster baseline.
func benchmarkPartitioned(b *testing.B, machines, shards, partitions int) {
	p := benchFleet(b, machines, shards, 42)
	cfg := DefaultConfig()
	cfg.Iterations = 2000
	pc := DefaultPartitionConfig()
	pc.Partitions = partitions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := New(cfg).SolvePartitioned(p, pc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Objective, "objective")
			b.ReportMetric(res.After.MaxUtil, "max_util")
		}
	}
}

func BenchmarkPartitionedSweep(b *testing.B) {
	sizes := []struct{ machines, shards int }{
		{10000, 150000},
	}
	if os.Getenv("REXCHANGE_FULL") == "1" {
		sizes = append(sizes, struct{ machines, shards int }{100000, 1500000})
	}
	for _, sz := range sizes {
		for _, parts := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("m%d_p%d", sz.machines, parts), func(b *testing.B) {
				benchmarkPartitioned(b, sz.machines, sz.shards, parts)
			})
		}
	}
}

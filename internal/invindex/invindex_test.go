package invindex

import (
	"math"
	"testing"

	"rexchange/internal/cluster"
)

func tinyIndex() *Index {
	ix := NewIndex()
	ix.Add([]string{"the", "quick", "brown", "fox"})
	ix.Add([]string{"the", "lazy", "dog"})
	ix.Add([]string{"the", "quick", "dog", "dog"})
	return ix
}

func TestIndexBasics(t *testing.T) {
	ix := tinyIndex()
	if ix.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.NumTerms() != 6 {
		t.Errorf("NumTerms = %d", ix.NumTerms())
	}
	// postings: the→3, quick→2, brown→1, fox→1, lazy→1, dog→2 = 10
	if ix.NumPostings() != 10 {
		t.Errorf("NumPostings = %d", ix.NumPostings())
	}
	if got := ix.AvgDocLen(); math.Abs(got-11.0/3) > 1e-12 {
		t.Errorf("AvgDocLen = %v", got)
	}
	ps := ix.Postings("dog")
	if len(ps) != 2 || ps[0].Doc != 1 || ps[1].Doc != 2 || ps[1].TF != 2 {
		t.Errorf("Postings(dog) = %v", ps)
	}
	if ix.Postings("unknown") != nil {
		t.Error("unknown term should have nil postings")
	}
}

func TestSearchTAATRanks(t *testing.T) {
	ix := tinyIndex()
	res, st := ix.SearchTAAT([]string{"dog"}, 10)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	// doc 2 has tf=2 for "dog" but is longer; tf dominates here.
	if res[0].Doc != 2 {
		t.Errorf("top doc = %d, want 2", res[0].Doc)
	}
	if st.PostingsScanned != 2 {
		t.Errorf("scanned = %d", st.PostingsScanned)
	}
	// unknown-only query
	res, _ = ix.SearchTAAT([]string{"nope"}, 10)
	if res != nil {
		t.Error("unknown term should return no results")
	}
	// k = 0
	if res, _ := ix.SearchTAAT([]string{"dog"}, 0); res != nil {
		t.Error("k=0 should return nothing")
	}
}

func TestSearchDuplicateQueryTerms(t *testing.T) {
	ix := tinyIndex()
	a, _ := ix.SearchTAAT([]string{"dog", "dog"}, 10)
	b, _ := ix.SearchTAAT([]string{"dog"}, 10)
	if len(a) != len(b) || a[0].Score != b[0].Score {
		t.Error("duplicate query terms must be deduplicated")
	}
}

func TestDAATMatchesTAAT(t *testing.T) {
	docs, err := GenerateCorpus(CorpusConfig{Docs: 800, Vocab: 600, ZipfS: 1.2, MeanDocLen: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	queries, err := GenerateQueries(QueryConfig{Queries: 60, Vocab: 600, ZipfS: 1.1, MaxTerms: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		for _, k := range []int{1, 5, 20} {
			taat, _ := ix.SearchTAAT(q, k)
			daat, _ := ix.SearchDAAT(q, k)
			if len(taat) != len(daat) {
				t.Fatalf("query %d k=%d: %d vs %d results", qi, k, len(taat), len(daat))
			}
			for i := range taat {
				if math.Abs(taat[i].Score-daat[i].Score) > 1e-9 {
					t.Fatalf("query %d k=%d pos %d: TAAT %v vs DAAT %v",
						qi, k, i, taat[i], daat[i])
				}
			}
		}
	}
}

func TestDAATPrunesWork(t *testing.T) {
	docs, err := GenerateCorpus(CorpusConfig{Docs: 3000, Vocab: 1000, ZipfS: 1.2, MeanDocLen: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	queries, _ := GenerateQueries(QueryConfig{Queries: 40, Vocab: 1000, ZipfS: 1.05, MaxTerms: 4, Seed: 6})
	var taatWork, daatWork int
	for _, q := range queries {
		_, st1 := ix.SearchTAAT(q, 10)
		_, st2 := ix.SearchDAAT(q, 10)
		taatWork += st1.PostingsScanned
		daatWork += st2.PostingsScanned
	}
	if daatWork >= taatWork {
		t.Errorf("MaxScore did not prune: DAAT %d vs TAAT %d postings", daatWork, taatWork)
	}
}

func TestCorpusValidation(t *testing.T) {
	if _, err := GenerateCorpus(CorpusConfig{Docs: 0, Vocab: 1, MeanDocLen: 1, ZipfS: 1.1}); err == nil {
		t.Error("expected docs error")
	}
	if _, err := GenerateCorpus(CorpusConfig{Docs: 1, Vocab: 1, MeanDocLen: 1, ZipfS: 1.0}); err == nil {
		t.Error("expected zipf error")
	}
	if _, err := GenerateQueries(QueryConfig{Queries: 0, Vocab: 1, MaxTerms: 1, ZipfS: 1.1}); err == nil {
		t.Error("expected queries error")
	}
}

func TestBuildSharded(t *testing.T) {
	docs, _ := GenerateCorpus(CorpusConfig{Docs: 100, Vocab: 200, ZipfS: 1.2, MeanDocLen: 20, Seed: 7})
	si, err := BuildSharded(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range si.Shards {
		total += sh.NumDocs()
	}
	if total != 100 {
		t.Errorf("sharded docs = %d", total)
	}
	if _, err := BuildSharded(docs, 0); err == nil {
		t.Error("expected shard-count error")
	}
	if _, err := BuildSharded(docs[:2], 4); err == nil {
		t.Error("expected too-few-docs error")
	}
}

func TestShardedSearchMerges(t *testing.T) {
	docs, _ := GenerateCorpus(CorpusConfig{Docs: 400, Vocab: 300, ZipfS: 1.2, MeanDocLen: 25, Seed: 8})
	si, err := BuildSharded(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, stats := si.Search([]string{termName(1), termName(2)}, 10)
	if len(stats) != 4 {
		t.Fatalf("stats per shard = %d", len(stats))
	}
	if len(res) == 0 {
		t.Fatal("no merged results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score+1e-12 {
			t.Fatal("merged results not score-ordered")
		}
	}
	// Global top-k must equal merging everything by score: compare with a
	// single unsharded index (scores are shard-local BM25, so only verify
	// ordering and count here; exact cross-shard equivalence needs global
	// statistics, which real engines also approximate).
	if len(res) > 10 {
		t.Errorf("k exceeded: %d", len(res))
	}
}

func TestProfileShards(t *testing.T) {
	docs, _ := GenerateCorpus(CorpusConfig{Docs: 600, Vocab: 500, ZipfS: 1.2, MeanDocLen: 30, Seed: 9})
	si, err := BuildSharded(docs, 6)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := GenerateQueries(QueryConfig{Queries: 80, Vocab: 500, ZipfS: 1.05, MaxTerms: 3, Seed: 10})
	shards, err := si.ProfileShards(DefaultProfileConfig(queries))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("profiles = %d", len(shards))
	}
	for i, s := range shards {
		if s.ID != cluster.ShardID(i) {
			t.Errorf("shard %d ID mismatch", i)
		}
		if !(s.Static.Sum() > 0) || !(s.Load > 0) {
			t.Errorf("shard %d has degenerate profile: %+v", i, s)
		}
	}
	if _, err := si.ProfileShards(ProfileConfig{TopK: 10}); err == nil {
		t.Error("expected workload error")
	}
	if _, err := si.ProfileShards(ProfileConfig{Queries: queries, TopK: 0}); err == nil {
		t.Error("expected TopK error")
	}
}

func TestClusterFromProfiles(t *testing.T) {
	docs, _ := GenerateCorpus(CorpusConfig{Docs: 600, Vocab: 500, ZipfS: 1.2, MeanDocLen: 30, Seed: 11})
	si, _ := BuildSharded(docs, 12)
	queries, _ := GenerateQueries(QueryConfig{Queries: 50, Vocab: 500, ZipfS: 1.05, MaxTerms: 3, Seed: 12})
	shards, err := si.ProfileShards(DefaultProfileConfig(queries))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ClusterFromProfiles(shards, 4, 0.7, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Error("profile-derived placement must be feasible")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := ClusterFromProfiles(shards, 0, 0.7, 1); err == nil {
		t.Error("expected machine-count error")
	}
	if _, err := ClusterFromProfiles(shards, 4, 1.5, 1); err == nil {
		t.Error("expected fill error")
	}
}

func TestCorpusAndQueriesDeterministic(t *testing.T) {
	cfg := CorpusConfig{Docs: 50, Vocab: 100, ZipfS: 1.2, MeanDocLen: 10, Seed: 77}
	a, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("doc %d length differs between same-seed runs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
	qcfg := QueryConfig{Queries: 30, Vocab: 100, ZipfS: 1.1, MaxTerms: 3, Seed: 78}
	qa, _ := GenerateQueries(qcfg)
	qb, _ := GenerateQueries(qcfg)
	for i := range qa {
		if len(qa[i]) != len(qb[i]) {
			t.Fatalf("query %d differs between same-seed runs", i)
		}
	}
}

func TestIndexString(t *testing.T) {
	if s := tinyIndex().String(); s == "" {
		t.Error("String should describe the index")
	}
}

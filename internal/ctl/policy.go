package ctl

import "fmt"

// Policy decides when the controller re-solves. It implements hysteresis
// with a cooldown:
//
//   - a *campaign* starts when observed imbalance reaches HighWater;
//   - while a campaign is active the controller keeps re-solving (once the
//     previous plan has drained) until imbalance falls to LowWater, where
//     the campaign ends — the dead band between the marks prevents churn
//     around a single threshold;
//   - an in-flight plan is superseded (cancelled and re-solved) only when
//     imbalance climbs back above HighWater, never for mid-band drift;
//   - Cooldown is the minimum spacing between solve rounds regardless of
//     the watermarks.
type Policy struct {
	// HighWater triggers a re-solve (imbalance = MaxUtil/MeanUtil, 1.0 is
	// perfect balance).
	HighWater float64
	// LowWater ends an active rebalancing campaign. Must be ≥ 1 and below
	// HighWater.
	LowWater float64
	// Cooldown is the minimum seconds between consecutive solves.
	Cooldown float64
}

// DefaultPolicy triggers at 25% over ideal and stops churning at 10% over,
// with no cooldown (the window pacing already rate-limits solves).
func DefaultPolicy() Policy {
	return Policy{HighWater: 1.25, LowWater: 1.10}
}

// validate checks the watermark ordering.
func (p Policy) validate() error {
	if p.LowWater < 1 {
		return fmt.Errorf("ctl: LowWater must be ≥ 1, got %g", p.LowWater)
	}
	if p.HighWater < p.LowWater {
		return fmt.Errorf("ctl: HighWater %g below LowWater %g", p.HighWater, p.LowWater)
	}
	if p.Cooldown < 0 {
		return fmt.Errorf("ctl: negative Cooldown %g", p.Cooldown)
	}
	return nil
}

// ShouldSolve reports whether a solve should run now. campaign is whether a
// rebalancing campaign is active, migrating whether a plan is still
// executing, and lastSolveAt the time of the previous solve (NaN-free: pass
// everSolved=false before the first).
func (p Policy) ShouldSolve(imb float64, campaign, migrating bool, now, lastSolveAt float64, everSolved bool) bool {
	if everSolved && now-lastSolveAt < p.Cooldown {
		return false
	}
	if imb >= p.HighWater {
		return true
	}
	// Mid-band: never supersede a working plan, but keep an idle campaign
	// going until the low-water mark is reached.
	return campaign && !migrating && imb > p.LowWater
}

// Budget bounds one solve round. The LNS iteration count is the paper's
// natural work unit (wall time per iteration is instance-dependent but
// stable), and restarts multiply it across cores via core.SolveParallel.
// When Partitions > 1 the round runs core.SolvePartitioned instead: the
// fleet is factored into resource-equivalence partitions solved
// concurrently on slices of the iteration budget, with ExchangeRounds
// cross-partition exchange phases in between.
type Budget struct {
	// Iterations is the LNS iteration budget per restart (or the global
	// budget split across partitions when Partitions > 1).
	Iterations int
	// Restarts is the number of parallel SRA restarts (best result wins);
	// 0 means the pinned core.DefaultRestarts — never GOMAXPROCS, so a
	// defaulted budget runs the same searches on every host. Ignored when
	// Partitions > 1.
	Restarts int
	// Partitions, when > 1, selects the partitioned parallel solver with
	// this target partition count. 0 or 1 keeps the whole-cluster
	// restart portfolio.
	Partitions int
	// ExchangeRounds bounds the cross-partition exchange phases per solve
	// when Partitions > 1; 0 solves each partition once with no exchange.
	ExchangeRounds int
	// SolveSeconds is the modeled latency charged to the clock per solve
	// round. On the virtual clock it stands in for real solver runtime so
	// simulated schedules stay honest; on the wall clock real time passes
	// anyway and this should be left 0.
	SolveSeconds float64
}

// DefaultBudget returns a small per-round budget suitable for continuous
// operation: frequent cheap re-solves beat rare exhaustive ones when load
// keeps drifting.
func DefaultBudget() Budget {
	return Budget{Iterations: 600, Restarts: 2}
}

// validate checks the budget.
func (b Budget) validate() error {
	if b.Iterations <= 0 {
		return fmt.Errorf("ctl: Budget.Iterations must be positive, got %d", b.Iterations)
	}
	if b.Restarts < 0 {
		return fmt.Errorf("ctl: negative Budget.Restarts %d", b.Restarts)
	}
	if b.Partitions < 0 {
		return fmt.Errorf("ctl: negative Budget.Partitions %d", b.Partitions)
	}
	if b.ExchangeRounds < 0 {
		return fmt.Errorf("ctl: negative Budget.ExchangeRounds %d", b.ExchangeRounds)
	}
	if b.SolveSeconds < 0 {
		return fmt.Errorf("ctl: negative Budget.SolveSeconds %g", b.SolveSeconds)
	}
	return nil
}

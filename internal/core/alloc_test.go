package core

import (
	"testing"

	"rexchange/internal/cluster"
)

// TestDeltaKernelAllocFree proves the //rexlint:noalloc annotations on the
// delta kernel (incremental.go, cluster/txn.go) against the runtime: a full
// journal → sync → evaluate → rollback cycle performs zero heap
// allocations per iteration once the reusable buffers are warm. alloccheck
// verifies the same property statically over the call graph; this test
// keeps the static proof honest.
func TestDeltaKernelAllocFree(t *testing.T) {
	p := smallInstance(t, 11, 0)
	st := newState(DefaultConfig(), p, 0)
	st.initIncremental()

	shard := cluster.ShardID(0)
	otherMachine := func() cluster.MachineID {
		home := st.cur.Home(shard)
		if home == 0 {
			return 1
		}
		return 0
	}

	cycle := func() {
		st.cur.BeginTxn()
		st.saveObjState()
		st.cur.Move(shard, otherMachine())
		st.syncTouched()
		_ = st.evalIncremental()
		st.rollbackIncremental()
	}
	// Warm up: grow st.touched and the journal's backing array to their
	// steady-state capacity (the growth is waived as amortized in the
	// annotations, so it must not count here either).
	for i := 0; i < 8; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("delta kernel cycle allocates %.1f times per iteration, want 0", allocs)
	}

	evalOnly := func() {
		st.refreshMachine(0)
		st.refreshShard(shard)
		_ = st.evalIncremental()
	}
	if allocs := testing.AllocsPerRun(200, evalOnly); allocs != 0 {
		t.Fatalf("refresh+eval allocates %.1f times per iteration, want 0", allocs)
	}
}

// Fixture for the maporder analyzer: building slices from map iteration is
// flagged unless the slice is sorted afterwards (or the loop is over a
// slice, or the slice is loop-local).
package maporder

import "sort"

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to out while ranging over a map`
	}
	return out
}

type state struct{ ids []int }

func badField(s *state, m map[int]int) {
	for k := range m {
		s.ids = append(s.ids, k) // want `append to s while ranging over a map`
	}
}

func goodSortedAfter(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: not flagged
	}
	sort.Ints(keys)
	return keys
}

func goodLoopLocal(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func goodSliceRange(xs []int) []int {
	var out []int
	for _, x := range xs { // ranging over a slice is fine
		out = append(out, x)
	}
	return out
}

func ignored(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) //rexlint:ignore maporder order is normalized by the caller
	}
	return out
}

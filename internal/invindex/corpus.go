package invindex

import (
	"fmt"
	"math"
	"math/rand"
)

// CorpusConfig parameterizes synthetic corpus generation: documents drawn
// from a Zipf-distributed vocabulary, the standard model of natural-
// language term frequencies.
type CorpusConfig struct {
	// Docs is the number of documents.
	Docs int
	// Vocab is the vocabulary size.
	Vocab int
	// ZipfS is the Zipf exponent of term popularity (>1 required by
	// math/rand's sampler; ~1.1 is typical of text).
	ZipfS float64
	// MeanDocLen is the average document length; actual lengths are
	// geometric-ish around it.
	MeanDocLen int
	// Seed drives generation.
	Seed int64
}

// DefaultCorpusConfig returns a small but realistic corpus configuration.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{Docs: 2000, Vocab: 5000, ZipfS: 1.15, MeanDocLen: 60, Seed: 1}
}

// GenerateCorpus produces documents as token slices.
func GenerateCorpus(cfg CorpusConfig) ([][]string, error) {
	if cfg.Docs <= 0 || cfg.Vocab <= 0 || cfg.MeanDocLen <= 0 {
		return nil, fmt.Errorf("invindex: corpus needs positive Docs, Vocab, MeanDocLen")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("invindex: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Vocab-1))
	docs := make([][]string, cfg.Docs)
	for d := range docs {
		// geometric length with the requested mean, at least 1 token
		n := 1 + int(r.ExpFloat64()*float64(cfg.MeanDocLen-1))
		if n > 4*cfg.MeanDocLen {
			n = 4 * cfg.MeanDocLen
		}
		tokens := make([]string, n)
		for i := range tokens {
			tokens[i] = termName(int(zipf.Uint64()))
		}
		docs[d] = tokens
	}
	return docs, nil
}

// termName maps a term rank to its token string.
func termName(rank int) string { return fmt.Sprintf("t%d", rank) }

// QueryConfig parameterizes synthetic query generation: short queries whose
// terms follow a (usually flatter) Zipf law over the same vocabulary.
type QueryConfig struct {
	Queries  int
	Vocab    int
	ZipfS    float64
	MaxTerms int
	Seed     int64
}

// DefaultQueryConfig returns a typical web-search-like query mix.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{Queries: 500, Vocab: 5000, ZipfS: 1.05, MaxTerms: 4, Seed: 2}
}

// GenerateQueries produces term-list queries.
func GenerateQueries(cfg QueryConfig) ([][]string, error) {
	if cfg.Queries <= 0 || cfg.Vocab <= 0 || cfg.MaxTerms <= 0 {
		return nil, fmt.Errorf("invindex: queries need positive Queries, Vocab, MaxTerms")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("invindex: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Vocab-1))
	qs := make([][]string, cfg.Queries)
	for i := range qs {
		// 1..MaxTerms terms, shorter queries more common
		n := 1 + int(math.Floor(r.ExpFloat64()))
		if n > cfg.MaxTerms {
			n = cfg.MaxTerms
		}
		terms := make([]string, n)
		for j := range terms {
			terms[j] = termName(int(zipf.Uint64()))
		}
		qs[i] = terms
	}
	return qs, nil
}

package cluster

import (
	"fmt"
	"math"
	"sort"

	"rexchange/internal/vec"
)

// This file partitions a machine fleet into solver partitions by resource
// shape, following the equivalence-class decomposition of the authors'
// 2021 follow-up ("Resource Equivalence Classes"): machines with identical
// (capacity vector, speed) are interchangeable for placement purposes, so
// the fleet factors into shape classes that can be rebalanced
// independently and reconciled by a cross-partition exchange phase.

// PartitionOptions parameterizes PartitionByShape.
type PartitionOptions struct {
	// Target is the desired partition count. The result has at most
	// Target partitions; fewer when the fleet is too small. Target <= 1
	// yields a single partition covering the whole fleet.
	Target int
	// MinMachines is the smallest acceptable partition; smaller shape
	// classes are merged into their nearest sibling. <= 0 defaults to 2.
	MinMachines int
}

// shapeKey identifies a resource-equivalence class by the exact bits of
// the capacity vector and speed (bit comparison, not float equality: two
// machines are equivalent only when their resources are literally
// identical, and NaN-shaped capacities never silently merge).
type shapeKey struct {
	cap   [vec.NumResources]uint64
	speed uint64
}

func shapeOf(m *Machine) shapeKey {
	var k shapeKey
	for d := 0; d < vec.NumResources; d++ {
		k.cap[d] = math.Float64bits(m.Capacity[d])
	}
	k.speed = math.Float64bits(m.Speed)
	return k
}

// PartitionByShape groups the fleet into at most opt.Target machine
// subsets: machines are first bucketed by exact resource shape (capacity
// bits + speed bits) in first-seen order, oversized classes are split into
// ID-contiguous chunks, and undersized or surplus classes are merged
// smallest-first. The result is deterministic — it depends only on the
// machine list — with every partition's machines ascending and the
// partitions themselves ordered by their lowest machine ID. Every machine
// appears in exactly one partition.
func PartitionByShape(c *Cluster, opt PartitionOptions) [][]MachineID {
	n := len(c.Machines)
	if n == 0 {
		return nil
	}
	all := make([]MachineID, n)
	for i := range all {
		all[i] = MachineID(i)
	}
	if opt.Target <= 1 || n == 1 {
		return [][]MachineID{all}
	}
	minMachines := opt.MinMachines
	if minMachines <= 0 {
		minMachines = 2
	}

	// Bucket by shape in first-seen order (map iteration never drives
	// output order).
	classIdx := make(map[shapeKey]int)
	var classes [][]MachineID
	for m := 0; m < n; m++ {
		k := shapeOf(&c.Machines[m])
		i, ok := classIdx[k]
		if !ok {
			i = len(classes)
			classIdx[k] = i
			classes = append(classes, nil)
		}
		classes[i] = append(classes[i], MachineID(m))
	}

	// Split classes larger than an even Target-way share into contiguous
	// chunks, so a homogeneous fleet still decomposes into Target
	// partitions.
	maxSize := (n + opt.Target - 1) / opt.Target
	var parts [][]MachineID
	for _, cl := range classes {
		for len(cl) > maxSize {
			parts = append(parts, cl[:maxSize:maxSize])
			cl = cl[maxSize:]
		}
		parts = append(parts, cl)
	}

	// Merge smallest-first while there are too many partitions or any
	// partition is below the floor. Ties break on lowest member ID, so
	// the merge order is deterministic.
	smallest := func(exclude int) int {
		best := -1
		for i := range parts {
			if i == exclude {
				continue
			}
			if best < 0 || len(parts[i]) < len(parts[best]) ||
				(len(parts[i]) == len(parts[best]) && parts[i][0] < parts[best][0]) {
				best = i
			}
		}
		return best
	}
	for len(parts) > 1 {
		a := smallest(-1)
		if len(parts) <= opt.Target && len(parts[a]) >= minMachines {
			break
		}
		b := smallest(a)
		merged := append(append([]MachineID(nil), parts[a]...), parts[b]...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		if a > b {
			a, b = b, a
		}
		parts[a] = merged
		parts = append(parts[:b], parts[b+1:]...)
	}

	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts
}

// CheckPartition verifies that parts is a true partition of c's fleet:
// every machine in exactly one part, each part ascending. Used by tests
// and the partitioned solver's debugasserts hooks.
func CheckPartition(c *Cluster, parts [][]MachineID) error {
	seen := make([]bool, len(c.Machines))
	total := 0
	for pi, part := range parts {
		if len(part) == 0 {
			return fmt.Errorf("cluster: partition %d is empty", pi)
		}
		for i, m := range part {
			if m < 0 || int(m) >= len(c.Machines) {
				return fmt.Errorf("cluster: partition %d contains invalid machine %d", pi, m)
			}
			if seen[m] {
				return fmt.Errorf("cluster: machine %d appears in more than one partition", m)
			}
			seen[m] = true
			if i > 0 && part[i-1] >= m {
				return fmt.Errorf("cluster: partition %d not ascending at %d", pi, i)
			}
			total++
		}
	}
	if total != len(c.Machines) {
		return fmt.Errorf("cluster: partitions cover %d of %d machines", total, len(c.Machines))
	}
	return nil
}

package ctl

import (
	"fmt"

	"rexchange/internal/cluster"
	"rexchange/internal/workload"
)

// LoadSource feeds the controller with per-shard load observations. Next is
// called once per control window with the window bounds in controller time;
// it returns one load value per shard of the cluster the controller was
// started with (indexed by ShardID).
//
// The interface is the seam where a real telemetry feed (query logs, a
// metrics pipeline) plugs into the control plane; the repo ships
// TraceDriftSource, which synthesizes observations by replaying a
// workload.Trace under popularity drift.
type LoadSource interface {
	Next(t0, t1 float64) ([]float64, error)
}

// TraceDriftSource derives load snapshots from a query trace plus a
// popularity random walk:
//
//   - the trace sets the *global* intensity of each window — the sum of
//     query costs arriving in [t0,t1) relative to the trace-wide average —
//     so diurnal swings in the trace show up as fleet-wide load swings;
//   - per-shard popularity drifts between windows as a multiplicative
//     lognormal random walk (workload.PerturbLoads), renormalized so the
//     relative shares shift while total base load stays put. Replicas of a
//     logical shard drift together.
//
// Windows past the trace end wrap around modulo the trace duration, so a
// finite trace can drive an arbitrarily long controller run. All randomness
// is seeded: a fixed (cluster, trace, sigma, seed) yields an identical
// observation sequence.
type TraceDriftSource struct {
	trace *workload.Trace
	cur   *cluster.Cluster
	sigma float64
	seed  int64
	round int

	// meanRate is the trace-wide cost arrival rate (Σcost / Duration),
	// the denominator of every window's relative intensity.
	meanRate float64
}

// NewTraceDriftSource builds a source over the given cluster's shard
// population. sigma is the per-window lognormal drift of shard popularity
// (0 freezes relative shares; ~0.05–0.15 models gradual drift). The trace
// must have positive duration.
func NewTraceDriftSource(c *cluster.Cluster, tr *workload.Trace, sigma float64, seed int64) (*TraceDriftSource, error) {
	if tr == nil || tr.Duration <= 0 {
		return nil, fmt.Errorf("ctl: trace with positive duration required")
	}
	total := 0.0
	for _, q := range tr.Queries {
		total += q.Cost
	}
	return &TraceDriftSource{
		trace:    tr,
		cur:      c,
		sigma:    sigma,
		seed:     seed,
		meanRate: total / tr.Duration,
	}, nil
}

// Next returns the per-shard loads observed over [t0, t1).
func (s *TraceDriftSource) Next(t0, t1 float64) ([]float64, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("ctl: load window [%g,%g) is inverted", t0, t1)
	}
	if s.sigma > 0 {
		// Large odd stride decorrelates per-round walk steps.
		s.cur = workload.PerturbLoads(s.cur, s.sigma, s.seed+int64(s.round)*0x9E3779B1)
	}
	s.round++
	intensity := s.intensity(t0, t1)
	loads := make([]float64, len(s.cur.Shards))
	for i := range s.cur.Shards {
		loads[i] = s.cur.Shards[i].Load * intensity
	}
	return loads, nil
}

// intensity returns the window's cost arrival rate relative to the trace
// mean, wrapping the window around the trace end.
func (s *TraceDriftSource) intensity(t0, t1 float64) float64 {
	if s.meanRate <= 0 || t1 <= t0 {
		return 1
	}
	dur := t1 - t0
	total := 0.0
	// Wrap into [0, Duration) and accumulate, splitting windows that cross
	// the trace end. A window longer than the whole trace counts full
	// passes first.
	D := s.trace.Duration
	for full := 0; float64(full+1)*D <= dur; full++ {
		total += s.meanRate * D
		dur -= D
	}
	start := mod(t0, D)
	if start+dur <= D {
		total += windowCost(s.trace, start, start+dur)
	} else {
		total += windowCost(s.trace, start, D)
		total += windowCost(s.trace, 0, start+dur-D)
	}
	return total / ((t1 - t0) * s.meanRate)
}

// windowCost sums the query costs arriving in [t0, t1).
func windowCost(tr *workload.Trace, t0, t1 float64) float64 {
	w := tr.Window(t0, t1)
	total := 0.0
	for _, q := range w.Queries {
		total += q.Cost
	}
	return total
}

// mod returns x modulo m in [0, m).
func mod(x, m float64) float64 {
	r := x - float64(int(x/m))*m
	if r < 0 {
		r += m
	}
	return r
}

package lint

import (
	"go/ast"
	"go/types"
)

// LeakCheck flags goroutines with no reachable shutdown path. For every
// `go` statement it builds the CFG of the spawned function — a literal,
// or a same-package named function/method — and requires the synthetic
// exit block to be reachable from entry. A goroutine whose body is an
// unconditional loop with no break, return, or terminating range/receive
// cannot be stopped and outlives every controller shutdown:
//
//	go func() {
//		for {
//			work() // flagged: no path ever leaves the loop
//		}
//	}()
//
// Threading a done channel (`case <-done: return`), ranging over a
// closable channel, or any conditional return satisfies the check.
// Spawned functions from other packages cannot be analyzed and are
// skipped.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "flag go statements whose goroutine has no reachable termination path (unstoppable goroutine)",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *Pass) error {
	// Map named functions/methods of this package to their declarations so
	// `go e.loop()` can be resolved to a body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := spawnedBody(pass.TypesInfo, gs, decls)
			if body == nil {
				return true
			}
			g := BuildCFG(body, pass.TypesInfo)
			if !g.ExitReachable() {
				pass.Reportf(gs.Pos(), "goroutine %s has no reachable termination path; thread a shutdown signal (done channel or closable work channel)", name)
			}
			return true
		})
	}
	return nil
}

// spawnedBody resolves the body of the function started by gs: a function
// literal, or a same-package function/method declaration. Returns nil for
// bodies we cannot see.
func spawnedBody(info *types.Info, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body, fn.Name()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body, fn.Name()
			}
		}
	}
	return nil, ""
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rexchange/internal/obs"
)

// writeTestJournal emits a two-round journal with solve, move, and trace
// spans and returns its path.
func writeTestJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJournal(f)
	j.Emit(obs.Event{T: 0, Span: obs.SpanRound, Phase: obs.PhaseBegin, Round: 0, Imbalance: 1.4})
	j.Emit(obs.Event{T: 1, Span: obs.SpanSolve, Phase: obs.PhaseEnd, Round: 0, Outcome: obs.OutcomeOK, Objective: 1.1, Moves: 2})
	j.Emit(obs.Event{T: 3, Span: obs.SpanMove, Phase: obs.PhaseEnd, Round: 0, Outcome: obs.OutcomeOK,
		Move: &obs.MoveEvent{Seq: 0, Shard: 5, From: 1, To: 2}})
	j.Emit(obs.Event{T: 4, Span: obs.SpanMove, Phase: obs.PhaseEnd, Round: 0, Outcome: obs.OutcomeAborted,
		Move: &obs.MoveEvent{Seq: 1, Shard: 6, From: 0, To: 2}})
	j.Emit(obs.Event{T: 5, Span: obs.SpanTrace, Phase: obs.PhaseEnd, Round: 0,
		Trace: &obs.TraceEvent{ID: "1", Span: "2", Op: obs.OpQuery, Start: 4.5, Machine: -1, Shard: -1, Seq: -1}})
	j.Emit(obs.Event{T: 5, Span: obs.SpanRound, Phase: obs.PhaseEnd, Round: 0, Outcome: obs.OutcomeOK, Imbalance: 1.1})
	j.Emit(obs.Event{T: 10, Span: obs.SpanRound, Phase: obs.PhaseBegin, Round: 1, Imbalance: 1.05})
	j.Emit(obs.Event{T: 11, Span: obs.SpanTrace, Phase: obs.PhaseEnd, Round: 1,
		Trace: &obs.TraceEvent{ID: "3", Span: "4", Op: obs.OpQuery, Start: 10.5, Machine: -1, Shard: -1, Seq: -1}})
	j.Emit(obs.Event{T: 15, Span: obs.SpanRound, Phase: obs.PhaseEnd, Round: 1, Outcome: obs.OutcomeOK, Imbalance: 1.05})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWatchTable(t *testing.T) {
	path := writeTestJournal(t)
	var buf bytes.Buffer
	if err := watch(&buf, path, -1, ""); err != nil {
		t.Fatal(err)
	}
	want := "round  t   imbalance  solve       plan  ok  fail  abort  traces  errs\n" +
		"0      0   1.1000     obj=1.1000  2     1   0     1      1       0\n" +
		"1      10  1.0500     -           0     0   0     0      1       0\n" +
		"total                             2     1   0     1      2       0\n" +
		"9 events, 2 rounds\n"
	if got := buf.String(); got != want {
		t.Fatalf("table:\n%s\nwant:\n%s", got, want)
	}
}

func TestWatchRoundFilter(t *testing.T) {
	path := writeTestJournal(t)
	var buf bytes.Buffer
	if err := watch(&buf, path, 1, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "obj=1.1000") {
		t.Fatalf("-round 1 table still shows round 0's solve:\n%s", out)
	}
	if !strings.HasSuffix(out, "3 events, 1 rounds\n") {
		t.Fatalf("-round 1 footer wrong:\n%s", out)
	}
}

func TestWatchSpanFilter(t *testing.T) {
	path := writeTestJournal(t)
	var buf bytes.Buffer
	if err := watch(&buf, path, -1, obs.SpanTrace); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "obj=") || !strings.HasSuffix(out, "2 events, 2 rounds\n") {
		t.Fatalf("-span trace table wrong:\n%s", out)
	}
	if err := watch(&bytes.Buffer{}, path, -1, "bogus"); err == nil {
		t.Fatal("unknown span kind accepted")
	}
}

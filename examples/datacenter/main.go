// Datacenter: the paper's headline scenario at realistic scale. A
// heterogeneous 120-machine fleet at 88% static fill is rebalanced by the
// greedy baseline, swap-based local search, SRA without exchange, and SRA
// with 4 borrowed machines — showing how borrowed vacancy unlocks balance
// that in-place methods cannot reach in stringent environments.
package main

import (
	"fmt"
	"log"

	"rexchange/internal/baseline"
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/metrics"
	"rexchange/internal/workload"
)

func main() {
	cfg := workload.RealisticConfig()
	cfg.Machines = 120
	cfg.Shards = 2400
	cfg.Seed = 7
	inst, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Placement
	before := metrics.Compute(p)
	fmt.Printf("%-14s maxU=%.4f imbalance=%.4f cv=%.4f\n",
		"initial", before.MaxUtil, before.Imbalance, before.CV)

	g := baseline.Greedy(p, baseline.Config{})
	fmt.Printf("%-14s maxU=%.4f imbalance=%.4f moves=%d\n",
		"greedy", g.After.MaxUtil, g.After.Imbalance, g.MovedShards)

	ls := baseline.LocalSearch(p, baseline.Config{AllowSwaps: true})
	fmt.Printf("%-14s maxU=%.4f imbalance=%.4f moves=%d\n",
		"local-search", ls.After.MaxUtil, ls.After.Imbalance, ls.MovedShards)

	scfg := core.DefaultConfig()
	scfg.Iterations = 2000
	s0, err := core.New(scfg).Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s maxU=%.4f imbalance=%.4f moves=%d\n",
		"sra (k=0)", s0.After.MaxUtil, s0.After.Imbalance, s0.MovedShards)

	// Borrow 4 average-shaped exchange machines.
	c := p.Cluster()
	capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
	speed := c.TotalSpeed() / float64(c.NumMachines())
	ec := c.WithExchange(4, capacity, speed)
	pk, err := cluster.FromAssignment(ec, p.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	s4, err := core.New(scfg).Solve(pk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s maxU=%.4f imbalance=%.4f moves=%d staged=%d returned=%d\n",
		"sra (k=4)", s4.After.MaxUtil, s4.After.Imbalance,
		s4.MovedShards, s4.Plan.Staged, len(s4.Returned))

	fmt.Printf("\nexchange advantage over local search: %.1f%% lower peak utilization\n",
		100*(ls.After.MaxUtil-s4.After.MaxUtil)/ls.After.MaxUtil)
}

package des

import (
	"fmt"

	"rexchange/internal/cluster"
	"rexchange/internal/ctl"
	"rexchange/internal/obs"
	"rexchange/internal/workload"
)

// CampaignConfig parameterizes one simulated migration campaign: a
// synthetic fleet under drifting query load, observed and rebalanced by
// the full online control plane, with every query's latency accounted.
type CampaignConfig struct {
	// Machines/Shards/Fill/Seed feed workload.Generate.
	Machines int     `json:"machines"`
	Shards   int     `json:"shards"`
	Fill     float64 `json:"fill"`
	Seed     int64   `json:"seed"`

	// Rounds is the number of control windows to simulate.
	Rounds int `json:"rounds"`

	// Sim is the simulator configuration. Sim.Window paces the control
	// rounds; Sim.Seed defaults to Seed when zero so workload identity
	// follows the instance.
	Sim Config `json:"sim"`

	// Rate and Diurnal shape the synthesized arrival trace.
	Rate    float64 `json:"rate"`
	Diurnal float64 `json:"diurnal"`

	// HighWater/LowWater are the solve trigger band; Iterations and
	// Restarts the per-round solver budget; SolveSeconds the simulated
	// latency charged per solve.
	HighWater    float64 `json:"high_water"`
	LowWater     float64 `json:"low_water"`
	Iterations   int     `json:"iterations"`
	Restarts     int     `json:"restarts"`
	SolveSeconds float64 `json:"solve_seconds"`

	// ExchangeK borrows this many fleet-average exchange machines
	// (variant "kexchange"). Partitions > 1 selects the partitioned
	// parallel solver with ExchangeRounds cross-partition rounds
	// (variant "partitioned").
	ExchangeK      int `json:"exchange_k"`
	Partitions     int `json:"partitions"`
	ExchangeRounds int `json:"exchange_rounds"`

	// Bandwidth and InFlight set migration physics.
	Bandwidth float64 `json:"bandwidth"`
	InFlight  int     `json:"in_flight"`

	// Registry/Journal, when non-nil, receive control-plane and
	// simulator telemetry.
	Registry *obs.Registry `json:"-"`
	Journal  *obs.Journal  `json:"-"`
}

// DefaultCampaignConfig returns a medium campaign: a drifting fleet that
// starts balanced enough and degrades until the controller must act.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Machines: 100, Shards: 1500, Fill: 0.85, Seed: 1,
		Rounds: 12, Sim: DefaultConfig(),
		Rate: 200, Diurnal: 0.4,
		HighWater: 1.25, LowWater: 1.10,
		Iterations: 400, Restarts: 2, SolveSeconds: 1,
		Bandwidth: 400, InFlight: 4,
	}
}

// CampaignResult is one campaign run's outcome.
type CampaignResult struct {
	Variant string  `json:"variant"`
	Report  Report  `json:"report"`
	Rounds  int     `json:"rounds"`
	Solves  int     `json:"solves"`
	Moves   int     `json:"moves"`   // copies committed
	Aborted int     `json:"aborted"` // copies aborted by supersession
	Final   float64 `json:"final_imbalance"`

	// P99Inflation is the during-phase p99 relative to the before-phase
	// p99 (1 = no tail inflation while migrating); 0 when a phase is
	// empty.
	P99Inflation float64 `json:"p99_inflation"`
}

// RunCampaign generates the instance, builds the simulator, and drives
// the unmodified controller against it for cfg.Rounds windows. variant
// selects the policy under test:
//
//   - "baseline": the trigger never fires; queries ride out the
//     imbalance untreated (the control group for tail inflation).
//   - "solve": plain re-solves on the home fleet.
//   - "kexchange": re-solves with ExchangeK borrowed exchange machines.
//   - "partitioned": re-solves with the partitioned parallel solver.
//
// Everything runs single-goroutine on the simulator's clock, so for a
// fixed cfg the result — including the rendered report — is
// byte-identical across runs and GOMAXPROCS values.
func RunCampaign(cfg CampaignConfig, variant string) (*CampaignResult, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Machines = cfg.Machines
	wcfg.Shards = cfg.Shards
	wcfg.TargetFill = cfg.Fill
	wcfg.Seed = cfg.Seed
	inst, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	p := inst.Placement

	high, low := cfg.HighWater, cfg.LowWater
	partitions, exchangeRounds := 0, 0
	switch variant {
	case "baseline":
		// Park the trigger far above any reachable imbalance.
		high, low = 1e18, 1
	case "solve":
	case "kexchange":
		if cfg.ExchangeK <= 0 {
			return nil, fmt.Errorf("des: kexchange variant needs ExchangeK > 0")
		}
		c := p.Cluster()
		capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
		speed := c.TotalSpeed() / float64(c.NumMachines())
		ec := c.WithExchange(cfg.ExchangeK, capacity, speed)
		if p, err = cluster.FromAssignment(ec, p.Assignment()); err != nil {
			return nil, err
		}
	case "partitioned":
		if cfg.Partitions <= 1 {
			return nil, fmt.Errorf("des: partitioned variant needs Partitions > 1")
		}
		partitions, exchangeRounds = cfg.Partitions, cfg.ExchangeRounds
	default:
		return nil, fmt.Errorf("des: unknown variant %q", variant)
	}

	scfg := cfg.Sim
	if scfg.Seed == 0 {
		scfg.Seed = cfg.Seed
	}
	dur := float64(cfg.Rounds) * scfg.Window
	if dur <= 0 {
		dur = 600
	}
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: dur, BaseRate: cfg.Rate, DiurnalAmp: cfg.Diurnal, Period: dur,
		CostMu: 0, CostSigma: 0.5, Seed: cfg.Seed + 7,
	})
	if err != nil {
		return nil, err
	}
	sim, err := New(scfg, p, tr)
	if err != nil {
		return nil, err
	}
	sim.AttachObs(cfg.Registry, cfg.Journal)

	ccfg := ctl.DefaultConfig()
	ccfg.Window = scfg.Window
	ccfg.Policy = ctl.Policy{HighWater: high, LowWater: low}
	ccfg.Budget = ctl.Budget{
		Iterations: cfg.Iterations, Restarts: cfg.Restarts,
		Partitions: partitions, ExchangeRounds: exchangeRounds,
		SolveSeconds: cfg.SolveSeconds,
	}
	ccfg.Exec.Migration.Bandwidth = cfg.Bandwidth
	if cfg.InFlight > 0 {
		ccfg.Exec.Migration.Concurrency = cfg.InFlight
	}
	ccfg.Exec.Observer = sim
	ccfg.Seed = cfg.Seed
	ccfg.Registry = cfg.Registry
	ccfg.Journal = cfg.Journal
	// With tracing on, the controller and executor join the simulator's
	// tracer: round/solve/move spans land in the same journal, and query
	// legs can name the moves that delayed them.
	ccfg.Tracer = sim.Tracer()

	c, err := ctl.New(ccfg, sim, p, sim)
	if err != nil {
		return nil, err
	}
	if err := c.Run(cfg.Rounds); err != nil {
		return nil, err
	}

	rep := sim.Report()
	ctr := c.ExecCounters()
	res := &CampaignResult{
		Variant: variant,
		Report:  rep,
		Rounds:  c.Status().Round,
		Solves:  c.Status().Solves,
		Moves:   ctr.Completed,
		Aborted: ctr.Aborted,
		Final:   c.Report().Imbalance,
	}
	if rep.Before.P99 > 0 && rep.During.Queries > 0 {
		res.P99Inflation = rep.During.P99 / rep.Before.P99
	}
	return res, nil
}

package cluster

import (
	"math"
	"testing"
)

func TestViewProjectsPartition(t *testing.T) {
	p := tieredCluster(t, 18, 50, 3)
	parts := PartitionByShape(p.Cluster(), PartitionOptions{Target: 3})
	totalShards := 0
	for _, part := range parts {
		v, err := NewPlacementView(p, part)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.CheckProjection(p); err != nil {
			t.Fatal(err)
		}
		sub := v.Sub()
		totalShards += sub.Cluster().NumShards()
		// Aggregates must be bit-copies, not recomputations.
		for lm, gm := range v.Machines() {
			if math.Float64bits(sub.Load(MachineID(lm))) != math.Float64bits(p.Load(gm)) {
				t.Fatalf("machine %d load bits diverge from parent %d", lm, gm)
			}
			if sub.Count(MachineID(lm)) != p.Count(gm) {
				t.Fatalf("machine %d count %d, parent %d has %d",
					lm, sub.Count(MachineID(lm)), gm, p.Count(gm))
			}
		}
		if err := sub.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if totalShards != p.Cluster().NumShards() {
		t.Fatalf("views cover %d shards, cluster has %d", totalShards, p.Cluster().NumShards())
	}
}

// TestViewIdentityIsBitExact pins the golden property the single-partition
// solve path depends on: a view over every machine reproduces the parent
// placement bit-for-bit — same IDs, same hosted order, same aggregate bits
// — even when the parent's aggregates carry rounding residue from a long
// mutation history that a from-scratch rebuild would not reproduce.
func TestViewIdentityIsBitExact(t *testing.T) {
	p := tieredCluster(t, 12, 40, 4)
	// Accumulate floating-point history: move shards around and back.
	for s := 0; s < 40; s++ {
		home := p.Home(ShardID(s))
		p.Move(ShardID(s), MachineID((int(home)+1)%12))
		p.Move(ShardID(s), home)
	}
	all := make([]MachineID, 12)
	for i := range all {
		all[i] = MachineID(i)
	}
	v, err := NewPlacementView(p, all)
	if err != nil {
		t.Fatal(err)
	}
	sub := v.Sub()
	for s := 0; s < p.Cluster().NumShards(); s++ {
		if v.GlobalShard(ShardID(s)) != ShardID(s) {
			t.Fatalf("identity view renumbered shard %d", s)
		}
		if sub.Home(ShardID(s)) != p.Home(ShardID(s)) {
			t.Fatalf("shard %d home differs", s)
		}
	}
	for m := 0; m < 12; m++ {
		id := MachineID(m)
		if math.Float64bits(sub.Load(id)) != math.Float64bits(p.Load(id)) {
			t.Fatalf("machine %d load bits differ: %x vs %x",
				m, math.Float64bits(sub.Load(id)), math.Float64bits(p.Load(id)))
		}
		for i := 0; i < sub.Count(id); i++ {
			if sub.ShardAt(id, i) != p.ShardAt(id, i) {
				t.Fatalf("machine %d hosted order differs at slot %d", m, i)
			}
		}
	}
}

func TestViewApplyWritesBack(t *testing.T) {
	p := tieredCluster(t, 9, 24, 5)
	parts := PartitionByShape(p.Cluster(), PartitionOptions{Target: 3})
	v, err := NewPlacementView(p, parts[0])
	if err != nil {
		t.Fatal(err)
	}
	sub := v.Sub()
	if sub.Cluster().NumShards() == 0 {
		t.Skip("partition hosts no shards for this seed")
	}
	// Rotate every view shard to the next partition machine that fits.
	moved := sub.Clone()
	n := moved.Cluster().NumMachines()
	for s := 0; s < moved.Cluster().NumShards(); s++ {
		home := moved.Home(ShardID(s))
		for off := 1; off < n; off++ {
			if moved.MoveChecked(ShardID(s), MachineID((int(home)+off)%n)) {
				break
			}
		}
	}
	outside := map[ShardID]MachineID{}
	inView := make(map[ShardID]bool)
	for ls := 0; ls < v.NumShards(); ls++ {
		inView[v.GlobalShard(ShardID(ls))] = true
	}
	for s := 0; s < p.Cluster().NumShards(); s++ {
		if !inView[ShardID(s)] {
			outside[ShardID(s)] = p.Home(ShardID(s))
		}
	}
	if err := v.Apply(p, moved); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for ls := 0; ls < v.NumShards(); ls++ {
		gs := v.GlobalShard(ShardID(ls))
		want := v.GlobalMachine(moved.Home(ShardID(ls)))
		if p.Home(gs) != want {
			t.Fatalf("shard %d on machine %d after apply, want %d", gs, p.Home(gs), want)
		}
	}
	for s, m := range outside {
		if p.Home(s) != m {
			t.Fatalf("apply touched out-of-view shard %d", s)
		}
	}
}

func TestViewApplyRejectsShapeMismatch(t *testing.T) {
	p := tieredCluster(t, 9, 24, 6)
	parts := PartitionByShape(p.Cluster(), PartitionOptions{Target: 3})
	v0, err := NewPlacementView(p, parts[0])
	if err != nil {
		t.Fatal(err)
	}
	v1, err := NewPlacementView(p, parts[1])
	if err != nil {
		t.Fatal(err)
	}
	before := p.Assignment()
	if err := v0.Apply(p, v1.Sub()); err == nil {
		if v0.NumShards() != v1.NumShards() || len(parts[0]) != len(parts[1]) {
			t.Fatal("apply accepted a placement from a different view shape")
		}
	}
	for s, m := range p.Assignment() {
		if before[s] != m {
			t.Fatal("failed apply mutated the parent")
		}
	}
}

func TestViewRejectsBadInput(t *testing.T) {
	p := tieredCluster(t, 6, 10, 7)
	if _, err := NewPlacementView(p, nil); err == nil {
		t.Error("empty machine list accepted")
	}
	if _, err := NewPlacementView(p, []MachineID{2, 1}); err == nil {
		t.Error("descending machine list accepted")
	}
	if _, err := NewPlacementView(p, []MachineID{1, 1}); err == nil {
		t.Error("duplicate machine accepted")
	}
	if _, err := NewPlacementView(p, []MachineID{99}); err == nil {
		t.Error("out-of-range machine accepted")
	}
	p.BeginTxn()
	if _, err := NewPlacementView(p, []MachineID{0}); err == nil {
		t.Error("mid-transaction view accepted")
	}
	p.Rollback()
}

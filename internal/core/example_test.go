package core_test

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/vec"
)

// Example demonstrates the complete resource-exchange flow on a toy
// cluster: two machines at their static limits cannot swap shards in
// place; borrowing one vacant machine makes the rebalance schedulable, and
// one vacant machine is handed back afterwards.
func Example() {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(4), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(4), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(4), Load: 8},
			{ID: 1, Static: vec.Uniform(4), Load: 2},
		},
	}
	// Borrow one exchange machine.
	ec := c.WithExchange(1, vec.Uniform(4), 1)
	p, err := cluster.FromAssignment(ec, []cluster.MachineID{0, 1})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Iterations = 200
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v\n", res.Final.Feasible())
	fmt.Printf("returned machines: %d\n", len(res.Returned))
	fmt.Printf("schedule is transiently valid: %v\n", func() bool {
		_, err := res.Plan.Validate(p)
		return err == nil
	}())
	// Output:
	// feasible: true
	// returned machines: 1
	// schedule is transiently valid: true
}

// Fixture for the sharecheck analyzer: values of an //rexlint:owned type
// must not escape to goroutines, channels, package state, or a second
// owner. Fresh values, clones, returns, local aliases, and sanctioned
// transfers are the near-misses that must stay silent.
package sharecheck

// Box has single-owner semantics for this fixture, mirroring
// cluster.Placement.
//
//rexlint:owned
type Box struct {
	vals []int
}

func newBox() *Box { return &Box{} }

// clone deep-copies b; the result is a fresh first owner.
func (b *Box) clone() *Box {
	return &Box{vals: append([]int(nil), b.vals...)}
}

type keeper struct {
	held *Box
	many []*Box
}

var global *Box

var registry []*Box

func spawnCapture(b *Box) {
	go func() { // want `owned sharecheck\.Box value captured by a goroutine`
		_ = b.vals
	}()
}

func spawnArg(b *Box) {
	go consume(b) // want `owned sharecheck\.Box value passed to a goroutine`
}

func consume(b *Box) { _ = b }

func send(ch chan *Box, b *Box) {
	ch <- b // want `owned sharecheck\.Box value sent on a channel`
}

func storeGlobal(b *Box) {
	global = b // want `owned sharecheck\.Box value stored in package-level state`
}

func (k *keeper) keep(b *Box) {
	k.held = b // want `owned sharecheck\.Box value stored into k\.held, creating a second owner`
}

func (k *keeper) keepMany(b *Box) {
	k.many = append(k.many, b) // want `owned sharecheck\.Box value appended to k\.many, creating a second owner`
}

var sinkBox *Box

// retain leaks its parameter into package state: flagged here, and its
// escape summary taints every caller that passes an owned value in.
func retain(b *Box) {
	sinkBox = b // want `owned sharecheck\.Box value stored in package-level state`
}

func passToRetainer(b *Box) {
	retain(b) // want `owned sharecheck\.Box value .+ by sharecheck\.retain`
}

// --- near-misses: all of the below must stay silent ---

// keepFresh stores a value created in the same statement: first ownership,
// not a second owner.
func (k *keeper) keepFresh() {
	k.held = newBox()
}

// keepClone clones before storing; the clone is fresh.
func (k *keeper) keepClone(b *Box) {
	k.held = b.clone()
}

// localAlias aliases locally and returns; returning hands ownership back
// to the caller.
func localAlias(b *Box) *Box {
	alias := b
	_ = alias
	return b
}

// adopt is a sanctioned hand-off: the line-level transfer blesses it.
func (k *keeper) adopt(b *Box) {
	//rexlint:transfer caller relinquishes b by documented contract
	k.held = b
}

// register takes ownership of b: it joins the package registry. The doc
// directive marks it a transfer sink for callers; the line-level directive
// sanctions its own store.
//
//rexlint:transfer register is the declared ownership hand-off point
func register(b *Box) {
	//rexlint:transfer the registry takes ownership by contract
	registry = append(registry, b)
}

// handOff passes to a declared transfer sink: silent.
func handOff(b *Box) {
	register(b)
}

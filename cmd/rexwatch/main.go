// rexwatch renders a rexd event journal (-events out.jsonl) as a
// per-round table, and doubles as a metrics-exposition validator for CI:
//
//	rexwatch run.jsonl
//	rexwatch -round 3 run.jsonl                  # one round only
//	rexwatch -span move run.jsonl                # one span kind only
//	rexwatch -lint-metrics metrics.prom -require rex_ctl_rounds_total,rex_exec_in_flight
//
// The table mode aggregates round, solve, move, and trace spans by round;
// -round and -span narrow the table to one control round or one span kind
// before aggregation. The lint mode runs the promlint-style checks from
// internal/obs over a full text exposition and exits 1 on any problem or
// missing required family.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"rexchange/internal/obs"
)

func main() {
	var (
		lintMetrics = flag.String("lint-metrics", "", "validate this Prometheus exposition file instead of reading a journal")
		require     = flag.String("require", "", "comma-separated metric families that must be present (with -lint-metrics)")
		round       = flag.Int("round", -1, "show only this control round (-1 = all)")
		span        = flag.String("span", "", "show only this span kind (round, solve, move, sim, trace)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rexwatch [flags] journal.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *lintMetrics != "" {
		if err := lintFile(*lintMetrics, *require); err != nil {
			fmt.Fprintln(os.Stderr, "rexwatch:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := watch(os.Stdout, flag.Arg(0), *round, *span); err != nil {
		fmt.Fprintln(os.Stderr, "rexwatch:", err)
		os.Exit(1)
	}
}

// lintFile validates one exposition file; every problem is printed and any
// problem is fatal.
func lintFile(path, require string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var required []string
	for _, name := range strings.Split(require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	problems := obs.LintExposition(f, required...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%s: %d problem(s)", path, len(problems))
	}
	fmt.Printf("%s: ok (%d required families present)\n", path, len(required))
	return nil
}

// roundAgg accumulates one round's spans.
type roundAgg struct {
	t         float64 // round begin timestamp
	imbalance float64 // imbalance at round end (begin value until end seen)
	solved    bool
	objective float64
	planMoves int
	moveOK    int
	moveFail  int
	moveAbort int
	traces    int
	errs      int
}

// watch aggregates a journal into a per-round table with a totals footer,
// written to w. round >= 0 keeps only that control round; a non-empty
// span keeps only that span kind.
func watch(w io.Writer, path string, round int, span string) error {
	if span != "" {
		switch span {
		case obs.SpanRound, obs.SpanSolve, obs.SpanMove, obs.SpanSim, obs.SpanTrace:
		default:
			return fmt.Errorf("unknown span kind %q", span)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadJournal(f)
	if err != nil {
		return err
	}
	if round >= 0 || span != "" {
		kept := events[:0]
		for _, ev := range events {
			if round >= 0 && ev.Round != round {
				continue
			}
			if span != "" && ev.Span != span {
				continue
			}
			kept = append(kept, ev)
		}
		events = kept
	}

	rounds := map[int]*roundAgg{}
	get := func(r int) *roundAgg {
		a := rounds[r]
		if a == nil {
			a = &roundAgg{}
			rounds[r] = a
		}
		return a
	}
	for _, ev := range events {
		a := get(ev.Round)
		switch {
		case ev.Span == obs.SpanRound && ev.Phase == obs.PhaseBegin:
			a.t = ev.T
			a.imbalance = ev.Imbalance
		case ev.Span == obs.SpanRound && ev.Phase == obs.PhaseEnd:
			a.imbalance = ev.Imbalance
			if ev.Outcome == obs.OutcomeErr {
				a.errs++
			}
		case ev.Span == obs.SpanSolve && ev.Phase == obs.PhaseEnd:
			if ev.Outcome == obs.OutcomeOK {
				a.solved = true
				a.objective = ev.Objective
				a.planMoves = ev.Moves
			} else {
				a.errs++
			}
		case ev.Span == obs.SpanMove && ev.Phase == obs.PhaseEnd:
			switch ev.Outcome {
			case obs.OutcomeOK:
				a.moveOK++
			case obs.OutcomeFailed:
				a.moveFail++
			case obs.OutcomeAborted:
				a.moveAbort++
			}
		case ev.Span == obs.SpanTrace:
			a.traces++
		}
	}

	ids := make([]int, 0, len(rounds))
	for r := range rounds {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tt\timbalance\tsolve\tplan\tok\tfail\tabort\ttraces\terrs")
	var tot roundAgg
	for _, r := range ids {
		a := rounds[r]
		solve := "-"
		if a.solved {
			solve = fmt.Sprintf("obj=%.4f", a.objective)
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.4f\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r, a.t, a.imbalance, solve, a.planMoves, a.moveOK, a.moveFail, a.moveAbort, a.traces, a.errs)
		tot.planMoves += a.planMoves
		tot.moveOK += a.moveOK
		tot.moveFail += a.moveFail
		tot.moveAbort += a.moveAbort
		tot.traces += a.traces
		tot.errs += a.errs
	}
	fmt.Fprintf(tw, "total\t\t\t\t%d\t%d\t%d\t%d\t%d\t%d\n",
		tot.planMoves, tot.moveOK, tot.moveFail, tot.moveAbort, tot.traces, tot.errs)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d events, %d rounds\n", len(events), len(ids))
	return nil
}

// Package plan turns a desired reassignment (initial placement → final
// placement) into an ordered schedule of shard moves that respects the
// paper's transient resource constraint: while a shard moves from machine a
// to machine b, its static resources are held on both machines at once.
//
// The planner executes moves serially against a working copy of the
// placement. A move s: a→b is admissible only if b currently has free static
// capacity for s while s still occupies a — exactly the both-endpoints
// constraint. When no pending shard can move directly (a deadlock: every
// target is full of shards that themselves need to leave), the planner
// stages a blocking shard on an intermediate machine with spare room —
// preferentially a vacant or exchange machine. This multi-hop staging is the
// mechanism by which borrowed exchange machines unlock otherwise infeasible
// rebalances.
package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"rexchange/internal/cluster"
)

// Move is one migration step: shard S relocates from From to To.
type Move struct {
	S    cluster.ShardID   `json:"s"`
	From cluster.MachineID `json:"from"`
	To   cluster.MachineID `json:"to"`
}

// Plan is an ordered, transiently feasible move schedule.
type Plan struct {
	Moves []Move `json:"moves"`
	// Staged counts moves that were intermediate hops rather than direct
	// relocations to the shard's final machine.
	Staged int `json:"staged,omitempty"`
	// Displaced counts shards that were not part of the reassignment but
	// had to be temporarily evicted to break deadlocks.
	Displaced int `json:"displaced,omitempty"`
}

// NumMoves returns the total number of migration steps.
func (p *Plan) NumMoves() int { return len(p.Moves) }

// BytesMoved returns the total disk volume migrated (sum of the moved
// shards' disk demand over all steps), a proxy for migration cost/duration.
func (p *Plan) BytesMoved(c *cluster.Cluster) float64 {
	t := 0.0
	for _, mv := range p.Moves {
		t += c.Shards[mv.S].Static[1] // vec.Disk
	}
	return t
}

// ErrInfeasible is returned when the planner cannot schedule the
// reassignment under the transient constraints (typically: no vacancy
// anywhere to stage through).
var ErrInfeasible = errors.New("plan: no transiently feasible move schedule found")

// Planner configures schedule construction.
type Planner struct {
	// MaxSteps bounds total scheduled moves; 0 means 8×(moves needed)+64.
	MaxSteps int
	// MaxHops bounds staging hops per shard before the planner refuses to
	// stage it again; 0 means 4.
	MaxHops int
	// AllowDisplace permits temporarily evicting shards that the
	// reassignment did not intend to move. Disabling it models operators
	// who only allow touching the shards selected by the optimizer.
	AllowDisplace bool
}

// DefaultPlanner returns the planner configuration used by the solver.
func DefaultPlanner() Planner {
	return Planner{AllowDisplace: true}
}

// Build computes a transiently feasible schedule that transforms from into
// to. Both placements must be over the same cluster with every shard
// assigned. The from placement is not modified.
func (pl Planner) Build(from, to *cluster.Placement) (*Plan, error) {
	if from.Cluster() != to.Cluster() {
		return nil, fmt.Errorf("plan: placements refer to different clusters")
	}
	c := from.Cluster()
	if from.UnassignedCount() > 0 || to.UnassignedCount() > 0 {
		return nil, fmt.Errorf("plan: placements must be complete (unassigned: from=%d to=%d)",
			from.UnassignedCount(), to.UnassignedCount())
	}

	target := to.Assignment()
	w := from.Clone()

	// pending: shards not yet on their final machine.
	pendingSet := make(map[cluster.ShardID]bool)
	for s := range target {
		if w.Home(cluster.ShardID(s)) != target[s] {
			pendingSet[cluster.ShardID(s)] = true
		}
	}
	needed := len(pendingSet)
	maxSteps := pl.MaxSteps
	if maxSteps == 0 {
		maxSteps = 8*needed + 64
	}
	maxHops := pl.MaxHops
	if maxHops == 0 {
		maxHops = 4
	}

	plan := &Plan{}
	hops := make(map[cluster.ShardID]int)

	for len(pendingSet) > 0 {
		if len(plan.Moves) >= maxSteps {
			return nil, fmt.Errorf("%w: step budget %d exhausted with %d shards pending",
				ErrInfeasible, maxSteps, len(pendingSet))
		}
		pending := sortedPending(c, pendingSet)

		// Phase 1: apply every direct move currently admissible. Largest
		// shards first: they are the hardest to fit, so give them first
		// pick of the free space.
		progress := false
		for _, s := range pending {
			if !pendingSet[s] { // may have been resolved this sweep
				continue
			}
			t := target[s]
			if w.Home(s) == t {
				delete(pendingSet, s)
				continue
			}
			if w.CanPlace(s, t) {
				plan.Moves = append(plan.Moves, Move{S: s, From: w.Home(s), To: t})
				w.Move(s, t)
				if cluster.DebugAsserts {
					w.MustInvariants("plan direct move")
				}
				delete(pendingSet, s)
				progress = true
			}
		}
		if progress {
			continue
		}

		// Phase 2: deadlock. Stage one blocking shard to an intermediate
		// machine to open space.
		if pl.stageOne(c, w, target, pendingSet, hops, maxHops, plan) {
			continue
		}
		return nil, fmt.Errorf("%w: %d shards pending and no staging possible",
			ErrInfeasible, len(pendingSet))
	}
	return plan, nil
}

// sortedPending returns the pending shards ordered by decreasing static
// footprint (ties by ID) for deterministic schedules.
func sortedPending(c *cluster.Cluster, set map[cluster.ShardID]bool) []cluster.ShardID {
	out := make([]cluster.ShardID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := c.Shards[out[i]].Static.MaxDim(), c.Shards[out[j]].Static.MaxDim()
		if a != b {
			return a > b
		}
		return out[i] < out[j]
	})
	return out
}

// stageOne relocates one shard off a blocked target machine to an
// intermediate machine, reporting whether it scheduled a move. Preference
// order: (1) a pending shard sitting on some pending shard's target —
// moving it is work we owe anyway; (2) with AllowDisplace, any shard on a
// blocked target, which then becomes pending to return.
func (pl Planner) stageOne(
	c *cluster.Cluster,
	w *cluster.Placement,
	target []cluster.MachineID,
	pendingSet map[cluster.ShardID]bool,
	hops map[cluster.ShardID]int,
	maxHops int,
	plan *Plan,
) bool {
	pending := sortedPending(c, pendingSet)

	// Collect the set of blocked target machines, biggest blocked shard
	// first so we open space where it matters most.
	var blocked []cluster.MachineID
	seen := make(map[cluster.MachineID]bool)
	for _, s := range pending {
		t := target[s]
		if !seen[t] {
			seen[t] = true
			blocked = append(blocked, t)
		}
	}

	tryStage := func(victim cluster.ShardID, isPending bool) bool {
		if hops[victim] >= maxHops {
			return false
		}
		m := pl.bestStaging(c, w, victim, target[victim])
		if m == cluster.Unassigned {
			return false
		}
		plan.Moves = append(plan.Moves, Move{S: victim, From: w.Home(victim), To: m})
		plan.Staged++
		if !isPending {
			plan.Displaced++
			pendingSet[victim] = true // must return to its (unchanged) target
		}
		w.Move(victim, m)
		if cluster.DebugAsserts {
			w.MustInvariants("plan staging move")
		}
		hops[victim]++
		return true
	}

	// Preference 1: pending shards that sit on blocked machines.
	for _, t := range blocked {
		var victims []candidate
		w.EachShardOn(t, func(u cluster.ShardID) {
			if pendingSet[u] {
				victims = append(victims, candidate{u, true})
			}
		})
		sortCandidates(c, victims)
		for _, v := range victims {
			if tryStage(v.victim, true) {
				return true
			}
		}
	}
	if !pl.AllowDisplace {
		return false
	}
	// Preference 2: displace settled shards off blocked machines.
	for _, t := range blocked {
		var victims []candidate
		w.EachShardOn(t, func(u cluster.ShardID) {
			if !pendingSet[u] {
				victims = append(victims, candidate{u, false})
			}
		})
		sortCandidates(c, victims)
		for _, v := range victims {
			if tryStage(v.victim, false) {
				return true
			}
		}
	}
	return false
}

// candidate is an eviction candidate considered by stageOne.
type candidate struct {
	victim cluster.ShardID
	isPend bool
}

// sortCandidates orders eviction candidates smallest-first: evicting the
// smallest shard that opens enough space minimizes wasted migration volume.
func sortCandidates(c *cluster.Cluster, vs []candidate) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := c.Shards[vs[i].victim].Static.MaxDim(), c.Shards[vs[j].victim].Static.MaxDim()
		if a != b {
			return a < b
		}
		return vs[i].victim < vs[j].victim
	})
}

// bestStaging picks the intermediate machine for victim: it must fit the
// shard now, must not be the victim's final target (that would be a direct
// move, already known inadmissible) — preferring exchange machines and
// machines with the most free room.
func (pl Planner) bestStaging(
	c *cluster.Cluster,
	w *cluster.Placement,
	victim cluster.ShardID,
	victimTarget cluster.MachineID,
) cluster.MachineID {
	best := cluster.Unassigned
	bestScore := -1.0
	cur := w.Home(victim)
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if id == cur || id == victimTarget {
			continue
		}
		if !w.CanPlace(victim, id) {
			continue
		}
		free := w.Free(id)
		score := free.MaxDim()
		if c.Machines[m].Exchange {
			score *= 4 // strongly prefer borrowed machines for staging
		}
		if w.IsVacant(id) {
			score *= 2
		}
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// Save writes the plan as JSON to w, so schedules can be computed offline
// (rebalance -plan-out) and executed later (rexd -plan-in).
func (p *Plan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// SaveFile writes the plan as JSON to path.
func (p *Plan) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plan: save: %w", err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a JSON plan from r and checks structural sanity (IDs
// non-negative, no self-moves). Transient feasibility against a placement
// is checked by Validate.
func Load(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: load: %w", err)
	}
	for i, mv := range p.Moves {
		if mv.S < 0 || mv.From < 0 || mv.To < 0 {
			return nil, fmt.Errorf("plan: load: move %d has negative IDs (%d: %d→%d)", i, mv.S, mv.From, mv.To)
		}
		if mv.From == mv.To {
			return nil, fmt.Errorf("plan: load: move %d is a self-move", i)
		}
	}
	return &p, nil
}

// LoadFile reads a JSON plan from path.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("plan: load: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate replays the plan from the given starting placement and verifies
// transient feasibility of every step, returning the resulting placement.
// It is the test oracle for Build and is also used by the CLI to double-
// check schedules before printing them.
func (p *Plan) Validate(from *cluster.Placement) (*cluster.Placement, error) {
	w := from.Clone()
	for i, mv := range p.Moves {
		if w.Home(mv.S) != mv.From {
			return nil, fmt.Errorf("plan: step %d moves shard %d from %d but it is on %d",
				i, mv.S, mv.From, w.Home(mv.S))
		}
		if mv.From == mv.To {
			return nil, fmt.Errorf("plan: step %d is a self-move", i)
		}
		if !w.CanPlace(mv.S, mv.To) {
			return nil, fmt.Errorf("plan: step %d (shard %d → machine %d) violates transient capacity",
				i, mv.S, mv.To)
		}
		w.Move(mv.S, mv.To)
		if cluster.DebugAsserts {
			w.MustInvariants("plan replay step")
		}
	}
	return w, nil
}

package plan

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// mkCluster builds a cluster from parallel capacity/speed and static/load
// definitions (single-dimension capacities replicated across resources).
func mkCluster(caps []float64, statics []float64) *cluster.Cluster {
	c := &cluster.Cluster{}
	for i, cp := range caps {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(i), Capacity: vec.Uniform(cp), Speed: 1,
		})
	}
	for i, st := range statics {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(i), Static: vec.Uniform(st), Load: 1,
		})
	}
	return c
}

func mustPlacement(t *testing.T, c *cluster.Cluster, assign []cluster.MachineID) *cluster.Placement {
	t.Helper()
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func assertRealizes(t *testing.T, p *Plan, from, to *cluster.Placement) {
	t.Helper()
	got, err := p.Validate(from)
	if err != nil {
		t.Fatalf("plan does not replay: %v", err)
	}
	for s := 0; s < from.Cluster().NumShards(); s++ {
		id := cluster.ShardID(s)
		if got.Home(id) != to.Home(id) {
			t.Fatalf("shard %d ends on %d, want %d", s, got.Home(id), to.Home(id))
		}
	}
}

func TestDirectMoves(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{2, 3})
	from := mustPlacement(t, c, []cluster.MachineID{0, 0})
	to := mustPlacement(t, c, []cluster.MachineID{0, 1})
	p, err := DefaultPlanner().Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMoves() != 1 || p.Staged != 0 || p.Displaced != 0 {
		t.Fatalf("plan = %+v, want 1 direct move", p)
	}
	assertRealizes(t, p, from, to)
}

func TestNoMovesNeeded(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{2, 3})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	p, err := DefaultPlanner().Build(from, from)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMoves() != 0 {
		t.Fatalf("expected empty plan, got %d moves", p.NumMoves())
	}
}

// TestSwapNeedsStaging is the canonical deadlock: two full machines must
// exchange their shards; only a vacant third machine makes it possible.
func TestSwapNeedsStaging(t *testing.T) {
	c := mkCluster([]float64{4, 4, 4}, []float64{4, 4})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	to := mustPlacement(t, c, []cluster.MachineID{1, 0})
	p, err := DefaultPlanner().Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if p.Staged == 0 {
		t.Error("swap through a vacant machine must stage")
	}
	if p.NumMoves() != 3 {
		t.Errorf("swap should take 3 moves, got %d", p.NumMoves())
	}
	assertRealizes(t, p, from, to)
}

// TestSwapInfeasibleWithoutVacancy removes the staging machine: the same
// swap must be reported infeasible.
func TestSwapInfeasibleWithoutVacancy(t *testing.T) {
	c := mkCluster([]float64{4, 4}, []float64{4, 4})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	to := mustPlacement(t, c, []cluster.MachineID{1, 0})
	_, err := DefaultPlanner().Build(from, to)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestExchangePreferredForStaging verifies staging picks the borrowed
// exchange machine over an equally roomy regular machine.
func TestExchangePreferredForStaging(t *testing.T) {
	c := mkCluster([]float64{4, 4, 6, 6}, []float64{4, 4})
	c.Machines[3].Exchange = true
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	to := mustPlacement(t, c, []cluster.MachineID{1, 0})
	p, err := DefaultPlanner().Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	stagedToExchange := false
	for _, mv := range p.Moves {
		if mv.To == 3 {
			stagedToExchange = true
		}
		if mv.To == 2 {
			t.Errorf("staged to regular machine 2 despite exchange machine available")
		}
	}
	if !stagedToExchange {
		t.Error("expected staging via exchange machine")
	}
	assertRealizes(t, p, from, to)
}

// TestThreeCycle rotates three shards around three full machines using one
// vacant machine.
func TestThreeCycle(t *testing.T) {
	c := mkCluster([]float64{5, 5, 5, 5}, []float64{5, 5, 5})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1, 2})
	to := mustPlacement(t, c, []cluster.MachineID{1, 2, 0})
	p, err := DefaultPlanner().Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	assertRealizes(t, p, from, to)
	if p.NumMoves() < 3 || p.NumMoves() > 5 {
		t.Errorf("3-cycle plan length = %d", p.NumMoves())
	}
}

func TestBuildRejectsMismatchedClusters(t *testing.T) {
	c1 := mkCluster([]float64{10}, []float64{1})
	c2 := mkCluster([]float64{10}, []float64{1})
	from := mustPlacement(t, c1, []cluster.MachineID{0})
	to := mustPlacement(t, c2, []cluster.MachineID{0})
	if _, err := DefaultPlanner().Build(from, to); err == nil {
		t.Error("expected error for different clusters")
	}
}

func TestBuildRejectsPartialPlacements(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{1, 1})
	from := mustPlacement(t, c, []cluster.MachineID{0, cluster.Unassigned})
	to := mustPlacement(t, c, []cluster.MachineID{0, 1})
	if _, err := DefaultPlanner().Build(from, to); err == nil {
		t.Error("expected error for partial from-placement")
	}
	if _, err := DefaultPlanner().Build(to, from); err == nil {
		t.Error("expected error for partial to-placement")
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	c := mkCluster([]float64{4, 4}, []float64{4, 4})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	// illegal: move shard 0 onto the full machine 1
	bad := &Plan{Moves: []Move{{S: 0, From: 0, To: 1}}}
	if _, err := bad.Validate(from); err == nil {
		t.Error("expected transient violation")
	}
	// illegal: wrong From
	bad = &Plan{Moves: []Move{{S: 0, From: 1, To: 0}}}
	if _, err := bad.Validate(from); err == nil {
		t.Error("expected wrong-source error")
	}
	// illegal: self move
	bad = &Plan{Moves: []Move{{S: 0, From: 0, To: 0}}}
	if _, err := bad.Validate(from); err == nil {
		t.Error("expected self-move error")
	}
}

func TestBytesMoved(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{2, 3})
	p := &Plan{Moves: []Move{{S: 0, From: 0, To: 1}, {S: 1, From: 0, To: 1}}}
	if got := p.BytesMoved(c); got != 5 {
		t.Errorf("BytesMoved = %v, want 5", got)
	}
}

func TestAllowDisplaceFalseStillSolvesPureStaging(t *testing.T) {
	c := mkCluster([]float64{4, 4, 4}, []float64{4, 4})
	from := mustPlacement(t, c, []cluster.MachineID{0, 1})
	to := mustPlacement(t, c, []cluster.MachineID{1, 0})
	pl := Planner{AllowDisplace: false}
	p, err := pl.Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if p.Displaced != 0 {
		t.Error("no displacement expected")
	}
	assertRealizes(t, p, from, to)
}

// TestStagingRespectsAntiAffinity: the only roomy staging machine hosts a
// sibling replica, so the planner must not stage there.
func TestStagingRespectsAntiAffinity(t *testing.T) {
	c := mkCluster([]float64{4, 4, 10, 10}, []float64{4, 4, 1})
	// shards 0 and 1 swap between full machines 0 and 1; machine 2 hosts
	// shard 2 which shares group 7 with shard 0; machine 3 is free.
	c.Shards[0].Group = 7
	c.Shards[2].Group = 7
	from := mustPlacement(t, c, []cluster.MachineID{0, 1, 2})
	to := mustPlacement(t, c, []cluster.MachineID{1, 0, 2})
	p, err := DefaultPlanner().Build(from, to)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Validate(from)
	if err != nil {
		t.Fatal(err)
	}
	if got.Home(0) != 1 || got.Home(1) != 0 {
		t.Fatal("swap not realized")
	}
	// shard 0 must never have been staged on machine 2 (sibling present)
	for _, mv := range p.Moves {
		if mv.S == 0 && mv.To == 2 {
			t.Fatal("staged shard 0 onto its sibling's machine")
		}
	}
}

// TestQuickRandomReassignments plans random feasible from→to pairs at
// moderate fill and checks every produced plan replays exactly.
func TestQuickRandomReassignments(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nm := 4 + r.Intn(5)
		ns := 8 + r.Intn(12)
		caps := make([]float64, nm)
		for i := range caps {
			caps[i] = 20
		}
		statics := make([]float64, ns)
		for i := range statics {
			statics[i] = 1 + r.Float64()*4
		}
		c := mkCluster(caps, statics)
		// random feasible from and to via checked placement
		randomPlacement := func() *cluster.Placement {
			p := cluster.NewPlacement(c)
			for s := 0; s < ns; s++ {
				placed := false
				for _, m := range workload.Shuffled(r, nm) {
					if p.PlaceChecked(cluster.ShardID(s), cluster.MachineID(m)) {
						placed = true
						break
					}
				}
				if !placed {
					return nil
				}
			}
			return p
		}
		from := randomPlacement()
		to := randomPlacement()
		if from == nil || to == nil {
			return true // overfull draw; skip
		}
		p, err := DefaultPlanner().Build(from, to)
		if err != nil {
			// At 20%-ish fill a failure would be surprising but is not
			// wrong per se; treat as acceptable only if truly reported.
			return errors.Is(err, ErrInfeasible)
		}
		got, err := p.Validate(from)
		if err != nil {
			return false
		}
		for s := 0; s < ns; s++ {
			if got.Home(cluster.ShardID(s)) != to.Home(cluster.ShardID(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTightRandomWithExchange plans reassignments on highly filled machines
// where an exchange machine is required, asserting plans stay valid.
func TestTightRandomWithExchange(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		// 4 machines cap 10, 8 shards of size ~4..5: fill ≈ 90%
		caps := []float64{10, 10, 10, 10}
		statics := make([]float64, 8)
		for i := range statics {
			statics[i] = 4 + r.Float64()
		}
		c := mkCluster(caps, statics)
		assign := []cluster.MachineID{0, 0, 1, 1, 2, 2, 3, 3}
		from := mustPlacement(t, c, assign)
		// to: rotate pairs one machine over (cyclic) — a chain of swaps.
		toAssign := make([]cluster.MachineID, len(assign))
		for i, m := range assign {
			toAssign[i] = (m + 1) % 4
		}
		to := mustPlacement(t, c, toAssign)

		if _, err := DefaultPlanner().Build(from, to); !errors.Is(err, ErrInfeasible) && err != nil {
			t.Fatalf("seed %d without exchange: unexpected error %v", seed, err)
		}

		// With one borrowed exchange machine the rotation must succeed.
		ec := c.WithExchange(1, vec.Uniform(10), 1)
		efrom := mustPlacement(t, ec, assign)
		eto := mustPlacement(t, ec, toAssign)
		p, err := DefaultPlanner().Build(efrom, eto)
		if err != nil {
			t.Fatalf("seed %d with exchange: %v", seed, err)
		}
		assertRealizes(t, p, efrom, eto)
	}
}

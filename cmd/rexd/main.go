// Command rexd runs the online rebalancing control plane: a continuous
// controller that replays (or observes) query load against the live
// placement, re-solves with SRA when imbalance crosses the high-water mark,
// and executes the resulting move schedule asynchronously under the
// transient resource constraint.
//
// Usage:
//
//	rexd -generate -machines 100 -shards 1500 -rounds 20          # wall clock
//	rexd -virtual -replay trace.csv -rounds 3                     # deterministic replay
//	rexd -in placement.json -plan-in plan.json -virtual           # execute a precomputed plan
//	rexd -generate -http :8080                                    # serve /status /placement /plan /metrics
//
// With -virtual the whole run is simulated on a deterministic clock and
// finishes as fast as the solver allows; without it the controller paces
// real time and the HTTP surface reports live state.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"

	"rexchange/internal/cluster"
	"rexchange/internal/ctl"
	"rexchange/internal/des"
	"rexchange/internal/metrics"
	"rexchange/internal/obs"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rexd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "cluster+placement JSON (default: generate)")
		machines = flag.Int("machines", 100, "generated fleet size")
		shards   = flag.Int("shards", 1500, "generated shard population")
		fill     = flag.Float64("fill", 0.85, "generated static fill")
		seed     = flag.Int64("seed", 1, "random seed (generation, drift, solver)")
		k        = flag.Int("k", 0, "exchange machines borrowed at startup")

		virtual = flag.Bool("virtual", false, "run on the deterministic virtual clock (no sleeps)")
		desMode = flag.Bool("des", false, "drive the controller against the discrete-event simulator (per-query latency accounting; implies a deterministic clock)")
		rounds  = flag.Int("rounds", 0, "control rounds to run (0 = until interrupted)")
		window  = flag.Float64("window", 10, "seconds per control round")

		replay  = flag.String("replay", "", "query trace CSV to replay (default: synthesize a diurnal trace)")
		rate    = flag.Float64("rate", 100, "synthesized trace: mean arrivals/second")
		diurnal = flag.Float64("diurnal", 0.6, "synthesized trace: diurnal amplitude [0,1)")
		drift   = flag.Float64("drift", 0.08, "per-window lognormal popularity drift (0 = frozen)")

		high       = flag.Float64("high", 1.25, "imbalance high-water mark (trigger re-solve)")
		low        = flag.Float64("low", 1.10, "imbalance low-water mark (stop churning)")
		cooldown   = flag.Float64("cooldown", 0, "minimum seconds between solves")
		iters      = flag.Int("iters", 600, "LNS iterations per solve round")
		restarts   = flag.Int("restarts", 2, "parallel SRA restarts per solve round")
		partitions = flag.Int("partitions", 0, "solve resource-shape partitions concurrently when > 1 (0/1 = whole-cluster portfolio)")
		exRounds   = flag.Int("exchange-rounds", 2, "cross-partition exchange rounds per solve (with -partitions > 1)")
		solveCost  = flag.Float64("solve-cost", 0, "virtual seconds charged per solve round")

		bandwidth = flag.Float64("bandwidth", 200, "migration bandwidth (disk units/s per move)")
		inflight  = flag.Int("inflight", 4, "max simultaneously in-flight moves")
		failRate  = flag.Float64("fail-rate", 0, "injected per-copy failure probability [0,1)")
		retries   = flag.Int("retries", 8, "max dispatch attempts per move")

		httpAddr = flag.String("http", "", "serve /status /placement /plan /metrics on this address")
		planIn   = flag.String("plan-in", "", "execute this precomputed plan JSON and exit")

		eventsPath = flag.String("events", "", "write a JSONL event journal (round/solve/move spans) to this file")
		metricsOut = flag.String("metrics-out", "", "write the final Prometheus exposition to this file on exit")
	)
	flag.Parse()

	p, err := loadOrGenerate(*in, *machines, *shards, *fill, *seed)
	if err != nil {
		return err
	}
	if *k > 0 {
		// borrow exchange machines shaped like the fleet average
		c := p.Cluster()
		capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
		speed := c.TotalSpeed() / float64(c.NumMachines())
		ec := c.WithExchange(*k, capacity, speed)
		if p, err = cluster.FromAssignment(ec, p.Assignment()); err != nil {
			return err
		}
	}

	var clock ctl.Clock
	if *virtual {
		clock = ctl.NewVirtualClock()
	} else {
		clock = ctl.NewWallClock()
	}

	ecfg := ctl.ExecConfig{
		Migration:   sim.MigrationConfig{Bandwidth: *bandwidth, Concurrency: *inflight},
		MaxAttempts: *retries,
	}
	if *failRate > 0 {
		// Deterministic injected copy failures, seeded independently of
		// the solver so -fail-rate does not change solve outcomes.
		fr := rand.New(rand.NewSource(*seed ^ 0x5DEECE66D))
		fp := *failRate
		ecfg.Failure = func(plan.Move, int) bool { return fr.Float64() < fp }
	}

	// The registry always exists — /metrics and -metrics-out render it;
	// the journal only when -events asks for one. On the virtual clock
	// the journal is bit-reproducible across runs and GOMAXPROCS.
	reg := obs.NewRegistry()
	journal, closeJournal, err := openJournal(*eventsPath)
	if err != nil {
		return err
	}
	defer closeJournal()

	if *planIn != "" {
		if *desMode {
			return fmt.Errorf("-des and -plan-in are mutually exclusive")
		}
		if err := runPlan(p, *planIn, clock, ecfg, reg, journal); err != nil {
			return err
		}
		return finishObs(reg, journal, closeJournal, *eventsPath, *metricsOut)
	}

	tr, err := loadOrMakeTrace(*replay, *rounds, *window, *rate, *diurnal, *seed)
	if err != nil {
		return err
	}

	// The load source and clock: either the statistical trace+drift pair,
	// or — with -des — the discrete-event simulator, which serves both
	// roles (per-query queueing on the simulated clock) and additionally
	// observes executor moves to degrade migration sources mid-flight.
	var src ctl.LoadSource
	var dsim *des.Sim
	if *desMode {
		scfg := des.DefaultConfig()
		scfg.Window = *window
		scfg.DriftSigma = *drift
		scfg.Seed = *seed
		dsim, err = des.New(scfg, p, tr)
		if err != nil {
			return err
		}
		dsim.AttachObs(reg, journal)
		clock, src = dsim, dsim
		ecfg.Observer = dsim
	} else {
		src, err = ctl.NewTraceDriftSource(p.Cluster(), tr, *drift, *seed+101)
		if err != nil {
			return err
		}
	}

	cfg := ctl.DefaultConfig()
	cfg.Window = *window
	cfg.Policy = ctl.Policy{HighWater: *high, LowWater: *low, Cooldown: *cooldown}
	cfg.Budget = ctl.Budget{
		Iterations:     *iters,
		Restarts:       *restarts,
		Partitions:     *partitions,
		ExchangeRounds: *exRounds,
		SolveSeconds:   *solveCost,
	}
	cfg.Exec = ecfg
	cfg.Seed = *seed
	cfg.Registry = reg
	cfg.Journal = journal
	cfg.OnRound = func(st ctl.RoundStat) {
		line := fmt.Sprintf("round %3d t=%8.1f imbalance=%.4f max=%.4f", st.Round, st.At, st.Imbalance, st.MaxUtil)
		if st.Solved {
			line += fmt.Sprintf(" solved (%d moves, obj %.4f)", st.PlanMoves, st.Objective)
		}
		if st.Err != "" {
			line += " err=" + st.Err
		}
		fmt.Println(line)
	}

	c, err := ctl.New(cfg, clock, p, src)
	if err != nil {
		return err
	}

	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: c.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "rexd: http:", err)
			}
		}()
		fmt.Printf("serving /status /placement /plan /metrics on %s\n", *httpAddr)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "rexd: interrupted; stopping after this round")
		c.Stop()
	}()

	fmt.Printf("rexd: %d machines, %d shards, window %gs, band [%.2f, %.2f], budget %d×%d iters\n",
		p.Cluster().NumMachines(), p.Cluster().NumShards(), *window, *low, *high, *restarts, *iters)
	if err := c.Run(*rounds); err != nil {
		return err
	}

	rep := c.Report()
	ctr := c.ExecCounters()
	fmt.Printf("executor: %d dispatched, %d completed, %d failures, %d aborted, %.1f units moved\n",
		ctr.Dispatched, ctr.Completed, ctr.Failures, ctr.Aborted, ctr.BytesMoved)
	fmt.Printf("final imbalance=%.4f max=%.4f mean=%.4f after %d rounds, %d solves\n",
		rep.Imbalance, rep.MaxUtil, rep.MeanUtil, c.Status().Round, c.Status().Solves)
	if dsim != nil {
		fmt.Print(dsim.Report().Render())
	}
	return finishObs(reg, journal, closeJournal, *eventsPath, *metricsOut)
}

// openJournal opens a buffered JSONL journal on path; with an empty path
// it returns a nil journal and a no-op closer.
func openJournal(path string) (*obs.Journal, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	j := obs.NewJournal(bw)
	closed := false
	closer := func() error {
		if closed {
			return nil
		}
		closed = true
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return j, closer, nil
}

// finishObs flushes the journal (surfacing any sticky write error) and
// renders the final exposition to -metrics-out.
func finishObs(reg *obs.Registry, journal *obs.Journal, closeJournal func() error, eventsPath, metricsOut string) error {
	if journal != nil {
		if err := journal.Close(); err != nil {
			return err
		}
		if err := closeJournal(); err != nil {
			return fmt.Errorf("events %s: %w", eventsPath, err)
		}
		fmt.Printf("events: %d journal events → %s\n", journal.Len(), eventsPath)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: exposition → %s\n", metricsOut)
	}
	return nil
}

// runPlan executes a precomputed plan against the placement with the async
// executor and prints the migration summary.
func runPlan(p *cluster.Placement, path string, clock ctl.Clock, ecfg ctl.ExecConfig, reg *obs.Registry, journal *obs.Journal) error {
	pl, err := plan.LoadFile(path)
	if err != nil {
		return err
	}
	ex, err := ctl.NewExecutor(p.Cluster(), ecfg)
	if err != nil {
		return err
	}
	ex.AttachObs(reg, journal)
	ex.SetPlan(pl)
	start := clock.Now()
	if err := ex.Tick(p, start); err != nil {
		return err
	}
	for !ex.Done() {
		next, ok := ex.NextEvent(clock.Now())
		if !ok {
			return fmt.Errorf("plan stalled with moves pending")
		}
		clock.Sleep(next - clock.Now())
		if err := ex.Tick(p, clock.Now()); err != nil {
			return err
		}
	}
	ctr := ex.Counters()
	fmt.Printf("plan executed: %d moves in %.1fs, %d failures retried, peak %d parallel, %.1f units moved\n",
		ctr.Completed, clock.Now()-start, ctr.Failures, ctr.PeakParallel, ctr.BytesMoved)
	rep := metrics.Compute(p)
	fmt.Printf("final imbalance=%.4f max=%.4f mean=%.4f\n", rep.Imbalance, rep.MaxUtil, rep.MeanUtil)
	return nil
}

// loadOrGenerate builds the starting placement.
func loadOrGenerate(in string, machines, shards int, fill float64, seed int64) (*cluster.Placement, error) {
	if in != "" {
		return cluster.LoadPlacementFile(in)
	}
	cfg := workload.DefaultConfig()
	cfg.Machines = machines
	cfg.Shards = shards
	cfg.TargetFill = fill
	cfg.Seed = seed
	inst, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return inst.Placement, nil
}

// loadOrMakeTrace loads the replay trace or synthesizes a diurnal one long
// enough for the requested rounds (the source wraps it when needed).
func loadOrMakeTrace(path string, rounds int, window, rate, diurnal float64, seed int64) (*workload.Trace, error) {
	if path != "" {
		return workload.LoadTraceFile(path)
	}
	dur := 600.0
	if rounds > 0 {
		dur = float64(rounds) * window
	}
	return workload.GenerateTrace(workload.TraceConfig{
		Duration:   dur,
		BaseRate:   rate,
		DiurnalAmp: diurnal,
		Period:     dur,
		CostMu:     0,
		CostSigma:  0.5,
		Seed:       seed + 7,
	})
}

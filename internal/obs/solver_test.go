package obs_test

import (
	"strings"
	"testing"

	"rexchange/internal/core"
	"rexchange/internal/obs"
)

// The SolverRecorder must satisfy both recorder interfaces: the plain
// per-run one and the partitioned extension core.SolvePartitioned discovers
// by type assertion.
var (
	_ core.Recorder          = (*obs.SolverRecorder)(nil)
	_ core.PartitionRecorder = (*obs.SolverRecorder)(nil)
)

// TestSolverRecorderPartitionMetrics drives the PartitionRecorder methods
// and checks the partitioned families land in the exposition with the
// expected values.
func TestSolverRecorderPartitionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewSolverRecorder(reg)

	rec.RecordPartitionRound(4, 4, 1.75)
	rec.RecordPartitionRound(4, 2, 1.42)
	rec.RecordExchange(5, 1)
	rec.RecordExchange(3, 0)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"rex_solver_partition_rounds_total 2",
		"rex_solver_partition_solves_total 6",
		"rex_solver_partition_round_objective 1.42",
		"rex_solver_exchange_shard_moves_total 8",
		"rex_solver_exchange_vacant_trades_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

package ip

import (
	"math"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// twoMachine builds a 2-machine, n-shard cluster with uniform static 1 and
// the given loads; capacities are generous.
func twoMachine(loads ...float64) *cluster.Cluster {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(100), Speed: 1},
		},
	}
	for i, l := range loads {
		c.Shards = append(c.Shards, cluster.Shard{ID: cluster.ShardID(i), Static: vec.Uniform(1), Load: l})
	}
	return c
}

func TestExactPartition(t *testing.T) {
	// loads 4,3,2,1 over two machines → optimal makespan 5 (4+1 | 3+2).
	md, err := BuildModel(twoMachine(4, 3, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-5) > 1e-6 {
		t.Errorf("objective = %v, want 5", res.Objective)
	}
	// verify the assignment really achieves it
	p, err := cluster.FromAssignment(md.c, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	maxU := math.Max(p.Utilization(0), p.Utilization(1))
	if math.Abs(maxU-5) > 1e-6 {
		t.Errorf("assignment makespan = %v", maxU)
	}
}

func TestRootBoundIsLower(t *testing.T) {
	md, err := BuildModel(twoMachine(4, 3, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := md.RootBound()
	if err != nil {
		t.Fatal(err)
	}
	// LP bound is total/2 = 5 here (perfectly divisible), ≤ optimum.
	if lb > 5+1e-6 {
		t.Errorf("root bound %v exceeds optimum 5", lb)
	}
	if lb < 5-1e-6 {
		t.Logf("root bound %v (fractional relaxation)", lb)
	}
}

func TestStaticCapacityBinds(t *testing.T) {
	// Two shards of static 2 cannot share a machine with capacity 3, even
	// though load-wise they would: optimal must split them.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(3), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(3), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(2), Load: 1},
			{ID: 1, Static: vec.Uniform(2), Load: 1},
		},
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("shards co-located despite static capacity")
	}
}

func TestVacancyConstraint(t *testing.T) {
	// Three machines, K=1: one machine must end vacant, so two shards of
	// load 2 each give makespan 2 on two machines — not 4/3 on three.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 2},
			{ID: 1, Static: vec.Uniform(1), Load: 2},
		},
	}
	md, err := BuildModel(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
	p, _ := cluster.FromAssignment(md.c, res.Assignment)
	if p.NumVacant() < 1 {
		t.Error("vacancy constraint violated")
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	// One fast (speed 2) and one slow machine; loads 6 and 2. Optimal:
	// heavy shard on the fast machine → utils 3 and 2 → makespan 3.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 2},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 6},
			{ID: 1, Static: vec.Uniform(1), Load: 2},
		},
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Errorf("objective = %v, want 3", res.Objective)
	}
	if res.Assignment[0] != 0 {
		t.Errorf("heavy shard on machine %d, want fast machine 0", res.Assignment[0])
	}
}

func TestInfeasibleModel(t *testing.T) {
	// Static demand exceeds every machine: infeasible.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(1), Speed: 1}},
		Shards:   []cluster.Shard{{ID: 0, Static: vec.Uniform(5), Load: 1}},
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestIncumbentPruning(t *testing.T) {
	md, err := BuildModel(twoMachine(4, 3, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	noHint, err := md.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := md.Solve(Options{IncumbentObj: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Status != Optimal && hinted.Status != Infeasible {
		t.Fatalf("hinted status = %v", hinted.Status)
	}
	// A tight incumbent can only reduce explored nodes.
	if hinted.Nodes > noHint.Nodes {
		t.Errorf("incumbent increased nodes: %d > %d", hinted.Nodes, noHint.Nodes)
	}
}

func TestNodeLimit(t *testing.T) {
	md, err := BuildModel(twoMachine(5, 4, 3, 3, 2, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", res.Status)
	}
}

func TestBuildModelValidation(t *testing.T) {
	if _, err := BuildModel(&cluster.Cluster{}, 0); err == nil {
		t.Error("expected error for empty cluster")
	}
	c := twoMachine(1)
	if _, err := BuildModel(c, 2); err == nil {
		t.Error("expected error for K ≥ machines")
	}
	if _, err := BuildModel(c, -1); err == nil {
		t.Error("expected error for negative K")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", NodeLimit: "node-limit",
		Status(7): "status(7)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

// TestBruteForceAgreement cross-checks branch-and-bound against exhaustive
// enumeration on tiny instances.
func TestBruteForceAgreement(t *testing.T) {
	cases := [][]float64{
		{3, 2, 1},
		{5, 4, 3, 2},
		{7, 1, 1, 1, 1},
		{2, 2, 2, 2, 2},
	}
	for _, loads := range cases {
		c := twoMachine(loads...)
		md, err := BuildModel(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := md.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMakespan(loads)
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Errorf("loads %v: B&B %v, brute force %v", loads, res.Objective, want)
		}
	}
}

func bruteForceMakespan(loads []float64) float64 {
	n := len(loads)
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		var a, b float64
		for i, l := range loads {
			if mask&(1<<i) != 0 {
				a += l
			} else {
				b += l
			}
		}
		if m := math.Max(a, b); m < best {
			best = m
		}
	}
	return best
}

package cluster

import (
	"math"
	"testing"
)

// mustEqualPlacements fails unless a and b are bit-identical: same
// assignment, same hosted order on every machine, Float64bits-equal
// aggregates, same vacancy/unassigned/group bookkeeping. This is the
// contract Rollback promises — indistinguishable from restoring a clone.
func mustEqualPlacements(t *testing.T, label string, a, b *Placement) {
	t.Helper()
	c := a.Cluster()
	for s := range c.Shards {
		if a.Home(ShardID(s)) != b.Home(ShardID(s)) {
			t.Fatalf("%s: shard %d home %d vs %d", label, s, a.Home(ShardID(s)), b.Home(ShardID(s)))
		}
	}
	for m := 0; m < c.NumMachines(); m++ {
		id := MachineID(m)
		if a.Count(id) != b.Count(id) {
			t.Fatalf("%s: machine %d count %d vs %d", label, m, a.Count(id), b.Count(id))
		}
		for i := 0; i < a.Count(id); i++ {
			if a.ShardAt(id, i) != b.ShardAt(id, i) {
				t.Fatalf("%s: machine %d slot %d holds %d vs %d — hosted order not restored",
					label, m, i, a.ShardAt(id, i), b.ShardAt(id, i))
			}
		}
		au, bu := a.Used(id), b.Used(id)
		for d := range au {
			if math.Float64bits(au[d]) != math.Float64bits(bu[d]) {
				t.Fatalf("%s: machine %d used[%d] %v vs %v — not bit-exact", label, m, d, au[d], bu[d])
			}
		}
		if math.Float64bits(a.Load(id)) != math.Float64bits(b.Load(id)) {
			t.Fatalf("%s: machine %d load %v vs %v — not bit-exact", label, m, a.Load(id), b.Load(id))
		}
		if a.GroupCount(id, 7) != b.GroupCount(id, 7) {
			t.Fatalf("%s: machine %d group 7 count %d vs %d",
				label, m, a.GroupCount(id, 7), b.GroupCount(id, 7))
		}
	}
	if a.NumVacant() != b.NumVacant() {
		t.Fatalf("%s: vacant %d vs %d", label, a.NumVacant(), b.NumVacant())
	}
	if a.UnassignedCount() != b.UnassignedCount() {
		t.Fatalf("%s: unassigned %d vs %d", label, a.UnassignedCount(), b.UnassignedCount())
	}
}

func TestTxnRollbackRestoresExactly(t *testing.T) {
	c := groupedCluster()
	p, err := FromAssignment(c, []MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Clone()

	p.BeginTxn()
	// A dense mix of primitives: drain machine 1 (making it vacant), fill
	// the always-vacant machine 2, shuffle machine 0, and move a grouped
	// shard so the group counters churn.
	if err := p.Remove(2); err != nil {
		t.Fatal(err)
	}
	p.Move(3, 2)
	if err := p.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(2, 0); err != nil {
		t.Fatal(err)
	}
	p.Move(1, 2)
	if err := p.Place(0, 1); err != nil {
		t.Fatal(err)
	}
	if p.TxnLen() == 0 {
		t.Fatal("journal recorded nothing")
	}
	p.Rollback()

	mustEqualPlacements(t, "after rollback", p, snap)
	if p.InTxn() || p.TxnLen() != 0 {
		t.Fatal("journal not cleared by Rollback")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCommitKeepsMutations(t *testing.T) {
	c := groupedCluster()
	p, err := FromAssignment(c, []MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p.BeginTxn()
	p.Move(2, 0)
	p.Move(3, 2)
	p.Commit()
	if p.InTxn() || p.TxnLen() != 0 {
		t.Fatal("journal not cleared by Commit")
	}
	// Committed state must equal the same assignment built from scratch.
	want, err := FromAssignment(c, p.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if p.Home(2) != 0 || p.Home(3) != 2 {
		t.Fatalf("moves lost: home(2)=%d home(3)=%d", p.Home(2), p.Home(3))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.UnassignedCount() != want.UnassignedCount() || p.NumVacant() != want.NumVacant() {
		t.Fatalf("bookkeeping diverged from fresh build: %d/%d vs %d/%d",
			p.UnassignedCount(), p.NumVacant(), want.UnassignedCount(), want.NumVacant())
	}
}

func TestTxnOpReportsTouches(t *testing.T) {
	p, err := FromAssignment(testCluster(), []MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p.BeginTxn()
	p.Move(2, 0) // unplace(2 from 1) + place(2 on 0)
	if p.TxnLen() != 2 {
		t.Fatalf("TxnLen = %d, want 2", p.TxnLen())
	}
	s0, m0 := p.TxnOp(0)
	s1, m1 := p.TxnOp(1)
	if s0 != 2 || m0 != 1 {
		t.Errorf("op 0 = (%d,%d), want unplace record (2,1)", s0, m0)
	}
	if s1 != 2 || m1 != 0 {
		t.Errorf("op 1 = (%d,%d), want place record (2,0)", s1, m1)
	}
	p.Rollback()
}

func TestTxnMisusePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	p, err := FromAssignment(testCluster(), []MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("stray Commit", func() { p.Commit() })
	mustPanic("stray Rollback", func() { p.Rollback() })
	p.BeginTxn()
	mustPanic("nested BeginTxn", func() { p.BeginTxn() })
	p.Rollback()
}

// TestTxnRollbackAfterClone pins the Clone-mid-transaction semantics: the
// clone captures the mutated state and is independent of the original's
// rollback.
func TestTxnRollbackAfterClone(t *testing.T) {
	p, err := FromAssignment(testCluster(), []MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p.BeginTxn()
	p.Move(2, 0)
	mid := p.Clone()
	p.Rollback()
	if mid.Home(2) != 0 {
		t.Fatalf("clone home(2) = %d, want the mutated 0", mid.Home(2))
	}
	if p.Home(2) != 1 {
		t.Fatalf("original home(2) = %d, want the restored 1", p.Home(2))
	}
	// The clone must not carry the original's journal.
	if mid.InTxn() {
		t.Fatal("clone inherited an active transaction")
	}
}

package ctl

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rexchange/internal/cluster"
)

// httpController builds a small controller, runs a few rounds (so state is
// non-trivial), and returns it.
func httpController(t *testing.T) *Controller {
	t.Helper()
	cfg, p, src := e2eConfig(t, 40, 480, 17)
	cfg.Budget = Budget{Iterations: 100, Restarts: 1}
	c, err := New(cfg, NewVirtualClock(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(3); err != nil {
		t.Fatal(err)
	}
	return c
}

func get(t *testing.T, c *Controller, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	return rec
}

func TestHTTPStatus(t *testing.T) {
	c := httpController(t)
	rec := get(t, c, "/status")
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode /status: %v\n%s", err, rec.Body.String())
	}
	if st.Round != 3 || st.Solves == 0 || st.State == "" {
		t.Fatalf("unexpected status: %+v", st)
	}
	if len(st.LastRounds) != 3 {
		t.Fatalf("history tail has %d rounds, want 3", len(st.LastRounds))
	}
}

func TestHTTPPlacement(t *testing.T) {
	c := httpController(t)
	rec := get(t, c, "/placement")
	p, err := cluster.LoadPlacement(rec.Body)
	if err != nil {
		t.Fatalf("reload /placement: %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Cluster().NumShards() != 480 {
		t.Fatalf("placement has %d shards", p.Cluster().NumShards())
	}
}

func TestHTTPPlan(t *testing.T) {
	c := httpController(t)
	rec := get(t, c, "/plan")
	var body struct {
		Moves []MoveView `json:"moves"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode /plan: %v", err)
	}
	if len(body.Moves) == 0 {
		t.Fatal("no moves in plan view after a solved round")
	}
	for _, mv := range body.Moves {
		if mv.Status == "" {
			t.Fatalf("move %d has empty status", mv.Seq)
		}
	}
}

func TestHTTPMetrics(t *testing.T) {
	c := httpController(t)
	body := get(t, c, "/metrics").Body.String()
	for _, metric := range []string{
		"rex_imbalance", "rex_max_util", "rex_static_pressure{resource=\"disk\"}",
		"rex_ctl_rounds_total", "rex_ctl_solves_total", "rex_exec_completed_total",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %s:\n%s", metric, body)
		}
	}
	if !strings.Contains(body, "# TYPE rex_imbalance gauge") {
		t.Fatal("/metrics missing TYPE annotation")
	}
}

// TestHTTPConcurrentWithRun serves the endpoints while the control loop is
// running; the race detector checks the locking.
func TestHTTPConcurrentWithRun(t *testing.T) {
	cfg, p, src := e2eConfig(t, 40, 480, 23)
	cfg.Budget = Budget{Iterations: 100, Restarts: 2}
	c, err := New(cfg, NewVirtualClock(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, path := range []string{"/status", "/placement", "/plan", "/metrics"} {
					rec := httptest.NewRecorder()
					c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				}
			}
		}()
	}
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
}

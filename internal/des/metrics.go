package des

import "rexchange/internal/obs"

// simMetrics are the simulator's registry families. Histogram and counter
// updates happen at query completion (atomic, lock-free); the event and
// in-flight gauges sync once per clock advance to stay off the hot path.
type simMetrics struct {
	queries      *obs.CounterVec
	latency      *obs.HistogramVec
	dropped      *obs.Counter
	events       *obs.Counter
	copiesActive *obs.Gauge
	inFlight     *obs.Gauge

	// Pre-resolved per-phase handles: label resolution takes a lock.
	qByPhase [numPhases]*obs.Counter
	hByPhase [numPhases]*obs.Histogram

	lastEvents uint64
}

// newSimMetrics registers the rex_sim_* families.
func newSimMetrics(reg *obs.Registry) *simMetrics {
	m := &simMetrics{
		queries: reg.CounterVec("rex_sim_queries_total",
			"Queries completed, by migration phase.", "phase"),
		latency: reg.HistogramVec("rex_sim_query_latency_seconds",
			"End-to-end query latency (merge at slowest leg), by migration phase.",
			latencyBuckets(), "phase"),
		dropped: reg.Counter("rex_sim_queries_dropped_total",
			"Queries dropped whole at admission by a full machine queue."),
		events: reg.Counter("rex_sim_events_total",
			"Discrete events processed by the simulator."),
		copiesActive: reg.Gauge("rex_sim_copies_active",
			"Migration copies currently degrading a source machine."),
		inFlight: reg.Gauge("rex_sim_queries_in_flight",
			"Queries with at least one leg outstanding."),
	}
	for ph := PhaseBefore; ph < numPhases; ph++ {
		m.qByPhase[ph] = m.queries.With(ph.String())
		m.hByPhase[ph] = m.latency.With(ph.String())
	}
	return m
}

// latencyBuckets spans sub-millisecond cache hits through multi-second
// queue blowups during migration campaigns.
func latencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// observe records one completed query.
func (m *simMetrics) observe(ph Phase, latency float64) {
	m.qByPhase[ph].Inc()
	m.hByPhase[ph].Observe(latency)
}

// observeTraced records one completed sampled query, leaving its trace
// ID as the exemplar of the latency bucket it lands in.
func (m *simMetrics) observeTraced(ph Phase, latency float64, id obs.TraceID) {
	m.qByPhase[ph].Inc()
	m.hByPhase[ph].ObserveTraced(latency, id.String())
}

// syncLow refreshes the low-frequency families from simulator state.
func (m *simMetrics) syncLow(s *Sim) {
	m.events.Add(float64(s.events - m.lastEvents))
	m.lastEvents = s.events
	m.inFlight.Set(float64(s.InFlight()))
}

package sim

import (
	"math"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/plan"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// mkPlacement builds a 2-machine cluster with the given per-machine loads
// realized as one shard each.
func mkPlacement(t *testing.T, loads []float64) *cluster.Placement {
	t.Helper()
	c := &cluster.Cluster{}
	for m := range loads {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(m), Capacity: vec.Uniform(100), Speed: 1,
		})
	}
	assign := make([]cluster.MachineID, len(loads))
	for i, l := range loads {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(i), Static: vec.Uniform(1), Load: l,
		})
		assign[i] = cluster.MachineID(i)
	}
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkTrace(t *testing.T, rate, duration float64) *workload.Trace {
	t.Helper()
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: duration, BaseRate: rate, CostMu: 0, CostSigma: 0.2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunBasic(t *testing.T) {
	p := mkPlacement(t, []float64{10, 10})
	tr := mkTrace(t, 50, 20)
	rep, err := Run(p, tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != len(tr.Queries) {
		t.Errorf("Queries = %d", rep.Queries)
	}
	if !(rep.MeanLatency > 0) || !(rep.P99 >= rep.P50) || !(rep.MaxLatency >= rep.P99) {
		t.Errorf("latency ordering broken: %+v", rep)
	}
	if rep.MaxBusy <= 0 || rep.MaxBusy > 1.5 {
		t.Errorf("MaxBusy = %v", rep.MaxBusy)
	}
}

func TestImbalanceRaisesTailLatency(t *testing.T) {
	// Same total load, balanced vs concentrated. Scale the work so the
	// hot machine is near saturation — its queue should explode p99.
	balanced := mkPlacement(t, []float64{10, 10})
	skewed := mkPlacement(t, []float64{19, 1})
	tr := mkTrace(t, 40, 30)
	cfg := Config{Cores: 2, WorkScale: 4e-3} // hot machine: 19·0.004·40/2 ≈ 1.5 ρ

	repB, err := Run(balanced, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := Run(skewed, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repS.P99 <= repB.P99 {
		t.Errorf("skewed p99 (%v) should exceed balanced p99 (%v)", repS.P99, repB.P99)
	}
	if repS.MaxBusy <= repB.MaxBusy {
		t.Errorf("skewed MaxBusy (%v) should exceed balanced (%v)", repS.MaxBusy, repB.MaxBusy)
	}
}

func TestSLAMissAccounting(t *testing.T) {
	p := mkPlacement(t, []float64{10, 10})
	tr := mkTrace(t, 50, 20)
	cfg := DefaultConfig()
	// SLA disabled → zero
	rep, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLAMissFrac != 0 {
		t.Errorf("SLA disabled but miss frac = %v", rep.SLAMissFrac)
	}
	// Generous SLA → 0 misses; impossible SLA → all miss.
	cfg.SLA = rep.MaxLatency * 2
	rep2, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SLAMissFrac != 0 {
		t.Errorf("generous SLA missed %v", rep2.SLAMissFrac)
	}
	cfg.SLA = 1e-12
	rep3, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.SLAMissFrac != 1 {
		t.Errorf("impossible SLA missed only %v", rep3.SLAMissFrac)
	}
	// p50-level SLA → roughly half miss
	cfg.SLA = rep.P50
	rep4, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep4.SLAMissFrac < 0.3 || rep4.SLAMissFrac > 0.7 {
		t.Errorf("p50 SLA miss frac = %v, want ≈0.5", rep4.SLAMissFrac)
	}
}

func TestVacantMachinesExcluded(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{{ID: 0, Static: vec.Uniform(1), Load: 5}},
	}
	p, _ := cluster.FromAssignment(c, []cluster.MachineID{0})
	rep, err := Run(p, mkTrace(t, 20, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MachineBusy[1] != 0 {
		t.Error("vacant machine accrued busy time")
	}
}

func TestRunValidation(t *testing.T) {
	p := mkPlacement(t, []float64{1})
	tr := mkTrace(t, 10, 2)
	if _, err := Run(p, tr, Config{Cores: 0, WorkScale: 1}); err == nil {
		t.Error("expected cores error")
	}
	if _, err := Run(p, tr, Config{Cores: 1, WorkScale: 0}); err == nil {
		t.Error("expected workscale error")
	}
	if _, err := Run(p, &workload.Trace{}, DefaultConfig()); err == nil {
		t.Error("expected empty-trace error")
	}
	empty := cluster.NewPlacement(&cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(1), Speed: 1}},
	})
	if _, err := Run(empty, tr, DefaultConfig()); err == nil {
		t.Error("expected no-serving-machines error")
	}
}

func TestSimulateMigrationSerial(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.New(1, 50, 1), Load: 1},
			{ID: 1, Static: vec.New(1, 30, 1), Load: 1},
		},
	}
	// Oversized statics vs capacity? capacities 10 < 50 — fix: use cap 100.
	c.Machines[0].Capacity = vec.Uniform(100)
	c.Machines[1].Capacity = vec.Uniform(100)
	from, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 0})
	pl := &plan.Plan{Moves: []plan.Move{
		{S: 0, From: 0, To: 1},
		{S: 1, From: 0, To: 1},
	}}
	rep, err := SimulateMigration(from, pl, MigrationConfig{Bandwidth: 10, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 2 || rep.Bytes != 80 {
		t.Errorf("steps/bytes = %d/%v", rep.Steps, rep.Bytes)
	}
	if math.Abs(rep.Duration-8) > 1e-9 { // (50+30)/10 serial
		t.Errorf("duration = %v, want 8", rep.Duration)
	}
	if rep.PeakParallel != 1 {
		t.Errorf("peak parallel = %d", rep.PeakParallel)
	}
}

func TestSimulateMigrationConcurrencySpeedsUp(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(1000), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(1000), Speed: 1},
		},
	}
	var assign []cluster.MachineID
	var moves []plan.Move
	for i := 0; i < 4; i++ {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(i), Static: vec.New(1, 40, 1), Load: 1,
		})
		assign = append(assign, 0)
		moves = append(moves, plan.Move{S: cluster.ShardID(i), From: 0, To: 1})
	}
	from, _ := cluster.FromAssignment(c, assign)
	pl := &plan.Plan{Moves: moves}

	serial, err := SimulateMigration(from, pl, MigrationConfig{Bandwidth: 10, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateMigration(from, pl, MigrationConfig{Bandwidth: 10, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Duration >= serial.Duration {
		t.Errorf("parallel (%v) should beat serial (%v)", par.Duration, serial.Duration)
	}
	if par.PeakParallel != 4 {
		t.Errorf("peak parallel = %d, want 4", par.PeakParallel)
	}
}

func TestSimulateMigrationTransientBlocks(t *testing.T) {
	// Target fits one shard at a time: concurrency 2 must degrade to
	// serial because of the transient reservation.
	// Chain: s0 vacates machine 1 (→2), then s1 moves 0→1. While s0 is
	// still copying it occupies machine 1 (disk cap 60), so s1's incoming
	// copy (40+40 > 60) must wait — concurrency 2 degrades to serial.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.New(100, 60, 100), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(100), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.New(1, 40, 1), Load: 1},
			{ID: 1, Static: vec.New(1, 40, 1), Load: 1},
		},
	}
	from, _ := cluster.FromAssignment(c, []cluster.MachineID{1, 0})
	pl := &plan.Plan{Moves: []plan.Move{
		{S: 0, From: 1, To: 2},
		{S: 1, From: 0, To: 1},
	}}
	rep, err := SimulateMigration(from, pl, MigrationConfig{Bandwidth: 10, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakParallel != 1 {
		t.Errorf("transient reservation should serialize: peak = %d", rep.PeakParallel)
	}
	if math.Abs(rep.Duration-8) > 1e-9 {
		t.Errorf("duration = %v, want 8", rep.Duration)
	}
}

// TestSimulateMigrationMultiHop covers staged plans where one shard moves
// twice: the second hop must wait for the first to land (regression: this
// used to be misreported as an inconsistent plan under concurrency > 1).
func TestSimulateMigrationMultiHop(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(100), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.New(1, 40, 1), Load: 1},
			{ID: 1, Static: vec.New(1, 20, 1), Load: 1},
		},
	}
	from, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 0})
	pl := &plan.Plan{Moves: []plan.Move{
		{S: 0, From: 0, To: 1}, // hop 1
		{S: 0, From: 1, To: 2}, // hop 2: same shard, must wait for hop 1
		{S: 1, From: 0, To: 1},
	}}
	rep, err := SimulateMigration(from, pl, MigrationConfig{Bandwidth: 10, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 {
		t.Errorf("steps = %d", rep.Steps)
	}
	// hops of shard 0 serialize (4s + 4s); shard 1 (2s) overlaps hop 1 —
	// but only after hop 2 is no longer head-of-line, i.e. from t=4.
	if math.Abs(rep.Duration-8) > 1e-9 {
		t.Errorf("duration = %v, want 8", rep.Duration)
	}
}

func TestSimulateMigrationDetectsBadPlan(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.New(100, 10, 100), Speed: 1},
		},
		Shards: []cluster.Shard{{ID: 0, Static: vec.New(1, 40, 1), Load: 1}},
	}
	from, _ := cluster.FromAssignment(c, []cluster.MachineID{0})
	pl := &plan.Plan{Moves: []plan.Move{{S: 0, From: 0, To: 1}}}
	if _, err := SimulateMigration(from, pl, DefaultMigrationConfig()); err == nil {
		t.Error("expected never-fits error")
	}
	// wrong source
	pl = &plan.Plan{Moves: []plan.Move{{S: 0, From: 1, To: 0}}}
	if _, err := SimulateMigration(from, pl, DefaultMigrationConfig()); err == nil {
		t.Error("expected wrong-source error")
	}
}

func TestSimulateMigrationValidation(t *testing.T) {
	p := mkPlacement(t, []float64{1})
	empty := &plan.Plan{}
	if _, err := SimulateMigration(p, empty, MigrationConfig{Bandwidth: 0, Concurrency: 1}); err == nil {
		t.Error("expected bandwidth error")
	}
	if _, err := SimulateMigration(p, empty, MigrationConfig{Bandwidth: 1, Concurrency: 0}); err == nil {
		t.Error("expected concurrency error")
	}
	rep, err := SimulateMigration(p, empty, DefaultMigrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration != 0 || rep.Steps != 0 {
		t.Error("empty plan should be a no-op")
	}
}

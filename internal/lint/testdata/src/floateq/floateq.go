// Fixture for the floateq analyzer: exact ==/!= between computed floats is
// flagged; constant sentinels, comparator literals, and integers are not.
package floateq

import "sort"

func bad(a, b float64) bool {
	return a == b // want `exact floating-point ==`
}

func badNeq(xs []float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] { // want `exact floating-point !=`
			n++
		}
	}
	return n
}

func badFloat32(a, b float32) bool {
	return a == b // want `exact floating-point ==`
}

func goodConstZero(x float64) bool {
	return x == 0 // sentinel comparison against a constant: exempt
}

func goodNamedConst(x float64) bool {
	const unset = -1.0
	return x != unset // exempt: constant operand
}

func goodComparator(xs []float64, ids []int) {
	sort.Slice(ids, func(i, j int) bool {
		if xs[ids[i]] != xs[ids[j]] { // exact tie-break in a comparator: exempt
			return xs[ids[i]] < xs[ids[j]]
		}
		return ids[i] < ids[j]
	})
}

func goodInts(a, b int) bool {
	return a == b
}

func ignored(a, b float64) bool {
	//rexlint:ignore floateq bit-exact identity check is intentional
	return a == b
}

package lint

// Interprocedural value-flow/taint engine: per-function def-use chains over
// the v2 CFG (cfg.go, dataflow.go), with taint lattices propagated bottom-up
// through call-site summaries exactly like v3's effect masks (summary.go),
// including "via a → b" blame traces. Three analyzers draw on it:
//
//   - streamflow: a value returned by a //rexlint:streamsource function
//     (rng.Partitioned.Stream) carries its stream name as taint. A function
//     may draw from or pass along a stream only if its doc comment declares
//     ownership with //rexlint:stream <name...>; function literals inherit
//     the enclosing declaration. Stream names must be named constants.
//   - detflow: values whose order derives from map iteration, maps.Keys/
//     Values/All, or multi-arm select receives carry order taint until
//     sorted (a sort./slices. call) or passed through a //rexlint:canonical
//     function. Order-tainted values must not reach //rexlint:detsink
//     functions (journal writes, Prometheus exposition, fixed-format
//     reports), directly or through callees.
//   - nonneg: integer struct fields annotated //rexlint:nonneg must be
//     provably non-negative on every path: decrements are only legal when
//     the lower bound is positive, //rexlint:requires f>=k states a callee's
//     entry precondition that callers must discharge, and callee summaries
//     carry a guaranteed minimum net delta folded at call sites.
//
// Soundness boundaries (deliberate, documented): taint does not flow
// through struct-field stores across functions (field-mediated flows stay
// covered by the dynamic byte-diff tests), closures do not inherit taint of
// captured variables, and counter writes through index expressions
// (s.machines[i].copies--) are not tracked because exprKey cannot
// canonicalize them. Within those boundaries every lattice is finite and
// every merge monotone, so the fixpoint terminates (FuzzValueSummaryMerge
// pins this on cyclic call graphs).

import (
	"go/token"
	"strings"
)

// vfKind tags a finding with the analyzer it belongs to.
type vfKind uint8

const (
	vfStream vfKind = iota
	vfDet
	vfNonneg
)

// vfFinding is one engine finding, routed to streamflow/detflow/nonneg.
type vfFinding struct {
	kind vfKind
	pos  token.Pos
	msg  string
}

// lbSat bounds every lower-bound value so decreasing chains are finite and
// the dataflow fixpoint terminates regardless of loop structure.
const lbSat = 64

// satAdd adds with saturation at ±lbSat.
func satAdd(a, b int) int {
	s := a + b
	if s > lbSat {
		return lbSat
	}
	if s < -lbSat {
		return -lbSat
	}
	return s
}

// counterEffect is the nonneg summary of one annotated receiver field.
type counterEffect struct {
	// Req is the declared entry precondition (//rexlint:requires f>=k).
	Req int
	// Delta is the guaranteed minimum net change over any terminating
	// path, valid only when Known.
	Known bool
	Delta int
}

// valueSummary is the value-flow summary of one function node.
type valueSummary struct {
	// returnStreams maps stream names that may taint a return value to
	// their provenance.
	returnStreams map[string]*Trace
	// returnsOrdered is non-nil when a return value may carry map/select
	// ordering.
	returnsOrdered *Trace
	// returnsParam is a bitmask of parameters whose order taint flows
	// through to a return value (identity-style helpers).
	returnsParam uint64
	// paramSink describes, per parameter, the deterministic-output sink the
	// parameter reaches inside the function ("" = none); paramSinkTr is the
	// matching provenance.
	paramSink   []string
	paramSinkTr []*Trace
	// counters holds the nonneg effect per annotated receiver field name.
	counters map[string]*counterEffect
}

// equalValueSummary compares the lattice content of two summaries (traces
// are decoration and do not participate).
func equalValueSummary(a, b *valueSummary) bool {
	if len(a.returnStreams) != len(b.returnStreams) {
		return false
	}
	for k := range a.returnStreams {
		if _, ok := b.returnStreams[k]; !ok {
			return false
		}
	}
	if (a.returnsOrdered == nil) != (b.returnsOrdered == nil) || a.returnsParam != b.returnsParam {
		return false
	}
	if len(a.paramSink) != len(b.paramSink) {
		return false
	}
	for i := range a.paramSink {
		if a.paramSink[i] != b.paramSink[i] {
			return false
		}
	}
	if len(a.counters) != len(b.counters) {
		return false
	}
	for f, ca := range a.counters {
		cb, ok := b.counters[f]
		if !ok || *ca != *cb {
			return false
		}
	}
	return true
}

// mergeValueSummary folds src into dst (union / min joins, all monotone:
// stream sets and sink marks only grow, Known only falls, Delta only
// drops). Reports whether dst changed.
func mergeValueSummary(dst, src *valueSummary) bool {
	changed := false
	for name, tr := range src.returnStreams {
		if _, ok := dst.returnStreams[name]; !ok {
			if dst.returnStreams == nil {
				dst.returnStreams = make(map[string]*Trace)
			}
			dst.returnStreams[name] = tr
			changed = true
		}
	}
	if src.returnsOrdered != nil && dst.returnsOrdered == nil {
		dst.returnsOrdered = src.returnsOrdered
		changed = true
	}
	if src.returnsParam&^dst.returnsParam != 0 {
		dst.returnsParam |= src.returnsParam
		changed = true
	}
	for i, d := range src.paramSink {
		if d != "" && i < len(dst.paramSink) && dst.paramSink[i] == "" {
			dst.paramSink[i] = d
			dst.paramSinkTr[i] = src.paramSinkTr[i]
			changed = true
		}
	}
	for f, ce := range src.counters {
		de, ok := dst.counters[f]
		if !ok {
			if dst.counters == nil {
				dst.counters = make(map[string]*counterEffect)
			}
			cp := *ce
			dst.counters[f] = &cp
			changed = true
			continue
		}
		if de.Known && !ce.Known {
			de.Known = false
			changed = true
		}
		if de.Known && ce.Delta < de.Delta {
			de.Delta = ce.Delta
			changed = true
		}
	}
	return changed
}

// streamSet maps stream names to their provenance.
type streamSet map[string]*Trace

// vfState is the per-program-point fact: which value paths carry which
// stream taints, which carry nondeterministic ordering, which carry
// parameter marks, and the proven lower bound of each tracked counter.
// Missing lb keys mean 0 (absolute mode: the declared invariant floor;
// delta mode: net offset zero), so states normalize by dropping zeros.
type vfState struct {
	streams map[string]streamSet
	ordered map[string]*Trace
	pmark   map[string]uint64
	lb      map[string]int
	// cKill marks counters whose delta became untrackable (delta mode
	// only): an absolute assignment or an unknown callee effect.
	cKill map[string]bool
}

func newVFState() *vfState { return &vfState{} }

func (s *vfState) clone() *vfState {
	c := &vfState{}
	if len(s.streams) > 0 {
		c.streams = make(map[string]streamSet, len(s.streams))
		for k, v := range s.streams {
			set := make(streamSet, len(v))
			for n, tr := range v {
				set[n] = tr
			}
			c.streams[k] = set
		}
	}
	if len(s.ordered) > 0 {
		c.ordered = make(map[string]*Trace, len(s.ordered))
		for k, v := range s.ordered {
			c.ordered[k] = v
		}
	}
	if len(s.pmark) > 0 {
		c.pmark = make(map[string]uint64, len(s.pmark))
		for k, v := range s.pmark {
			c.pmark[k] = v
		}
	}
	if len(s.lb) > 0 {
		c.lb = make(map[string]int, len(s.lb))
		for k, v := range s.lb {
			c.lb[k] = v
		}
	}
	if len(s.cKill) > 0 {
		c.cKill = make(map[string]bool, len(s.cKill))
		for k := range s.cKill {
			c.cKill[k] = true
		}
	}
	return c
}

func (s *vfState) getLB(key string) int { return s.lb[key] }

func (s *vfState) setLB(key string, v int) {
	if v == 0 {
		delete(s.lb, key)
		return
	}
	if s.lb == nil {
		s.lb = make(map[string]int)
	}
	s.lb[key] = v
}

func (s *vfState) setStreams(key string, set streamSet) {
	if len(set) == 0 {
		delete(s.streams, key)
		return
	}
	if s.streams == nil {
		s.streams = make(map[string]streamSet)
	}
	s.streams[key] = set
}

func (s *vfState) setOrdered(key string, tr *Trace) {
	if tr == nil {
		delete(s.ordered, key)
		return
	}
	if s.ordered == nil {
		s.ordered = make(map[string]*Trace)
	}
	s.ordered[key] = tr
}

func (s *vfState) setPmark(key string, bits uint64) {
	if bits == 0 {
		delete(s.pmark, key)
		return
	}
	if s.pmark == nil {
		s.pmark = make(map[string]uint64)
	}
	s.pmark[key] = bits
}

func (s *vfState) kill(key string) {
	if s.cKill == nil {
		s.cKill = make(map[string]bool)
	}
	s.cKill[key] = true
}

// taintsAt looks up the taint of a path key. Order taint and parameter
// marks consider ancestors and descendants both ways (`ev` is ordered when
// `ev.spans` is, and vice versa). Stream taint only flows downward — exact
// key or a tainted ancestor — because a struct that stores an RNG in a
// field is not itself a stream: passing the struct along is not a
// hand-off, only passing the *rand.Rand is.
func (s *vfState) taintsAt(key string) (streamSet, *Trace, uint64) {
	var str streamSet
	var ord *Trace
	var marks uint64
	related := func(k string) bool {
		return k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(key, k+".")
	}
	for k, set := range s.streams {
		if k != key && !strings.HasPrefix(key, k+".") {
			continue
		}
		if str == nil {
			str = make(streamSet)
		}
		for n, tr := range set {
			if _, ok := str[n]; !ok {
				str[n] = tr
			}
		}
	}
	for k, tr := range s.ordered {
		if related(k) && ord == nil {
			ord = tr
		}
	}
	for k, bits := range s.pmark {
		if related(k) {
			marks |= bits
		}
	}
	return str, ord, marks
}

// equalVFState compares lattice content (trace decoration excluded).
func equalVFState(a, b *vfState) bool {
	if len(a.streams) != len(b.streams) || len(a.ordered) != len(b.ordered) ||
		len(a.pmark) != len(b.pmark) || len(a.lb) != len(b.lb) || len(a.cKill) != len(b.cKill) {
		return false
	}
	for k, av := range a.streams {
		bv, ok := b.streams[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for n := range av {
			if _, ok := bv[n]; !ok {
				return false
			}
		}
	}
	for k := range a.ordered {
		if _, ok := b.ordered[k]; !ok {
			return false
		}
	}
	for k, av := range a.pmark {
		if b.pmark[k] != av {
			return false
		}
	}
	for k, av := range a.lb {
		if bv, ok := b.lb[k]; !ok || bv != av {
			return false
		}
	}
	for k := range a.cKill {
		if !b.cKill[k] {
			return false
		}
	}
	return true
}

// joinVFState unions taints and marks, mins lower bounds (missing = 0),
// and unions counter kills.
func joinVFState(a, b *vfState) *vfState {
	out := a.clone()
	for k, set := range b.streams {
		cur := out.streams[k]
		if cur == nil {
			cur = make(streamSet, len(set))
			out.setStreams(k, cur)
		}
		for n, tr := range set {
			if _, ok := cur[n]; !ok {
				cur[n] = tr
			}
		}
	}
	for k, tr := range b.ordered {
		if _, ok := out.ordered[k]; !ok {
			out.setOrdered(k, tr)
		}
	}
	for k, bits := range b.pmark {
		out.setPmark(k, out.pmark[k]|bits)
	}
	for k, av := range out.lb {
		if bv := b.lb[k]; bv < av { // missing keys default to 0
			out.setLB(k, bv)
		}
	}
	for k, bv := range b.lb {
		if _, ok := out.lb[k]; !ok && bv < 0 {
			out.setLB(k, bv)
		}
	}
	for k := range b.cKill {
		out.kill(k)
	}
	return out
}

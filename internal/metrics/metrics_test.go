package metrics

import (
	"math"
	"strings"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

func buildPlacement(t *testing.T, assign []cluster.MachineID) *cluster.Placement {
	t.Helper()
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.New(10, 10, 10), Speed: 1},
			{ID: 1, Capacity: vec.New(10, 10, 10), Speed: 1},
			{ID: 2, Capacity: vec.New(20, 20, 20), Speed: 2},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.New(2, 2, 2), Load: 4},
			{ID: 1, Static: vec.New(2, 2, 2), Load: 4},
			{ID: 2, Static: vec.New(5, 1, 1), Load: 8},
			{ID: 3, Static: vec.New(1, 1, 1), Load: 2},
		},
	}
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestComputeBalanced(t *testing.T) {
	// loads: m0=4, m1=4+2=6... choose a perfectly balanced one instead:
	// m0: shard0 (4), m1: shard1 (4), m2: shard2 (8) with speed 2 → util 4.
	p := buildPlacement(t, []cluster.MachineID{0, 1, 2, 2})
	rep := Compute(p)
	if rep.Machines != 3 || rep.Vacant != 0 {
		t.Fatalf("machines/vacant = %d/%d", rep.Machines, rep.Vacant)
	}
	// utils: 4, 4, (8+2)/2=5 → max 5, mean = 18/4 = 4.5
	if rep.MaxUtil != 5 {
		t.Errorf("MaxUtil = %v", rep.MaxUtil)
	}
	if rep.MeanUtil != 4.5 {
		t.Errorf("MeanUtil = %v", rep.MeanUtil)
	}
	if math.Abs(rep.Imbalance-5.0/4.5) > 1e-12 {
		t.Errorf("Imbalance = %v", rep.Imbalance)
	}
	if rep.MinUtil != 4 {
		t.Errorf("MinUtil = %v", rep.MinUtil)
	}
}

func TestComputeVacantExcluded(t *testing.T) {
	p := buildPlacement(t, []cluster.MachineID{0, 0, 0, 0})
	rep := Compute(p)
	if rep.Machines != 1 || rep.Vacant != 2 {
		t.Fatalf("machines/vacant = %d/%d", rep.Machines, rep.Vacant)
	}
	// Single serving machine: max == mean → imbalance 1.
	if rep.Imbalance != 1 {
		t.Errorf("Imbalance = %v", rep.Imbalance)
	}
	if rep.MaxUtil != 18 {
		t.Errorf("MaxUtil = %v", rep.MaxUtil)
	}
}

func TestComputeEmptyPlacement(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(1), Speed: 1}},
	}
	p := cluster.NewPlacement(c)
	rep := Compute(p)
	if rep.Machines != 0 || rep.Vacant != 1 {
		t.Fatalf("machines/vacant = %d/%d", rep.Machines, rep.Vacant)
	}
	if rep.MaxUtil != 0 || rep.Imbalance != 0 {
		t.Errorf("zero report expected, got %+v", rep)
	}
}

func TestStaticPressure(t *testing.T) {
	// shard2 uses 5 mem on m0 (cap 10) → pressure mem ≥ 0.5
	p := buildPlacement(t, []cluster.MachineID{1, 1, 0, 0})
	rep := Compute(p)
	if rep.StaticPressure[vec.Memory] != 0.6 { // (5+1)/10
		t.Errorf("mem pressure = %v", rep.StaticPressure[vec.Memory])
	}
	if rep.StaticPressure[vec.Disk] != 0.4 { // (2+2)/10 on m1
		t.Errorf("disk pressure = %v", rep.StaticPressure[vec.Disk])
	}
}

func TestZeroLoadImbalance(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(10), Speed: 1}},
		Shards:   []cluster.Shard{{ID: 0, Static: vec.Uniform(1), Load: 0}},
	}
	p, _ := cluster.FromAssignment(c, []cluster.MachineID{0})
	rep := Compute(p)
	if rep.Imbalance != 1 {
		t.Errorf("Imbalance with zero load = %v, want 1", rep.Imbalance)
	}
}

func TestReportString(t *testing.T) {
	p := buildPlacement(t, []cluster.MachineID{0, 1, 2, 2})
	s := Compute(p).String()
	for _, want := range []string{"machines=3", "imb=", "pressure="} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestImprovement(t *testing.T) {
	// before: m0 hosts s0,s1,s2 (load 16), m1 hosts s3 (load 2) →
	// utils 16 and 2, mean 18/2 = 9, imbalance 16/9.
	before := buildPlacement(t, []cluster.MachineID{0, 0, 0, 1})
	// after: m0: s0; m1: s1,s3; m2: s2 → utils 4, 6, 4 (max 6, mean 4.5)
	after := buildPlacement(t, []cluster.MachineID{0, 1, 2, 1})
	imp := Improvement{Before: Compute(before), After: Compute(after)}
	if imp.MaxUtilDrop() != 10 { // 16 → 6
		t.Errorf("MaxUtilDrop = %v", imp.MaxUtilDrop())
	}
	if imp.ImbalanceDrop() <= 0 {
		t.Errorf("ImbalanceDrop = %v, want > 0", imp.ImbalanceDrop())
	}
	rel := imp.RelativeImprovement()
	if rel <= 0 || rel > 1 {
		t.Errorf("RelativeImprovement = %v", rel)
	}
	// Already-perfect before → 0.
	perfect := Improvement{Before: Compute(after), After: Compute(after)}
	perfect.Before.Imbalance = 1
	if perfect.RelativeImprovement() != 0 {
		t.Error("RelativeImprovement with no gap should be 0")
	}
}

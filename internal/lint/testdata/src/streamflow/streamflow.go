// Fixture for the streamflow analyzer: a miniature partitioned RNG family
// whose Stream method is the //rexlint:streamsource, plus the positive
// cases (a policy helper drawing from the workload stream it never
// declared, an ad-hoc string-literal stream key, a dynamic stream name)
// and the near-miss negatives (a declared hand-off, a sanctioned waiver).
package streamflow

import "math/rand"

// Exported stream-name constants — the only sanctioned way to name a
// stream.
const (
	StreamWorkload = "workload"
	StreamDrift    = "drift"
	StreamChaos    = "chaos"
)

type family struct{ base int64 }

// Stream derives the named sub-stream.
//
//rexlint:streamsource
func (f *family) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(f.base + int64(len(name))))
}

// arrivals owns the workload stream and hands it to pickShard, which never
// declared it — the policy-draws-workload bug the analyzer exists for.
//
//rexlint:stream workload
func arrivals(f *family) float64 {
	r := f.Stream(StreamWorkload)
	return pickShard(r) // want `arrivals passes RNG stream "workload" to .*pickShard, which does not declare it`
}

// pickShard draws from whatever RNG it is given; it declares no stream.
func pickShard(r *rand.Rand) float64 { return r.Float64() }

// driftWalk declares drift but draws workload too: both minting the
// undeclared stream and drawing through its tainted handle are flagged.
//
//rexlint:stream drift
func driftWalk(f *family) float64 {
	w := f.Stream(StreamWorkload) // want `driftWalk draws from RNG stream "workload" but declares "drift"`
	d := f.Stream(StreamDrift)
	return w.Float64() + d.Float64() // want `driftWalk draws from RNG stream "workload" but declares "drift"`
}

// adHocKey mints a stream with a string literal instead of a named
// constant, so the key cannot be cross-referenced.
//
//rexlint:stream chaos
func adHocKey(f *family) *rand.Rand {
	return f.Stream("chaos") // want `stream name "chaos" is a string literal`
}

// dynamicKey computes the stream name at run time.
func dynamicKey(f *family, suffix string) *rand.Rand {
	return f.Stream("w" + suffix) // want `stream name passed to .*Stream must be a named constant`
}

// undeclaredDraw draws through a tainted receiver without any declaration.
func undeclaredDraw(f *family) int {
	r := f.Stream(StreamDrift) // want `undeclaredDraw draws from RNG stream "drift" but declares no streams`
	return r.Intn(10)          // want `undeclaredDraw draws from RNG stream "drift" but declares no streams`
}

// declaredHandoff passes the drift stream to a callee that declares it:
// clean.
//
//rexlint:stream drift
func declaredHandoff(f *family) float64 {
	r := f.Stream(StreamDrift)
	return driftStep(r)
}

// driftStep declares the drift stream it receives.
//
//rexlint:stream drift
func driftStep(r *rand.Rand) float64 { return r.NormFloat64() }

// waivedHandoff hands the chaos stream to an undeclared callee under an
// explicit waiver; the suppression must absorb the finding and count as
// used (an unused waiver is itself an error).
//
//rexlint:stream chaos
func waivedHandoff(f *family) {
	r := f.Stream(StreamChaos)
	//rexlint:ignore streamflow failure injection is wired outside the isolation proof on purpose
	inject(r)
}

// inject declares nothing.
func inject(r *rand.Rand) { _ = r.Int() }

// Exactgap: certify SRA's solution quality on a small instance by solving
// the paper's integer program exactly with the built-in branch-and-bound
// (simplex relaxations, stdlib only) and comparing makespans.
package main

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/ip"
	"rexchange/internal/workload"
)

func main() {
	gen := workload.DefaultConfig()
	gen.Machines = 5
	gen.Shards = 14
	gen.TargetFill = 0.55
	gen.Seed = 42
	inst, err := workload.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}

	// Borrow one exchange machine (K=1).
	c := inst.Cluster
	capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
	ec := c.WithExchange(1, capacity, 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Iterations = 2000
	res, err := core.New(cfg).Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SRA:   maxU = %.6f (moved %d shards)\n", res.After.MaxUtil, res.MovedShards)

	md, err := ip.BuildModel(ec, 1)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := md.RootBound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP relaxation lower bound: %.6f\n", lb)

	exact, err := md.SolveExact(ip.Options{IncumbentObj: res.After.MaxUtil})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case exact.Status == ip.Optimal:
		fmt.Printf("B&B:   maxU = %.6f (%d nodes)\n", exact.Objective, exact.Nodes)
		gap := 100 * (res.After.MaxUtil - exact.Objective) / exact.Objective
		fmt.Printf("SRA optimality gap: %.2f%%\n", gap)
	case exact.Status == ip.Infeasible && exact.Assignment == nil:
		// Every node was pruned by the SRA incumbent: SRA is optimal
		// (within tolerance) and the incumbent certifies it.
		fmt.Printf("B&B:   pruned everything below the SRA incumbent (%d nodes)\n", exact.Nodes)
		fmt.Println("SRA solution certified optimal (≤ incumbent tolerance)")
	default:
		fmt.Printf("B&B:   %s after %d nodes\n", exact.Status, exact.Nodes)
	}
}

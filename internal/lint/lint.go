// Package lint implements rexlint, the project's custom static-analysis
// suite. It mirrors the shape of golang.org/x/tools/go/analysis — analyzers
// receive a typed, parsed package ("pass") and report position-tagged
// diagnostics — but is built entirely on the standard library (go/ast,
// go/parser, go/types) so the repository carries no external dependencies.
//
// The suite encodes the solver's correctness contracts as machine-checked
// rules:
//
//   - noglobalrand: all randomness must flow from an explicit seed
//     (Config.Seed); global math/rand calls break run-for-run
//     reproducibility.
//   - maporder: map iteration order is randomized in Go; ranging over a map
//     while appending to a slice silently injects nondeterminism into
//     solver and planner state.
//   - floateq: ==/!= between floats in objective/metrics code is almost
//     always a bug; use an epsilon helper.
//   - errignore: silently dropped error returns in internal packages.
//
// A diagnostic can be suppressed by a comment on the same line or the line
// directly above it:
//
//	//rexlint:ignore <analyzer> <reason>
//
// The reason is mandatory by convention (the analyzers do not parse it, but
// reviewers should reject bare ignores).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name is the short identifier used in output and ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// AppliesTo reports whether the analyzer should run on the package with
	// the given import path. nil means every package. The test harness
	// ignores this field and always runs the analyzer on its fixtures.
	AppliesTo func(pkgPath string) bool
	// Run performs the analysis, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding: a position and a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   *[]Diagnostic
	ignores map[string]map[int][]string // filename → line → suppressed analyzer names
}

// Reportf records a diagnostic at pos unless an ignore comment suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore comment covers the diagnostic.
func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	for _, name := range lines[pos.Line] {
		if name == p.Analyzer.Name || name == "all" {
			return true
		}
	}
	return false
}

// ignoreDirective is the comment prefix that suppresses diagnostics.
const ignoreDirective = "rexlint:ignore"

// buildIgnores scans the package's comments for rexlint:ignore directives.
// A directive suppresses the named analyzers on its own line and on the
// line immediately below (for whole-line comments placed above the code).
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return out
}

// RunAnalyzers executes every analyzer that applies to pkg and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := buildIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
			ignores:   ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

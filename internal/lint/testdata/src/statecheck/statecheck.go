// Fixture for the statecheck analyzer: a miniature move executor with a
// declared status machine and a reservation resource. badComplete is a
// faithful reconstruction of the PR-4 executor bug: the reservation was
// released, but on the error path the move's status stayed InFlight, so
// the abort sweep observed a held status and released the reservation a
// second time.
//
//rexlint:transition Pending -> InFlight Cancelled
//rexlint:transition InFlight -> Done Retrying Cancelled
//rexlint:transition Retrying -> InFlight Cancelled
//rexlint:transition Done ->
//rexlint:transition Cancelled ->
//rexlint:resource reservation held=InFlight acquire=reserve release=release
package statecheck

import "errors"

var errFailed = errors.New("move failed")

// Status is the per-move lifecycle state.
type Status int

const (
	Pending Status = iota
	InFlight
	Retrying
	Done
	Cancelled
)

type move struct{ id int }

type state struct {
	mv     move
	status Status
}

type exec struct{ reserved int }

func (e *exec) reserve(mv move) { e.reserved++ }
func (e *exec) release(mv move) { e.reserved-- }

// badComplete is the PR-4 shape: release, then return on the error path
// without moving the status off InFlight. The analyzer infers the status
// was InFlight from the release itself, even though this function never
// read it.
func (e *exec) badComplete(st *state, failed bool) error {
	mv := st.mv
	e.release(mv)
	if failed {
		return errFailed // want `returning with reservation released but status possibly still InFlight`
	}
	st.status = Done
	return nil
}

// badDouble releases the same owner twice on one path.
func (e *exec) badDouble(st *state) {
	e.release(st.mv)
	st.status = Cancelled
	e.release(st.mv) // want `reservation released twice on this path`
}

// badTransition skips the state machine: Pending may not jump to Done.
func badTransition(st *state) {
	st.status = Pending
	st.status = Done // want `invalid transition Pending -> Done`
}

// badRelease releases while the status provably excludes InFlight.
func (e *exec) badRelease(st *state) {
	if st.status == Pending {
		e.release(st.mv) // want `reservation released while status is Pending`
	}
}

// okComplete is the fixed PR-4 shape: every return after the release has
// the status moved off InFlight first.
func (e *exec) okComplete(st *state, failed bool) error {
	mv := st.mv
	e.release(mv)
	if failed {
		st.status = Cancelled
		return errFailed
	}
	st.status = Done
	return nil
}

// okGuarded releases only when the status was observed InFlight, and
// transitions away immediately.
func (e *exec) okGuarded(st *state) {
	if st.status == InFlight {
		e.release(st.mv)
		st.status = Cancelled
	}
}

// okUnknown: assigning from an unknown prior status is never flagged.
func okUnknown(st *state) {
	st.status = Done
}

// okLifecycle walks the declared happy path end to end.
func (e *exec) okLifecycle(st *state) {
	st.status = Pending
	st.status = InFlight
	e.reserve(st.mv)
	e.release(st.mv)
	st.status = Done
}

// okSwitch narrows through the synthesized case equalities.
func (e *exec) okSwitch(st *state) {
	switch st.status {
	case InFlight:
		e.release(st.mv)
		st.status = Retrying
	case Retrying:
		st.status = Cancelled
	}
}

package core

import (
	"testing"
)

func TestSolveParallelAtLeastAsGoodAsSingle(t *testing.T) {
	p := smallInstance(t, 55, 2)
	cfg := quickConfig()
	cfg.Iterations = 200
	single, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(cfg).SolveParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// restart 0 uses the base seed, so the portfolio includes the single
	// run: the best of the portfolio cannot be worse.
	if multi.Objective > single.Objective+1e-12 {
		t.Errorf("parallel best %v worse than single %v", multi.Objective, single.Objective)
	}
	if !multi.Final.Feasible() {
		t.Error("parallel result infeasible")
	}
	if _, err := multi.Plan.Validate(p); err != nil {
		t.Errorf("parallel result plan invalid: %v", err)
	}
}

func TestSolveParallelDeterministic(t *testing.T) {
	cfg := quickConfig()
	cfg.Iterations = 150
	a, err := New(cfg).SolveParallel(smallInstance(t, 56, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).SolveParallel(smallInstance(t, 56, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.MovedShards != b.MovedShards {
		t.Errorf("non-deterministic: %v/%d vs %v/%d",
			a.Objective, a.MovedShards, b.Objective, b.MovedShards)
	}
}

func TestSolveParallelInputUntouched(t *testing.T) {
	p := smallInstance(t, 57, 1)
	before := p.Assignment()
	cfg := quickConfig()
	cfg.Iterations = 100
	if _, err := New(cfg).SolveParallel(p, 4); err != nil {
		t.Fatal(err)
	}
	for s, m := range p.Assignment() {
		if before[s] != m {
			t.Fatal("parallel solve mutated input")
		}
	}
}

func TestSolveParallelSingleRestartDelegates(t *testing.T) {
	p := smallInstance(t, 58, 1)
	cfg := quickConfig()
	cfg.Iterations = 100
	a, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).SolveParallel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Errorf("restarts=1 should equal Solve: %v vs %v", a.Objective, b.Objective)
	}
}

// The worker-seed pairwise-distinctness regression (including the
// historical additive-stride collision shape) moved to internal/rng with
// the seed-derivation helpers; TestSolveParallelAtLeastAsGoodAsSingle
// above still pins that restart 0 runs the base-seed search.

func TestSolveParallelPropagatesErrors(t *testing.T) {
	p := smallInstance(t, 59, 1)
	q := p.Clone()
	if err := q.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, err := New(quickConfig()).SolveParallel(q, 3); err == nil {
		t.Error("expected error for partial placement")
	}
}

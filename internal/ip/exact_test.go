package ip

import (
	"math"
	"math/rand"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

func TestExactPartitionAgrees(t *testing.T) {
	md, err := BuildModel(twoMachine(4, 3, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-5) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal 5", res.Status, res.Objective)
	}
	if res.RootBound > res.Objective+1e-9 {
		t.Errorf("root bound %v above optimum %v", res.RootBound, res.Objective)
	}
}

func TestExactMatchesLPBranchAndBound(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		nm := 2 + r.Intn(2)
		ns := 4 + r.Intn(4)
		c := &cluster.Cluster{}
		for m := 0; m < nm; m++ {
			c.Machines = append(c.Machines, cluster.Machine{
				ID: cluster.MachineID(m), Capacity: vec.Uniform(50),
				Speed: 1 + float64(m)*0.3,
			})
		}
		for s := 0; s < ns; s++ {
			c.Shards = append(c.Shards, cluster.Shard{
				ID: cluster.ShardID(s), Static: vec.Uniform(1 + r.Float64()*4),
				Load: 1 + r.Float64()*6,
			})
		}
		md, err := BuildModel(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := md.Solve(Options{MaxNodes: 50000})
		if err != nil {
			t.Fatal(err)
		}
		exRes, err := md.SolveExact(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lpRes.Status != Optimal || exRes.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, lpRes.Status, exRes.Status)
		}
		if math.Abs(lpRes.Objective-exRes.Objective) > 1e-5 {
			t.Errorf("trial %d: LP B&B %v vs combinatorial %v",
				trial, lpRes.Objective, exRes.Objective)
		}
	}
}

func TestExactVacancy(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 2},
			{ID: 1, Static: vec.Uniform(1), Load: 2},
		},
	}
	md, err := BuildModel(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-2) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want 2", res.Status, res.Objective)
	}
	p, _ := cluster.FromAssignment(md.c, res.Assignment)
	if p.NumVacant() < 1 {
		t.Error("vacancy violated")
	}
}

func TestExactInfeasible(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(1), Speed: 1}},
		Shards:   []cluster.Shard{{ID: 0, Static: vec.Uniform(5), Load: 1}},
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestExactIncumbentCertifies(t *testing.T) {
	md, err := BuildModel(twoMachine(4, 3, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// priming with the optimum: everything pruned, no better solution
	res, err := md.SolveExact(Options{IncumbentObj: 5})
	if err != nil {
		t.Fatal(err)
	}
	// best ≈ 5 is "found" only if strictly better appears; with the
	// incumbent equal to the optimum nothing beats it.
	if res.Status == NodeLimit {
		t.Fatalf("unexpected node limit")
	}
	if res.Assignment != nil && res.Objective < 5-1e-9 {
		t.Errorf("found impossible objective %v", res.Objective)
	}
}

func TestExactNodeLimit(t *testing.T) {
	md, err := BuildModel(twoMachine(5, 4, 3, 3, 2, 2, 1, 1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", res.Status)
	}
}

func TestExactSymmetryBreaking(t *testing.T) {
	// 6 identical machines, 6 identical shards: symmetry breaking should
	// keep the node count tiny (a naive search would visit 6^6 states).
	c := &cluster.Cluster{}
	for m := 0; m < 6; m++ {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(m), Capacity: vec.Uniform(10), Speed: 1,
		})
	}
	for s := 0; s < 6; s++ {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(s), Static: vec.Uniform(1), Load: 3,
		})
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-3) > 1e-9 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if res.Nodes > 2000 {
		t.Errorf("symmetry breaking ineffective: %d nodes", res.Nodes)
	}
}

func TestExactBruteForceAgreement(t *testing.T) {
	cases := [][]float64{
		{3, 2, 1},
		{5, 4, 3, 2},
		{7, 1, 1, 1, 1},
		{6, 5, 4, 3, 2, 1},
	}
	for _, loads := range cases {
		md, err := BuildModel(twoMachine(loads...), 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := md.SolveExact(Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMakespan(loads)
		if math.Abs(res.Objective-want) > 1e-9 {
			t.Errorf("loads %v: exact %v, brute force %v", loads, res.Objective, want)
		}
	}
}

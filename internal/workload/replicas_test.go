package workload

import (
	"math"
	"testing"

	"rexchange/internal/cluster"
)

func TestGenerateWithReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 12
	cfg.Shards = 60
	cfg.Replicas = 3
	cfg.TargetFill = 0.7
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Cluster
	if c.NumShards() != 180 {
		t.Fatalf("physical shards = %d, want 180", c.NumShards())
	}
	// replicas share group, name prefix, static, and split load
	byGroup := map[int][]cluster.Shard{}
	for _, s := range c.Shards {
		if s.Group == 0 {
			t.Fatalf("shard %d ungrouped in replicated instance", s.ID)
		}
		byGroup[s.Group] = append(byGroup[s.Group], s)
	}
	if len(byGroup) != 60 {
		t.Fatalf("groups = %d, want 60", len(byGroup))
	}
	for g, members := range byGroup {
		if len(members) != 3 {
			t.Fatalf("group %d has %d replicas", g, len(members))
		}
		for i := 1; i < len(members); i++ {
			if members[i].Static != members[0].Static {
				t.Errorf("group %d replicas differ in static", g)
			}
			if math.Abs(members[i].Load-members[0].Load) > 1e-12 {
				t.Errorf("group %d replicas differ in load", g)
			}
		}
	}
	// placement must be anti-affinity feasible
	if !inst.Placement.Feasible() {
		t.Fatal("replicated initial placement infeasible")
	}
	if err := inst.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	// fill target counts all replicas
	fill := c.TotalStatic().MaxRatio(c.TotalCapacity())
	if math.Abs(fill-cfg.TargetFill) > 0.01 {
		t.Errorf("fill = %v, want ≈ %v", fill, cfg.TargetFill)
	}
}

func TestReplicasExceedMachines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 2
	cfg.Shards = 4
	cfg.Replicas = 3
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error: more replicas than machines")
	}
}

func TestPerturbLoads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 8
	cfg.Shards = 40
	cfg.Replicas = 2
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := inst.Cluster
	nc := PerturbLoads(c, 0.5, 9)
	if nc == c {
		t.Fatal("PerturbLoads must return a copy")
	}
	if math.Abs(nc.TotalLoad()-c.TotalLoad()) > 1e-6 {
		t.Errorf("total load changed: %v → %v", c.TotalLoad(), nc.TotalLoad())
	}
	changed := 0
	for i := range c.Shards {
		if nc.Shards[i].Load != c.Shards[i].Load {
			changed++
		}
		if nc.Shards[i].Static != c.Shards[i].Static {
			t.Fatal("statics must not change")
		}
	}
	if changed == 0 {
		t.Error("no loads drifted")
	}
	// replicas drift together
	byGroup := map[int][]float64{}
	for _, s := range nc.Shards {
		byGroup[s.Group] = append(byGroup[s.Group], s.Load)
	}
	for g, loads := range byGroup {
		for i := 1; i < len(loads); i++ {
			if math.Abs(loads[i]-loads[0]) > 1e-9 {
				t.Errorf("group %d replicas drifted apart: %v", g, loads)
			}
		}
	}
	// original untouched
	if c.Shards[0].Load != inst.Cluster.Shards[0].Load {
		t.Error("input cluster mutated")
	}
}

func TestCapLoadsPreservesTotal(t *testing.T) {
	loads := []float64{10, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if err := capLoads(loads, 2); err != nil {
		t.Fatal(err)
	}
	got := 0.0
	for _, l := range loads {
		if l > 2+1e-9 {
			t.Errorf("load %v above cap", l)
		}
		got += l
	}
	if math.Abs(got-total) > 1e-9 {
		t.Errorf("total changed: %v → %v", total, got)
	}
}

func TestCapLoadsRelaxesInfeasibleCap(t *testing.T) {
	loads := []float64{10, 10}
	if err := capLoads(loads, 1); err != nil {
		t.Fatal(err)
	}
	// the cap auto-relaxes to keep the total; loads stay near 10 each
	if loads[0]+loads[1] < 19.9 {
		t.Errorf("total lost under infeasible cap: %v", loads)
	}
}

package sim

import (
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// replicatedPlacement: two machines, one replicated logical shard (group 1)
// with a replica on each machine, plus an ungrouped shard on machine 0.
func replicatedPlacement(t *testing.T) *cluster.Placement {
	t.Helper()
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(100), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 5, Group: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 5, Group: 1},
			{ID: 2, Static: vec.Uniform(1), Load: 2},
		},
	}
	p, err := cluster.FromAssignment(c, []cluster.MachineID{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func routedTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 30, BaseRate: 40, CostSigma: 0.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRoutingStaticMatchesLegacyModel(t *testing.T) {
	p := replicatedPlacement(t)
	tr := routedTrace(t)
	cfg := Config{Cores: 2, WorkScale: 1e-3, Routing: RouteStatic}
	rep, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// static: machine 0 carries 7 load units, machine 1 carries 5
	if rep.MachineBusy[0] <= rep.MachineBusy[1] {
		t.Errorf("static routing busy: %v vs %v", rep.MachineBusy[0], rep.MachineBusy[1])
	}
}

func TestRoundRobinSplitsGroupWork(t *testing.T) {
	p := replicatedPlacement(t)
	tr := routedTrace(t)
	cfg := Config{Cores: 2, WorkScale: 1e-3, Routing: RouteRoundRobin}
	rep, err := Run(p, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// group work (10 units/query) alternates between machines; machine 0
	// additionally serves the ungrouped 2 units → slightly busier.
	if rep.MachineBusy[0] <= rep.MachineBusy[1] {
		t.Errorf("rr busy: %v vs %v", rep.MachineBusy[0], rep.MachineBusy[1])
	}
	ratio := rep.MachineBusy[0] / rep.MachineBusy[1]
	if ratio > 1.6 { // (5+2)/5 = 1.4 expected
		t.Errorf("round robin did not split group work: ratio %v", ratio)
	}
}

func TestLeastLoadedAvoidsTheBusyReplica(t *testing.T) {
	// machine 0 is loaded with heavy ungrouped work; least-loaded routing
	// should push essentially all group queries to machine 1.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(100), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(100), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 3, Group: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 3, Group: 1},
			{ID: 2, Static: vec.Uniform(1), Load: 12}, // hot ungrouped on m0
		},
	}
	p, err := cluster.FromAssignment(c, []cluster.MachineID{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	tr := routedTrace(t)

	rr, err := Run(p, tr, Config{Cores: 2, WorkScale: 2e-3, Routing: RouteRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Run(p, tr, Config{Cores: 2, WorkScale: 2e-3, Routing: RouteLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	// least-loaded must reduce tail latency vs round robin here
	if ll.P99 >= rr.P99 {
		t.Errorf("least-loaded p99 %v not better than round-robin %v", ll.P99, rr.P99)
	}
	// and shift busy time off the hot machine
	if ll.MachineBusy[0] >= rr.MachineBusy[0] {
		t.Errorf("least-loaded did not relieve the hot machine: %v vs %v",
			ll.MachineBusy[0], rr.MachineBusy[0])
	}
}

func TestRoutingString(t *testing.T) {
	for r, want := range map[Routing]string{
		RouteStatic: "static", RouteRoundRobin: "round-robin",
		RouteLeastLoaded: "least-loaded", Routing(9): "routing(?)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

// TestUngroupedClusterRoutingIrrelevant verifies that on a cluster without
// replica groups every routing policy produces identical results.
func TestUngroupedClusterRoutingIrrelevant(t *testing.T) {
	p := mkPlacement(t, []float64{10, 6})
	tr := routedTrace(t)
	base, err := Run(p, tr, Config{Cores: 2, WorkScale: 1e-3, Routing: RouteStatic})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Routing{RouteRoundRobin, RouteLeastLoaded} {
		rep, err := Run(p, tr, Config{Cores: 2, WorkScale: 1e-3, Routing: r})
		if err != nil {
			t.Fatal(err)
		}
		if rep.P99 != base.P99 || rep.MeanLatency != base.MeanLatency {
			t.Errorf("%v differs on ungrouped cluster", r)
		}
	}
}

// Fixture for the leakcheck analyzer: goroutines whose body can never
// reach termination are flagged; goroutines with a done channel, a
// closable work channel, or any conditional exit are not.
package leakcheck

func work() {}

func badSpawn() {
	go func() { // want `goroutine func literal has no reachable termination path`
		for {
			work()
		}
	}()
}

// spin loops forever with no exit.
func spin() {
	for {
		work()
	}
}

func badNamed() {
	go spin() // want `goroutine spin has no reachable termination path`
}

// badSelect is the near-miss of okSelect with the shutdown case removed.
func badSelect(tick chan int) {
	go func() { // want `goroutine func literal has no reachable termination path`
		for {
			select {
			case <-tick:
				work()
			}
		}
	}()
}

// okSelect threads a done channel through the loop.
func okSelect(tick chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-tick:
				work()
			case <-done:
				return
			}
		}
	}()
}

// okRange terminates when the work channel is closed.
func okRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// okConditional can leave the loop.
func okConditional(n int) {
	go func() {
		for {
			if n > 0 {
				break
			}
			n--
		}
	}()
}

// okOneShot runs to completion on its own.
func okOneShot() {
	go work()
}

// okUnresolvable: builtins and other packages cannot be analyzed and are
// skipped.
func okUnresolvable() {
	go println("x")
}

package cluster

import (
	"fmt"
	"math"

	"rexchange/internal/vec"
)

// PlacementView is a partition-scoped projection of a parent placement: a
// self-contained sub-cluster and sub-placement covering exactly one machine
// subset and the shards currently hosted on it. The partitioned parallel
// solver builds one view per partition and solves each view's placement
// concurrently; because a view materializes its own Cluster and Placement
// (no pointer into the parent survives construction), partition solvers
// share no mutable state — the property rexlint's sharecheck certifies via
// the //rexlint:owned annotations on both Placement and PlacementView.
//
// Bit-exactness contract: the projection copies the parent's per-machine
// aggregates (used, load) bit-for-bit and preserves each machine's hosted-
// shard order, rather than recomputing them, so the sub-placement is
// observationally identical to the parent restricted to the partition. In
// particular, a view over *all* machines is bit-identical to the parent
// placement itself, which is what makes the single-partition path of
// core.SolvePartitioned provably equal to core.Solve (the partition-closed
// golden test).
//
// Local IDs are dense: machine i of Machines() is sub-cluster machine i,
// and the partition's shards are renumbered 0..n-1 in ascending global-ID
// order (so an all-machines view is the identity mapping).
//
//rexlint:owned
type PlacementView struct {
	sub      *Placement
	machines []MachineID // global machine IDs, ascending; index = local ID
	shards   []ShardID   // global shard IDs, ascending; index = local ID
}

// NewPlacementView projects parent onto the given machine subset. The
// machine list must be non-empty, sorted ascending, duplicate-free, and in
// range; every shard hosted on one of the machines joins the view. The
// parent is read, never retained: subsequent parent mutations do not
// affect the view and vice versa. Parent placements with an active
// transaction are rejected (the journal cannot be projected).
func NewPlacementView(parent *Placement, machines []MachineID) (*PlacementView, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cluster: view needs at least one machine")
	}
	if parent.InTxn() {
		return nil, fmt.Errorf("cluster: cannot view a placement mid-transaction")
	}
	c := parent.Cluster()
	for i, m := range machines {
		if m < 0 || int(m) >= len(c.Machines) {
			return nil, fmt.Errorf("cluster: view machine %d out of range", m)
		}
		if i > 0 && machines[i-1] >= m {
			return nil, fmt.Errorf("cluster: view machines must be ascending and distinct (got %d after %d)",
				m, machines[i-1])
		}
	}

	v := &PlacementView{machines: append([]MachineID(nil), machines...)}

	// Enumerate the partition's shards in ascending global order so local
	// shard IDs are order-preserving (identity when the view covers the
	// whole fleet).
	inPart := make([]bool, len(c.Machines))
	for _, m := range machines {
		inPart[m] = true
	}
	localShard := make([]ShardID, len(c.Shards))
	for s := range localShard {
		localShard[s] = -1
	}
	for s := 0; s < len(c.Shards); s++ {
		if h := parent.home[s]; h != Unassigned && inPart[h] {
			localShard[s] = ShardID(len(v.shards))
			v.shards = append(v.shards, ShardID(s))
		}
	}

	// Materialize the sub-cluster: machine and shard records copied with
	// IDs rewritten to local indices. Capacities, speeds, static demands,
	// loads, and anti-affinity groups carry over unchanged.
	sc := &Cluster{
		Machines: make([]Machine, len(machines)),
		Shards:   make([]Shard, len(v.shards)),
	}
	for lm, gm := range machines {
		sc.Machines[lm] = c.Machines[gm]
		sc.Machines[lm].ID = MachineID(lm)
	}
	for ls, gs := range v.shards {
		sc.Shards[ls] = c.Shards[gs]
		sc.Shards[ls].ID = ShardID(ls)
	}

	// Project the placement state. Aggregates are copied bit-for-bit and
	// hosted-shard order per machine is preserved — no recomputation, so
	// no floating-point divergence from the parent's incremental history.
	sub := &Placement{
		c:      sc,
		home:   make([]MachineID, len(sc.Shards)),
		used:   make([]vec.Vec, len(sc.Machines)),
		load:   make([]float64, len(sc.Machines)),
		on:     make([][]ShardID, len(sc.Machines)),
		pos:    make([]int, len(sc.Shards)),
		groups: make([]map[int]int, len(sc.Machines)),
	}
	for lm, gm := range machines {
		sub.used[lm] = parent.used[gm]
		sub.load[lm] = parent.load[gm]
		hosted := parent.on[gm]
		sub.on[lm] = make([]ShardID, len(hosted))
		for i, gs := range hosted {
			ls := localShard[gs]
			sub.on[lm][i] = ls
			sub.home[ls] = MachineID(lm)
			sub.pos[ls] = i
		}
		if len(hosted) == 0 {
			sub.vacant++
		}
		if len(parent.groups[gm]) > 0 {
			g := make(map[int]int, len(parent.groups[gm]))
			for k, n := range parent.groups[gm] {
				g[k] = n
			}
			sub.groups[lm] = g
		}
	}
	v.sub = sub
	return v, nil
}

// Sub returns the view's scoped placement. The caller owns it for the
// duration of the partition solve; it shares nothing with the parent.
func (v *PlacementView) Sub() *Placement { return v.sub }

// Machines returns the global machine IDs the view covers (ascending; the
// slice is the view's own and must not be mutated).
func (v *PlacementView) Machines() []MachineID { return v.machines }

// NumShards returns the number of shards in the view.
func (v *PlacementView) NumShards() int { return len(v.shards) }

// GlobalMachine translates a local machine ID to the parent's ID space.
func (v *PlacementView) GlobalMachine(m MachineID) MachineID { return v.machines[m] }

// GlobalShard translates a local shard ID to the parent's ID space.
func (v *PlacementView) GlobalShard(s ShardID) ShardID { return v.shards[s] }

// Apply writes a solved partition placement back into parent. final must
// be a complete placement over the view's sub-cluster (typically
// Result.Final of a solve on Sub()); every view shard is moved to its
// final machine, translated to global IDs. Shards outside the view and
// machines outside the partition are untouched. Apply validates shape and
// completeness before mutating, so a failed Apply leaves parent unchanged.
func (v *PlacementView) Apply(parent *Placement, final *Placement) error {
	if final.Cluster().NumShards() != len(v.shards) ||
		final.Cluster().NumMachines() != len(v.machines) {
		return fmt.Errorf("cluster: view apply: placement shape %d/%d does not match view %d/%d",
			final.Cluster().NumShards(), final.Cluster().NumMachines(),
			len(v.shards), len(v.machines))
	}
	if final.UnassignedCount() > 0 {
		return fmt.Errorf("cluster: view apply: %d shards unassigned", final.UnassignedCount())
	}
	for ls := range v.shards {
		lm := final.Home(ShardID(ls))
		parent.Move(v.shards[ls], v.machines[lm])
	}
	return nil
}

// CheckProjection verifies the view against its parent: every partition
// machine's aggregates must match the parent's bit-for-bit and the hosted-
// shard lists must correspond element-for-element under the ID maps. It is
// the partition-scoped analogue of Placement.CheckInvariants and backs the
// debugasserts hooks in the partitioned solver.
func (v *PlacementView) CheckProjection(parent *Placement) error {
	for lm, gm := range v.machines {
		id := MachineID(lm)
		if math.Float64bits(v.sub.load[id]) != math.Float64bits(parent.load[gm]) {
			return fmt.Errorf("cluster: view machine %d load %g diverged from parent machine %d load %g",
				lm, v.sub.load[id], gm, parent.load[gm])
		}
		for d := range v.sub.used[id] {
			if math.Float64bits(v.sub.used[id][d]) != math.Float64bits(parent.used[gm][d]) {
				return fmt.Errorf("cluster: view machine %d used[%d] diverged from parent machine %d", lm, d, gm)
			}
		}
		if len(v.sub.on[id]) != len(parent.on[gm]) {
			return fmt.Errorf("cluster: view machine %d hosts %d shards, parent machine %d hosts %d",
				lm, len(v.sub.on[id]), gm, len(parent.on[gm]))
		}
		for i, ls := range v.sub.on[id] {
			if v.shards[ls] != parent.on[gm][i] {
				return fmt.Errorf("cluster: view machine %d slot %d holds global shard %d, parent holds %d",
					lm, i, v.shards[ls], parent.on[gm][i])
			}
		}
	}
	return v.sub.CheckInvariants()
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path    string // import path
	ModPath string // module path of the loader that produced it
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File // non-test files matching the build context
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and typechecks packages from source with no external
// dependencies and no network: module-local import paths resolve to
// directories under the module root, and everything else resolves to
// $GOROOT/src. This restricts rexlint to dependency-free modules — which
// this repository is, by policy — in exchange for a fully hermetic,
// offline driver.
//
// Standard-library imports are typechecked once per process, not once per
// Loader: every Loader shares the stdCache below, so a whole-repo
// `rexlint ./...` run (and equally the fixture test harness, which builds
// one Loader per fixture) pays for a single GOROOT pass. Imported
// packages are checked without a types.Info — analyzers only inspect the
// syntax of target packages, and skipping the Defs/Uses/Selections maps
// for the (much larger) import closure is the bulk of the loader's
// speedup.
type Loader struct {
	ModPath string // module path from go.mod
	ModDir  string // module root directory

	fset   *token.FileSet
	ctx    build.Context
	pkgs   map[string]*Package
	parsed map[string][]*ast.File // dir → parsed files (expand + load share one parse)
}

// stdCache is the process-wide cache of typechecked standard-library (and
// $GOROOT/src/vendor) packages. It deliberately uses its own FileSet and
// the default build context: stdlib sources never carry module build tags,
// so Loaders with different -tags settings can safely share one cache, and
// positions inside imported packages are never rendered in diagnostics.
// One coarse mutex serializes stdlib typechecking; recursive imports go
// through loadStdLocked directly so the lock is taken only at the
// outermost entry.
var stdCache = struct {
	mu   sync.Mutex
	fset *token.FileSet
	ctx  build.Context
	pkgs map[string]*types.Package
}{
	fset: token.NewFileSet(),
	ctx:  defaultStdContext(),
	pkgs: make(map[string]*types.Package),
}

// defaultStdContext is the fixed build context of the shared stdlib cache.
func defaultStdContext() build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return ctx
}

// NewLoader creates a Loader for the module rooted at modDir. The module
// path is read from go.mod.
func NewLoader(modDir string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		fset:    token.NewFileSet(),
		ctx:     ctx,
		pkgs:    make(map[string]*Package),
		parsed:  make(map[string][]*ast.File),
	}, nil
}

// SetBuildTags sets the build tags honored when selecting module files
// (e.g. "debugasserts"). Must be called before the first Load; the shared
// stdlib cache keeps the default context regardless, since stdlib sources
// do not use module tags.
func (l *Loader) SetBuildTags(tags []string) {
	l.ctx.BuildTags = append([]string(nil), tags...)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("lint: read module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// moduleLocal reports whether path names this module or a package inside
// it.
func (l *Loader) moduleLocal(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// moduleDir resolves a module-local import path to its source directory.
func (l *Loader) moduleDir(path string) string {
	if path == l.ModPath {
		return l.ModDir
	}
	rest := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModDir, filepath.FromSlash(rest))
}

// stdDir resolves an import path under $GOROOT/src (or its vendor tree).
func stdDir(path string) (string, error) {
	dir := filepath.Join(stdCache.ctx.GOROOT, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	// Dependencies vendored into the standard library (net/http pulls in
	// golang.org/x/... this way) live under $GOROOT/src/vendor.
	vdir := filepath.Join(stdCache.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if st, err := os.Stat(vdir); err == nil && st.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (only module-local and standard-library imports are supported)", path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.moduleLocal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return loadStd(path)
}

// loadStd returns the shared typechecked stdlib package for path.
func loadStd(path string) (*types.Package, error) {
	stdCache.mu.Lock()
	defer stdCache.mu.Unlock()
	return loadStdLocked(path)
}

// loadStdLocked parses and typechecks one stdlib package (and, through the
// stdImporter, its import closure) under the cache lock. Imported
// packages are checked without a types.Info: analyzers never inspect
// stdlib syntax, and the Defs/Uses/Selections maps for the import closure
// dwarf those of the target packages.
func loadStdLocked(path string) (*types.Package, error) {
	if p, ok := stdCache.pkgs[path]; ok {
		return p, nil
	}
	dir, err := stdDir(path)
	if err != nil {
		return nil, err
	}
	files, err := parseGoDir(stdCache.fset, &stdCache.ctx, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	conf := types.Config{
		Importer: stdImporter{},
		Sizes:    types.SizesFor(stdCache.ctx.Compiler, stdCache.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, stdCache.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	stdCache.pkgs[path] = tpkg
	return tpkg, nil
}

// stdImporter resolves the imports of stdlib packages while the cache lock
// is already held (stdlib only ever imports stdlib).
type stdImporter struct{}

// Import implements types.Importer for the stdlib closure.
func (stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return loadStdLocked(path)
}

// load parses and typechecks the module-local package at the given import
// path, memoizing the result.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if !l.moduleLocal(path) {
		return nil, fmt.Errorf("lint: %q is not a module-local package", path)
	}
	dir := l.moduleDir(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir typechecks a single directory under the given synthetic import
// path, without registering it for import by other packages. It is used by
// the analyzer test harness on testdata fixtures.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	return l.check(asPath, dir, files)
}

// check typechecks parsed files as one target package, with the full
// types.Info analyzers need.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(l.ctx.Compiler, l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path: path, ModPath: l.ModPath, Dir: dir,
		Fset: l.fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// parseDir parses the buildable non-test Go files of dir under the
// loader's build context, memoized so pattern expansion and loading share
// one parse.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	if files, ok := l.parsed[dir]; ok {
		return files, nil
	}
	files, err := parseGoDir(l.fset, &l.ctx, dir)
	if err != nil {
		return nil, err
	}
	l.parsed[dir] = files
	return files, nil
}

// parseGoDir parses the buildable non-test Go files of dir, honoring build
// constraints under the given build context.
func parseGoDir(fset *token.FileSet, ctx *build.Context, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves the given package patterns (import paths relative to the
// module root; a trailing "/..." matches the whole subtree) and returns the
// loaded packages in deterministic order. Directories named testdata or
// vendor and hidden directories are skipped.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns patterns into a sorted list of import paths that contain
// buildable Go files.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(importPath, dir string) error {
		if seen[importPath] {
			return nil
		}
		files, err := l.parseDir(dir)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil // test-only or empty directory
		}
		seen[importPath] = true
		out = append(out, importPath)
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		root := filepath.Join(l.ModDir, filepath.FromSlash(pat))
		if !recursive {
			importPath := l.ModPath
			if pat != "" {
				importPath += "/" + pat
			}
			if err := add(importPath, root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			rel, err := filepath.Rel(l.ModDir, p)
			if err != nil {
				return err
			}
			importPath := l.ModPath
			if rel != "." {
				importPath += "/" + filepath.ToSlash(rel)
			}
			return add(importPath, p)
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expand %q: %w", pat, err)
		}
	}
	sort.Strings(out)
	return out, nil
}

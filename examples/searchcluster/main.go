// Searchcluster: the full search-engine pipeline. A synthetic corpus is
// indexed into document-partitioned shards with real inverted-index
// mechanics (BM25, DAAT/MaxScore); shard resource profiles are measured
// from actual postings traversal; the profiled shards are packed onto a
// cluster; and a query trace is simulated before and after an SRA
// rebalance to show the tail-latency effect of load balance.
package main

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/invindex"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

func main() {
	// 1. Build the corpus and the sharded index.
	corpusCfg := invindex.DefaultCorpusConfig()
	corpusCfg.Docs = 4000
	corpusCfg.Vocab = 8000
	docs, err := invindex.GenerateCorpus(corpusCfg)
	if err != nil {
		log.Fatal(err)
	}
	si, err := invindex.BuildSharded(docs, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs into %d shards (%s ...)\n",
		corpusCfg.Docs, len(si.Shards), si.Shards[0])

	// 2. Measure shard profiles from a sample workload.
	queryCfg := invindex.DefaultQueryConfig()
	queryCfg.Vocab = corpusCfg.Vocab
	queryCfg.Queries = 300
	queries, err := invindex.GenerateQueries(queryCfg)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := si.ProfileShards(invindex.DefaultProfileConfig(queries))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Pack onto 16 machines at 80% fill and borrow 2 exchange machines.
	p, err := invindex.ClusterFromProfiles(shards, 16, 0.8, 99)
	if err != nil {
		log.Fatal(err)
	}
	c := p.Cluster()
	capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
	ec := c.WithExchange(2, capacity, 1)
	pk, err := cluster.FromAssignment(ec, p.Assignment())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Iterations = 1500
	res, err := core.New(cfg).Solve(pk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:", res.Before)
	fmt.Println("after: ", res.After)

	// 4. Simulate serving a diurnal trace against both placements.
	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 60, BaseRate: 40, DiurnalAmp: 0.3, Period: 60,
		CostMu: 0, CostSigma: 0.4, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	simCfg := sim.Config{Cores: 4, WorkScale: 0.9 * 4 / (40 * res.Before.MaxUtil)}
	beforeRep, err := sim.Run(pk, trace, simCfg)
	if err != nil {
		log.Fatal(err)
	}
	afterRep, err := sim.Run(res.Final, trace, simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-11s p50=%.4fs p95=%.4fs p99=%.4fs (max busy %.2f)\n",
		"initial:", beforeRep.P50, beforeRep.P95, beforeRep.P99, beforeRep.MaxBusy)
	fmt.Printf("%-11s p50=%.4fs p95=%.4fs p99=%.4fs (max busy %.2f)\n",
		"rebalanced:", afterRep.P50, afterRep.P95, afterRep.P99, afterRep.MaxBusy)

	// 5. And the cost of getting there.
	mig, err := sim.SimulateMigration(pk, res.Plan, sim.MigrationConfig{
		Bandwidth: 50, Concurrency: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigration: %d moves, %.1f disk units, %.1fs wall clock\n",
		mig.Steps, mig.Bytes, mig.Duration)
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6 → min -(x+y); opt at x=1.6, y=1.2.
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	p.AddConstraint([]float64{1, 2}, LE, 4)
	p.AddConstraint([]float64{3, 1}, LE, 6)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almostEq(s.Obj, -2.8, 1e-6) {
		t.Errorf("obj = %v, want -2.8", s.Obj)
	}
	if !almostEq(s.X[0], 1.6, 1e-6) || !almostEq(s.X[1], 1.2, 1e-6) {
		t.Errorf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x ≥ 3, y ≥ 2 → x=8, y=2, obj=22.
	p := NewProblem(2)
	p.Objective = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, GE, 3)
	p.AddConstraint([]float64{0, 1}, GE, 2)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almostEq(s.Obj, 22, 1e-6) {
		t.Errorf("obj = %v, want 22", s.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x ≥ 0 and a vacuous constraint.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	p.AddConstraint([]float64{1}, GE, 1)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// -x ≤ -2  ⇔  x ≥ 2; min x → 2.
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -2)
	s := solveOK(t, p)
	if s.Status != Optimal || !almostEq(s.Obj, 2, 1e-6) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestDegenerateOK(t *testing.T) {
	// Degenerate vertex: multiple constraints through the optimum.
	p := NewProblem(2)
	p.Objective = []float64{-1, 0}
	p.AddConstraint([]float64{1, 1}, LE, 1)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{1, -1}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Optimal || !almostEq(s.Obj, -1, 1e-6) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// A pure feasibility problem: any feasible point, obj 0.
	p := NewProblem(2)
	p.AddConstraint([]float64{1, 1}, GE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 3)
	s := solveOK(t, p)
	if s.Status != Optimal || !almostEq(s.Obj, 0, 1e-9) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
	if s.X[0]+s.X[1] < 1-1e-6 || s.X[0]+s.X[1] > 3+1e-6 {
		t.Errorf("x=%v violates constraints", s.X)
	}
}

func TestBinRelaxationKnapsack(t *testing.T) {
	// LP relaxation of knapsack: max 3a+2b+2c, 2a+b+c ≤ 2, vars ≤ 1.
	// Optimum is integral here: b=c=1 (weight 2) gives obj 4, beating any
	// mix that spends capacity on the heavier a.
	p := NewProblem(3)
	p.Objective = []float64{-3, -2, -2}
	p.AddConstraint([]float64{2, 1, 1}, LE, 2)
	for j := 0; j < 3; j++ {
		co := make([]float64, 3)
		co[j] = 1
		p.AddConstraint(co, LE, 1)
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !almostEq(s.Obj, -4, 1e-6) {
		t.Fatalf("status=%v obj=%v, want -4", s.Status, s.Obj)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("expected error for zero variables")
	}
	p := NewProblem(2)
	p.Objective = []float64{1}
	if _, err := Solve(p); err == nil {
		t.Error("expected error for objective size mismatch")
	}
	p = NewProblem(1)
	p.AddConstraint([]float64{1, 2}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Error("expected error for oversized constraint")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
		Status(9): "status(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

// TestBealeCycling is Beale's classic example on which Dantzig's rule
// cycles forever without an anti-cycling safeguard. The solver's Bland
// fallback must terminate at the optimum −1/20.
func TestBealeCycling(t *testing.T) {
	p := NewProblem(4)
	p.Objective = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]float64{0.25, -60, -1.0 / 25, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -1.0 / 50, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almostEq(s.Obj, -0.05, 1e-9) {
		t.Errorf("obj = %v, want -0.05", s.Obj)
	}
}

// TestQuickRandomFeasibleBounded generates random bounded feasible LPs
// (box-constrained with random ≤ rows) and checks that the reported optimum
// satisfies all constraints and is no worse than a sample of feasible
// points.
func TestQuickRandomFeasibleBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Objective[j] = r.Float64()*4 - 2
			box := make([]float64, n)
			box[j] = 1
			p.AddConstraint(box, LE, 1+r.Float64()*3) // x_j ≤ U_j keeps it bounded
		}
		for i := 0; i < m; i++ {
			co := make([]float64, n)
			for j := range co {
				co[j] = r.Float64() // non-negative ⇒ x=0 feasible
			}
			p.AddConstraint(co, LE, 0.5+r.Float64()*3)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// constraints hold
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coefs {
				lhs += v * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		// objective beats random feasible points (x scaled toward 0)
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.Float64() * 0.1
			}
			ok := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for j, v := range c.Coefs {
					lhs += v * x[j]
				}
				if lhs > c.RHS {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if obj < s.Obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

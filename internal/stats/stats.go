// Package stats provides the small statistical toolkit used by the metrics,
// simulator, and experiment-harness packages: percentiles, dispersion
// measures (coefficient of variation, Gini), online moment accumulation, and
// fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev/mean) of xs, or 0 when the
// mean is zero. It is the primary imbalance scalar reported by the
// experiment harness.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// AlmostEqual reports whether a and b differ by at most eps, scaled by the
// larger magnitude for values above 1 (mixed absolute/relative tolerance).
// It is the sanctioned way to compare computed floats for equality; exact
// ==/!= on computed values is rejected by rexlint's floateq analyzer.
func AlmostEqual(a, b, eps float64) bool {
	if a == b { //rexlint:ignore floateq fast path, including infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // distinct infinities, or infinite vs finite
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= eps*scale
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It copies and sorts its input; for
// repeated queries over the same data use Percentiles.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs in one pass over a
// single sorted copy.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Gini returns the Gini coefficient of non-negative xs: 0 for perfect
// equality, approaching 1 for maximal concentration. Negative inputs are an
// error in the caller's model; they are clamped to zero.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		sorted[i] = x
	}
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*cum - (nf+1)*total) / (nf * total)
}

// Online accumulates count/mean/variance incrementally using Welford's
// algorithm, plus min/max. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 with no observations).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (NaN with none).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation (NaN with none).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Merge folds the observations of other into o (parallel reduction).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	d := other.mean - o.mean
	tot := n1 + n2
	o.m2 += other.m2 + d*d*n1*n2/tot
	o.mean += d * n2 / tot
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Values outside
// the range land in saturating under/overflow buckets.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Under     int
	Over      int
	total     int
	bucketW   float64
	sumValues float64
}

// NewHistogram builds a histogram with n equal-width buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo, which indicates a programming error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g)/%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n), bucketW: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sumValues += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.bucketW)
		if i >= len(h.Counts) { // guard float edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Mean returns the mean of all recorded observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sumValues / float64(h.total)
}

// Quantile returns an approximate q-quantile (q in [0,1]) from bucket
// midpoints. Underflow maps to Lo and overflow to Hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target <= h.Under {
		return h.Lo
	}
	seen := h.Under
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return h.Lo + (float64(i)+0.5)*h.bucketW
		}
	}
	return h.Hi
}

// String renders a compact ASCII bar chart, used by the CLI reports.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.bucketW
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&b, "%10.3f | %-40s %d\n", lo, bar, c)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "  under: %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "   over: %d\n", h.Over)
	}
	return b.String()
}

package lint

import (
	"go/ast"
	"go/types"
)

// ErrIgnore flags statements that call a function returning an error and
// drop the result on the floor. An explicit `_ =` assignment is accepted as
// a reviewed decision; a bare call statement is treated as an oversight.
// Deferred and go-routine calls are out of scope (defer f.Close() on a
// read-only file is the dominant, harmless idiom), as are writers that are
// documented never to fail: fmt printing to standard output,
// strings.Builder, and bytes.Buffer.
//
// Sticky-error results are held to a stricter standard. A module-local
// method named Close, Err, Flush, or Save that returns an error is the
// final accounting of everything that went wrong earlier ((*obs.Journal)
// accumulates its first write error and reports it from Close/Err), so
// discarding it loses failures that were deliberately deferred until
// now. For those calls even the `_ =` and bare-defer forms are flagged:
// the error must reach a check, typically via a deferred closure that
// folds it into a named return.
var ErrIgnore = &Analyzer{
	Name: "errignore",
	Doc:  "flag call statements whose error result is silently dropped, including _ = and defer forms for sticky errors",
	Run:  runErrIgnore,
}

var errorType = types.Universe.Lookup("error").Type()

// stickyNames are the module-local method names whose error result is a
// sticky accumulation rather than a per-call failure.
var stickyNames = map[string]bool{
	"Close": true,
	"Err":   true,
	"Flush": true,
	"Save":  true,
}

func runErrIgnore(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass, call) || exemptCall(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"error result of %s is silently dropped; handle it or assign to _ explicitly",
					calleeName(call))
			case *ast.AssignStmt:
				// `_ = x.Close()`: fine in general, not for sticky errors.
				if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if returnsError(pass, call) && stickyCall(pass, call) {
					pass.Reportf(call.Pos(),
						"sticky error of %s is discarded with _ =; it is the final accounting of earlier failures and must be checked",
						calleeName(call))
				}
			case *ast.DeferStmt:
				// `defer x.Close()`: fine in general, not for sticky errors.
				if returnsError(pass, stmt.Call) && stickyCall(pass, stmt.Call) {
					pass.Reportf(stmt.Call.Pos(),
						"deferred %s discards its sticky error; fold it into a named return from a deferred closure",
						calleeName(stmt.Call))
				}
			}
			return true
		})
	}
	return nil
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// stickyCall reports whether call invokes a module-local sticky-error
// method (Close/Err/Flush/Save on a type declared in the same module as
// the package under analysis). Standard-library and third-party Close
// methods keep the relaxed rules.
func stickyCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || !stickyNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	named, okn := t.(*types.Named)
	if !okn || named.Obj().Pkg() == nil {
		return false
	}
	return firstPathSegment(named.Obj().Pkg().Path()) == firstPathSegment(pass.Pkg.Path())
}

// firstPathSegment returns the import path up to the first slash — the
// module root for module-local packages.
func firstPathSegment(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// returnsError reports whether the call's (last) result is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, errorType)
}

// exemptCall reports whether the call belongs to the never-fails allowlist.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	// Methods on writers that never return a non-nil error.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return neverFailingWriter(sig.Recv().Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true // best-effort CLI output to stdout
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if neverFailingWriter(pass.TypesInfo.TypeOf(call.Args[0])) {
			return true
		}
		return isStdStream(pass, call.Args[0])
	}
	return false
}

// calleeFunc resolves the called *types.Func, or nil for indirect calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders the callee for the diagnostic message.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

// neverFailingWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer, whose Write methods are documented to always succeed.
func neverFailingWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is the selector os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// Package invindex is a from-scratch inverted-index search engine: document
// ingestion, postings lists, BM25 ranking, and term-at-a-time (TAAT) and
// document-at-a-time (DAAT/MaxScore) query evaluation over document-
// partitioned shards.
//
// In the paper's setting each machine hosts index shards whose static
// footprint is the index size and whose dynamic load is query-processing
// work. This package supplies those quantities from real index mechanics
// (see ProfileShards), standing in for the production indexes the authors
// used (DESIGN.md §3).
package invindex

import (
	"fmt"
	"math"
	"sort"
)

// DocID identifies a document within one index (shard-local).
type DocID int32

// Posting is one (document, term-frequency) pair in a postings list.
type Posting struct {
	Doc DocID
	TF  int32
}

// termInfo is the per-term state: the postings list (sorted by DocID) and
// the maximum term frequency (used for score upper bounds).
type termInfo struct {
	text     string
	postings []Posting
	maxTF    int32
}

// Index is an in-memory inverted index with BM25 scoring.
type Index struct {
	dict     map[string]int
	terms    []termInfo
	docLen   []int32
	totalLen int64

	// BM25 parameters.
	K1, B float64
}

// NewIndex creates an empty index with standard BM25 parameters
// (k1 = 1.2, b = 0.75).
func NewIndex() *Index {
	return &Index{dict: make(map[string]int), K1: 1.2, B: 0.75}
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// NumPostings returns the total posting count — the index's dominant size
// component, used as its disk footprint.
func (ix *Index) NumPostings() int {
	n := 0
	for i := range ix.terms {
		n += len(ix.terms[i].postings)
	}
	return n
}

// AvgDocLen returns the mean document length.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docLen) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docLen))
}

// Add indexes one document given as a token sequence and returns its DocID.
func (ix *Index) Add(tokens []string) DocID {
	id := DocID(len(ix.docLen))
	ix.docLen = append(ix.docLen, int32(len(tokens)))
	ix.totalLen += int64(len(tokens))

	// accumulate term frequencies for this document
	tf := make(map[int]int32, len(tokens))
	for _, tok := range tokens {
		tid, ok := ix.dict[tok]
		if !ok {
			tid = len(ix.terms)
			ix.dict[tok] = tid
			ix.terms = append(ix.terms, termInfo{text: tok})
		}
		tf[tid]++
	}
	for tid, f := range tf {
		ti := &ix.terms[tid]
		ti.postings = append(ti.postings, Posting{Doc: id, TF: f})
		if f > ti.maxTF {
			ti.maxTF = f
		}
	}
	return id
}

// Postings returns the postings list for a term (nil if absent). The
// returned slice must not be modified.
func (ix *Index) Postings(term string) []Posting {
	tid, ok := ix.dict[term]
	if !ok {
		return nil
	}
	return ix.terms[tid].postings
}

// idf returns the BM25 inverse document frequency of term id tid.
func (ix *Index) idf(tid int) float64 {
	df := float64(len(ix.terms[tid].postings))
	n := float64(ix.NumDocs())
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// bm25 scores one posting.
func (ix *Index) bm25(idf float64, tf int32, docLen int32) float64 {
	f := float64(tf)
	norm := ix.K1 * (1 - ix.B + ix.B*float64(docLen)/ix.AvgDocLen())
	return idf * f * (ix.K1 + 1) / (f + norm)
}

// maxScore returns an upper bound on any document's BM25 contribution from
// term tid, used by the MaxScore pruning in DAAT evaluation.
func (ix *Index) maxScore(tid int) float64 {
	ti := &ix.terms[tid]
	f := float64(ti.maxTF)
	idf := ix.idf(tid)
	// minimal norm (shortest possible doc) maximizes the score
	minNorm := ix.K1 * (1 - ix.B)
	return idf * f * (ix.K1 + 1) / (f + minNorm)
}

// ScoredDoc is one ranked result.
type ScoredDoc struct {
	Doc   DocID
	Score float64
}

// Stats reports the work performed by one query evaluation; PostingsScanned
// is the cost measure used to derive shard load profiles.
type Stats struct {
	PostingsScanned int
	DocsScored      int
}

// resultHeap is a min-heap of the current top-k results (smallest score at
// the root so it can be evicted cheaply).
type resultHeap []ScoredDoc

func (h resultHeap) worse(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc // larger doc id = worse on ties
}

func (h resultHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h resultHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.worse(l, small) {
			small = l
		}
		if r < len(h) && h.worse(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// push adds a result, keeping at most k entries (evicting the worst).
// It returns the current threshold (k-th best score, or 0 if not full).
func (h *resultHeap) push(d ScoredDoc, k int) float64 {
	if len(*h) < k {
		*h = append(*h, d)
		h.siftUp(len(*h) - 1)
	} else if (*h)[0].Score < d.Score || ((*h)[0].Score == d.Score && (*h)[0].Doc > d.Doc) {
		(*h)[0] = d
		h.siftDown(0)
	}
	if len(*h) < k {
		return 0
	}
	return (*h)[0].Score
}

// sorted drains the heap into descending score order.
func (h resultHeap) sorted() []ScoredDoc {
	out := append([]ScoredDoc(nil), h...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// validateQuery resolves query terms to ids, dropping unknown terms.
func (ix *Index) resolveTerms(terms []string) []int {
	ids := make([]int, 0, len(terms))
	seen := make(map[int]bool, len(terms))
	for _, t := range terms {
		if tid, ok := ix.dict[t]; ok && !seen[tid] {
			ids = append(ids, tid)
			seen[tid] = true
		}
	}
	return ids
}

// String summarizes the index.
func (ix *Index) String() string {
	return fmt.Sprintf("index{docs=%d terms=%d postings=%d}",
		ix.NumDocs(), ix.NumTerms(), ix.NumPostings())
}

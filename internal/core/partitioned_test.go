package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/rng"
	"rexchange/internal/vec"
)

// partitionedInstance builds a three-shape fleet (so PartitionByShape has
// real equivalence classes) with k borrowed exchange machines appended and
// a skewed pseudo-random initial placement that leaves the exchange
// machines vacant.
func partitionedInstance(t *testing.T, machines, shards int, seed int64, k int) *cluster.Placement {
	t.Helper()
	c := &cluster.Cluster{}
	shapes := []cluster.Machine{
		{Capacity: vec.New(64, 512, 10), Speed: 1},
		{Capacity: vec.New(128, 1024, 25), Speed: 1.8},
		{Capacity: vec.New(256, 2048, 40), Speed: 3},
	}
	for m := 0; m < machines; m++ {
		mm := shapes[m%len(shapes)]
		mm.ID = cluster.MachineID(m)
		c.Machines = append(c.Machines, mm)
	}
	r := rand.New(rand.NewSource(seed))
	for s := 0; s < shards; s++ {
		c.Shards = append(c.Shards, cluster.Shard{
			ID:     cluster.ShardID(s),
			Static: vec.New(1+r.Float64(), 4+r.Float64(), 0.1),
			Load:   0.2 + r.Float64(),
		})
	}
	if k > 0 {
		c = c.WithExchange(k, vec.New(64, 512, 10), 1)
	}
	p := cluster.NewPlacement(c)
	for s := 0; s < shards; s++ {
		for {
			// Skew toward low machine IDs so the instance is imbalanced.
			m := cluster.MachineID(r.Intn(machines))
			if m2 := cluster.MachineID(r.Intn(machines)); m2 < m {
				m = m2
			}
			if p.PlaceChecked(cluster.ShardID(s), m) {
				break
			}
		}
	}
	return p
}

// TestSolvePartitionedSinglePartitionBitIdentical pins the golden
// equivalence the partitioned path is built on: when the fleet factors into
// one partition, SolvePartitioned IS Solve — bit-identical objective and
// byte-identical assignment, not merely equivalent quality. (The view
// layer's half of the property — an all-machines view is a bit-exact
// replica — is pinned by cluster.TestViewIdentityIsBitExact.)
func TestSolvePartitionedSinglePartitionBitIdentical(t *testing.T) {
	p := partitionedInstance(t, 18, 120, 7, 2)
	cfg := quickConfig()
	want, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(cfg).SolvePartitioned(p, PartitionConfig{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Errorf("objective bits differ: %x vs %x",
			math.Float64bits(got.Objective), math.Float64bits(want.Objective))
	}
	wantAssign, gotAssign := want.Final.Assignment(), got.Final.Assignment()
	for s := range wantAssign {
		if wantAssign[s] != gotAssign[s] {
			t.Fatalf("shard %d differs: %d vs %d", s, gotAssign[s], wantAssign[s])
		}
	}
	if got.MovedShards != want.MovedShards {
		t.Errorf("MovedShards %d, want %d", got.MovedShards, want.MovedShards)
	}
}

// TestSolvePartitionedClosedEquivalence is the partition-closed golden
// test: with exchange disabled, the partitioned solve must be exactly the
// composition of independent per-partition solves — same partitioning, same
// seeds, same budget slices — reproduced here by hand and compared
// bit-for-bit.
func TestSolvePartitionedClosedEquivalence(t *testing.T) {
	p := partitionedInstance(t, 30, 240, 11, 2)
	cfg := quickConfig()
	pc := PartitionConfig{Partitions: 3, ExchangeRounds: 0}
	res, err := New(cfg).SolvePartitioned(p, pc)
	if err != nil {
		t.Fatal(err)
	}

	parts := cluster.PartitionByShape(p.Cluster(), cluster.PartitionOptions{Target: 3, MinMachines: 2})
	if len(parts) < 2 {
		t.Fatalf("fixture must factor into multiple partitions, got %d", len(parts))
	}
	work := p.Clone()
	initial := p.Assignment()
	totalShards := p.Cluster().NumShards()
	kByPart := splitReturnCount(work, parts, 2)
	for pi, part := range parts {
		v, err := cluster.NewPlacementView(work, part)
		if err != nil {
			t.Fatal(err)
		}
		if v.NumShards() == 0 {
			continue
		}
		pcfg := cfg
		pcfg.Seed = rng.CellSeed(cfg.Seed, 0, pi)
		pcfg.Iterations = sliceIterations(cfg.Iterations, v.NumShards(), totalShards, 50)
		pcfg.ReturnCount = kByPart[pi]
		sub, err := New(pcfg).Solve(v.Sub())
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Apply(work, sub.Final); err != nil {
			t.Fatal(err)
		}
	}
	composedObj := objective(work, cfg.SpreadWeight, cfg.MovePenalty, initial)
	initialObj := objective(p, cfg.SpreadWeight, cfg.MovePenalty, nil)

	if composedObj < initialObj-1e-12 {
		if math.Float64bits(res.Objective) != math.Float64bits(composedObj) {
			t.Errorf("partitioned objective bits %x, hand-composed %x",
				math.Float64bits(res.Objective), math.Float64bits(composedObj))
		}
		wantAssign := work.Assignment()
		gotAssign := res.Final.Assignment()
		for s := range wantAssign {
			if wantAssign[s] != gotAssign[s] {
				t.Fatalf("shard %d: partitioned solve %d, hand-composed %d", s, gotAssign[s], wantAssign[s])
			}
		}
	} else {
		// Composition did not improve on the initial placement, so the
		// solver must have returned the initial placement unchanged.
		for s, m := range initial {
			if res.Final.Home(cluster.ShardID(s)) != m {
				t.Fatalf("non-improving composition, but shard %d moved", s)
			}
		}
	}
}

// TestSolvePartitionedImprovesAndKeepsContract exercises the full path —
// multiple partitions, exchange rounds — and checks the solution quality
// and resource-exchange contract survive the decomposition.
func TestSolvePartitionedImprovesAndKeepsContract(t *testing.T) {
	const k = 2
	p := partitionedInstance(t, 30, 240, 13, k)
	cfg := quickConfig()
	pc := DefaultPartitionConfig()
	pc.Partitions = 3
	res, err := New(cfg).SolvePartitioned(p, pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Errorf("max utilization rose: %.4f → %.4f", res.Before.MaxUtil, res.After.MaxUtil)
	}
	if !res.Final.Feasible() {
		t.Error("final placement must be statically feasible")
	}
	if err := res.Final.Validate(); err != nil {
		t.Error(err)
	}
	if res.Final.NumVacant() < k {
		t.Errorf("final placement has %d vacant machines, contract requires ≥ %d", res.Final.NumVacant(), k)
	}
	if len(res.Returned) != k {
		t.Fatalf("returned %d machines, want %d", len(res.Returned), k)
	}
	for _, m := range res.Returned {
		if !res.Final.IsVacant(m) {
			t.Errorf("returned machine %d is not vacant", m)
		}
	}
	if res.Plan == nil {
		t.Error("partitioned solve must produce a move schedule")
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if res.FailedPartitions != 0 {
		t.Errorf("unexpected failed partitions: %d", res.FailedPartitions)
	}
}

// TestSolvePartitionedDeterministicAcrossGOMAXPROCS extends the solver's
// determinism contract to the partitioned path: partition results are
// slotted by index, applied in index order, and the exchange phase is
// sequential, so scheduling must not be observable in the result.
func TestSolvePartitionedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	p := partitionedInstance(t, 30, 240, 17, 2)
	cfg := quickConfig()
	cfg.Seed = 424242
	pc := DefaultPartitionConfig()
	pc.Partitions = 4

	run := func(procs int) ([]cluster.MachineID, float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := New(cfg).SolvePartitioned(p, pc)
		if err != nil {
			t.Fatalf("SolvePartitioned with GOMAXPROCS=%d: %v", procs, err)
		}
		return res.Final.Assignment(), res.Objective
	}
	serialAssign, serialObj := run(1)
	parallelAssign, parallelObj := run(8)
	if math.Float64bits(serialObj) != math.Float64bits(parallelObj) {
		t.Errorf("objective differs across GOMAXPROCS: %v vs %v", serialObj, parallelObj)
	}
	for s := range serialAssign {
		if serialAssign[s] != parallelAssign[s] {
			t.Fatalf("shard %d assigned to %d (serial) vs %d (parallel)",
				s, serialAssign[s], parallelAssign[s])
		}
	}
}

// TestSolvePartitionedRollback pins the failure semantics: a failed
// partition sub-solve must leave both the caller's placement and the failed
// partition's region of the result untouched, and be surfaced in
// Result.FailedPartitions rather than silently absorbed.
func TestSolvePartitionedRollback(t *testing.T) {
	p := partitionedInstance(t, 30, 240, 19, 2)
	before := p.Assignment()
	cfg := quickConfig()
	pc := PartitionConfig{Partitions: 3, ExchangeRounds: 0}
	pc.failPartition = 1
	res, err := New(cfg).SolvePartitioned(p, pc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedPartitions != 1 {
		t.Fatalf("FailedPartitions = %d, want 1", res.FailedPartitions)
	}
	// The input placement is never modified, failed run or not.
	for s, m := range p.Assignment() {
		if before[s] != m {
			t.Fatalf("input placement mutated at shard %d", s)
		}
	}
	// Every shard initially hosted in the failed partition stays put.
	parts := cluster.PartitionByShape(p.Cluster(), cluster.PartitionOptions{Target: 3, MinMachines: 2})
	inFailed := make(map[cluster.MachineID]bool)
	for _, m := range parts[0] {
		inFailed[m] = true
	}
	held := 0
	for s, m := range before {
		if !inFailed[m] {
			continue
		}
		held++
		if res.Final.Home(cluster.ShardID(s)) != m {
			t.Fatalf("shard %d left the failed partition's pre-solve home", s)
		}
	}
	if held == 0 {
		t.Fatal("fixture hosted no shards in the failed partition; test proves nothing")
	}
	if err := res.Final.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExchangePhaseTradesTowardCool drives exchangePhase directly on a
// hand-built imbalance: everything hosted in one partition, a vacancy-rich
// second partition. The phase must offload shards, re-home a vacant
// machine into the hot partition, keep the vacancy floors, and report the
// touched partitions as dirty.
func TestExchangePhaseTradesTowardCool(t *testing.T) {
	c := &cluster.Cluster{}
	for m := 0; m < 8; m++ {
		shape := cluster.Machine{ID: cluster.MachineID(m), Capacity: vec.New(64, 512, 10), Speed: 1}
		if m >= 4 {
			shape.Capacity = vec.New(128, 1024, 25)
			shape.Speed = 2
		}
		c.Machines = append(c.Machines, shape)
	}
	for s := 0; s < 12; s++ {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(s), Static: vec.New(1, 4, 0.1), Load: 1,
		})
	}
	p := cluster.NewPlacement(c)
	for s := 0; s < 12; s++ {
		// All load piles on machines 0 and 1: partition {0..3} is hot.
		if err := p.Place(cluster.ShardID(s), cluster.MachineID(s%2)); err != nil {
			t.Fatal(err)
		}
	}
	parts := [][]cluster.MachineID{{0, 1, 2, 3}, {4, 5, 6, 7}}
	kByPart := []int{0, 1}
	pc := DefaultPartitionConfig()
	pc.normalize()

	ex := exchangePhase(p, parts, kByPart, pc)
	if ex.shardMoves == 0 {
		t.Error("exchange moved no shards despite gross imbalance")
	}
	if ex.vacantTrades == 0 {
		t.Error("exchange re-homed no vacant machine into the hot partition")
	}
	if len(parts[0])+len(parts[1]) != 8 {
		t.Fatalf("machines lost: %d + %d", len(parts[0]), len(parts[1]))
	}
	if len(parts[0]) != 5 {
		t.Errorf("hot partition has %d machines after trade, want 5", len(parts[0]))
	}
	coolVacant := 0
	for _, m := range parts[1] {
		if p.IsVacant(m) {
			coolVacant++
		}
	}
	if coolVacant < kByPart[1] {
		t.Errorf("cool partition vacancy %d fell below its floor %d", coolVacant, kByPart[1])
	}
	if len(ex.dirty) != 2 || ex.dirty[0] != 0 || ex.dirty[1] != 1 {
		t.Errorf("dirty = %v, want [0 1]", ex.dirty)
	}
	if err := cluster.CheckPartition(c, parts); err != nil {
		t.Error(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSplitReturnCountRespectsVacancy checks the K-splitting arithmetic:
// shares sum to K, never exceed a partition's own vacancy, and are
// deterministic.
func TestSplitReturnCountRespectsVacancy(t *testing.T) {
	p := partitionedInstance(t, 30, 120, 23, 4)
	parts := cluster.PartitionByShape(p.Cluster(), cluster.PartitionOptions{Target: 4, MinMachines: 2})
	partOf := partIndex(p.Cluster(), parts)
	vac := make([]int, len(parts))
	p.EachVacant(func(m cluster.MachineID) { vac[partOf[m]]++ })

	for k := 0; k <= 4; k++ {
		ks := splitReturnCount(p, parts, k)
		sum := 0
		for pi, ki := range ks {
			if ki > vac[pi] {
				t.Fatalf("k=%d: partition %d assigned %d returns but has only %d vacant", k, pi, ki, vac[pi])
			}
			sum += ki
		}
		if sum != k {
			t.Fatalf("k=%d: shares sum to %d", k, sum)
		}
	}
}

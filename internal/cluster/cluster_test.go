package cluster

import (
	"bytes"
	"strings"
	"testing"

	"rexchange/internal/vec"
)

// testCluster builds a small 3-machine, 4-shard cluster used across tests.
func testCluster() *Cluster {
	return &Cluster{
		Machines: []Machine{
			{ID: 0, Name: "m0", Capacity: vec.New(10, 10, 10), Speed: 1},
			{ID: 1, Name: "m1", Capacity: vec.New(10, 10, 10), Speed: 2},
			{ID: 2, Name: "m2", Capacity: vec.New(4, 4, 4), Speed: 1},
		},
		Shards: []Shard{
			{ID: 0, Name: "s0", Static: vec.New(3, 2, 1), Load: 5},
			{ID: 1, Name: "s1", Static: vec.New(2, 2, 2), Load: 3},
			{ID: 2, Name: "s2", Static: vec.New(4, 4, 4), Load: 8},
			{ID: 3, Name: "s3", Static: vec.New(1, 1, 1), Load: 2},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testCluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Cluster)
	}{
		{"machine id mismatch", func(c *Cluster) { c.Machines[1].ID = 7 }},
		{"negative capacity", func(c *Cluster) { c.Machines[0].Capacity[0] = -1 }},
		{"zero speed", func(c *Cluster) { c.Machines[2].Speed = 0 }},
		{"shard id mismatch", func(c *Cluster) { c.Shards[0].ID = 9 }},
		{"negative demand", func(c *Cluster) { c.Shards[1].Static[2] = -3 }},
		{"negative load", func(c *Cluster) { c.Shards[3].Load = -1 }},
	}
	for _, tc := range cases {
		c := testCluster()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestTotals(t *testing.T) {
	c := testCluster()
	if got := c.TotalLoad(); got != 18 {
		t.Errorf("TotalLoad = %v", got)
	}
	if got := c.TotalSpeed(); got != 4 {
		t.Errorf("TotalSpeed = %v", got)
	}
	if got := c.TotalStatic(); got != vec.New(10, 9, 8) {
		t.Errorf("TotalStatic = %v", got)
	}
	if got := c.TotalCapacity(); got != vec.New(24, 24, 24) {
		t.Errorf("TotalCapacity = %v", got)
	}
	if c.NumMachines() != 3 || c.NumShards() != 4 {
		t.Errorf("counts = %d/%d", c.NumMachines(), c.NumShards())
	}
}

func TestWithExchange(t *testing.T) {
	c := testCluster()
	e := c.WithExchange(2, vec.New(8, 8, 8), 1.5)
	if e.NumMachines() != 5 {
		t.Fatalf("NumMachines = %d", e.NumMachines())
	}
	if c.NumMachines() != 3 {
		t.Fatal("original cluster mutated")
	}
	ex := e.ExchangeMachines()
	if len(ex) != 2 || ex[0] != 3 || ex[1] != 4 {
		t.Fatalf("ExchangeMachines = %v", ex)
	}
	for _, m := range ex {
		mm := e.Machines[m]
		if !mm.Exchange || mm.Capacity != vec.New(8, 8, 8) || mm.Speed != 1.5 {
			t.Errorf("exchange machine %d malformed: %+v", m, mm)
		}
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.ExchangeMachines()) != 0 {
		t.Error("base cluster should have no exchange machines")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := testCluster()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMachines() != c.NumMachines() || got.NumShards() != c.NumShards() {
		t.Fatalf("round trip size mismatch")
	}
	for i := range c.Machines {
		if got.Machines[i] != c.Machines[i] {
			t.Errorf("machine %d: %+v != %+v", i, got.Machines[i], c.Machines[i])
		}
	}
	for i := range c.Shards {
		if got.Shards[i] != c.Shards[i] {
			t.Errorf("shard %d: %+v != %+v", i, got.Shards[i], c.Shards[i])
		}
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	bad := `{"machines":[{"id":3,"capacity":[1,1,1],"speed":1}],"shards":[]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("expected error for mismatched machine ID")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("expected error for malformed JSON")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := testCluster()
	path := t.TempDir() + "/cluster.json"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != c.NumShards() {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}

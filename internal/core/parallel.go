package core

import (
	"fmt"
	"runtime"
	"sync"

	"rexchange/internal/cluster"
)

// SolveParallel runs `restarts` independent LNS searches concurrently —
// same configuration, decorrelated seeds — and returns the best result by
// solver objective. LNS is embarrassingly parallel across restarts and the
// placement state is cloned per worker, so speedup is near-linear until
// memory bandwidth binds. The input placement is shared read-only and
// never modified.
//
// Determinism: for a fixed (Config.Seed, restarts) the set of searches and
// the returned result are reproducible regardless of scheduling, because
// selection uses the objective with the restart index as tie-breaker.
func (sv *Solver) SolveParallel(p *cluster.Placement, restarts int) (*Result, error) {
	if restarts <= 0 {
		restarts = runtime.GOMAXPROCS(0)
	}
	if restarts == 1 {
		return sv.Solve(p)
	}

	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, restarts)
	var wg sync.WaitGroup
	// Cap concurrent workers at GOMAXPROCS: each clones the placement and
	// more parallelism than cores only adds memory pressure.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < restarts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := sv.cfg
			// decorrelate: large odd stride over the seed space
			cfg.Seed = sv.cfg.Seed + int64(i)*0x9E3779B1
			res, err := New(cfg).Solve(p)
			outcomes[i] = outcome{res, err}
		}(i)
	}
	wg.Wait()

	var best *Result
	var firstErr error
	for i := range outcomes {
		o := outcomes[i]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if best == nil || o.res.Objective < best.Objective {
			best = o.res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: all %d restarts failed: %w", restarts, firstErr)
	}
	return best, nil
}

package workload

import (
	"math/rand"
	"sort"
	"testing"
)

// flatTrace builds a trace with exactly rate arrivals in every 1-second
// window over the duration (deterministic spacing, cost 1).
func flatTrace(rate int, duration float64) *Trace {
	tr := &Trace{Duration: duration}
	for w := 0.0; w < duration; w++ {
		for i := 0; i < rate; i++ {
			tr.Queries = append(tr.Queries, Query{At: w + (float64(i)+0.5)/float64(rate), Cost: 1})
		}
	}
	return tr
}

func TestArrivalsBasicProperties(t *testing.T) {
	tr := flatTrace(50, 10)
	rng := rand.New(rand.NewSource(1))
	got := tr.Arrivals(2, 7, rng)
	if !sort.Float64sAreSorted(got) {
		t.Fatal("arrivals not sorted")
	}
	for _, at := range got {
		if at < 2 || at >= 7 {
			t.Fatalf("arrival %g outside [2,7)", at)
		}
	}
	// Expect ~ rate·span = 250 arrivals; Poisson sd ≈ 16, allow 5σ.
	if n := len(got); n < 170 || n > 330 {
		t.Fatalf("got %d arrivals over a 5s span at rate 50, want ≈250", n)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	tr := flatTrace(20, 5)
	a := tr.Arrivals(0, 12, rand.New(rand.NewSource(7)))
	b := tr.Arrivals(0, 12, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestArrivalsWindowEdges pins boundary behaviour: a span aligned exactly
// on window edges, a span strictly inside one window, and a span starting
// on the trace's final partial window.
func TestArrivalsWindowEdges(t *testing.T) {
	tr := flatTrace(100, 4)
	rng := rand.New(rand.NewSource(3))

	aligned := tr.Arrivals(1, 3, rng)
	for _, at := range aligned {
		if at < 1 || at >= 3 {
			t.Fatalf("aligned-span arrival %g outside [1,3)", at)
		}
	}
	if n := len(aligned); n < 120 || n > 280 {
		t.Fatalf("aligned span: got %d arrivals, want ≈200", n)
	}

	inner := tr.Arrivals(1.25, 1.75, rng)
	for _, at := range inner {
		if at < 1.25 || at >= 1.75 {
			t.Fatalf("inner-span arrival %g outside [1.25,1.75)", at)
		}
	}

	// Trace with a non-integral duration: the last bucket is 0.5s wide and
	// must still use its own width as the rate denominator.
	short := flatTrace(100, 4)
	short.Duration = 4.5
	for i := 0; i < 50; i++ {
		short.Queries = append(short.Queries, Query{At: 4 + float64(i)/100, Cost: 1})
	}
	tail := short.Arrivals(4, 4.5, rng)
	if n := len(tail); n < 20 || n > 90 {
		t.Fatalf("partial final bucket: got %d arrivals, want ≈50 (rate 100/s over 0.5s)", n)
	}
}

// TestArrivalsZeroIntensityWindows: windows of the trace with no queries
// must generate no arrivals, while surrounding windows still do.
func TestArrivalsZeroIntensityWindows(t *testing.T) {
	tr := &Trace{Duration: 3}
	for i := 0; i < 40; i++ {
		tr.Queries = append(tr.Queries, Query{At: 0 + float64(i)/40, Cost: 1}) // window [0,1) busy
	}
	for i := 0; i < 40; i++ {
		tr.Queries = append(tr.Queries, Query{At: 2 + float64(i)/40, Cost: 1}) // window [2,3) busy
	}
	// window [1,2) is empty
	rng := rand.New(rand.NewSource(5))
	got := tr.Arrivals(0, 3, rng)
	mid := 0
	for _, at := range got {
		if at >= 1 && at < 2 {
			mid++
		}
	}
	if mid != 0 {
		t.Fatalf("zero-intensity window produced %d arrivals", mid)
	}
	if len(got) < 30 {
		t.Fatalf("busy windows produced only %d arrivals", len(got))
	}

	// A span entirely inside the dead window is empty.
	if dead := tr.Arrivals(1.1, 1.9, rng); len(dead) != 0 {
		t.Fatalf("span inside zero-intensity window produced %d arrivals", len(dead))
	}
}

// TestArrivalsWrapsTrace: spans past the trace end replay the trace's
// intensity modulo its duration, including the zero-intensity hole.
func TestArrivalsWrapsTrace(t *testing.T) {
	tr := &Trace{Duration: 2}
	for i := 0; i < 60; i++ {
		tr.Queries = append(tr.Queries, Query{At: float64(i) / 60, Cost: 1}) // [0,1) busy, [1,2) empty
	}
	rng := rand.New(rand.NewSource(9))
	got := tr.Arrivals(10, 14, rng) // two full trace passes
	if !sort.Float64sAreSorted(got) {
		t.Fatal("wrapped arrivals not sorted")
	}
	for _, at := range got {
		if at < 10 || at >= 14 {
			t.Fatalf("wrapped arrival %g outside [10,14)", at)
		}
		phase := wrapTime(at, 2)
		if phase >= 1 {
			t.Fatalf("arrival %g lands in the wrapped zero-intensity window (phase %g)", at, phase)
		}
	}
	if n := len(got); n < 70 || n > 180 {
		t.Fatalf("wrapped span: got %d arrivals, want ≈120", n)
	}
}

// TestArrivalsDegenerateSpans: inverted/empty spans and zero-duration
// traces yield nil.
func TestArrivalsDegenerateSpans(t *testing.T) {
	tr := flatTrace(10, 2)
	rng := rand.New(rand.NewSource(1))
	if got := tr.Arrivals(3, 3, rng); got != nil {
		t.Fatalf("empty span: got %v", got)
	}
	if got := tr.Arrivals(5, 4, rng); got != nil {
		t.Fatalf("inverted span: got %v", got)
	}
	empty := &Trace{}
	if got := empty.Arrivals(0, 1, rng); got != nil {
		t.Fatalf("zero-duration trace: got %v", got)
	}
}

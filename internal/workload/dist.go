// Package workload generates the inputs to the rebalancing experiments:
// synthetic and "realistic" datacenter instances (machine fleets, shard
// populations, initial placements) and query-arrival traces for the cluster
// simulator. All generation is deterministic given a seed.
//
// The realistic generator stands in for the paper's proprietary datacenter
// snapshots (see DESIGN.md §3): heavy-tailed (lognormal) shard sizes,
// Zipf-skewed query popularity, heterogeneous machine generations, and high
// static fill are the stylized facts it reproduces.
package workload

import (
	"math"
	"math/rand"
)

// LogNormal samples a lognormal variate with the given parameters of the
// underlying normal (mu, sigma).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// ZipfWeights returns n weights proportional to 1/rank^s, normalized to sum
// to 1. s = 0 yields uniform weights. The returned slice is ordered by rank
// (index 0 is the heaviest).
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Shuffled returns a permutation of 0..n-1 drawn from r.
func Shuffled(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

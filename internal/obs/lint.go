package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one parsed label pair of a sample line.
type Label struct {
	Name  string
	Value string
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// lintFamily accumulates what the validator saw for one family name.
type lintFamily struct {
	help, typ   string
	samples     []Sample
	sampleAfter bool // a sample appeared before HELP/TYPE
}

// LintExposition validates Prometheus text exposition the way promlint
// would: every sample must belong to a family announced by # HELP and
// # TYPE lines, names and label syntax must be well-formed, counter
// families must end in _total, and histogram families must expose
// well-formed _bucket/_sum/_count series with a +Inf bucket and
// non-decreasing cumulative counts. Each required name must appear as a
// family with at least one sample. The returned problems are
// human-readable, one per defect; an empty slice means the exposition is
// clean.
func LintExposition(r io.Reader, required ...string) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	fams := make(map[string]*lintFamily)
	var order []string
	fam := func(name string) *lintFamily {
		f, ok := fams[name]
		if !ok {
			f = &lintFamily{}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment, ignored by parsers
			}
			if !validMetricName(name) {
				addf("line %d: invalid metric name %q in %s line", lineNo, name, kind)
				continue
			}
			f := fam(name)
			switch kind {
			case "HELP":
				if f.help != "" {
					addf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if rest == "" {
					addf("line %d: empty HELP text for %s", lineNo, name)
					rest = " "
				}
				f.help = rest
			case "TYPE":
				if f.typ != "" {
					addf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				if len(f.samples) > 0 {
					addf("line %d: TYPE for %s appears after its samples", lineNo, name)
				}
				f.typ = rest
			}
			continue
		}
		line, exPart, hasEx := cutExemplar(line)
		s, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if hasEx {
			if !strings.HasSuffix(s.Name, "_bucket") {
				addf("line %d: exemplar on non-bucket series %s", lineNo, s.Name)
			} else if err := checkExemplar(exPart); err != nil {
				addf("line %d: %v", lineNo, err)
			}
		}
		base := s.Name
		// Histogram child series attach to their base family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.Name, suffix)
			if trimmed != s.Name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := fam(base)
		if f.help == "" || f.typ == "" {
			f.sampleAfter = true
		}
		f.samples = append(f.samples, s)
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	for _, name := range order {
		f := fams[name]
		if f.help == "" {
			addf("family %s: missing HELP", name)
		}
		if f.typ == "" {
			addf("family %s: missing TYPE", name)
		}
		if f.sampleAfter {
			addf("family %s: sample precedes its HELP/TYPE header", name)
		}
		if len(f.samples) == 0 {
			addf("family %s: declared but has no samples", name)
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			addf("family %s: counter name should end in _total", name)
		}
		if f.typ == "counter" {
			for _, s := range f.samples {
				if s.Value < 0 {
					addf("family %s: counter sample is negative (%g)", name, s.Value)
				}
			}
		}
		if f.typ == "histogram" {
			problems = append(problems, lintHistogram(name, f.samples)...)
		}
		seen := make(map[string]bool, len(f.samples))
		for _, s := range f.samples {
			key := s.Name + "\xff" + labelKey(s.Labels)
			if seen[key] {
				addf("family %s: duplicate series %s{%s}", name, s.Name, labelKey(s.Labels))
			}
			seen[key] = true
		}
	}

	for _, name := range required {
		f, ok := fams[name]
		if !ok || len(f.samples) == 0 {
			addf("required family %s is missing", name)
		}
	}
	return problems
}

// lintHistogram validates one histogram family's child series, per label
// set: a +Inf bucket, cumulative non-decreasing bucket counts, and _count
// matching the +Inf bucket.
func lintHistogram(name string, samples []Sample) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	type group struct {
		buckets  []Sample
		sum      *Sample
		count    *Sample
		order    []float64 // le bound per bucket, in input order
		haveInf  bool
		infCount float64
	}
	groups := make(map[string]*group)
	var gorder []string
	for i := range samples {
		s := samples[i]
		var le string
		var rest []Label
		for _, l := range s.Labels {
			if l.Name == "le" {
				le = l.Value
			} else {
				rest = append(rest, l)
			}
		}
		key := labelKey(rest)
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			gorder = append(gorder, key)
		}
		switch s.Name {
		case name + "_bucket":
			if le == "" {
				addf("histogram %s: _bucket sample without le label", name)
				continue
			}
			bound, err := parseFloatValue(le)
			if err != nil {
				addf("histogram %s: bad le value %q", name, le)
				continue
			}
			if math.IsInf(bound, +1) {
				g.haveInf = true
				g.infCount = s.Value
			}
			g.buckets = append(g.buckets, s)
			g.order = append(g.order, bound)
		case name + "_sum":
			g.sum = &samples[i]
		case name + "_count":
			g.count = &samples[i]
		default:
			addf("histogram %s: unexpected series %s", name, s.Name)
		}
	}
	for _, key := range gorder {
		g := groups[key]
		where := name
		if key != "" {
			where = fmt.Sprintf("%s{%s}", name, key)
		}
		if !g.haveInf {
			addf("histogram %s: missing le=\"+Inf\" bucket", where)
		}
		if g.sum == nil {
			addf("histogram %s: missing _sum", where)
		}
		if g.count == nil {
			addf("histogram %s: missing _count", where)
		} else if g.haveInf && g.count.Value != g.infCount {
			addf("histogram %s: _count %g disagrees with +Inf bucket %g", where, g.count.Value, g.infCount)
		}
		if !sort.Float64sAreSorted(g.order) {
			addf("histogram %s: le bounds out of order", where)
		}
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i].Value < g.buckets[i-1].Value {
				addf("histogram %s: cumulative bucket counts decrease at le=%g", where, g.order[i])
			}
		}
	}
	return problems
}

// cutExemplar splits an OpenMetrics-style exemplar suffix
// (` # {labels} value`) off a sample line. The separator cannot occur
// inside a label value: escaping rewrites '"' and '\n', and a '#' inside
// a quoted value is never preceded by an unquoted space-hash-space
// sequence outside the braces — sample values themselves contain no
// spaces.
func cutExemplar(line string) (main, ex string, ok bool) {
	i := strings.Index(line, " # ")
	if i < 0 {
		return line, "", false
	}
	return line[:i], line[i+3:], true
}

// checkExemplar validates one exemplar suffix: a well-formed label set
// carrying trace_id, then a parseable value.
func checkExemplar(ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("exemplar must start with a label set, got %q", ex)
	}
	labels, rest, err := parseLabels(ex[1:])
	if err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	found := false
	for _, l := range labels {
		if l.Name == "trace_id" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("exemplar lacks a trace_id label")
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return fmt.Errorf("exemplar expects exactly one value, got %q", rest)
	}
	if _, err := parseFloatValue(fields[0]); err != nil {
		return fmt.Errorf("exemplar has bad value %q", fields[0])
	}
	return nil
}

// labelKey renders labels canonically (sorted) for grouping.
func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// parseComment splits a # HELP/# TYPE line; ok=false for other comments.
func parseComment(line string) (kind, name, rest string, ok bool) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	for _, k := range []string{"HELP", "TYPE"} {
		if r, found := strings.CutPrefix(body, k+" "); found {
			fields := strings.SplitN(r, " ", 2)
			name = fields[0]
			if len(fields) == 2 {
				rest = strings.TrimSpace(fields[1])
			}
			return k, name, rest, true
		}
	}
	return "", "", "", false
}

// parseSample parses one exposition sample line:
// name{label="value",...} value [timestamp]
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: expected value [timestamp], got %q", s.Name, rest)
	}
	v, err := parseFloatValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes label pairs after the opening brace, returning the
// remainder after the closing brace.
func parseLabels(rest string) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		i := 0
		for i < len(rest) && isLabelChar(rest[i], i == 0) {
			i++
		}
		if i == 0 {
			return nil, rest, fmt.Errorf("malformed label name at %q", rest)
		}
		name := rest[:i]
		if !validLabelName(name) {
			return nil, rest, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[i:]
		if !strings.HasPrefix(rest, "=") {
			return nil, rest, fmt.Errorf("label %s: missing =", name)
		}
		rest = rest[1:]
		val, r, err := parseQuoted(rest)
		if err != nil {
			return nil, rest, fmt.Errorf("label %s: %w", name, err)
		}
		rest = r
		labels = append(labels, Label{Name: name, Value: val})
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, rest, fmt.Errorf("label %s: expected , or } at %q", name, rest)
	}
}

// parseQuoted parses a double-quoted label value with \\, \", and \n
// escapes.
func parseQuoted(rest string) (string, string, error) {
	if !strings.HasPrefix(rest, `"`) {
		return "", rest, fmt.Errorf("expected quoted value at %q", rest)
	}
	var b strings.Builder
	i := 1
	for i < len(rest) {
		c := rest[i]
		switch c {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			if i+1 >= len(rest) {
				return "", rest, fmt.Errorf("dangling escape")
			}
			switch rest[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", rest, fmt.Errorf("unknown escape \\%c", rest[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", rest, fmt.Errorf("unterminated quoted value")
}

// parseFloatValue parses a sample value, accepting the Prometheus
// spellings of the special values.
func parseFloatValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// isNameChar reports whether c may appear in a metric name.
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// isLabelChar reports whether c may appear in a label name.
func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

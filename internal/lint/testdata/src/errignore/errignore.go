// Fixture for the errignore analyzer: bare call statements dropping an
// error are flagged; explicit `_ =`, defers, and never-failing writers are
// not.
package errignore

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func noError() int { return 0 }

func bad(f *os.File) {
	mayFail()    // want `error result of mayFail is silently dropped`
	twoResults() // want `error result of twoResults is silently dropped`
	f.Close()    // want `error result of f\.Close is silently dropped`
}

func good(f *os.File) string {
	_ = mayFail()   // explicit drop: reviewed decision
	defer f.Close() // deferred close: out of scope
	noError()
	var b strings.Builder
	b.WriteString("x")       // strings.Builder never fails
	fmt.Fprintf(&b, "%d", 1) // fmt to a never-failing writer
	fmt.Println("done")
	fmt.Fprintln(os.Stderr, "warn")
	if err := mayFail(); err != nil {
		return err.Error()
	}
	return b.String()
}

func ignored() {
	mayFail() //rexlint:ignore errignore best-effort cleanup
}

// journal mimics obs.Journal: Close/Err/Flush report a sticky error
// accumulated by earlier operations, so discarding them loses failures.
type journal struct{ err error }

func (j *journal) Close() error { return j.err }
func (j *journal) Err() error   { return j.err }
func (j *journal) Flush() error { return j.err }
func (j *journal) reset() error { return nil }

func stickyBad(j *journal) {
	j.Close()       // want `error result of j\.Close is silently dropped`
	_ = j.Err()     // want `sticky error of j\.Err is discarded with _ =`
	defer j.Flush() // want `deferred j\.Flush discards its sticky error`
}

// stickyGood folds the sticky close error into the named return; the
// non-sticky reset keeps the relaxed `_ =` rule.
func stickyGood(j *journal) (err error) {
	defer func() {
		if cerr := j.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_ = j.reset() // near miss: reset is not a sticky method
	return nil
}

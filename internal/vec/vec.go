// Package vec provides fixed-dimension resource vectors used throughout the
// cluster model. A Vec holds one scalar per static resource dimension
// (memory, disk, network), with value semantics so that copies are cheap and
// aggregate bookkeeping stays allocation-free on the rebalancing hot path.
//
// The dynamic (balanced) resource — per-shard query load — is deliberately
// not part of Vec: the paper's model treats static resources as hard
// capacity constraints and load as the optimization objective, and the two
// are manipulated by different code paths.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Resource enumerates the static resource dimensions tracked per shard and
// per machine.
type Resource int

// Static resource dimensions. Memory and Disk correspond to the transient
// constraint in the paper (an in-flight shard occupies both endpoints);
// Net models per-machine replication/network budget.
const (
	Memory Resource = iota
	Disk
	Net

	// NumResources is the number of static dimensions in a Vec.
	NumResources = 3
)

// resourceNames maps Resource values to their display names.
var resourceNames = [NumResources]string{"mem", "disk", "net"}

// String returns the short human-readable name of the resource.
func (r Resource) String() string {
	if r < 0 || int(r) >= NumResources {
		return fmt.Sprintf("res(%d)", int(r))
	}
	return resourceNames[r]
}

// Vec is a static resource vector: one value per Resource dimension.
// The zero value is the empty (all-zero) vector.
type Vec [NumResources]float64

// New builds a Vec from per-dimension values. Missing trailing dimensions
// default to zero; extra values are ignored.
func New(vals ...float64) Vec {
	var v Vec
	for i := 0; i < len(vals) && i < NumResources; i++ {
		v[i] = vals[i]
	}
	return v
}

// Uniform returns a Vec with every dimension set to x.
func Uniform(x float64) Vec {
	var v Vec
	for i := range v {
		v[i] = x
	}
	return v
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns v with every dimension multiplied by k.
func (v Vec) Scale(k float64) Vec {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Mul returns the element-wise product of v and w.
func (v Vec) Mul(w Vec) Vec {
	for i := range v {
		v[i] *= w[i]
	}
	return v
}

// Div returns the element-wise quotient v/w. Dimensions where w is zero
// yield +Inf when v is positive, NaN when v is zero, and -Inf when v is
// negative, following IEEE semantics; callers that need a guarded ratio
// should use MaxRatio.
func (v Vec) Div(w Vec) Vec {
	for i := range v {
		v[i] /= w[i]
	}
	return v
}

// Max returns the element-wise maximum of v and w.
func (v Vec) Max(w Vec) Vec {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
	return v
}

// Min returns the element-wise minimum of v and w.
func (v Vec) Min(w Vec) Vec {
	for i := range v {
		if w[i] < v[i] {
			v[i] = w[i]
		}
	}
	return v
}

// LEQ reports whether v ≤ w in every dimension (resource fit test).
func (v Vec) LEQ(w Vec) bool {
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// FitsWithin reports whether adding v to used keeps every dimension within
// capacity. It is the central transient-feasibility primitive: a shard of
// static demand v fits on a machine with current usage used and capacity
// capacity.
func (v Vec) FitsWithin(used, capacity Vec) bool {
	for i := range v {
		if used[i]+v[i] > capacity[i]+fitEps {
			return false
		}
	}
	return true
}

// fitEps absorbs floating-point drift from long chains of incremental
// adds/subtracts during LNS search, so that a placement that is exactly at
// capacity is not spuriously rejected.
const fitEps = 1e-9

// IsZero reports whether every dimension is exactly zero.
func (v Vec) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every dimension is ≥ -eps (tolerating
// incremental floating-point drift around zero).
func (v Vec) NonNegative() bool {
	for i := range v {
		if v[i] < -fitEps {
			return false
		}
	}
	return true
}

// Sum returns the sum of all dimensions.
func (v Vec) Sum() float64 {
	s := 0.0
	for i := range v {
		s += v[i]
	}
	return s
}

// MaxDim returns the largest dimension value.
func (v Vec) MaxDim() float64 {
	m := v[0]
	for i := 1; i < NumResources; i++ {
		if v[i] > m {
			m = v[i]
		}
	}
	return m
}

// MaxRatio returns max_i v[i]/w[i], treating dimensions with w[i] == 0 as
// contributing 0 when v[i] == 0 and +Inf otherwise. It is the normalized
// pressure of demand v against capacity w.
//
//rexlint:pure
func (v Vec) MaxRatio(w Vec) float64 {
	m := 0.0
	for i := range v {
		switch {
		case w[i] > 0:
			if r := v[i] / w[i]; r > m {
				m = r
			}
		case v[i] > 0:
			return math.Inf(1)
		}
	}
	return m
}

// Dot returns the inner product of v and w.
//
//rexlint:pure
func (v Vec) Dot(w Vec) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 {
	return math.Sqrt(v.Dot(v))
}

// Dist2 returns the Euclidean distance between v and w. It is used by the
// related-removal (Shaw) destroy operator to measure shard similarity.
func (v Vec) Dist2(w Vec) float64 {
	return v.Sub(w).Norm2()
}

// AlmostEqual reports whether v and w differ by at most eps in every
// dimension.
func (v Vec) AlmostEqual(w Vec, eps float64) bool {
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// String formats the vector as "{mem:x disk:y net:z}".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.4g", Resource(i), v[i])
	}
	b.WriteByte('}')
	return b.String()
}

package des

import (
	"fmt"
	"strings"

	"rexchange/internal/stats"
)

// PhaseStats summarizes the query latencies completed in one migration
// phase. Latencies are simulated seconds; percentiles are exact (computed
// from the full per-phase sample, not histogram buckets).
type PhaseStats struct {
	Queries int     `json:"queries"`
	Dropped int     `json:"dropped"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
	P999    float64 `json:"p999"`
	Max     float64 `json:"max"`
}

// Report is the run's tail-latency accounting: per-phase and overall
// query latency summaries plus migration totals.
type Report struct {
	Before PhaseStats `json:"before"`
	During PhaseStats `json:"during"`
	After  PhaseStats `json:"after"`
	All    PhaseStats `json:"all"`

	Arrivals int    `json:"arrivals"` // queries generated (completed + dropped + in flight)
	Copies   uint64 `json:"copies"`   // migration copies started
	Events   uint64 `json:"events"`   // simulator events processed
}

// phaseStats summarizes one latency sample.
func phaseStats(lat []float64, dropped int) PhaseStats {
	ps := PhaseStats{Queries: len(lat), Dropped: dropped}
	if len(lat) == 0 {
		return ps
	}
	qs := stats.Percentiles(lat, 50, 99, 99.9)
	ps.Mean = stats.Mean(lat)
	ps.P50, ps.P99, ps.P999 = qs[0], qs[1], qs[2]
	ps.Max = stats.Max(lat)
	return ps
}

// stats3 returns {p50, p99, p99.9} of xs, zeros when empty.
func stats3(xs []float64) [3]float64 {
	if len(xs) == 0 {
		return [3]float64{}
	}
	qs := stats.Percentiles(xs, 50, 99, 99.9)
	return [3]float64{qs[0], qs[1], qs[2]}
}

// Report builds the run's latency report from everything completed so
// far. It may be called mid-run; the usual call is after Controller.Run
// has drained.
func (s *Sim) Report() Report {
	all := make([]float64, 0, len(s.lat[PhaseBefore])+len(s.lat[PhaseDuring])+len(s.lat[PhaseAfter]))
	drops := 0
	for ph := PhaseBefore; ph < numPhases; ph++ {
		all = append(all, s.lat[ph]...)
		drops += s.drops[ph]
	}
	return Report{
		Before:   phaseStats(s.lat[PhaseBefore], s.drops[PhaseBefore]),
		During:   phaseStats(s.lat[PhaseDuring], s.drops[PhaseDuring]),
		After:    phaseStats(s.lat[PhaseAfter], s.drops[PhaseAfter]),
		All:      phaseStats(all, drops),
		Arrivals: s.arrived,
		Copies:   uint64(s.copiesStarted),
		Events:   s.events,
	}
}

// Render formats the report as a fixed-width table. Every float uses
// six-decimal fixed notation, so for a fixed seed the output is
// byte-identical across runs and GOMAXPROCS values — CI diffs it.
//
//rexlint:detsink fixed-format report
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase      queries  dropped      mean       p50       p99      p999       max\n")
	row := func(name string, ps PhaseStats) {
		fmt.Fprintf(&b, "%-8s %9d %8d %9.6f %9.6f %9.6f %9.6f %9.6f\n",
			name, ps.Queries, ps.Dropped, ps.Mean, ps.P50, ps.P99, ps.P999, ps.Max)
	}
	row("before", r.Before)
	row("during", r.During)
	row("after", r.After)
	row("all", r.All)
	fmt.Fprintf(&b, "arrivals %d copies %d events %d\n", r.Arrivals, r.Copies, r.Events)
	return b.String()
}

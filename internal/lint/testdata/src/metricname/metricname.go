// Fixture for the metricname analyzer: metric names registered on an
// internal/obs Registry must be rex_-prefixed snake_case string literals.
package metricname

import (
	"fmt"

	"rexchange/internal/obs"
)

const goodConst = "rex_from_const_total"

func register(reg *obs.Registry, shard int) {
	// Literal rex_ snake_case names are fine, across every entry point.
	reg.Counter("rex_good_total", "ok")
	reg.Gauge("rex_in_flight", "ok")
	reg.Histogram("rex_copy_seconds", "ok", obs.TimeBuckets())
	reg.CounterVec("rex_iterations_total", "ok", "outcome")
	reg.GaugeVec("rex_pressure", "ok", "resource")
	reg.HistogramVec("rex_trace_span_seconds", "ok", obs.TimeBuckets(), "op")
	reg.Counter(goodConst, "constant expressions are literals too")

	reg.Counter("moves_total", "no prefix")                              // want `metric name "moves_total" must match`
	reg.Gauge("rex_InFlight", "camel case")                              // want `metric name "rex_InFlight" must match`
	reg.Counter("rex__double_total", "doubled _")                        // want `metric name "rex__double_total" must match`
	reg.Counter("rex_trailing_", "trailing _")                           // want `metric name "rex_trailing_" must match`
	reg.CounterVec("rex-dashed", "dashes", "outcome")                    // want `metric name "rex-dashed" must match`
	reg.HistogramVec("rex_TraceSpans", "camel", obs.TimeBuckets(), "op") // want `metric name "rex_TraceSpans" must match`

	// Runtime-computed names defeat static and CI checks alike.
	reg.Counter(fmt.Sprintf("rex_shard_%d_total", shard), "dynamic") // want `must be a string literal`
	name := "rex_runtime_total"
	name += ""
	reg.Gauge(name, "variable") // want `must be a string literal`
}

// Unrelated methods named like registration entry points stay quiet.
type fake struct{}

func (fake) Counter(name, help string) {}

func other() {
	fake{}.Counter("whatever", "not a registry")
}

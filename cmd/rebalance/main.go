// Command rebalance runs one end-to-end rebalancing: it loads (or
// generates) an instance, borrows K exchange machines, runs the selected
// method, prints the balance report, the move schedule summary, and the
// machines handed back as compensation.
//
// Usage:
//
//	rebalance -in placement.json -k 4
//	rebalance -generate -machines 100 -shards 1500 -fill 0.85 -k 4
//	rebalance -generate -method local-search
package main

import (
	"flag"
	"fmt"
	"os"

	"rexchange/internal/baseline"
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rebalance:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in          = flag.String("in", "", "cluster+placement JSON (from clustergen -placement)")
		machinesCSV = flag.String("machines-csv", "", "datacenter snapshot: machines.csv (with -shards-csv)")
		shardsCSV   = flag.String("shards-csv", "", "datacenter snapshot: shards.csv (with -machines-csv)")
		generate    = flag.Bool("generate", false, "generate a synthetic instance instead of -in")
		machines    = flag.Int("machines", 100, "generated fleet size")
		shards      = flag.Int("shards", 1500, "generated shard population")
		fill        = flag.Float64("fill", 0.85, "generated static fill")
		seed        = flag.Int64("seed", 1, "random seed (generation and solver)")

		k        = flag.Int("k", 2, "exchange machines borrowed (and returned)")
		method   = flag.String("method", "sra", "sra | greedy | local-search")
		iters    = flag.Int("iters", 2500, "SRA iterations")
		restarts = flag.Int("restarts", 1, "parallel SRA restarts (best result wins)")

		simulate  = flag.Bool("simulate", false, "also simulate migration execution")
		bandwidth = flag.Float64("bandwidth", 100, "migration bandwidth (disk units/s)")
		parallel  = flag.Int("parallel", 2, "concurrent migrations")
		planOut   = flag.String("plan-out", "", "write the move schedule as JSON (replayable with rexd -plan-in)")
	)
	flag.Parse()

	var p *cluster.Placement
	var err error
	switch {
	case *machinesCSV != "" || *shardsCSV != "":
		if *machinesCSV == "" || *shardsCSV == "" {
			return fmt.Errorf("-machines-csv and -shards-csv must be given together")
		}
		p, err = workload.LoadSnapshotFiles(*machinesCSV, *shardsCSV)
	default:
		p, err = loadOrGenerate(*in, *generate, *machines, *shards, *fill, *seed)
	}
	if err != nil {
		return err
	}

	// borrow exchange machines shaped like the fleet average
	if *k > 0 {
		c := p.Cluster()
		capacity := c.TotalCapacity().Scale(1 / float64(c.NumMachines()))
		speed := c.TotalSpeed() / float64(c.NumMachines())
		ec := c.WithExchange(*k, capacity, speed)
		if p, err = cluster.FromAssignment(ec, p.Assignment()); err != nil {
			return err
		}
	}

	before := metrics.Compute(p)
	fmt.Println("before:", before)

	var final *cluster.Placement
	var schedule *plan.Plan
	switch *method {
	case "sra":
		cfg := core.DefaultConfig()
		cfg.Iterations = *iters
		cfg.Seed = *seed
		res, err := core.New(cfg).SolveParallel(p, *restarts)
		if err != nil {
			return err
		}
		final, schedule = res.Final, res.Plan
		fmt.Println("after: ", res.After)
		fmt.Printf("search: %d iterations, %d accepted, %d repair failures, %d plan fallbacks\n",
			res.Iterations, res.Accepted, res.RepairFailures, res.PlanFallbacks)
		fmt.Printf("moved %d shards in %d steps (%d staged, %d displaced), %.1f disk units copied\n",
			res.MovedShards, res.Plan.NumMoves(), res.Plan.Staged, res.Plan.Displaced,
			res.Plan.BytesMoved(final.Cluster()))
		fmt.Print("returned machines:")
		for _, m := range res.Returned {
			fmt.Printf(" %d", m)
		}
		fmt.Println()
	case "greedy", "local-search":
		cfg := baseline.Config{Keep: *k, AllowSwaps: *method == "local-search"}
		var res *baseline.Result
		if *method == "greedy" {
			res = baseline.Greedy(p, cfg)
		} else {
			res = baseline.LocalSearch(p, cfg)
		}
		final, schedule = res.Final, res.Plan
		fmt.Println("after: ", res.After)
		fmt.Printf("moved %d shards in %d steps\n", res.MovedShards, res.Plan.NumMoves())
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	if *planOut != "" {
		if err := schedule.SaveFile(*planOut); err != nil {
			return err
		}
		fmt.Printf("plan → %s (%d moves)\n", *planOut, schedule.NumMoves())
	}

	if *simulate && schedule.NumMoves() > 0 {
		mig, err := sim.SimulateMigration(p, schedule, sim.MigrationConfig{
			Bandwidth: *bandwidth, Concurrency: *parallel,
		})
		if err != nil {
			return err
		}
		fmt.Printf("migration: %.1fs wall clock, %.1f units copied, peak %d parallel\n",
			mig.Duration, mig.Bytes, mig.PeakParallel)
	}
	_ = final
	return nil
}

func loadOrGenerate(in string, generate bool, machines, shards int, fill float64, seed int64) (*cluster.Placement, error) {
	switch {
	case in != "":
		return cluster.LoadPlacementFile(in)
	case generate:
		cfg := workload.DefaultConfig()
		cfg.Machines = machines
		cfg.Shards = shards
		cfg.TargetFill = fill
		cfg.Seed = seed
		inst, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return inst.Placement, nil
	default:
		return nil, fmt.Errorf("pass -in FILE or -generate")
	}
}

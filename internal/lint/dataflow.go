package lint

// Generic worklist dataflow solver over the CFGs of cfg.go. Analyzers
// supply the lattice (join, equality), the entry fact, and a per-node
// transfer function; the solver handles fixpoint iteration.
//
// Only blocks reachable from the start block are visited, and a block's
// input joins only over predecessors whose output has already been
// computed. That makes must-analyses (intersection joins) come out right
// without a distinguished TOP element: unreachable or not-yet-computed
// paths simply contribute nothing.

import "go/ast"

// Flow defines one dataflow problem. F is the fact type; implementations
// must treat facts as immutable (Transfer and Join return fresh values or
// shared unmodified ones).
type Flow[F any] interface {
	// Entry is the fact at function entry (forward) or function exit
	// (backward).
	Entry() F
	// Join merges facts at control-flow merges.
	Join(a, b F) F
	// Equal reports fact equality; the fixpoint terminates when all block
	// outputs stop changing under Equal.
	Equal(a, b F) bool
	// Transfer applies one straight-line node to a fact.
	Transfer(n ast.Node, in F) F
}

// EdgeRefiner is an optional extension of Flow: when implemented, facts
// are refined per edge as they propagate, letting an analysis exploit
// branch conditions (e.g. `state == Pending` on an if or switch edge).
type EdgeRefiner[F any] interface {
	Refine(e Edge, f F) F
}

// Facts holds the solved per-block input and output facts. Blocks absent
// from the maps were unreachable.
type Facts[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Forward solves a forward dataflow problem over g.
func Forward[F any](g *CFG, fl Flow[F]) Facts[F] {
	refiner, _ := fl.(EdgeRefiner[F])

	in := make(map[*Block]F)
	out := make(map[*Block]F)

	transferBlock := func(b *Block, f F) F {
		for _, n := range b.Nodes {
			f = fl.Transfer(n, f)
		}
		return f
	}

	// blockIn recomputes b's input: the entry fact for the entry block,
	// joined with every computed predecessor's refined output.
	blockIn := func(b *Block) (F, bool) {
		var acc F
		have := false
		if b == g.Entry {
			acc, have = fl.Entry(), true
		}
		for _, p := range b.Preds {
			po, ok := out[p]
			if !ok {
				continue
			}
			for _, e := range p.Succs {
				if e.To != b {
					continue
				}
				f := po
				if refiner != nil {
					f = refiner.Refine(e, f)
				}
				if !have {
					acc, have = f, true
				} else {
					acc = fl.Join(acc, f)
				}
			}
		}
		return acc, have
	}

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		bin, ok := blockIn(b)
		if !ok {
			continue
		}
		bout := transferBlock(b, bin)
		old, seen := out[b]
		if seen && fl.Equal(old, bout) {
			in[b] = bin
			continue
		}
		in[b], out[b] = bin, bout
		for _, e := range b.Succs {
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return Facts[F]{In: in, Out: out}
}

// Backward solves a backward dataflow problem over g: facts flow from Exit
// toward Entry, each block's nodes are applied in reverse order, and a
// block's input (which is its fact *after* execution) joins over computed
// successors. Edge refinement is not applied in the backward direction.
func Backward[F any](g *CFG, fl Flow[F]) Facts[F] {
	// In this map orientation: In[b] = fact after b executes (join of
	// successors), Out[b] = fact before b executes (what predecessors
	// observe).
	in := make(map[*Block]F)
	out := make(map[*Block]F)

	transferBlock := func(b *Block, f F) F {
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			f = fl.Transfer(b.Nodes[i], f)
		}
		return f
	}

	blockIn := func(b *Block) (F, bool) {
		var acc F
		have := false
		if b == g.Exit {
			acc, have = fl.Entry(), true
		}
		for _, e := range b.Succs {
			so, ok := out[e.To]
			if !ok {
				continue
			}
			if !have {
				acc, have = so, true
			} else {
				acc = fl.Join(acc, so)
			}
		}
		return acc, have
	}

	// Seed with every reachable block so loops whose only path to Exit is
	// via break still converge; unreachable blocks stay out of the maps.
	reach := g.Reachable()
	var work []*Block
	queued := make(map[*Block]bool)
	for _, b := range g.Blocks {
		if reach[b] {
			work = append(work, b)
			queued[b] = true
		}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		bin, ok := blockIn(b)
		if !ok {
			continue
		}
		bout := transferBlock(b, bin)
		old, seen := out[b]
		if seen && fl.Equal(old, bout) {
			in[b] = bin
			continue
		}
		in[b], out[b] = bin, bout
		for _, p := range b.Preds {
			if reach[p] && !queued[p] {
				queued[p] = true
				work = append(work, p)
			}
		}
	}
	return Facts[F]{In: in, Out: out}
}

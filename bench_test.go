// Benchmarks regenerating every table and figure of the evaluation
// (DESIGN.md §4). Each benchmark runs its experiment driver and logs the
// resulting table, so `go test -bench=. -benchmem` reproduces the series
// reported in EXPERIMENTS.md.
//
// By default the drivers run at Quick scale so the whole suite finishes in
// well under a minute; set REXCHANGE_FULL=1 to regenerate the full-scale
// numbers recorded in EXPERIMENTS.md.
package rexchange

import (
	"os"
	"testing"

	"rexchange/internal/experiments"
)

// benchScale selects Quick sizing unless REXCHANGE_FULL=1.
func benchScale() experiments.Scale {
	return experiments.Scale{Quick: os.Getenv("REXCHANGE_FULL") != "1"}
}

// runExperiment executes driver b.N times, logging the table once.
func runExperiment(b *testing.B, driver func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tbl, err := driver(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

func BenchmarkT1_OptimalityGap(b *testing.B) {
	runExperiment(b, experiments.T1OptimalityGap)
}

func BenchmarkT2_EndToEnd(b *testing.B) {
	runExperiment(b, experiments.T2EndToEnd)
}

func BenchmarkT3_PlanFeasibility(b *testing.B) {
	runExperiment(b, experiments.T3PlanFeasibility)
}

func BenchmarkT4_Replicated(b *testing.B) {
	runExperiment(b, experiments.T4Replicated)
}

func BenchmarkF1_ExchangeSweep(b *testing.B) {
	runExperiment(b, experiments.F1ExchangeSweep)
}

func BenchmarkF2_TightnessSweep(b *testing.B) {
	runExperiment(b, experiments.F2TightnessSweep)
}

func BenchmarkF3_Scalability(b *testing.B) {
	runExperiment(b, experiments.F3Scalability)
}

func BenchmarkF4_Convergence(b *testing.B) {
	runExperiment(b, experiments.F4Convergence)
}

func BenchmarkF5_LatencySim(b *testing.B) {
	runExperiment(b, experiments.F5LatencySim)
}

func BenchmarkF6_OperatorAblation(b *testing.B) {
	runExperiment(b, experiments.F6OperatorAblation)
}

func BenchmarkF7_ContinuousRebalance(b *testing.B) {
	runExperiment(b, experiments.F7ContinuousRebalance)
}

func BenchmarkF8_ReplicaRouting(b *testing.B) {
	runExperiment(b, experiments.F8ReplicaRouting)
}

package baseline

import (
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

func genInstance(t *testing.T, seed int64, fill float64) *cluster.Placement {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = 12
	cfg.Shards = 150
	cfg.TargetFill = fill
	cfg.Seed = seed
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Placement
}

func TestGreedyImproves(t *testing.T) {
	p := genInstance(t, 1, 0.7)
	res := Greedy(p, Config{})
	if res.After.MaxUtil > res.Before.MaxUtil+1e-9 {
		t.Errorf("greedy worsened max util: %.4f → %.4f", res.Before.MaxUtil, res.After.MaxUtil)
	}
	if res.After.Imbalance >= res.Before.Imbalance {
		t.Errorf("greedy did not improve imbalance: %.4f → %.4f",
			res.Before.Imbalance, res.After.Imbalance)
	}
	if !res.Final.Feasible() {
		t.Error("greedy final placement infeasible")
	}
}

func TestGreedyPlanReplays(t *testing.T) {
	p := genInstance(t, 2, 0.7)
	res := Greedy(p, Config{})
	got, err := res.Plan.Validate(p)
	if err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
	for s := 0; s < p.Cluster().NumShards(); s++ {
		id := cluster.ShardID(s)
		if got.Home(id) != res.Final.Home(id) {
			t.Fatalf("greedy plan diverges at shard %d", s)
		}
	}
}

func TestGreedyRespectsMoveBudget(t *testing.T) {
	p := genInstance(t, 3, 0.7)
	res := Greedy(p, Config{MaxMoves: 5})
	if res.Plan.NumMoves() > 5 {
		t.Errorf("exceeded move budget: %d", res.Plan.NumMoves())
	}
}

func TestGreedyInputUntouched(t *testing.T) {
	p := genInstance(t, 4, 0.7)
	before := p.Assignment()
	Greedy(p, Config{})
	for s, m := range p.Assignment() {
		if before[s] != m {
			t.Fatal("greedy mutated its input")
		}
	}
}

func TestLocalSearchAtLeastAsGoodAsGreedy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := genInstance(t, seed, 0.85)
		g := Greedy(p, Config{})
		ls := LocalSearch(p, Config{AllowSwaps: true})
		if ls.After.MaxUtil > g.After.MaxUtil+1e-9 {
			t.Errorf("seed %d: local search (%.4f) worse than greedy (%.4f)",
				seed, ls.After.MaxUtil, g.After.MaxUtil)
		}
	}
}

func TestLocalSearchPlanReplays(t *testing.T) {
	p := genInstance(t, 6, 0.88)
	res := LocalSearch(p, Config{AllowSwaps: true})
	got, err := res.Plan.Validate(p)
	if err != nil {
		t.Fatalf("local search schedule invalid: %v", err)
	}
	for s := 0; s < p.Cluster().NumShards(); s++ {
		id := cluster.ShardID(s)
		if got.Home(id) != res.Final.Home(id) {
			t.Fatalf("plan diverges at shard %d", s)
		}
	}
}

func TestSwapUnlocksTightInstance(t *testing.T) {
	// Two machines, each statically full, loads 9 vs 3: no single move
	// fits anywhere, but swapping s0 (load 6, size 4) for s2 (load 1,
	// size 2) is impossible too (no slack). Add slack on m1 so the swap
	// order s2→m0? — construct so only a swap (not a move) helps:
	// m0: s0 (static 3, load 6), s1 (static 3, load 3) — util 9, free 2
	// m1: s2 (static 3, load 1), s3 (static 3, load 2) — util 3, free 2
	// Moving any shard (static 3) nowhere fits (free 2). Swap s1↔s2
	// needs 3 ≤ free 2 — also stuck? No: serial order impossible. So use
	// free 3 on each side: caps 9.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(9), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(9), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(3), Load: 6},
			{ID: 1, Static: vec.Uniform(3), Load: 3},
			{ID: 2, Static: vec.Uniform(3), Load: 1},
			{ID: 3, Static: vec.Uniform(3), Load: 2},
		},
	}
	p, err := cluster.FromAssignment(c, []cluster.MachineID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: moving s1 (load 3) to m1 gives m1 util 6 < 9 — feasible
	// (free 3). So greedy alone improves; push further: local search with
	// swaps should reach a strictly better makespan than pure greedy.
	g := Greedy(p, Config{})
	ls := LocalSearch(p, Config{AllowSwaps: true})
	if ls.After.MaxUtil > g.After.MaxUtil+1e-9 {
		t.Errorf("swaps should not hurt: %.4f vs %.4f", ls.After.MaxUtil, g.After.MaxUtil)
	}
	if ls.After.MaxUtil >= p.Utilization(0) {
		t.Errorf("local search failed to improve hot machine: %.4f", ls.After.MaxUtil)
	}
}

func TestVacancyBudgetRespected(t *testing.T) {
	// One vacant machine and Keep=1: baselines must not occupy it.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 2, Capacity: vec.Uniform(10), Speed: 1, Exchange: true},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(2), Load: 5},
			{ID: 1, Static: vec.Uniform(2), Load: 4},
			{ID: 2, Static: vec.Uniform(2), Load: 1},
		},
	}
	p, _ := cluster.FromAssignment(c, []cluster.MachineID{0, 0, 1})
	for _, run := range []func() *Result{
		func() *Result { return Greedy(p, Config{Keep: 1}) },
		func() *Result { return LocalSearch(p, Config{Keep: 1, AllowSwaps: true}) },
	} {
		res := run()
		if res.Final.NumVacant() < 1 {
			t.Error("vacancy budget violated")
		}
		if !res.Final.IsVacant(2) {
			t.Error("the only vacant machine should remain vacant")
		}
	}
	// With Keep=0 the vacant machine is fair game and helps.
	res := Greedy(p, Config{Keep: 0})
	if res.Final.IsVacant(2) {
		t.Error("with no budget the vacant machine should be used")
	}
}

// TestGreedyStepwiseMonotone replays the greedy schedule step by step and
// asserts the hottest-machine utilization never rises — the invariant the
// algorithm is built on.
func TestGreedyStepwiseMonotone(t *testing.T) {
	p := genInstance(t, 7, 0.8)
	res := Greedy(p, Config{})
	w := p.Clone()
	c := p.Cluster()
	hottest := func() float64 {
		maxU := 0.0
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if w.IsVacant(id) {
				continue
			}
			if u := w.Utilization(id); u > maxU {
				maxU = u
			}
		}
		return maxU
	}
	prev := hottest()
	for i, mv := range res.Plan.Moves {
		if !w.CanPlace(mv.S, mv.To) {
			t.Fatalf("step %d transiently infeasible", i)
		}
		w.Move(mv.S, mv.To)
		cur := hottest()
		if cur > prev+1e-9 {
			t.Fatalf("step %d raised peak utilization %v → %v", i, prev, cur)
		}
		prev = cur
	}
}

// TestLocalSearchTerminates bounds the schedule length even with swaps on
// a pathological uniform instance (no infinite swap loops).
func TestLocalSearchTerminates(t *testing.T) {
	c := &cluster.Cluster{}
	for m := 0; m < 6; m++ {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(m), Capacity: vec.Uniform(100), Speed: 1,
		})
	}
	for s := 0; s < 60; s++ {
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(s), Static: vec.Uniform(1), Load: 1,
		})
	}
	assign := make([]cluster.MachineID, 60)
	for s := range assign {
		assign[s] = cluster.MachineID(s % 3) // three machines loaded, three empty
	}
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	res := LocalSearch(p, Config{AllowSwaps: true})
	if res.Plan.NumMoves() > 4*60 {
		t.Errorf("schedule suspiciously long: %d moves", res.Plan.NumMoves())
	}
	if res.After.MaxUtil > res.Before.MaxUtil {
		t.Error("local search worsened balance")
	}
}

func TestGreedyOnEmptyCluster(t *testing.T) {
	c := &cluster.Cluster{
		Machines: []cluster.Machine{{ID: 0, Capacity: vec.Uniform(1), Speed: 1}},
	}
	p := cluster.NewPlacement(c)
	res := Greedy(p, Config{})
	if res.Plan.NumMoves() != 0 {
		t.Error("nothing to move on an empty cluster")
	}
}

// Command indextool builds, persists, inspects, and queries inverted
// indexes — the search-engine substrate behind the shard profiles.
//
// Usage:
//
//	indextool -build -docs 5000 -vocab 10000 -out idx.rxix
//	indextool -in idx.rxix -stats
//	indextool -in idx.rxix -query "t1 t7 t42" -k 10
//	indextool -in idx.rxix -query "t1 t7" -mode and
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rexchange/internal/invindex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "indextool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		build = flag.Bool("build", false, "build a synthetic index")
		docs  = flag.Int("docs", 5000, "documents to generate")
		vocab = flag.Int("vocab", 10000, "vocabulary size")
		dlen  = flag.Int("doclen", 60, "mean document length")
		seed  = flag.Int64("seed", 1, "corpus seed")
		out   = flag.String("out", "", "write the index here")

		in    = flag.String("in", "", "read an index from here")
		stats = flag.Bool("stats", false, "print index statistics")
		query = flag.String("query", "", "space-separated query terms")
		k     = flag.Int("k", 10, "results per query")
		mode  = flag.String("mode", "or", "or (DAAT/MaxScore) | and (conjunctive) | taat")
	)
	flag.Parse()

	var ix *invindex.Index
	switch {
	case *build:
		corpus, err := invindex.GenerateCorpus(invindex.CorpusConfig{
			Docs: *docs, Vocab: *vocab, ZipfS: 1.15, MeanDocLen: *dlen, Seed: *seed,
		})
		if err != nil {
			return err
		}
		ix = invindex.NewIndex()
		for _, d := range corpus {
			ix.Add(d)
		}
		fmt.Println("built", ix)
		if *out != "" {
			if err := ix.SaveFile(*out); err != nil {
				return err
			}
			info, err := os.Stat(*out)
			if err != nil {
				return err
			}
			fmt.Printf("saved → %s (%d bytes)\n", *out, info.Size())
		}
	case *in != "":
		var err error
		if ix, err = invindex.LoadIndexFile(*in); err != nil {
			return err
		}
		fmt.Println("loaded", ix)
	default:
		return fmt.Errorf("pass -build or -in FILE")
	}

	if *stats {
		ci, err := ix.Compact()
		if err != nil {
			return err
		}
		fmt.Printf("docs=%d terms=%d postings=%d avgDocLen=%.1f\n",
			ix.NumDocs(), ix.NumTerms(), ix.NumPostings(), ix.AvgDocLen())
		fmt.Printf("postings: %d bytes compressed, %d raw (%.1fx)\n",
			ci.CompressedBytes(), ci.UncompressedBytes(),
			float64(ci.UncompressedBytes())/float64(ci.CompressedBytes()))
	}

	if *query != "" {
		terms := strings.Fields(*query)
		var results []invindex.ScoredDoc
		var st invindex.Stats
		switch *mode {
		case "or":
			results, st = ix.SearchDAAT(terms, *k)
		case "taat":
			results, st = ix.SearchTAAT(terms, *k)
		case "and":
			ci, err := ix.Compact()
			if err != nil {
				return err
			}
			results, st = ci.SearchConjunctive(terms, *k)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		fmt.Printf("query %v (%s): %d results, %d postings scanned\n",
			terms, *mode, len(results), st.PostingsScanned)
		for i, r := range results {
			fmt.Printf("  %2d. doc %-8d %.4f\n", i+1, r.Doc, r.Score)
		}
	}
	return nil
}

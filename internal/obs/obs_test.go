package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryExposition pins the rendered exposition for a registry with
// every metric kind: scrapers parse this byte stream, so drift is a
// breaking change.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rex_test_ops_total", "Operations performed.")
	c.Add(3)
	g := reg.Gauge("rex_test_depth", "Queue depth.")
	g.Set(2.5)
	cv := reg.CounterVec("rex_test_outcomes_total", "Outcomes by kind.", "kind")
	cv.With("ok").Add(2)
	cv.With("err").Inc()
	h := reg.Histogram("rex_test_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rex_test_depth Queue depth.
# TYPE rex_test_depth gauge
rex_test_depth 2.5
# HELP rex_test_ops_total Operations performed.
# TYPE rex_test_ops_total counter
rex_test_ops_total 3
# HELP rex_test_outcomes_total Outcomes by kind.
# TYPE rex_test_outcomes_total counter
rex_test_outcomes_total{kind="err"} 1
rex_test_outcomes_total{kind="ok"} 2
# HELP rex_test_seconds Latency.
# TYPE rex_test_seconds histogram
rex_test_seconds_bucket{le="0.1"} 1
rex_test_seconds_bucket{le="1"} 2
rex_test_seconds_bucket{le="+Inf"} 3
rex_test_seconds_sum 5.55
rex_test_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("self-lint found problems: %v", problems)
	}
}

// TestHistogramVecExposition pins the rendered form of a labelled
// histogram family: per-label series each carry the full
// _bucket/_sum/_count triple, label values sort deterministically.
func TestHistogramVecExposition(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("rex_test_phase_seconds", "Latency by phase.", []float64{0.1, 1}, "phase")
	hv.With("before").Observe(0.05)
	hv.With("during").Observe(0.5)
	hv.With("during").Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rex_test_phase_seconds Latency by phase.
# TYPE rex_test_phase_seconds histogram
rex_test_phase_seconds_bucket{phase="before",le="0.1"} 1
rex_test_phase_seconds_bucket{phase="before",le="1"} 1
rex_test_phase_seconds_bucket{phase="before",le="+Inf"} 1
rex_test_phase_seconds_sum{phase="before"} 0.05
rex_test_phase_seconds_count{phase="before"} 1
rex_test_phase_seconds_bucket{phase="during",le="0.1"} 0
rex_test_phase_seconds_bucket{phase="during",le="1"} 1
rex_test_phase_seconds_bucket{phase="during",le="+Inf"} 2
rex_test_phase_seconds_sum{phase="during"} 2.5
rex_test_phase_seconds_count{phase="during"} 2
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("self-lint found problems: %v", problems)
	}
}

// TestFormatFloatSpecials checks the Prometheus spellings of the special
// float values.
func TestFormatFloatSpecials(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(+1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.0 / 3.0, "0.3333333333333333"},
		{1e-9, "1e-09"},
		{0, "0"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestLabelEscaping checks that label values with quotes, backslashes,
// and newlines render escaped and survive the validator.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("rex_test_weird", "Weird labels.", "path")
	gv.With(`a"b\c` + "\nd").Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `rex_test_weird{path="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping drifted:\n%s", b.String())
	}
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("lint rejected escaped labels: %v", problems)
	}
}

// TestRegistryPanics checks the registration-time contracts.
func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	reg.Counter("rex_test_dup_total", "x.")
	expectPanic("duplicate", func() { reg.Counter("rex_test_dup_total", "x.") })
	expectPanic("bad name", func() { reg.Counter("1bad", "x.") })
	expectPanic("bad label", func() { reg.CounterVec("rex_test_l_total", "x.", "__reserved") })
	expectPanic("unsorted buckets", func() {
		NewRegistry().Histogram("rex_test_b", "x.", []float64{1, 1})
	})
	expectPanic("negative counter", func() { reg.Counter("rex_test_neg_total", "x.").Add(-1) })
	expectPanic("label arity", func() {
		NewRegistry().CounterVec("rex_test_a_total", "x.", "a", "b").With("only-one")
	})
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from
// many goroutines and checks totals; run under -race this also proves the
// update paths are data-race free.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rex_test_cc_total", "x.")
	h := reg.Histogram("rex_test_ch", "x.", []float64{1, 10})
	cv := reg.CounterVec("rex_test_cv_total", "x.", "w")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := cv.With("w")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				lbl.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %g, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	if got := cv.With("w").Value(); got != workers*each {
		t.Errorf("vec counter = %g, want %d", got, workers*each)
	}
}

// TestLintExpositionCatches feeds known-bad expositions to the validator.
func TestLintExpositionCatches(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring expected among the problems
	}{
		{"missing help", "# TYPE rex_x gauge\nrex_x 1\n", "missing HELP"},
		{"missing type", "# HELP rex_x h.\nrex_x 1\n", "missing TYPE"},
		{"orphan sample", "rex_y 2\n", "missing HELP"},
		{"bad value", "# HELP rex_x h.\n# TYPE rex_x gauge\nrex_x oops\n", "bad value"},
		{"bad label syntax", "# HELP rex_x h.\n# TYPE rex_x gauge\nrex_x{a=b} 1\n", "expected quoted value"},
		{"counter suffix", "# HELP rex_c h.\n# TYPE rex_c counter\nrex_c 1\n", "should end in _total"},
		{"negative counter", "# HELP rex_c_total h.\n# TYPE rex_c_total counter\nrex_c_total -1\n", "negative"},
		{"duplicate series", "# HELP rex_x h.\n# TYPE rex_x gauge\nrex_x 1\nrex_x 2\n", "duplicate series"},
		{
			"histogram without inf",
			"# HELP rex_h h.\n# TYPE rex_h histogram\nrex_h_bucket{le=\"1\"} 1\nrex_h_sum 1\nrex_h_count 1\n",
			`missing le="+Inf"`,
		},
		{
			"histogram count mismatch",
			"# HELP rex_h h.\n# TYPE rex_h histogram\nrex_h_bucket{le=\"+Inf\"} 3\nrex_h_sum 1\nrex_h_count 2\n",
			"disagrees",
		},
		{
			"histogram decreasing",
			"# HELP rex_h h.\n# TYPE rex_h histogram\nrex_h_bucket{le=\"1\"} 5\nrex_h_bucket{le=\"2\"} 3\nrex_h_bucket{le=\"+Inf\"} 5\nrex_h_sum 1\nrex_h_count 5\n",
			"decrease",
		},
		{"required missing", "# HELP rex_x h.\n# TYPE rex_x gauge\nrex_x 1\n", "required family"},
	}
	for _, tc := range cases {
		var required []string
		if tc.name == "required missing" {
			required = []string{"rex_absent"}
		}
		problems := LintExposition(strings.NewReader(tc.in), required...)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", tc.name, problems, tc.want)
		}
	}
}

// TestLintAcceptsSpecials checks NaN/Inf values and timestamps parse.
func TestLintAcceptsSpecials(t *testing.T) {
	in := "# HELP rex_x h.\n# TYPE rex_x gauge\nrex_x NaN\n" +
		"# HELP rex_y h.\n# TYPE rex_y gauge\nrex_y{a=\"b\"} +Inf 1700000000000\n"
	if problems := LintExposition(strings.NewReader(in)); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

package des

import (
	"math"
	"runtime"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/ctl"
	"rexchange/internal/plan"
	"rexchange/internal/rng"
	"rexchange/internal/vec"
	"rexchange/internal/workload"
)

// The simulator is the control plane's clock, load feed, and migration
// observer all at once.
var (
	_ ctl.Clock        = (*Sim)(nil)
	_ ctl.LoadSource   = (*Sim)(nil)
	_ ctl.MoveObserver = (*Sim)(nil)
)

// bareSim builds a simulator shell with unit calibration and no scheduled
// events, for white-box queueing tests: legUnit=1, serveScale=1, so a
// leg's work is its service time on a speed-1 idle machine.
func bareSim(speeds []float64, shards int) *Sim {
	s := &Sim{
		cfg:      Config{Fanout: 1, TargetUtil: 0.5, Window: 10, Drag: 0.3},
		home:     make([]cluster.MachineID, shards),
		weights:  make([]float64, shards),
		cum:      make([]float64, shards),
		machines: make([]machine, len(speeds)),
		streams:  rng.NewPartitioned(1),
		srcLoad:  make([]float64, shards),

		legUnit:    1,
		serveScale: 1,
	}
	for i := range s.machines {
		s.machines[i].speed = speeds[i]
	}
	for i := range s.weights {
		s.weights[i] = 1
	}
	s.wtotal = float64(shards)
	s.rebuildCum()
	return s
}

// enqueue pushes a leg for query qi on machine mi at time t, starting
// service if the machine was idle — the arrivalEvent fan-out step,
// without the randomized shard sampling.
func enqueue(s *Sim, t float64, qi int32, mi int32, work float64) {
	m := &s.machines[mi]
	m.push(leg{q: qi, work: work})
	if m.depth() == 1 {
		s.startService(t, mi)
	}
}

func TestLegFIFO(t *testing.T) {
	s := bareSim([]float64{1}, 1)
	q0 := s.allocQuery(0, 1)
	q1 := s.allocQuery(0, 1)
	q2 := s.allocQuery(0, 1)
	enqueue(s, 0, q0, 0, 1)
	enqueue(s, 0, q1, 0, 2)
	enqueue(s, 0, q2, 0, 3)
	s.Sleep(10)
	lat := s.lat[PhaseBefore]
	if len(lat) != 3 {
		t.Fatalf("completed %d queries, want 3", len(lat))
	}
	// FIFO at speed 1: completions at 1, 3, 6.
	want := []float64{1, 3, 6}
	for i, w := range want {
		if math.Abs(lat[i]-w) > 1e-12 {
			t.Fatalf("latency[%d] = %g, want %g", i, lat[i], w)
		}
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", s.InFlight())
	}
}

func TestMergeAtSlowestLeg(t *testing.T) {
	s := bareSim([]float64{1, 1}, 2)
	qi := s.allocQuery(0, 2)
	enqueue(s, 0, qi, 0, 1)
	enqueue(s, 0, qi, 1, 5)
	s.Sleep(3)
	if got := len(s.lat[PhaseBefore]); got != 0 {
		t.Fatalf("query completed after fast leg only (%d records)", got)
	}
	s.Sleep(7)
	lat := s.lat[PhaseBefore]
	if len(lat) != 1 || math.Abs(lat[0]-5) > 1e-12 {
		t.Fatalf("latency = %v, want [5] (merge at slowest leg)", lat)
	}
}

func TestMachineSpeedScalesService(t *testing.T) {
	s := bareSim([]float64{4}, 1)
	qi := s.allocQuery(0, 1)
	enqueue(s, 0, qi, 0, 2)
	s.Sleep(1)
	lat := s.lat[PhaseBefore]
	if len(lat) != 1 || math.Abs(lat[0]-0.5) > 1e-12 {
		t.Fatalf("latency = %v, want [0.5] (work 2 at speed 4)", lat)
	}
}

// TestMigrationDegradesSource: a copy in flight slows legs started while
// it streams; legs already in service keep their scheduled completion.
func TestMigrationDegradesSource(t *testing.T) {
	s := bareSim([]float64{1}, 1)
	mv := plan.Move{S: 0, From: 0, To: 0}

	q0 := s.allocQuery(0, 1)
	enqueue(s, 0, q0, 0, 1) // service scheduled at full speed: done at 1
	s.MoveStarted(mv, ctl.MoveRef{}, 0.5, 10)
	s.Sleep(2)
	// The copy overlapped the query's lifetime, so it lands in "during" —
	// but its in-flight service was not rescheduled.
	if lat := s.lat[PhaseDuring]; len(lat) != 1 || math.Abs(lat[0]-1) > 1e-12 {
		t.Fatalf("in-service leg rescheduled by copy: lat = %v, want [1]", lat)
	}

	// A leg started during the copy serves at speed·(1-drag) = 0.7.
	q1 := s.allocQuery(2, 1)
	enqueue(s, 2, q1, 0, 1)
	s.Sleep(3)
	lat := s.lat[PhaseDuring]
	if len(lat) != 2 || math.Abs(lat[1]-1/0.7) > 1e-9 {
		t.Fatalf("degraded latency = %v, want second entry %g", lat, 1/0.7)
	}

	// After the copy ends, full speed returns.
	s.MoveFinished(mv, ctl.MoveRef{}, 5, false)
	q2 := s.allocQuery(6, 1)
	enqueue(s, 6, q2, 0, 1)
	s.Sleep(3)
	if lat := s.lat[PhaseAfter]; len(lat) != 1 || math.Abs(lat[0]-1) > 1e-12 {
		t.Fatalf("post-copy latency = %v, want [1]", lat)
	}
}

// TestCommittedMoveReroutes: only committed moves change the simulator's
// routing; aborted copies leave the shard home.
func TestCommittedMoveReroutes(t *testing.T) {
	s := bareSim([]float64{1, 1}, 2)
	mv := plan.Move{S: 1, From: 0, To: 1}
	s.MoveStarted(mv, ctl.MoveRef{}, 0, 1)
	s.MoveFinished(mv, ctl.MoveRef{}, 1, false)
	if s.home[1] != 0 {
		t.Fatalf("aborted copy moved shard: home = %d", s.home[1])
	}
	s.MoveStarted(mv, ctl.MoveRef{}, 2, 3)
	s.MoveFinished(mv, ctl.MoveRef{}, 3, true)
	if s.home[1] != 1 {
		t.Fatalf("committed move did not reroute: home = %d", s.home[1])
	}
}

// TestPhaseClassification pins the before/during/after rules.
func TestPhaseClassification(t *testing.T) {
	s := bareSim([]float64{1}, 1)
	if ph := s.classify(0); ph != PhaseBefore {
		t.Fatalf("no copies yet: %v, want before", ph)
	}
	mv := plan.Move{S: 0, From: 0, To: 0}
	s.MoveStarted(mv, ctl.MoveRef{}, 1, 2)
	if ph := s.classify(0.5); ph != PhaseDuring {
		t.Fatalf("copy active: %v, want during", ph)
	}
	s.MoveFinished(mv, ctl.MoveRef{}, 2, true)
	// Arrived before the copy ended → overlapped → during.
	if ph := s.classify(1.5); ph != PhaseDuring {
		t.Fatalf("overlapped finished copy: %v, want during", ph)
	}
	// Arrived after every copy ended → after.
	if ph := s.classify(3); ph != PhaseAfter {
		t.Fatalf("post-campaign arrival: %v, want after", ph)
	}
}

// flatCluster builds n machines of speed 1 hosting n shards (one each)
// with the given shard loads.
func flatCluster(t *testing.T, loads []float64) *cluster.Placement {
	t.Helper()
	c := &cluster.Cluster{}
	assign := make([]cluster.MachineID, len(loads))
	for i, l := range loads {
		c.Machines = append(c.Machines, cluster.Machine{
			ID: cluster.MachineID(i), Capacity: vec.Uniform(100), Speed: 1,
		})
		c.Shards = append(c.Shards, cluster.Shard{
			ID: cluster.ShardID(i), Static: vec.Uniform(1), Load: l,
		})
		assign[i] = cluster.MachineID(i)
	}
	p, err := cluster.FromAssignment(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// flatSimTrace is a deterministic constant-rate trace.
func flatSimTrace(rate int, duration float64) *workload.Trace {
	tr := &workload.Trace{Duration: duration}
	for w := 0.0; w < duration; w++ {
		for i := 0; i < rate; i++ {
			tr.Queries = append(tr.Queries, workload.Query{At: w + (float64(i)+0.5)/float64(rate), Cost: 1})
		}
	}
	return tr
}

// TestLoadMeasurement: the measured loads track shard popularity on the
// cluster's Load scale — a zero-weight shard observes zero, totals match
// the base load within Poisson noise.
func TestLoadMeasurement(t *testing.T) {
	loads := []float64{4, 2, 2, 0}
	p := flatCluster(t, loads)
	cfg := DefaultConfig()
	cfg.Fanout = 2
	cfg.Window = 5
	cfg.CostSigma = 0 // unit costs: measurement noise is Poisson only
	tr := flatSimTrace(400, 20)
	s, err := New(cfg, p, tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Sleep(5)
	got, err := s.Next(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[3] > 0 {
		t.Fatalf("zero-weight shard measured load %g", got[3])
	}
	total := got[0] + got[1] + got[2]
	if total < 6 || total > 10 {
		t.Fatalf("total measured load %g, want ≈8", total)
	}
	if got[0] < got[1] {
		t.Fatalf("popular shard measured below cold shard: %v", got)
	}
	// A second snapshot covers only its own window (accumulators reset).
	s.Sleep(5)
	got2, err := s.Next(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	t2 := got2[0] + got2[1] + got2[2]
	if t2 < 6 || t2 > 10 {
		t.Fatalf("second window total %g, want ≈8 (accumulator leak?)", t2)
	}
}

// TestQueueCapDropsWholeQueries: a full machine queue drops arrivals
// whole and counts them.
func TestQueueCapDropsWholeQueries(t *testing.T) {
	p := flatCluster(t, []float64{1})
	cfg := DefaultConfig()
	cfg.Fanout = 1
	cfg.Window = 5
	cfg.MaxQueue = 2
	cfg.TargetUtil = 0.99 // saturate: the queue must overflow
	tr := flatSimTrace(500, 10)
	s, err := New(cfg, p, tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Sleep(10)
	if s.drops[PhaseBefore] == 0 {
		t.Fatal("saturated single machine with MaxQueue=2 never dropped")
	}
	if s.machines[0].depth() > 2 {
		t.Fatalf("queue depth %d exceeds cap 2", s.machines[0].depth())
	}
	rep := s.Report()
	if rep.Before.Dropped != s.drops[PhaseBefore] {
		t.Fatalf("report drops %d != %d", rep.Before.Dropped, s.drops[PhaseBefore])
	}
}

// TestSimDeterministicReport: the same configuration renders a
// byte-identical report across GOMAXPROCS=1 and GOMAXPROCS=8 — the
// controller's parallel solves run inside, so this certifies the whole
// stack's reproducibility, not just the event loop's.
func TestSimDeterministicReport(t *testing.T) {
	run := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		cfg := DefaultCampaignConfig()
		cfg.Machines, cfg.Shards, cfg.Rounds = 16, 160, 5
		cfg.Rate, cfg.Iterations = 60, 120
		cfg.Sim.Window = 5
		cfg.Sim.DriftSigma = 0.4
		res, err := RunCampaign(cfg, "solve")
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Render()
	}
	a := run(1)
	b := run(8)
	if a != b {
		t.Fatalf("report differs across GOMAXPROCS:\n--- 1 ---\n%s--- 8 ---\n%s", a, b)
	}
}

// TestCampaignEndToEnd: a drifting campaign triggers solves, migrations
// degrade and then relieve the fleet, and all three phases see traffic.
func TestCampaignEndToEnd(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Machines, cfg.Shards, cfg.Rounds = 16, 160, 8
	cfg.Rate, cfg.Iterations = 60, 120
	cfg.Sim.Window = 5
	cfg.Sim.DriftSigma = 0.4
	res, err := RunCampaign(cfg, "solve")
	if err != nil {
		t.Fatal(err)
	}
	if res.Solves == 0 || res.Moves == 0 {
		t.Fatalf("campaign never migrated: %+v", res)
	}
	if res.Report.Before.Queries == 0 || res.Report.During.Queries == 0 {
		t.Fatalf("phase accounting empty: %+v", res.Report)
	}

	base, err := RunCampaign(cfg, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if base.Solves != 0 || base.Moves != 0 {
		t.Fatalf("baseline migrated: %+v", base)
	}
	if base.Report.During.Queries != 0 || base.Report.After.Queries != 0 {
		t.Fatalf("baseline saw non-before phases: %+v", base.Report)
	}
	// The solve run drains its last migration past the baseline's end
	// time, so it can only have generated at least as many arrivals.
	if res.Report.Arrivals < base.Report.Arrivals {
		t.Fatalf("solve run generated fewer arrivals (%d) than baseline (%d)",
			res.Report.Arrivals, base.Report.Arrivals)
	}
}

// TestPolicyCannotPerturbWorkload: migrations, chaos draws, and trace
// sampling touch the simulator's routing, chaos, and trace streams only —
// the arrival process and shard picks come from the isolated workload
// stream, so sims with wildly different policy and observability activity
// observe identical offered load.
func TestPolicyCannotPerturbWorkload(t *testing.T) {
	mk := func(traceSample float64) *Sim {
		p := flatCluster(t, []float64{4, 2, 2, 1})
		cfg := DefaultConfig()
		cfg.Fanout = 2
		cfg.Window = 5
		cfg.DriftSigma = 0.3
		cfg.TraceSample = traceSample
		s, err := New(cfg, p, flatSimTrace(100, 20))
		if err != nil {
			t.Fatal(err)
		}
		if traceSample > 0 {
			// Activate the tracer; a nil journal discards the spans but
			// the sampler still draws per arrival.
			s.AttachObs(nil, nil)
		}
		return s
	}
	quiet, busy := mk(0), mk(0)
	traced := mk(1)

	// The busy sim sees migrations and burns chaos randomness mid-run.
	mv := plan.Move{S: 0, From: 0, To: 3}
	busy.Sleep(3)
	busy.MoveStarted(mv, ctl.MoveRef{Round: 1, Seq: 0}, 3, 6)
	busy.Chaos().Float64()
	busy.Sleep(4)
	busy.MoveFinished(mv, ctl.MoveRef{Round: 1, Seq: 0}, 7, true)
	busy.Chaos().Float64()
	busy.Sleep(3)
	quiet.Sleep(10)
	// The traced sim samples every query end-to-end.
	traced.Sleep(10)

	if quiet.arrived != busy.arrived {
		t.Fatalf("arrival counts diverged: quiet %d, busy %d", quiet.arrived, busy.arrived)
	}
	if quiet.arrived != traced.arrived {
		t.Fatalf("trace sampling perturbed arrivals: quiet %d, traced %d", quiet.arrived, traced.arrived)
	}
	if traced.tracer == nil || !traced.tracer.Enabled() {
		t.Fatal("traced sim never activated its tracer")
	}
	a, err := quiet.Next(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := busy.Next(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := traced.Next(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offered load diverged at shard %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("trace sampling perturbed offered load at shard %d: %g vs %g", i, a[i], c[i])
		}
	}
}

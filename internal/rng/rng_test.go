package rng

import (
	"fmt"
	"testing"
)

// TestWorkerSeedsPairwiseDistinct pins the seed-decorrelation fix moved
// here from internal/core. The old additive stride (Seed + i*0x9E3779B1)
// made restart i of a run seeded S reuse the seed of restart i-1 of a run
// seeded S+0x9E3779B1, so stride-spaced seed sweeps ran duplicate
// searches. The splitmix64-style mix must produce pairwise-distinct worker
// seeds across a sweep of base seeds in every pattern a harness plausibly
// uses: consecutive, stride-spaced (the old collision), and
// golden-ratio-spaced.
func TestWorkerSeedsPairwiseDistinct(t *testing.T) {
	const restarts = 64
	bases := []int64{1, 2, 3, 42}
	goldenGamma := int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	for _, step := range []int64{1, 0x9E3779B1, -0x9E3779B1, goldenGamma} {
		for i := int64(1); i <= 4; i++ {
			bases = append(bases, 7+i*step)
		}
	}
	seen := make(map[int64][2]int64, len(bases)*restarts)
	for _, base := range bases {
		for i := 0; i < restarts; i++ {
			s := WorkerSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("worker seed collision: (base=%d, i=%d) and (base=%d, i=%d) both map to %d",
					base, int64(i), prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(i)}
		}
	}

	// The exact pre-fix failure shape, spelled out: restart i of seed S
	// must not equal restart i-1 of seed S+0x9E3779B1.
	const oldStride = 0x9E3779B1
	for i := 1; i < restarts; i++ {
		if WorkerSeed(100, i) == WorkerSeed(100+oldStride, i-1) {
			t.Fatalf("stride-shifted runs still share worker seeds at i=%d", i)
		}
	}

	// Restart 0 must keep the base seed so the portfolio contains the
	// plain single run.
	if WorkerSeed(1234, 0) != 1234 {
		t.Fatalf("WorkerSeed(base, 0) = %d, want the base seed", WorkerSeed(1234, 0))
	}
}

// TestCellSeedsPairwiseDistinct sweeps the (round, partition) grid the
// partitioned solver uses and a third index dimension, checking that no
// two cells of any base seed collide and that tuples of different length
// stay distinct (the +1 offset per index).
func TestCellSeedsPairwiseDistinct(t *testing.T) {
	seen := make(map[int64]string)
	record := func(s int64, key string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("cell seed collision: %s and %s both map to %d", key, prev, s)
		}
		seen[s] = key
	}
	for _, base := range []int64{1, 7, 42, 1 + 0x9E3779B1} {
		for round := 0; round < 8; round++ {
			for part := 0; part < 16; part++ {
				record(CellSeed(base, round, part), fmt.Sprintf("(%d,%d,%d)", base, round, part))
			}
		}
		record(CellSeed(base, 0, 0, 0), fmt.Sprintf("(%d,0,0,0)", base))
	}
}

// TestCellSeedMatchesLegacyPartitionSeed pins the exact construction the
// partitioned solver shipped with (chained mix with +1-offset golden
// steps), so moving the helper into this package cannot silently change
// any solver trajectory.
func TestCellSeedMatchesLegacyPartitionSeed(t *testing.T) {
	legacy := func(base int64, round, part int) int64 {
		z := Mix64(uint64(base))
		z = Mix64(z + uint64(round+1)*0x9E3779B97F4A7C15)
		z = Mix64(z + uint64(part+1)*0x9E3779B97F4A7C15)
		return int64(z)
	}
	for _, base := range []int64{1, 99, -5} {
		for round := 0; round < 4; round++ {
			for part := 0; part < 4; part++ {
				if got, want := CellSeed(base, round, part), legacy(base, round, part); got != want {
					t.Fatalf("CellSeed(%d,%d,%d) = %d, legacy partitionSeed = %d", base, round, part, got, want)
				}
			}
		}
	}
}

// TestPartitionedStreamIsolation is the PartitionedRNG contract: a
// stream's sequence depends only on (base seed, name) — never on which
// other streams exist or how much they have drawn.
func TestPartitionedStreamIsolation(t *testing.T) {
	draw := func(p *Partitioned, name string, n int) []float64 {
		out := make([]float64, n)
		r := p.Stream(name)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}

	// Reference: workload stream alone.
	ref := draw(NewPartitioned(7), "workload", 32)

	// Same base, but a chatty sibling subsystem drains its own stream
	// first and in between: workload must be unaffected.
	p := NewPartitioned(7)
	draw(p, "service", 1000)
	got := draw(p, "workload", 16)
	draw(p, "chaos", 17)
	got = append(got, draw(p, "workload", 16)...)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("workload stream perturbed by sibling draws at %d: %g vs %g", i, ref[i], got[i])
		}
	}

	// Distinct names must get distinct streams.
	q := NewPartitioned(7)
	a, b := draw(q, "workload", 8), draw(q, "service", 8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams \"workload\" and \"service\" produced identical sequences")
	}

	// Distinct base seeds must decorrelate the same name.
	c := draw(NewPartitioned(8), "workload", 8)
	same = true
	for i := range c {
		if ref[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("base seeds 7 and 8 produced identical \"workload\" streams")
	}
}

// TestTraceStreamCannotPerturbSiblings is the trace sampler's isolation
// contract: however much the tracer draws from StreamTrace — nothing,
// a little, or a lot — the workload, drift, and chaos sequences stay
// bit-identical. This is what lets trace sampling be toggled without
// changing the simulated world (see des.TestPolicyCannotPerturbWorkload
// for the end-to-end version).
func TestTraceStreamCannotPerturbSiblings(t *testing.T) {
	names := []string{StreamWorkload, StreamDrift, StreamChaos}
	drain := func(traceDraws int) map[string][]uint64 {
		p := NewPartitioned(42)
		out := make(map[string][]uint64, len(names))
		tr := p.Stream(StreamTrace)
		for i := 0; i < traceDraws; i++ {
			tr.Uint64()
		}
		for _, name := range names {
			r := p.Stream(name)
			seq := make([]uint64, 24)
			for i := range seq {
				seq[i] = r.Uint64()
				// Interleave more trace draws between sibling draws.
				if traceDraws > 0 {
					tr.Uint64()
				}
			}
			out[name] = seq
		}
		return out
	}
	quiet, noisy := drain(0), drain(1000)
	for _, name := range names {
		for i := range quiet[name] {
			if quiet[name][i] != noisy[name][i] {
				t.Fatalf("stream %q perturbed by trace draws at %d: %d vs %d",
					name, i, quiet[name][i], noisy[name][i])
			}
		}
	}
}

// Command rexsim runs migration campaigns against the discrete-event
// cluster simulator: synthetic query traffic fans out across the fleet at
// per-query granularity while the unmodified online control plane
// observes, re-solves, and migrates — and every query's end-to-end
// latency is accounted by migration phase (before / during / after).
//
// Usage:
//
//	rexsim -machines 100 -shards 1500 -rounds 12                   # one "solve" campaign
//	rexsim -variants baseline,solve,kexchange -k 4 -bench-out b.json
//	rexsim -machines 1000 -shards 8000 -rate 2000 -rounds 10       # large-fleet campaign
//
// Everything runs on the simulator's deterministic clock: for a fixed
// seed the latency report is byte-identical across runs and GOMAXPROCS
// values, which CI exploits by diffing two runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rexchange/internal/des"
	"rexchange/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rexsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machines = flag.Int("machines", 100, "generated fleet size")
		shards   = flag.Int("shards", 1500, "generated shard population")
		fill     = flag.Float64("fill", 0.85, "generated static fill")
		seed     = flag.Int64("seed", 1, "random seed (instance, workload, solver)")

		rounds  = flag.Int("rounds", 12, "control rounds to simulate")
		window  = flag.Float64("window", 10, "seconds per control round / measurement window")
		rate    = flag.Float64("rate", 200, "mean query arrivals per second")
		diurnal = flag.Float64("diurnal", 0.4, "diurnal amplitude of the arrival rate [0,1)")
		drift   = flag.Float64("drift", 0.3, "per-window lognormal popularity drift")

		fanout    = flag.Int("fanout", 8, "shard legs sampled per query")
		util      = flag.Float64("util", 0.6, "target mean machine busy fraction")
		drag      = flag.Float64("drag", 0.3, "fractional speed loss per outbound migration copy")
		costSigma = flag.Float64("cost-sigma", 0.5, "lognormal per-query cost spread")
		maxQueue  = flag.Int("max-queue", 0, "per-machine queue cap in legs (0 = unbounded)")

		high      = flag.Float64("high", 1.25, "imbalance high-water mark")
		low       = flag.Float64("low", 1.10, "imbalance low-water mark")
		iters     = flag.Int("iters", 400, "LNS iterations per solve round")
		restarts  = flag.Int("restarts", 2, "parallel SRA restarts per solve round")
		solveCost = flag.Float64("solve-cost", 1, "simulated seconds charged per solve")

		bandwidth = flag.Float64("bandwidth", 400, "migration bandwidth (disk units/s per move)")
		inflight  = flag.Int("inflight", 4, "max simultaneously in-flight moves")

		k          = flag.Int("k", 4, "exchange machines for the kexchange variant")
		partitions = flag.Int("partitions", 4, "partition count for the partitioned variant")
		exRounds   = flag.Int("exchange-rounds", 2, "cross-partition exchange rounds for the partitioned variant")

		traceSample = flag.Float64("trace-sample", 0, "fraction of queries traced end-to-end into the journal [0,1]")
		exemplars   = flag.Bool("metrics-exemplars", false, "append histogram trace exemplars to the metrics exposition")

		variants   = flag.String("variants", "solve", "comma-separated campaigns: baseline, solve, kexchange, partitioned")
		reportOut  = flag.String("report-out", "", "write the rendered latency reports to this file")
		benchOut   = flag.String("bench-out", "", "write campaign results as JSON to this file")
		eventsPath = flag.String("events", "", "write per-variant JSONL journals to <path>.<variant>")
		metricsOut = flag.String("metrics-out", "", "write per-variant Prometheus expositions to <path>.<variant>")
	)
	flag.Parse()

	cfg := des.CampaignConfig{
		Machines: *machines, Shards: *shards, Fill: *fill, Seed: *seed,
		Rounds: *rounds,
		Sim: des.Config{
			Fanout: *fanout, TargetUtil: *util, Window: *window,
			DriftSigma: *drift, Drag: *drag, CostSigma: *costSigma,
			MaxQueue: *maxQueue, Seed: *seed, TraceSample: *traceSample,
		},
		Rate: *rate, Diurnal: *diurnal,
		HighWater: *high, LowWater: *low,
		Iterations: *iters, Restarts: *restarts, SolveSeconds: *solveCost,
		ExchangeK: *k, Partitions: *partitions, ExchangeRounds: *exRounds,
		Bandwidth: *bandwidth, InFlight: *inflight,
	}

	var reports strings.Builder
	var results []*des.CampaignResult
	for _, variant := range strings.Split(*variants, ",") {
		variant = strings.TrimSpace(variant)
		if variant == "" {
			continue
		}
		vcfg := cfg
		vcfg.Registry = obs.NewRegistry()
		journal, closeJournal, err := openJournal(variantPath(*eventsPath, variant))
		if err != nil {
			return err
		}
		vcfg.Journal = journal

		res, err := des.RunCampaign(vcfg, variant)
		if err != nil {
			closeJournal() //rexlint:ignore errignore best-effort cleanup on the error path; the campaign error wins
			return fmt.Errorf("variant %s: %w", variant, err)
		}
		results = append(results, res)

		fmt.Fprintf(&reports, "== %s ==\n%s", variant, res.Report.Render())
		fmt.Fprintf(&reports, "rounds %d solves %d moves %d aborted %d final-imbalance %.6f\n\n",
			res.Rounds, res.Solves, res.Moves, res.Aborted, res.Final)

		if journal != nil {
			if err := journal.Close(); err != nil {
				return err
			}
		}
		if err := closeJournal(); err != nil {
			return err
		}
		if *metricsOut != "" {
			if err := writeExposition(vcfg.Registry, variantPath(*metricsOut, variant), *exemplars); err != nil {
				return err
			}
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no variants selected")
	}

	fmt.Print(reports.String())
	if *reportOut != "" {
		if err := os.WriteFile(*reportOut, []byte(reports.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("report → %s\n", *reportOut)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, cfg, results); err != nil {
			return err
		}
		fmt.Printf("bench → %s\n", *benchOut)
	}
	return nil
}

// variantPath suffixes path with the variant name; empty stays empty.
func variantPath(path, variant string) string {
	if path == "" {
		return ""
	}
	return path + "." + variant
}

// openJournal opens a buffered JSONL journal; an empty path yields a nil
// journal and a no-op closer.
func openJournal(path string) (*obs.Journal, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	closed := false
	closer := func() error {
		if closed {
			return nil
		}
		closed = true
		if err := bw.Flush(); err != nil {
			f.Close() //rexlint:ignore errignore flush failure wins; close is best-effort
			return err
		}
		return f.Close()
	}
	return obs.NewJournal(bw), closer, nil
}

// writeExposition renders the registry to path, with histogram trace
// exemplars when requested.
func writeExposition(reg *obs.Registry, path string, exemplars bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := reg.WritePrometheus
	if exemplars {
		write = reg.WritePrometheusExemplars
	}
	if err := write(f); err != nil {
		f.Close() //rexlint:ignore errignore render failure wins; close is best-effort
		return err
	}
	return f.Close()
}

// benchFile is the BENCH_F5_DES.json schema: the campaign configuration
// and every variant's per-phase latency summary.
type benchFile struct {
	Bench   string                `json:"bench"`
	Config  des.CampaignConfig    `json:"config"`
	Results []*des.CampaignResult `json:"results"`
}

// writeBench writes the campaign comparison JSON.
func writeBench(path string, cfg des.CampaignConfig, results []*des.CampaignResult) error {
	cfg.Registry, cfg.Journal = nil, nil
	data, err := json.MarshalIndent(benchFile{Bench: "F5_DES", Config: cfg, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
